//! paced — the long-lived clustering daemon.
//!
//! Turns the batch pipeline into a service: a Unix-domain-socket server
//! that accepts FASTA ingest batches, folds each into the live index
//! incrementally ([`pace_core::IncrementalClusterer`]), answers
//! membership/cluster/representative/stats queries from many concurrent
//! clients against snapshot-consistent read views, and persists through
//! the rolling checkpoint machinery so a `kill -9` + restart resumes
//! transparently.
//!
//! The wire format reuses the shared `pace-wire` codec: every message is
//! one `[len][crc32][payload]` frame; see [`proto`] for the message
//! grammar and DESIGN.md §13 for the consistency model.

pub mod proto;

mod checkpoint;
mod client;
mod server;
mod view;

pub use checkpoint::{load_state, save_state, ServeManifest, SERVE_MANIFEST_FILE, SERVE_SNAP_FILE};
pub use client::Client;
pub use proto::{Request, Response, ServeStats, PROTO_VERSION};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
pub use view::ReadView;
