//! The daemon: accept loop, per-connection handlers, the single-writer
//! ingest path, and checkpoint plumbing.
//!
//! ## Concurrency model
//!
//! One writer, many readers:
//!
//! * **Ingest** is serialized through `Mutex<CoreState>`. A fold
//!   mutates the [`IncrementalClusterer`], optionally publishes a
//!   checkpoint, then builds a fresh [`ReadView`] and swaps it in. The
//!   `Ingested` reply is sent only after the swap, so a client that
//!   ingests and immediately queries (on any connection) sees its own
//!   batch.
//! * **Queries** clone the current `Arc<ReadView>` and answer entirely
//!   from that immutable snapshot — they never take the core lock and
//!   are never blocked by an in-flight fold.
//!
//! Each accepted connection gets its own handler thread (blocking
//! reads, small stack). Handler threads are detached: they exit on
//! client EOF, protocol error, or process exit. The accept loop is
//! non-blocking and polls the shutdown flag and [`pace_core::signals`]
//! so both a `Shutdown` request and a SIGTERM stop the daemon promptly
//! — in both cases it publishes a final checkpoint before returning.

use crate::checkpoint::{load_state, save_state};
use crate::proto::{Request, Response, ServeStats, PROTO_VERSION};
use crate::view::ReadView;
use pace_cluster::ClusterConfig;
use pace_core::{signals, IncrementalClusterer};
use pace_obs::{metric, LogQuantile, Obs};
use pace_wire::{read_frame, write_frame, Wire};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Recover the guard from a poisoned mutex.
///
/// A handler thread that panics while holding one of the daemon's locks
/// poisons it; `.lock().unwrap()` would then propagate the panic into
/// every other handler and the accept loop, turning one bad request
/// into a dead daemon. The data under the view/latency locks cannot be
/// torn (an `Arc` swap, a quantile sketch observation), so recovery is
/// unconditionally safe there. The *core* lock is different — a fold
/// may have died halfway through a mutation — so its callers also
/// consult [`Shared::core_tainted`] before trusting the state.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix-domain socket to listen on (created; stale files replaced).
    pub socket_path: PathBuf,
    /// Clustering parameters — must match across restarts (enforced by
    /// the checkpoint fingerprint).
    pub cluster: ClusterConfig,
    /// Per-fold GST build memory budget in bytes (0 = unlimited).
    pub memory_budget: u64,
    /// When set, fold state is checkpointed here and restored on start.
    pub checkpoint_dir: Option<PathBuf>,
    /// Publish a checkpoint every K folds (min 1). The daemon also
    /// checkpoints once more on shutdown.
    pub checkpoint_every: u64,
}

impl ServerConfig {
    /// A daemon on `socket_path` with the given clustering config, no
    /// persistence, checkpoint-every-fold defaults.
    pub fn new(socket_path: impl Into<PathBuf>, cluster: ClusterConfig) -> Self {
        ServerConfig {
            socket_path: socket_path.into(),
            cluster,
            memory_budget: 0,
            checkpoint_dir: None,
            checkpoint_every: 1,
        }
    }
}

/// Final serving statistics, returned by [`ServerHandle::stop`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Queries answered.
    pub queries: u64,
    /// Ingest batches folded this process lifetime.
    pub ingests: u64,
    /// ESTs in the index at shutdown.
    pub num_ests: u64,
    /// Clusters at shutdown.
    pub num_clusters: u64,
    /// Query latency quantiles (µs) from the log-bucket sketch.
    pub query_p50_us: f64,
    /// 90th percentile query latency (µs).
    pub query_p90_us: f64,
    /// 99th percentile query latency (µs).
    pub query_p99_us: f64,
    /// Median ingest fold latency (µs).
    pub ingest_p50_us: f64,
    /// 99th percentile ingest fold latency (µs).
    pub ingest_p99_us: f64,
}

/// The writer-side state, serialized by one mutex.
struct CoreState {
    clusterer: IncrementalClusterer,
    /// Cumulative ingest batches (survives restarts via the manifest).
    ingest_batches: u64,
    folds_since_checkpoint: u64,
}

/// State shared by the accept loop and every handler thread.
struct Shared {
    cfg: ServerConfig,
    core: Mutex<CoreState>,
    view: Mutex<Arc<ReadView>>,
    shutdown: AtomicBool,
    connections: AtomicU64,
    queries: AtomicU64,
    ingests: AtomicU64,
    query_lat: Mutex<LogQuantile>,
    ingest_lat: Mutex<LogQuantile>,
    /// Set when the core lock is found poisoned: a fold panicked while
    /// mutating the clusterer, so the writer-side state may be torn.
    /// Queries keep serving the last published view; further ingests
    /// are rejected; the final checkpoint is suppressed so a good
    /// on-disk snapshot is never overwritten with a suspect one.
    core_tainted: AtomicBool,
    started: Instant,
    obs: Obs,
}

impl Shared {
    fn current_view(&self) -> Arc<ReadView> {
        lock_recover(&self.view).clone()
    }

    fn publish_view(&self, view: ReadView) {
        *lock_recover(&self.view) = Arc::new(view);
    }

    /// Take the core lock, recovering (and recording the taint) if a
    /// previous holder panicked.
    fn lock_core(&self) -> MutexGuard<'_, CoreState> {
        match self.core.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                if !self.core_tainted.swap(true, Ordering::SeqCst) {
                    self.obs.registry().add(metric::SERVE_ERRORS, 1);
                    eprintln!(
                        "paced: core state poisoned by a panicked fold; \
                         serving last view read-only, rejecting further ingests"
                    );
                }
                poisoned.into_inner()
            }
        }
    }

    fn build_view(core: &mut CoreState) -> ReadView {
        let labels = core.clusterer.labels();
        let mut view = ReadView::build(
            &labels,
            core.clusterer.ids().to_vec(),
            core.clusterer.ests().to_vec(),
            core.ingest_batches,
            core.clusterer.trace().len() as u64,
        );
        view.pairs_generated = core.clusterer.stats.pairs_generated;
        view.pairs_processed = core.clusterer.stats.pairs_processed;
        view.pairs_skipped = core.clusterer.stats.pairs_skipped;
        view
    }
}

/// A running daemon.
pub struct Server;

/// Handle to a running daemon: stop it, inspect it, wait for it.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl Server {
    /// Start serving: restore from the checkpoint directory if one is
    /// there, bind the socket (replacing a stale file), and spawn the
    /// accept loop. Returns once the daemon is accepting connections.
    pub fn start(cfg: ServerConfig, obs: Obs) -> io::Result<ServerHandle> {
        let restored = match &cfg.checkpoint_dir {
            Some(dir) => load_state(dir, &cfg.cluster, cfg.memory_budget)
                .map_err(|e| io::Error::other(format!("restoring checkpoint: {e}")))?,
            None => None,
        };
        let (clusterer, ingest_batches) = match restored {
            Some((c, batches)) => (c, batches),
            None => (
                IncrementalClusterer::with_budget(cfg.cluster.clone(), cfg.memory_budget),
                0,
            ),
        };
        let mut core = CoreState {
            clusterer,
            ingest_batches,
            folds_since_checkpoint: 0,
        };
        let initial_view = Shared::build_view(&mut core);

        // A stale socket file from a dead daemon would make bind fail;
        // a *live* daemon would still hold the listener, and replacing
        // its file is what the operator asked for by reusing the path.
        let _ = std::fs::remove_file(&cfg.socket_path);
        if let Some(parent) = cfg.socket_path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let listener = UnixListener::bind(&cfg.socket_path)?;
        listener.set_nonblocking(true)?;
        signals::install();

        let shared = Arc::new(Shared {
            cfg,
            core: Mutex::new(core),
            view: Mutex::new(Arc::new(initial_view)),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            ingests: AtomicU64::new(0),
            query_lat: Mutex::new(LogQuantile::new()),
            ingest_lat: Mutex::new(LogQuantile::new()),
            core_tainted: AtomicBool::new(false),
            started: Instant::now(),
            obs,
        });

        let accept_shared = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("paced-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;

        Ok(ServerHandle {
            shared,
            accept_thread: Some(accept_thread),
        })
    }
}

impl ServerHandle {
    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &std::path::Path {
        &self.shared.cfg.socket_path
    }

    /// Whether the daemon has begun shutting down (via request, signal,
    /// or [`Self::stop`]).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Stop the daemon (idempotent): close the accept loop, publish a
    /// final checkpoint, record `serve.*` metrics, and return the
    /// serving statistics.
    pub fn stop(mut self) -> io::Result<ServerStats> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.join_and_finalize()
    }

    /// Block until the daemon stops on its own (a `Shutdown` request or
    /// a fatal signal), then finalize like [`Self::stop`].
    ///
    /// The final checkpoint is published even when the accept loop
    /// exited on a signal — the `Err` then reports the signal, with
    /// durability already secured.
    pub fn wait(mut self) -> io::Result<ServerStats> {
        self.join_and_finalize()
    }

    fn join_and_finalize(&mut self) -> io::Result<ServerStats> {
        let accept_result = match self.accept_thread.take() {
            Some(t) => t
                .join()
                .map_err(|_| io::Error::other("accept loop panicked"))?,
            None => Ok(()),
        };
        let stats = finalize(&self.shared);
        accept_result.map(|()| stats)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Final checkpoint + metrics, once the accept loop has exited.
fn finalize(shared: &Shared) -> ServerStats {
    let mut core = shared.lock_core();
    if shared.core_tainted.load(Ordering::SeqCst) {
        // Never let a torn clusterer overwrite the last good snapshot;
        // the operator restarts from that checkpoint instead.
        eprintln!("paced: core tainted by a panicked fold; final checkpoint suppressed");
    } else if let Some(dir) = &shared.cfg.checkpoint_dir {
        if core.folds_since_checkpoint > 0
            && save_state(dir, &core.clusterer, core.ingest_batches).is_ok()
        {
            core.folds_since_checkpoint = 0;
            shared.obs.registry().add(metric::SERVE_CHECKPOINTS, 1);
        }
    }
    let _ = std::fs::remove_file(&shared.cfg.socket_path);

    let reg = shared.obs.registry();
    let (qp50, qp90, qp99) = lock_recover(&shared.query_lat).p50_p90_p99();
    let (ip50, _ip90, ip99) = lock_recover(&shared.ingest_lat).p50_p90_p99();
    reg.set_gauge(metric::SERVE_QUERY_P50_US, qp50);
    reg.set_gauge(metric::SERVE_QUERY_P90_US, qp90);
    reg.set_gauge(metric::SERVE_QUERY_P99_US, qp99);
    reg.set_gauge(metric::SERVE_INGEST_P50_US, ip50);
    reg.set_gauge(metric::SERVE_INGEST_P99_US, ip99);

    ServerStats {
        connections: shared.connections.load(Ordering::Relaxed),
        queries: shared.queries.load(Ordering::Relaxed),
        ingests: shared.ingests.load(Ordering::Relaxed),
        num_ests: core.clusterer.len() as u64,
        num_clusters: core.clusterer.num_clusters() as u64,
        query_p50_us: qp50,
        query_p90_us: qp90,
        query_p99_us: qp99,
        ingest_p50_us: ip50,
        ingest_p99_us: ip99,
    }
}

fn accept_loop(listener: UnixListener, shared: Arc<Shared>) -> io::Result<()> {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        if let Some(signum) = signals::pending() {
            // SIGTERM/SIGINT: stop accepting; finalize() checkpoints.
            shared.shutdown.store(true, Ordering::SeqCst);
            return Err(io::Error::other(format!("terminated by signal {signum}")));
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                shared.obs.registry().add(metric::SERVE_CONNECTIONS, 1);
                let conn_shared = shared.clone();
                // Detached handler; small stack — thousands may coexist.
                let _ = std::thread::Builder::new()
                    .name("paced-conn".into())
                    .stack_size(128 * 1024)
                    .spawn(move || handle_connection(stream, conn_shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Serve one connection until EOF, an unrecoverable frame error, or
/// daemon shutdown.
fn handle_connection(mut stream: UnixStream, shared: Arc<Shared>) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF
            Err(_) => return,   // CRC/length violation or torn read
        };
        let response = match Request::from_bytes(&payload) {
            Ok(req) => dispatch(req, &shared),
            Err(e) => {
                shared.obs.registry().add(metric::SERVE_ERRORS, 1);
                Response::Err {
                    msg: format!("bad request: {e}"),
                }
            }
        };
        if write_frame(&mut stream, &response.to_bytes()).is_err() {
            return;
        }
    }
}

/// Execute one request against the shared state.
fn dispatch(req: Request, shared: &Shared) -> Response {
    match req {
        Request::Ping => {
            let view = shared.current_view();
            note_query(shared, 0.0);
            Response::Pong {
                version: PROTO_VERSION,
                num_ests: view.num_ests() as u64,
            }
        }
        Request::Ingest { ids, seqs } => do_ingest(shared, ids, seqs),
        Request::Member { id } => {
            let t0 = Instant::now();
            let view = shared.current_view();
            let resp = match view.by_id.get(&id) {
                Some(&index) => {
                    let label = view.labels[index];
                    Response::Membership {
                        est_index: index as u64,
                        cluster_label: label,
                        cluster_size: view.members[&label].len() as u64,
                    }
                }
                None => {
                    shared.obs.registry().add(metric::SERVE_ERRORS, 1);
                    Response::Err {
                        msg: format!("no EST with id {id:?}"),
                    }
                }
            };
            note_query(shared, t0.elapsed().as_secs_f64() * 1e6);
            resp
        }
        Request::Cluster { label } => {
            let t0 = Instant::now();
            let view = shared.current_view();
            let resp = match view.members.get(&label) {
                Some(member_indices) => Response::ClusterMembers {
                    label,
                    ids: member_indices
                        .iter()
                        .map(|&i| view.ids[i].clone())
                        .collect(),
                },
                None => {
                    shared.obs.registry().add(metric::SERVE_ERRORS, 1);
                    Response::Err {
                        msg: format!("no cluster labelled {label}"),
                    }
                }
            };
            note_query(shared, t0.elapsed().as_secs_f64() * 1e6);
            resp
        }
        Request::Rep { label } => {
            let t0 = Instant::now();
            let view = shared.current_view();
            // The representative is the smallest-index member — which
            // is the label itself, by canonical labelling.
            let resp = if view.members.contains_key(&label) {
                let rep = label as usize;
                Response::Representative {
                    label,
                    id: view.ids[rep].clone(),
                    seq: view.seqs[rep].clone(),
                }
            } else {
                shared.obs.registry().add(metric::SERVE_ERRORS, 1);
                Response::Err {
                    msg: format!("no cluster labelled {label}"),
                }
            };
            note_query(shared, t0.elapsed().as_secs_f64() * 1e6);
            resp
        }
        Request::Stats => {
            let t0 = Instant::now();
            let view = shared.current_view();
            let resp = Response::StatsReply(ServeStats {
                num_ests: view.num_ests() as u64,
                num_clusters: view.num_clusters() as u64,
                ingest_batches: view.ingest_batches,
                trace_len: view.trace_len,
                pairs_generated: view.pairs_generated,
                pairs_processed: view.pairs_processed,
                pairs_skipped: view.pairs_skipped,
                queries_served: shared.queries.load(Ordering::Relaxed),
                uptime_us: shared.started.elapsed().as_micros() as u64,
            });
            note_query(shared, t0.elapsed().as_secs_f64() * 1e6);
            resp
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::Ok
        }
    }
}

fn note_query(shared: &Shared, micros: f64) {
    shared.queries.fetch_add(1, Ordering::Relaxed);
    shared.obs.registry().add(metric::SERVE_QUERIES, 1);
    lock_recover(&shared.query_lat).observe(micros);
}

/// The single-writer ingest path: fold, checkpoint (maybe), publish the
/// new view, then reply.
fn do_ingest(shared: &Shared, ids: Vec<String>, seqs: Vec<Vec<u8>>) -> Response {
    let t0 = Instant::now();
    let mut core = shared.lock_core();
    if shared.core_tainted.load(Ordering::SeqCst) {
        shared.obs.registry().add(metric::SERVE_ERRORS, 1);
        return Response::Err {
            msg: "ingest rejected: core state tainted by an earlier fold panic; \
                  restart the daemon from its checkpoint"
                .into(),
        };
    }
    let summary = match core.clusterer.fold_batch(&ids, &seqs) {
        Ok(s) => s,
        Err(e) => {
            shared.obs.registry().add(metric::SERVE_ERRORS, 1);
            return Response::Err {
                msg: format!("ingest rejected: {e}"),
            };
        }
    };
    core.ingest_batches += 1;
    core.folds_since_checkpoint += 1;

    if let Some(dir) = &shared.cfg.checkpoint_dir {
        if core.folds_since_checkpoint >= shared.cfg.checkpoint_every.max(1) {
            match save_state(dir, &core.clusterer, core.ingest_batches) {
                Ok(_) => {
                    core.folds_since_checkpoint = 0;
                    shared.obs.registry().add(metric::SERVE_CHECKPOINTS, 1);
                }
                Err(e) => {
                    // Serving continues; durability degrades until the
                    // next successful checkpoint. Surface loudly.
                    eprintln!("paced: checkpoint failed: {e}");
                }
            }
        }
    }

    let view = Shared::build_view(&mut core);
    drop(core);
    shared.publish_view(view);

    shared.ingests.fetch_add(1, Ordering::Relaxed);
    let reg = shared.obs.registry();
    reg.add(metric::SERVE_INGEST_BATCHES, 1);
    reg.add(metric::SERVE_INGEST_ESTS, summary.new_ests as u64);
    lock_recover(&shared.ingest_lat).observe(t0.elapsed().as_secs_f64() * 1e6);

    Response::Ingested {
        new_ests: summary.new_ests as u64,
        total_ests: summary.total_ests as u64,
        num_clusters: summary.num_clusters as u64,
        merges: summary.merges,
        aligned: summary.aligned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pace-serve-poison-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_cluster_cfg() -> ClusterConfig {
        let mut c = ClusterConfig::small();
        c.psi = 16;
        c.overlap.min_overlap_len = 40;
        c
    }

    /// Deterministic pseudorandom DNA (LCG).
    fn lcg_dna(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                [b'A', b'C', b'G', b'T'][(x >> 33) as usize % 4]
            })
            .collect()
    }

    /// A fold that panics while holding the core lock must not take
    /// down query serving: the daemon keeps answering from the last
    /// published view, rejects further ingests with a clean error, and
    /// still stops without panicking (suppressing the final checkpoint
    /// rather than overwriting a good one with torn state).
    #[test]
    fn poisoned_core_keeps_serving_queries() {
        let dir = scratch("core");
        let sock = dir.join("paced.sock");
        let ckpt = dir.join("ckpt");
        let mut sc = ServerConfig::new(&sock, small_cluster_cfg());
        sc.checkpoint_dir = Some(ckpt.clone());
        let handle = Server::start(sc, Obs::noop()).expect("start daemon");
        let mut client =
            Client::connect_with_retry(&sock, Duration::from_secs(5)).expect("connect");

        // One good batch, checkpointed and queryable.
        let template = lcg_dna(99, 140);
        client
            .ingest(
                vec!["e0".into(), "e1".into()],
                vec![template[..90].to_vec(), template[40..].to_vec()],
            )
            .expect("first ingest");
        let (_, label, _) = client.member("e0").expect("member before poison");
        let manifest_before = std::fs::read(ckpt.join(crate::checkpoint::SERVE_MANIFEST_FILE))
            .expect("checkpoint written");

        // Simulate a fold dying halfway: panic while holding the core
        // lock, exactly what a bug inside fold_batch would do.
        let poisoner = handle.shared.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.core.lock().unwrap();
            panic!("simulated fold panic");
        })
        .join();

        // Queries still serve the last view (on a fresh connection too).
        let (_, label_after, size_after) = client.member("e0").expect("member after poison");
        assert_eq!(label_after, label);
        assert!(size_after >= 1);
        let mut fresh =
            Client::connect_with_retry(&sock, Duration::from_secs(5)).expect("reconnect");
        assert!(fresh.ping().is_ok(), "ping after poison");

        // Ingest is refused loudly instead of folding into torn state.
        let resp = client
            .call(&Request::Ingest {
                ids: vec!["e2".into()],
                seqs: vec![lcg_dna(7, 120)],
            })
            .expect("transport must survive");
        match resp {
            Response::Err { msg } => assert!(msg.contains("tainted"), "unexpected error: {msg}"),
            other => panic!("tainted ingest must be refused, got {other:?}"),
        }

        // stop() neither panics nor overwrites the good checkpoint.
        let stats = handle.stop().expect("clean stop");
        assert!(stats.queries >= 2);
        let manifest_after = std::fs::read(ckpt.join(crate::checkpoint::SERVE_MANIFEST_FILE))
            .expect("checkpoint still present");
        assert_eq!(
            manifest_before, manifest_after,
            "tainted shutdown must not rewrite the checkpoint"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Poison on the *view* / latency locks is recoverable without any
    /// taint: nothing under them can be torn.
    #[test]
    fn poisoned_view_lock_recovers_transparently() {
        let dir = scratch("view");
        let sock = dir.join("paced.sock");
        let handle = Server::start(ServerConfig::new(&sock, small_cluster_cfg()), Obs::noop())
            .expect("start daemon");
        let poisoner = handle.shared.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.view.lock().unwrap();
            panic!("simulated panic under the view lock");
        })
        .join();
        let latpoisoner = handle.shared.clone();
        let _ = std::thread::spawn(move || {
            let _guard = latpoisoner.query_lat.lock().unwrap();
            panic!("simulated panic under the latency lock");
        })
        .join();

        let mut client =
            Client::connect_with_retry(&sock, Duration::from_secs(5)).expect("connect");
        client.ping().expect("ping through poisoned view lock");
        let template = lcg_dna(3, 140);
        client
            .ingest(
                vec!["a".into(), "b".into()],
                vec![template[..90].to_vec(), template[40..].to_vec()],
            )
            .expect("ingest still works: core was never poisoned");
        assert!(client.member("a").is_ok());
        handle.stop().expect("clean stop");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
