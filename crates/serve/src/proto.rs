//! The daemon's wire protocol.
//!
//! Every message is one `pace-wire` frame (`[len][crc32][payload]`);
//! the payload is a tag byte followed by the message's fields. Requests
//! flow client → daemon, responses daemon → client, strictly one
//! response per request on a connection (no pipelining surprises: the
//! daemon answers in arrival order per connection).
//!
//! ## Versioning
//!
//! [`PROTO_VERSION`] rides in every [`Response::Pong`]; a client checks
//! it once after connecting. Within a version, encodings are append-only
//! at the end of a message — the same rule as the transport's `Ctl`.
//!
//! ## Grammar
//!
//! | Request                    | Response                               |
//! |----------------------------|----------------------------------------|
//! | `Ping`                     | `Pong { version, num_ests }`           |
//! | `Ingest { ids, seqs }`     | `Ingested { … fold summary … }`        |
//! | `Member { id }`            | `Membership { index, label, size }`    |
//! | `Cluster { label }`        | `ClusterMembers { label, ids }`        |
//! | `Rep { label }`            | `Representative { label, id, seq }`    |
//! | `Stats`                    | `StatsReply { … counters … }`          |
//! | `Shutdown`                 | `Ok`                                   |
//! | anything malformed         | `Err { msg }` (connection stays open)  |
//!
//! Cluster labels are **canonical**: a cluster is named by the smallest
//! EST index it contains, so labels are stable across daemon restarts
//! and agree with a one-shot batch run over the same data (the property
//! `tests/serve_identity.rs` pins down).

use pace_wire::{Wire, WireError, WireReader};

/// Serving protocol version, reported in `Pong`.
pub const PROTO_VERSION: u32 = 1;

/// Client → daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness + version check.
    Ping,
    /// Fold a batch of ESTs into the live index.
    Ingest {
        /// One identifier per sequence (FASTA header ids).
        ids: Vec<String>,
        /// DNA sequences, `{A,C,G,T}` upper- or lowercase.
        seqs: Vec<Vec<u8>>,
    },
    /// Which cluster does this EST (by id) belong to?
    Member { id: String },
    /// List the member ids of a cluster.
    Cluster { label: u64 },
    /// The representative (smallest-index member) of a cluster.
    Rep { label: u64 },
    /// Service-wide counters.
    Stats,
    /// Graceful stop: the daemon checkpoints and exits its accept loop.
    Shutdown,
}

/// Daemon → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Generic success (for `Shutdown`).
    Ok,
    /// The request could not be served; the connection stays usable.
    Err { msg: String },
    /// Reply to `Ping`.
    Pong { version: u32, num_ests: u64 },
    /// Reply to `Ingest`: what the fold did.
    Ingested {
        new_ests: u64,
        total_ests: u64,
        num_clusters: u64,
        merges: u64,
        aligned: u64,
    },
    /// Reply to `Member`.
    Membership {
        est_index: u64,
        cluster_label: u64,
        cluster_size: u64,
    },
    /// Reply to `Cluster`.
    ClusterMembers { label: u64, ids: Vec<String> },
    /// Reply to `Rep`.
    Representative {
        label: u64,
        id: String,
        seq: Vec<u8>,
    },
    /// Reply to `Stats`.
    StatsReply(ServeStats),
}

/// Service-wide counters, the payload of [`Response::StatsReply`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// ESTs incorporated.
    pub num_ests: u64,
    /// Current cluster count.
    pub num_clusters: u64,
    /// Ingest batches folded since the daemon first started (survives
    /// restarts via the checkpoint manifest).
    pub ingest_batches: u64,
    /// Accepted merges in the rolling trace.
    pub trace_len: u64,
    /// Promising pairs generated across all folds.
    pub pairs_generated: u64,
    /// Pairs aligned across all folds.
    pub pairs_processed: u64,
    /// Pairs skipped (already clustered, or old–old).
    pub pairs_skipped: u64,
    /// Queries answered since this process started.
    pub queries_served: u64,
    /// Microseconds since this process started serving.
    pub uptime_us: u64,
}

const REQ_PING: u8 = 0;
const REQ_INGEST: u8 = 1;
const REQ_MEMBER: u8 = 2;
const REQ_CLUSTER: u8 = 3;
const REQ_REP: u8 = 4;
const REQ_STATS: u8 = 5;
const REQ_SHUTDOWN: u8 = 6;

const RESP_OK: u8 = 0;
const RESP_ERR: u8 = 1;
const RESP_PONG: u8 = 2;
const RESP_INGESTED: u8 = 3;
const RESP_MEMBERSHIP: u8 = 4;
const RESP_CLUSTER_MEMBERS: u8 = 5;
const RESP_REPRESENTATIVE: u8 = 6;
const RESP_STATS: u8 = 7;

impl Wire for Request {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Ping => out.push(REQ_PING),
            Request::Ingest { ids, seqs } => {
                out.push(REQ_INGEST);
                ids.encode(out);
                seqs.encode(out);
            }
            Request::Member { id } => {
                out.push(REQ_MEMBER);
                id.encode(out);
            }
            Request::Cluster { label } => {
                out.push(REQ_CLUSTER);
                label.encode(out);
            }
            Request::Rep { label } => {
                out.push(REQ_REP);
                label.encode(out);
            }
            Request::Stats => out.push(REQ_STATS),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            REQ_PING => Request::Ping,
            REQ_INGEST => Request::Ingest {
                ids: Vec::decode(r)?,
                seqs: Vec::decode(r)?,
            },
            REQ_MEMBER => Request::Member {
                id: String::decode(r)?,
            },
            REQ_CLUSTER => Request::Cluster { label: r.u64()? },
            REQ_REP => Request::Rep { label: r.u64()? },
            REQ_STATS => Request::Stats,
            REQ_SHUTDOWN => Request::Shutdown,
            tag => return Err(WireError(format!("unknown Request tag {tag:#04x}"))),
        })
    }
}

impl Wire for Response {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Ok => out.push(RESP_OK),
            Response::Err { msg } => {
                out.push(RESP_ERR);
                msg.encode(out);
            }
            Response::Pong { version, num_ests } => {
                out.push(RESP_PONG);
                version.encode(out);
                num_ests.encode(out);
            }
            Response::Ingested {
                new_ests,
                total_ests,
                num_clusters,
                merges,
                aligned,
            } => {
                out.push(RESP_INGESTED);
                new_ests.encode(out);
                total_ests.encode(out);
                num_clusters.encode(out);
                merges.encode(out);
                aligned.encode(out);
            }
            Response::Membership {
                est_index,
                cluster_label,
                cluster_size,
            } => {
                out.push(RESP_MEMBERSHIP);
                est_index.encode(out);
                cluster_label.encode(out);
                cluster_size.encode(out);
            }
            Response::ClusterMembers { label, ids } => {
                out.push(RESP_CLUSTER_MEMBERS);
                label.encode(out);
                ids.encode(out);
            }
            Response::Representative { label, id, seq } => {
                out.push(RESP_REPRESENTATIVE);
                label.encode(out);
                id.encode(out);
                seq.encode(out);
            }
            Response::StatsReply(s) => {
                out.push(RESP_STATS);
                s.num_ests.encode(out);
                s.num_clusters.encode(out);
                s.ingest_batches.encode(out);
                s.trace_len.encode(out);
                s.pairs_generated.encode(out);
                s.pairs_processed.encode(out);
                s.pairs_skipped.encode(out);
                s.queries_served.encode(out);
                s.uptime_us.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            RESP_OK => Response::Ok,
            RESP_ERR => Response::Err {
                msg: String::decode(r)?,
            },
            RESP_PONG => Response::Pong {
                version: r.u32()?,
                num_ests: r.u64()?,
            },
            RESP_INGESTED => Response::Ingested {
                new_ests: r.u64()?,
                total_ests: r.u64()?,
                num_clusters: r.u64()?,
                merges: r.u64()?,
                aligned: r.u64()?,
            },
            RESP_MEMBERSHIP => Response::Membership {
                est_index: r.u64()?,
                cluster_label: r.u64()?,
                cluster_size: r.u64()?,
            },
            RESP_CLUSTER_MEMBERS => Response::ClusterMembers {
                label: r.u64()?,
                ids: Vec::decode(r)?,
            },
            RESP_REPRESENTATIVE => Response::Representative {
                label: r.u64()?,
                id: String::decode(r)?,
                seq: Vec::decode(r)?,
            },
            RESP_STATS => Response::StatsReply(ServeStats {
                num_ests: r.u64()?,
                num_clusters: r.u64()?,
                ingest_batches: r.u64()?,
                trace_len: r.u64()?,
                pairs_generated: r.u64()?,
                pairs_processed: r.u64()?,
                pairs_skipped: r.u64()?,
                queries_served: r.u64()?,
                uptime_us: r.u64()?,
            }),
            tag => return Err(WireError(format!("unknown Response tag {tag:#04x}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        assert_eq!(&T::from_bytes(&v.to_bytes()).expect("decode"), v);
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Ping,
            Request::Ingest {
                ids: vec!["a".into(), "est_über".into()],
                seqs: vec![b"ACGT".to_vec(), b"ttagc".to_vec()],
            },
            Request::Member {
                id: "gi|123".into(),
            },
            Request::Cluster { label: 0 },
            Request::Rep { label: u64::MAX },
            Request::Stats,
            Request::Shutdown,
        ] {
            roundtrip(&req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Ok,
            Response::Err {
                msg: "no such est".into(),
            },
            Response::Pong {
                version: PROTO_VERSION,
                num_ests: 7,
            },
            Response::Ingested {
                new_ests: 10,
                total_ests: 30,
                num_clusters: 4,
                merges: 6,
                aligned: 55,
            },
            Response::Membership {
                est_index: 3,
                cluster_label: 1,
                cluster_size: 9,
            },
            Response::ClusterMembers {
                label: 2,
                ids: vec!["x".into(), "y".into()],
            },
            Response::Representative {
                label: 2,
                id: "x".into(),
                seq: b"ACGTACGT".to_vec(),
            },
            Response::StatsReply(ServeStats {
                num_ests: 1,
                num_clusters: 2,
                ingest_batches: 3,
                trace_len: 4,
                pairs_generated: 5,
                pairs_processed: 6,
                pairs_skipped: 7,
                queries_served: 8,
                uptime_us: 9,
            }),
        ] {
            roundtrip(&resp);
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(Request::from_bytes(&[0xEE]).is_err());
        assert!(Response::from_bytes(&[0xEE]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Request::Ping.to_bytes();
        bytes.push(0);
        assert!(Request::from_bytes(&bytes).is_err());
    }

    #[test]
    fn invalid_utf8_id_rejected() {
        // REQ_MEMBER tag, then a 2-byte string with an invalid sequence.
        let bytes = [REQ_MEMBER, 2, 0, 0, 0, 0xFF, 0xFE];
        assert!(Request::from_bytes(&bytes).is_err());
    }
}
