//! Blocking client for the daemon.
//!
//! One [`Client`] wraps one connection; requests are answered strictly
//! in order, so a client is `send → receive` with no pipelining. Cheap
//! to create — open many for concurrency (the load generator opens
//! thousands).

use crate::proto::{Request, Response, ServeStats, PROTO_VERSION};
use pace_wire::{read_frame, write_frame, Wire};
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A connected client.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connect to a daemon's socket.
    pub fn connect(socket_path: impl AsRef<Path>) -> io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(socket_path)?,
        })
    }

    /// Connect, retrying until the daemon's socket accepts or the
    /// timeout elapses — for races where the daemon is still starting.
    pub fn connect_with_retry(
        socket_path: impl AsRef<Path>,
        timeout: std::time::Duration,
    ) -> io::Result<Client> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match UnixStream::connect(socket_path.as_ref()) {
                Ok(stream) => return Ok(Client { stream }),
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }
        }
    }

    /// One request/response exchange.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.to_bytes())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed"))?;
        Response::from_bytes(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Liveness + protocol-version check. Returns the daemon's EST count.
    pub fn ping(&mut self) -> io::Result<u64> {
        match self.call(&Request::Ping)? {
            Response::Pong { version, num_ests } if version == PROTO_VERSION => Ok(num_ests),
            Response::Pong { version, .. } => Err(protocol_err(format!(
                "daemon speaks protocol v{version}, this client v{PROTO_VERSION}"
            ))),
            other => Err(unexpected(&other)),
        }
    }

    /// Fold a batch of (id, sequence) records into the daemon's index.
    /// Returns `(total_ests, num_clusters)` after the fold.
    pub fn ingest(&mut self, ids: Vec<String>, seqs: Vec<Vec<u8>>) -> io::Result<(u64, u64)> {
        match self.call(&Request::Ingest { ids, seqs })? {
            Response::Ingested {
                total_ests,
                num_clusters,
                ..
            } => Ok((total_ests, num_clusters)),
            Response::Err { msg } => Err(protocol_err(msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// The cluster an EST belongs to: `(est_index, label, cluster_size)`.
    pub fn member(&mut self, id: &str) -> io::Result<(u64, u64, u64)> {
        match self.call(&Request::Member { id: id.to_string() })? {
            Response::Membership {
                est_index,
                cluster_label,
                cluster_size,
            } => Ok((est_index, cluster_label, cluster_size)),
            Response::Err { msg } => Err(protocol_err(msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// Member ids of a cluster.
    pub fn cluster(&mut self, label: u64) -> io::Result<Vec<String>> {
        match self.call(&Request::Cluster { label })? {
            Response::ClusterMembers { ids, .. } => Ok(ids),
            Response::Err { msg } => Err(protocol_err(msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// Representative `(id, sequence)` of a cluster.
    pub fn rep(&mut self, label: u64) -> io::Result<(String, Vec<u8>)> {
        match self.call(&Request::Rep { label })? {
            Response::Representative { id, seq, .. } => Ok((id, seq)),
            Response::Err { msg } => Err(protocol_err(msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// Service-wide counters.
    pub fn stats(&mut self) -> io::Result<ServeStats> {
        match self.call(&Request::Stats)? {
            Response::StatsReply(s) => Ok(s),
            Response::Err { msg } => Err(protocol_err(msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the daemon to checkpoint and stop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            Response::Err { msg } => Err(protocol_err(msg)),
            other => Err(unexpected(&other)),
        }
    }
}

fn protocol_err(msg: String) -> io::Error {
    io::Error::other(msg)
}

fn unexpected(resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response {resp:?}"),
    )
}
