//! Daemon checkpoint/restart.
//!
//! The daemon persists its entire fold state — sequences, ids,
//! union–find, rolling merge trace, counters — into one snapshot file
//! (`serve.snap`, the versioned per-section-CRC container from
//! `pace-store`) plus a small JSON manifest (`serve.manifest.json`).
//! The write order is snapshot first, manifest last (both atomic
//! tmp+fsync+rename), so the manifest never names state that is not
//! durably on disk: a `kill -9` between the two leaves the *previous*
//! manifest pointing at the previous snapshot, which is still present
//! because snapshots are written to a fresh generation file before the
//! old one is removed.
//!
//! On restart the daemon verifies the manifest's config fingerprint
//! against its own flags (refusing to resume under a different
//! clustering configuration), decodes the snapshot, and cross-checks it
//! by **replaying the merge trace** onto fresh singletons — the replayed
//! partition must exactly match the decoded union–find's. Only then does
//! serving resume.

use pace_cluster::ClusterConfig;
use pace_core::IncrementalClusterer;
use pace_obs::json::{self, Json};
use pace_store::{atomic_write, codec, fingerprint, Snapshot, SnapshotError, SnapshotWriter};
use std::collections::HashMap;
use std::path::Path;

/// Manifest file name inside the checkpoint directory.
pub const SERVE_MANIFEST_FILE: &str = "serve.manifest.json";
/// Snapshot file name pattern: `serve.<generation>.snap`.
pub const SERVE_SNAP_FILE: &str = "serve.snap";

const SEC_STORE_ESTS: &str = "ests";
const SEC_IDS: &str = "est_ids";
const SEC_DSU: &str = "dsu";
const SEC_TRACE: &str = "merge_trace";
const SEC_STATS: &str = "cluster_stats";

const MANIFEST_VERSION: u64 = 1;

/// What `serve.manifest.json` records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeManifest {
    /// Manifest format version.
    pub version: u64,
    /// CRC fingerprint of the clustering config's canonical kv string.
    pub config_fingerprint: String,
    /// Snapshot generation this manifest points at (`serve.<gen>.snap`).
    pub generation: u64,
    /// ESTs in the snapshot.
    pub num_ests: u64,
    /// Cumulative ingest batches folded.
    pub ingest_batches: u64,
    /// Merge-trace length in the snapshot (restore cross-check).
    pub trace_len: u64,
}

impl ServeManifest {
    fn to_json(&self) -> Json {
        Json::obj([
            ("version", Json::Num(self.version as f64)),
            (
                "config_fingerprint",
                Json::Str(self.config_fingerprint.clone()),
            ),
            ("generation", Json::Num(self.generation as f64)),
            ("num_ests", Json::Num(self.num_ests as f64)),
            ("ingest_batches", Json::Num(self.ingest_batches as f64)),
            ("trace_len", Json::Num(self.trace_len as f64)),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, SnapshotError> {
        let field = |name: &str| -> Result<u64, SnapshotError> {
            j.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| SnapshotError::Corrupt(format!("manifest field {name} missing")))
        };
        Ok(ServeManifest {
            version: field("version")?,
            config_fingerprint: j
                .get("config_fingerprint")
                .and_then(Json::as_str)
                .ok_or_else(|| {
                    SnapshotError::Corrupt("manifest field config_fingerprint missing".into())
                })?
                .to_string(),
            generation: field("generation")?,
            num_ests: field("num_ests")?,
            ingest_batches: field("ingest_batches")?,
            trace_len: field("trace_len")?,
        })
    }
}

fn snap_path(dir: &Path, generation: u64) -> std::path::PathBuf {
    dir.join(format!("serve.{generation}.snap"))
}

fn config_fp(cfg: &ClusterConfig) -> String {
    fingerprint(&cfg.to_kv_string())
}

/// Encode the EST sequences as one section: `u64 count`, then per EST a
/// `u64 len` + raw bytes.
fn encode_ests(ests: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(ests.len() as u64).to_le_bytes());
    for est in ests {
        out.extend_from_slice(&(est.len() as u64).to_le_bytes());
        out.extend_from_slice(est);
    }
    out
}

fn decode_ests(bytes: &[u8]) -> Result<Vec<Vec<u8>>, SnapshotError> {
    let corrupt = |msg: &str| SnapshotError::Corrupt(format!("ests section: {msg}"));
    let mut pos = 0usize;
    let take_u64 = |pos: &mut usize| -> Result<u64, SnapshotError> {
        let end = pos.checked_add(8).ok_or_else(|| corrupt("overflow"))?;
        if end > bytes.len() {
            return Err(corrupt("truncated length"));
        }
        let v = u64::from_le_bytes(bytes[*pos..end].try_into().unwrap());
        *pos = end;
        Ok(v)
    };
    let count = take_u64(&mut pos)? as usize;
    let mut ests = Vec::with_capacity(count.min(bytes.len() / 8 + 1));
    for _ in 0..count {
        let len = take_u64(&mut pos)? as usize;
        let end = pos.checked_add(len).ok_or_else(|| corrupt("overflow"))?;
        if end > bytes.len() {
            return Err(corrupt("truncated sequence"));
        }
        ests.push(bytes[pos..end].to_vec());
        pos = end;
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(ests)
}

/// Persist the daemon's fold state. Returns the generation written.
///
/// Write order is snapshot → manifest → delete previous generation, so
/// a crash at any instant leaves a manifest that names a complete,
/// CRC-verifiable snapshot.
pub fn save_state(
    dir: &Path,
    clusterer: &IncrementalClusterer,
    ingest_batches: u64,
) -> Result<u64, SnapshotError> {
    std::fs::create_dir_all(dir).map_err(SnapshotError::from)?;
    let previous = read_manifest(dir).ok();
    let generation = previous.as_ref().map_or(0, |m| m.generation + 1);

    let mut w = SnapshotWriter::create(snap_path(dir, generation))?;
    w.add_section(SEC_STORE_ESTS, &encode_ests(clusterer.ests()))?;
    w.add_section(SEC_IDS, &codec::encode_string_list(clusterer.ids()))?;
    w.add_section(SEC_DSU, &codec::encode_dsu(clusterer.clusters_dsu()))?;
    w.add_section(SEC_TRACE, &codec::encode_merge_trace(clusterer.trace()))?;
    w.add_section(SEC_STATS, &codec::encode_cluster_stats(&clusterer.stats))?;
    w.finish()?;

    let manifest = ServeManifest {
        version: MANIFEST_VERSION,
        config_fingerprint: config_fp(clusterer.config()),
        generation,
        num_ests: clusterer.len() as u64,
        ingest_batches,
        trace_len: clusterer.trace().len() as u64,
    };
    atomic_write(
        &dir.join(SERVE_MANIFEST_FILE),
        manifest.to_json().to_line().as_bytes(),
    )?;

    // The manifest now points at the new generation; the old snapshot is
    // garbage and may be removed (best-effort).
    if let Some(prev) = previous {
        let _ = std::fs::remove_file(snap_path(dir, prev.generation));
    }
    Ok(generation)
}

fn read_manifest(dir: &Path) -> Result<ServeManifest, SnapshotError> {
    let raw = std::fs::read_to_string(dir.join(SERVE_MANIFEST_FILE))?;
    let j =
        json::parse(&raw).map_err(|e| SnapshotError::Corrupt(format!("serve manifest: {e}")))?;
    ServeManifest::from_json(&j)
}

/// Restore the daemon's fold state from `dir`, or `Ok(None)` if no
/// checkpoint exists there yet.
///
/// Fails (rather than silently re-clustering) if the checkpoint was
/// written under a different clustering configuration, if any section
/// CRC is bad, or if replaying the merge trace does not reproduce the
/// decoded union–find's partition.
pub fn load_state(
    dir: &Path,
    cfg: &ClusterConfig,
    memory_budget: u64,
) -> Result<Option<(IncrementalClusterer, u64)>, SnapshotError> {
    if !dir.join(SERVE_MANIFEST_FILE).exists() {
        return Ok(None);
    }
    let manifest = read_manifest(dir)?;
    if manifest.version != MANIFEST_VERSION {
        return Err(SnapshotError::Corrupt(format!(
            "serve manifest version {} (this binary writes {MANIFEST_VERSION})",
            manifest.version
        )));
    }
    let expect_fp = config_fp(cfg);
    if manifest.config_fingerprint != expect_fp {
        return Err(SnapshotError::Corrupt(format!(
            "checkpoint was written under config fingerprint {} but the daemon \
             was started with {expect_fp}; refusing to mix partitions",
            manifest.config_fingerprint
        )));
    }

    let snap = Snapshot::read_file(snap_path(dir, manifest.generation))?;
    let ests = decode_ests(snap.section(SEC_STORE_ESTS)?)?;
    let ids = codec::decode_string_list(snap.section(SEC_IDS)?)?;
    let dsu = codec::decode_dsu(snap.section(SEC_DSU)?)?;
    let trace = codec::decode_merge_trace(snap.section(SEC_TRACE)?)?;
    let stats = codec::decode_cluster_stats(snap.section(SEC_STATS)?)?;

    if trace.len() as u64 != manifest.trace_len {
        return Err(SnapshotError::Corrupt(format!(
            "manifest says {} merge records, snapshot holds {}",
            manifest.trace_len,
            trace.len()
        )));
    }
    // Replay cross-check: the trace must reproduce the partition.
    let replayed = trace.replay(ests.len());
    let mut dsu_check = dsu.clone();
    if canonical(&replayed) != canonical(&dsu_check.labels()) {
        return Err(SnapshotError::Corrupt(
            "merge-trace replay does not reproduce the checkpointed partition".into(),
        ));
    }

    let clusterer =
        IncrementalClusterer::from_parts(cfg.clone(), memory_budget, ests, ids, dsu, trace, stats)
            .map_err(SnapshotError::Corrupt)?;
    Ok(Some((clusterer, manifest.ingest_batches)))
}

/// First-occurrence canonical form of a labelling, for partition equality.
fn canonical(labels: &[usize]) -> Vec<usize> {
    let mut map = HashMap::new();
    let mut next = 0usize;
    labels
        .iter()
        .map(|&l| {
            *map.entry(l).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClusterConfig {
        let mut c = ClusterConfig::small();
        c.psi = 16;
        c.overlap.min_overlap_len = 40;
        c
    }

    fn folded(n_batches: usize) -> IncrementalClusterer {
        let ds = pace_simulate::generate(
            &pace_simulate::SimConfig {
                num_genes: 5,
                num_ests: 60,
                est_len_mean: 220.0,
                est_len_sd: 25.0,
                est_len_min: 120,
                exon_len: (220, 400),
                exons_per_gene: (1, 2),
                seed: 71,
                ..pace_simulate::SimConfig::default()
            }
            .error_free(),
        );
        let mut inc = IncrementalClusterer::new(cfg());
        let per = ds.ests.len() / n_batches;
        for b in 0..n_batches {
            let lo = b * per;
            let hi = if b + 1 == n_batches {
                ds.ests.len()
            } else {
                lo + per
            };
            let ids: Vec<String> = (lo..hi).map(|i| format!("est_{i}")).collect();
            inc.fold_batch(&ids, &ds.ests[lo..hi]).unwrap();
        }
        inc
    }

    #[test]
    fn save_load_roundtrip_preserves_everything() {
        let dir = std::env::temp_dir().join(format!("pace-serve-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut inc = folded(3);
        save_state(&dir, &inc, 3).unwrap();
        let (mut back, batches) = load_state(&dir, &cfg(), 0).unwrap().unwrap();
        assert_eq!(batches, 3);
        assert_eq!(back.len(), inc.len());
        assert_eq!(back.ids(), inc.ids());
        assert_eq!(back.labels(), inc.labels());
        assert_eq!(back.trace(), inc.trace());
        assert_eq!(back.stats, inc.stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let dir = std::env::temp_dir().join(format!("pace-serve-none-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load_state(&dir, &cfg(), 0).unwrap().is_none());
    }

    #[test]
    fn config_mismatch_refused() {
        let dir = std::env::temp_dir().join(format!("pace-serve-fp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let inc = folded(2);
        save_state(&dir, &inc, 2).unwrap();
        let mut other = cfg();
        other.psi = 99;
        assert!(load_state(&dir, &other, 0).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generations_advance_and_old_snapshots_are_pruned() {
        let dir = std::env::temp_dir().join(format!("pace-serve-gen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let inc = folded(2);
        assert_eq!(save_state(&dir, &inc, 2).unwrap(), 0);
        assert_eq!(save_state(&dir, &inc, 2).unwrap(), 1);
        assert!(!snap_path(&dir, 0).exists());
        assert!(snap_path(&dir, 1).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_detected() {
        let dir = std::env::temp_dir().join(format!("pace-serve-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let inc = folded(2);
        let generation = save_state(&dir, &inc, 2).unwrap();
        let path = snap_path(&dir, generation);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        assert!(load_state(&dir, &cfg(), 0).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
