//! Snapshot-consistent read views.
//!
//! The daemon serializes ingest (one fold at a time mutates the
//! [`pace_core::IncrementalClusterer`]) but serves queries from an
//! immutable [`ReadView`] built after each fold and swapped in behind an
//! `Arc`. A query thread clones the `Arc` once and answers entirely from
//! that snapshot: it sees the partition as of some completed fold —
//! never a half-applied batch — and concurrent ingest never blocks
//! reads. This is snapshot isolation with a single writer; "read your
//! own ingest" holds because the `Ingested` response is sent only after
//! the new view is published.

use std::collections::HashMap;

/// An immutable snapshot of the clustering, optimized for queries.
#[derive(Debug, Default)]
pub struct ReadView {
    /// Canonical cluster label per EST: the smallest EST index in its
    /// cluster. Stable across restarts and identical to what a one-shot
    /// batch run over the same data produces.
    pub labels: Vec<u64>,
    /// EST ids, index-aligned with `labels`.
    pub ids: Vec<String>,
    /// EST sequences, index-aligned (for `Rep`).
    pub seqs: Vec<Vec<u8>>,
    /// id → EST index (first occurrence wins on duplicate ids).
    pub by_id: HashMap<String, usize>,
    /// Canonical label → member EST indices, ascending.
    pub members: HashMap<u64, Vec<usize>>,
    /// Ingest batches folded so far (cumulative, checkpoint-restored).
    pub ingest_batches: u64,
    /// Accepted merges in the rolling trace.
    pub trace_len: u64,
    /// Pair-flow counters as of this snapshot.
    pub pairs_generated: u64,
    pub pairs_processed: u64,
    pub pairs_skipped: u64,
}

impl ReadView {
    /// Build a view from raw partition labels (any root-based labelling)
    /// plus the id/sequence columns. Labels are canonicalized here.
    pub fn build(
        raw_labels: &[usize],
        ids: Vec<String>,
        seqs: Vec<Vec<u8>>,
        ingest_batches: u64,
        trace_len: u64,
    ) -> Self {
        // Canonical label = min EST index per raw component.
        let mut min_of_root: HashMap<usize, usize> = HashMap::new();
        for (i, &root) in raw_labels.iter().enumerate() {
            min_of_root.entry(root).or_insert(i);
        }
        let labels: Vec<u64> = raw_labels
            .iter()
            .map(|root| min_of_root[root] as u64)
            .collect();
        let mut members: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, &label) in labels.iter().enumerate() {
            members.entry(label).or_default().push(i);
        }
        let mut by_id = HashMap::with_capacity(ids.len());
        for (i, id) in ids.iter().enumerate() {
            by_id.entry(id.clone()).or_insert(i);
        }
        ReadView {
            labels,
            ids,
            seqs,
            by_id,
            members,
            ingest_batches,
            trace_len,
            pairs_generated: 0,
            pairs_processed: 0,
            pairs_skipped: 0,
        }
    }

    /// Number of ESTs in this snapshot.
    pub fn num_ests(&self) -> usize {
        self.labels.len()
    }

    /// Number of clusters in this snapshot.
    pub fn num_clusters(&self) -> usize {
        self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_canonical_min_index() {
        // Components {0,2}, {1}, {3,4} under arbitrary root labels.
        let raw = [7, 9, 7, 4, 4];
        let ids: Vec<String> = (0..5).map(|i| format!("e{i}")).collect();
        let seqs = vec![b"ACGT".to_vec(); 5];
        let v = ReadView::build(&raw, ids, seqs, 1, 0);
        assert_eq!(v.labels, vec![0, 1, 0, 3, 3]);
        assert_eq!(v.num_clusters(), 3);
        assert_eq!(v.members[&0], vec![0, 2]);
        assert_eq!(v.members[&3], vec![3, 4]);
        assert_eq!(v.by_id["e4"], 4);
    }

    #[test]
    fn duplicate_ids_resolve_to_first() {
        let raw = [0, 1];
        let ids = vec!["dup".to_string(), "dup".to_string()];
        let seqs = vec![b"AC".to_vec(), b"GT".to_vec()];
        let v = ReadView::build(&raw, ids, seqs, 1, 0);
        assert_eq!(v.by_id["dup"], 0);
    }
}
