//! The slave loop of the sharded driver: one slave, `K` masters.
//!
//! Under sharding a slave talks to `K` sub-masters at once, one
//! independent protocol session per shard. Everything the single-master
//! loop guarantees holds *per session*: sequence numbers, duplicate
//! `Work` answered from a cached report, the exhausted promise (once a
//! session is told `exhausted`, that session never sees another pair).
//!
//! Owner-aware reporting is the one new idea: every generated pair and
//! every alignment outcome is routed to the shard owning the pair's
//! smaller EST id ([`ShardSpec::owner_of_pair`]), so each sub-master
//! sees exactly the pairs whose union it can decide (or log as a cross
//! edge). `PAIRBUF` becomes one queue per shard; alignment results park
//! in a per-shard pending list until that shard's next `Work` flushes
//! them.
//!
//! Termination: a `Shutdown` from a sub-master closes that session; the
//! slave exits when all `K` sessions are closed. A `Shutdown` from rank
//! 0 (the reconciler) is the global abort — the release valve when a
//! sub-master died and can never close its own session.

use crate::align_task::{AlignContext, PairOutcome};
use crate::config::{ClusterConfig, ShardTopology};
use crate::messages::Msg;
use crate::slave::{align_batch, SlaveReportSummary, SlaveTimers, IDLE_GEN_CHUNK};
use pace_dsu::ShardSpec;
use pace_gst::LocalForest;
use pace_mpisim::Rank;
use pace_obs::trace::{flow_id, T_REPORT_SEND};
use pace_obs::{metric, Obs, Timer, TraceKind};
use pace_pairgen::{CandidatePair, PairGenConfig, PairGenerator};
use pace_seq::{PackedText, SequenceStore};
use std::collections::VecDeque;

/// Per-sub-master session state (mirrors the single-master slave's
/// `last_seq`/`last_report` pair, one copy per shard).
struct Session {
    last_seq: u64,
    last_report: Msg,
    done: bool,
}

/// Run the sharded slave protocol to completion. `topo` fixes the rank
/// layout (who the sub-masters are) and `spec` the pair-ownership rule;
/// both must match what the sub-masters were built with.
#[allow(clippy::too_many_arguments)]
pub fn run_slave_sharded_obs(
    rank: &Rank<Msg>,
    topo: ShardTopology,
    spec: ShardSpec,
    store: &SequenceStore,
    packed: Option<&PackedText>,
    forest: &LocalForest,
    cfg: &ClusterConfig,
    obs: &Obs,
) -> SlaveReportSummary {
    let k = topo.shards;
    let num_slaves = topo.num_slaves();
    let slave_idx = rank.rank() - topo.shards - 1;
    let mut timers = SlaveTimers::default();

    let mut sort_timer = Timer::new();
    sort_timer.start();
    let mut generator = PairGenerator::new(
        store,
        forest,
        PairGenConfig {
            psi: cfg.psi,
            order: cfg.order,
        },
    );
    timers.node_sorting = sort_timer.stop();

    let mut ctx = AlignContext::new(store, packed);

    let finish = |generator: &PairGenerator,
                  timers: SlaveTimers,
                  pairbufs: &[VecDeque<CandidatePair>],
                  ctx: &AlignContext,
                  gen_by_owner: &[u64]|
     -> SlaveReportSummary {
        for (&len, &n) in generator.emitted_by_mcs_len() {
            obs.registry()
                .observe_n(metric::PAIRS_MCS_LEN, len as u64, n);
        }
        obs.registry()
            .record_phase(metric::PHASE_NODE_SORTING, rank.rank(), timers.node_sorting);
        obs.registry()
            .record_phase(metric::PHASE_ALIGNMENT, rank.rank(), timers.alignment);
        SlaveReportSummary {
            gen: generator.stats(),
            timers,
            unconsumed: pairbufs.iter().map(|b| b.len() as u64).sum(),
            prefiltered: ctx.pairs_prefiltered(),
            ws_reuses: ctx.pairs_handled(),
            gen_by_owner: gen_by_owner.to_vec(),
            unconsumed_by_owner: pairbufs.iter().map(|b| b.len() as u64).collect(),
        }
    };

    // One PAIRBUF per shard; generated pairs route to their owner.
    let mut pairbufs: Vec<VecDeque<CandidatePair>> = (0..k).map(|_| VecDeque::new()).collect();
    // Every pair the generator emits, tallied by owner at the moment of
    // generation — one side of the per-shard flow conservation law the
    // identity harness checks (`generated == processed + skipped +
    // unconsumed`, per shard).
    let mut gen_by_owner: Vec<u64> = vec![0; k];
    // Alignment outcomes owed to each shard, flushed by its next Work.
    let mut pending: Vec<Vec<PairOutcome>> = (0..k).map(|_| Vec::new()).collect();

    // Startup: the same three portions as the single-master loop, split
    // by owner. Portion 1 is aligned and its results routed; portion 3
    // ships as pairs in the per-shard startup reports; portion 2 is
    // aligned right after the reports go out — its results are flushed
    // by each sub-master's first Work (they start owing us a flush).
    let portion1 = generator.next_batch(cfg.batchsize);
    let portion2 = generator.next_batch(cfg.batchsize);
    let portion3 = generator.next_batch(cfg.batchsize);
    let exhausted_now = generator.is_exhausted();
    for p in portion1.iter().chain(&portion2) {
        let (i, j) = p.est_indices();
        gen_by_owner[spec.owner_of_pair(i, j)] += 1;
    }

    let route_results = |results: Vec<PairOutcome>, pending: &mut Vec<Vec<PairOutcome>>| {
        for r in results {
            let (i, j) = r.pair.est_indices();
            pending[spec.owner_of_pair(i, j)].push(r);
        }
    };
    let first_results = align_batch(&mut ctx, &portion1, cfg, &mut timers, obs, rank.rank());
    route_results(first_results, &mut pending);
    let mut portion3_by_owner: Vec<Vec<CandidatePair>> = (0..k).map(|_| Vec::new()).collect();
    for p in portion3 {
        let (i, j) = p.est_indices();
        let owner = spec.owner_of_pair(i, j);
        gen_by_owner[owner] += 1;
        portion3_by_owner[owner].push(p);
    }

    let mut sessions: Vec<Session> = Vec::with_capacity(k);
    for (m, pairs) in portion3_by_owner.into_iter().enumerate() {
        let report = Msg::Report {
            seq: 0,
            results: std::mem::take(&mut pending[m]),
            pairs,
            exhausted: exhausted_now && pairbufs[m].is_empty(),
        };
        send_report(rank, topo, m, slave_idx, num_slaves, obs, &report);
        sessions.push(Session {
            last_seq: 0,
            last_report: report,
            done: false,
        });
    }
    let results2 = align_batch(&mut ctx, &portion2, cfg, &mut timers, obs, rank.rank());
    route_results(results2, &mut pending);

    let mut done_count = 0usize;
    while done_count < k {
        // Wait for any sub-master, generating pairs in the meantime.
        // Duplicate Work (a session's sequence we already answered) is
        // served from that session's cached report.
        let (from, msg) = 'wait: loop {
            let incoming = match rank.try_recv() {
                Ok(Some(fm)) => Some(fm),
                Err(_) => return finish(&generator, timers, &pairbufs, &ctx, &gen_by_owner),
                Ok(None) => {
                    let buffered: usize = pairbufs.iter().map(|b| b.len()).sum();
                    if !generator.is_exhausted() && buffered < cfg.pairbuf_cap {
                        let room = cfg.pairbuf_cap - buffered;
                        for p in generator.next_batch(IDLE_GEN_CHUNK.min(room)) {
                            let (i, j) = p.est_indices();
                            let owner = spec.owner_of_pair(i, j);
                            gen_by_owner[owner] += 1;
                            pairbufs[owner].push_back(p);
                        }
                        None
                    } else {
                        match rank.recv() {
                            Ok(fm) => Some(fm),
                            Err(_) => {
                                return finish(&generator, timers, &pairbufs, &ctx, &gen_by_owner)
                            }
                        }
                    }
                }
            };
            match incoming {
                Some((from, Msg::Work { seq, .. }))
                    if from >= 1 && from <= k && seq <= sessions[from - 1].last_seq =>
                {
                    let m = from - 1;
                    // Clone out of the session to satisfy the borrow on
                    // `sessions`; duplicate answers are rare.
                    let cached = sessions[m].last_report.clone();
                    send_report(rank, topo, m, slave_idx, num_slaves, obs, &cached);
                }
                Some(fm) => break 'wait fm,
                None => {}
            }
        };

        match msg {
            // Reconciler abort: a sub-master died; every session that
            // cannot be closed by its owner is closed here.
            Msg::Shutdown if from == 0 => {
                return finish(&generator, timers, &pairbufs, &ctx, &gen_by_owner);
            }
            Msg::Shutdown => {
                debug_assert!(
                    from >= 1 && from <= k,
                    "shutdown from non-master rank {from}"
                );
                let m = from - 1;
                if !sessions[m].done {
                    sessions[m].done = true;
                    done_count += 1;
                }
            }
            Msg::Work {
                seq,
                pairs,
                request,
            } => {
                debug_assert!(from >= 1 && from <= k, "work from non-master rank {from}");
                let m = from - 1;
                debug_assert_eq!(
                    seq,
                    sessions[m].last_seq + 1,
                    "sub-master {m} skipped a sequence number"
                );
                // Top this shard's PAIRBUF up to the requested E. The
                // generator feeds every shard, so satisfying one shard's
                // demand can buffer pairs for the others — they are not
                // lost, just waiting for their owner's next request.
                while pairbufs[m].len() < request && !generator.is_exhausted() {
                    let want = (request - pairbufs[m].len()).max(IDLE_GEN_CHUNK);
                    for p in generator.next_batch(want) {
                        let (i, j) = p.est_indices();
                        let owner = spec.owner_of_pair(i, j);
                        gen_by_owner[owner] += 1;
                        pairbufs[owner].push_back(p);
                    }
                }
                let take = request.min(pairbufs[m].len());
                let outgoing: Vec<CandidatePair> = pairbufs[m].drain(..take).collect();
                let report = Msg::Report {
                    seq,
                    results: std::mem::take(&mut pending[m]),
                    pairs: outgoing,
                    exhausted: generator.is_exhausted() && pairbufs[m].is_empty(),
                };
                send_report(rank, topo, m, slave_idx, num_slaves, obs, &report);
                sessions[m].last_report = report;
                sessions[m].last_seq = seq;
                // Align the received batch now; every outcome belongs to
                // the dispatching shard (it only dispatches pairs it
                // owns), so the routing is a no-op in disguise — kept
                // explicit so the invariant is checked, not assumed.
                let results = align_batch(&mut ctx, &pairs, cfg, &mut timers, obs, rank.rank());
                route_results(results, &mut pending);
            }
            Msg::Report { .. }
            | Msg::Summary(_)
            | Msg::CrossMerge { .. }
            | Msg::ShardDone { .. } => {
                unreachable!("sharded slaves never receive {}", msg.kind())
            }
        }
    }
    finish(&generator, timers, &pairbufs, &ctx, &gen_by_owner)
}

/// Send one report to sub-master `m`, with the same trace footprint as
/// the single-master slave — except the flow id lives in the sharded
/// namespace `flow_id(m * num_slaves + slave_idx, seq)` so the K
/// concurrent per-session sequence spaces never collide in the trace.
fn send_report(
    rank: &Rank<Msg>,
    topo: ShardTopology,
    m: usize,
    slave_idx: usize,
    num_slaves: usize,
    obs: &Obs,
    report: &Msg,
) {
    let t0_us = obs.trace_enabled().then(|| obs.now_us());
    rank.send(topo.submaster_rank(m), report.clone());
    if let (Some(t0), Msg::Report { seq, pairs, .. }) = (t0_us, report) {
        obs.trace_with(|tracer| {
            let end = obs.now_us();
            let r = rank.rank();
            let id = flow_id(m * num_slaves + slave_idx, *seq);
            tracer.span(
                r,
                T_REPORT_SEND,
                t0,
                end.saturating_sub(t0),
                id,
                pairs.len() as u64,
            );
            let kind = if *seq == 0 {
                TraceKind::FlowStart
            } else {
                TraceKind::FlowStep
            };
            tracer.flow(kind, r, t0, id);
        });
    }
}
