//! Sharded parallel driver: `K` clustering sub-masters under one
//! reconciler.
//!
//! The single-master driver funnels every accepted pair and every union
//! through rank 0, so merge serialization and `comm.messages` cap
//! throughput no matter how many slaves are added. This driver splits
//! the master by EST id-range into `K` sub-masters (ranks `1..=K`),
//! each owning a [`ShardDsu`] view of `CLUSTERS` and running the
//! *unchanged* master protocol machine over the slaves for the pairs it
//! owns. A pair belongs to the shard owning its smaller EST id, so
//! every pair has exactly one coordinator and the per-shard `WORKBUF`s
//! partition the single master's queue.
//!
//! Unions whose endpoints straddle shard boundaries cannot be resolved
//! locally; they are logged as cross edges and flushed to the
//! reconciler (rank 0) as [`Msg::CrossMerge`] messages at epoch
//! barriers (every `shard_epoch` handled reports). The reconciler folds
//! them into a running global DSU for observability, but the *final*
//! partition is rebuilt by replaying each shard's authoritative merge
//! records ([`Msg::ShardDone`]) in shard order through a fresh DSU,
//! keeping only the records whose union still merged something. That
//! filtered replay is what makes the output deterministic (independent
//! of `CrossMerge` arrival timing) and is why a lost `CrossMerge` is
//! harmless: the records subsume every edge.
//!
//! Correctness rests on the same argument as the single master: a
//! pair's accept decision is a pure function of the pair, and a pair is
//! only ever *skipped* when some DSU view proves its ESTs already
//! connected by performed merges. `ShardDsu::same` answers `false` for
//! any cross-shard pair — a sound under-approximation — so no pair is
//! skipped wrongly, and the final partition equals the connected
//! components of the accepted-pair graph regardless of sharding. The
//! differential harness (`tests/sharded_identity.rs`) pins this down
//! against the single-master driver seed by seed.

use crate::config::{ClusterConfig, ShardRole, ShardTopology};
use crate::driver_par::worker_summary;
use crate::driver_seq::{cluster_sequential_obs, record_cluster_counters, record_gst_stats};
use crate::master::{FaultNote, Master};
use crate::messages::{Msg, ShardReport, WorkerSummary};
use crate::slave_sharded::run_slave_sharded_obs;
use crate::stats::{ClusterResult, ClusterStats, PhaseTimers};
use crate::trace::{MergeRecord, MergeTrace};
use pace_dsu::{DisjointSets, ShardDsu, ShardSpec};
use pace_gst::{assign_buckets, build_forest_for_rank, count_buckets_stride, num_buckets};
use pace_mpisim::{run_world_obs, FaultPlan, FaultSnapshot, Rank, WorldStats};
use pace_obs::trace::{flow_id, T_DISPATCH, T_HANDLE_REPORT};
use pace_obs::{metric, Event, Obs, Timer, TraceKind};
use pace_seq::{PackedText, SequenceStore};
use std::time::{Duration, Instant};

/// Emit a sub-master heartbeat every this many handled reports.
const HEARTBEAT_EVERY: u64 = 32;

/// Copies of unacknowledged control messages (`Shutdown`, `ShardDone`)
/// sent when a fault plan is active — bounded redundancy versus the
/// bounded per-channel drop rules, exactly as in the single-master
/// driver.
const CONTROL_REDUNDANCY: usize = 3;

/// What the reconciler rank hands to the fold.
struct ReconcilerOut {
    /// Final report per shard (`None` = the shard never delivered one:
    /// crashed, or written off at the progress deadline).
    shard_reports: Vec<Option<ShardReport>>,
    /// Cross edges received via incremental `CrossMerge` flushes.
    cross_received: u64,
    /// `CrossMerge` flushes received.
    cross_flushes: u64,
    /// Seconds rank 0 spent folding cross edges.
    reconcile_secs: f64,
    comm: WorldStats,
    injected: FaultSnapshot,
    partitioning: f64,
    /// Worker summaries that arrived during the protocol (socket
    /// backend; empty on the thread backend).
    early_summaries: Vec<(usize, WorkerSummary)>,
}

/// Per-rank output of the thread-backend world.
#[allow(clippy::large_enum_variant)]
enum ShardOut {
    Reconciler(Box<ReconcilerOut>),
    /// Everything a sub-master produces travels to rank 0 as messages.
    SubMaster,
    Slave {
        summary: WorkerSummary,
    },
}

/// Cluster with `K = cfg.shards` sub-masters over `p` ranks (1
/// reconciler + K sub-masters + `p − K − 1` slaves). `p ≤ 1` falls back
/// to the sequential driver (sharding needs a world).
pub fn cluster_sharded_obs(
    store: &SequenceStore,
    cfg: &ClusterConfig,
    p: usize,
    obs: &Obs,
) -> (ClusterResult, MergeTrace) {
    cluster_sharded_faults(store, cfg, p, &FaultPlan::none(), obs)
}

/// [`cluster_sharded_obs`] under a deterministic fault plan. Sub-master
/// ranks may be crash targets: the reconciler's progress deadline
/// writes a silent shard off, releases the slaves with a global abort,
/// and accounts the shard's pairs in `faults.lost_pairs` — loud
/// failure, never silent divergence.
pub fn cluster_sharded_faults(
    store: &SequenceStore,
    cfg: &ClusterConfig,
    p: usize,
    plan: &FaultPlan,
    obs: &Obs,
) -> (ClusterResult, MergeTrace) {
    cfg.validate().expect("invalid cluster config");
    if p <= 1 {
        return cluster_sequential_obs(store, cfg, obs);
    }
    let topo = ShardTopology::new(p, cfg.shards).expect("invalid sharded topology");
    let spec = ShardSpec::new(store.num_ests(), topo.shards);
    let total_span = obs.span(metric::PHASE_TOTAL);

    let packed = cfg.packed_alignment.then(|| PackedText::from_store(store));
    let packed_ref = packed.as_ref();

    let under_faults = !plan.is_empty();
    let outputs = run_world_obs(p, plan, obs, |rank| match topo.role_of(rank.rank()) {
        ShardRole::Reconciler => ShardOut::Reconciler(Box::new(reconciler_rank(
            &rank,
            store,
            cfg,
            topo,
            under_faults,
            obs,
        ))),
        ShardRole::SubMaster(s) => {
            submaster_rank(&rank, cfg, topo, spec, s, under_faults, obs);
            ShardOut::SubMaster
        }
        ShardRole::Slave(_) => slave_rank(&rank, store, packed_ref, cfg, topo, spec, obs),
    });

    let mut recon = None;
    let mut summaries = Vec::new();
    for out in outputs {
        match out {
            ShardOut::Reconciler(r) => recon = Some(*r),
            ShardOut::SubMaster => {}
            ShardOut::Slave { summary } => summaries.push(summary),
        }
    }
    let recon = recon.expect("rank 0 always yields the reconciler output");
    fold_sharded(
        store.num_ests(),
        topo,
        recon,
        summaries,
        obs,
        total_span.finish(),
    )
}

/// Run rank 0 (the reconciler) over a transport-backed rank — the
/// multi-process entry point, the sharded analogue of
/// [`cluster_master_transport`](crate::cluster_master_transport).
/// Worker summaries are collected within a bounded window after the
/// shards finish; missing ones are tolerated by the fold.
pub fn cluster_sharded_master_transport(
    store: &SequenceStore,
    cfg: &ClusterConfig,
    rank: &Rank<Msg>,
    under_faults: bool,
    obs: &Obs,
) -> (ClusterResult, MergeTrace) {
    cfg.validate().expect("invalid cluster config");
    assert_eq!(rank.rank(), 0, "the reconciler must run on rank 0");
    let topo = ShardTopology::new(rank.size(), cfg.shards).expect("invalid sharded topology");
    let total_span = obs.span(metric::PHASE_TOTAL);

    let mut recon = reconciler_rank(rank, store, cfg, topo, under_faults, obs);

    // Collect the slaves' final summaries (sub-masters report through
    // `ShardDone` instead). Bounded window: crashed workers never send.
    let num_slaves = topo.num_slaves();
    let mut summaries: Vec<Option<WorkerSummary>> = vec![None; num_slaves];
    let mut received = 0usize;
    for (from, s) in recon.early_summaries.drain(..) {
        if let Some(slot) = slave_slot(topo, from, &mut summaries) {
            if slot.is_none() {
                *slot = Some(s);
                received += 1;
            }
        }
    }
    let window = (cfg.slave_timeout * (f64::from(cfg.max_retries) + 1.0)).clamp(1.0, 10.0);
    let deadline = Instant::now() + Duration::from_secs_f64(window);
    while received < num_slaves {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let poll = (deadline - now).min(Duration::from_millis(50));
        match rank.recv_timeout(poll) {
            Ok(Some((from, Msg::Summary(s)))) => {
                if let Some(slot) = slave_slot(topo, from, &mut summaries) {
                    if slot.is_none() {
                        *slot = Some(s);
                        received += 1;
                    }
                }
            }
            // Duplicate ShardDones from redundancy, stray flushes: ignore.
            Ok(Some(_)) | Ok(None) => {}
            Err(_) => break,
        }
    }

    fold_sharded(
        store.num_ests(),
        topo,
        recon,
        summaries.into_iter().flatten().collect(),
        obs,
        total_span.finish(),
    )
}

fn slave_slot(
    topo: ShardTopology,
    from: usize,
    summaries: &mut [Option<WorkerSummary>],
) -> Option<&mut Option<WorkerSummary>> {
    match topo.role_of(from) {
        ShardRole::Slave(idx) => summaries.get_mut(idx),
        _ => None,
    }
}

/// Run one worker rank (sub-master or slave, by position) over a
/// transport-backed rank. Returns whether this rank crashed, which the
/// worker process turns into its
/// [`pace_mpisim::INJECTED_CRASH_EXIT`] status.
pub fn cluster_sharded_worker_transport(
    store: &SequenceStore,
    cfg: &ClusterConfig,
    rank: &Rank<Msg>,
    under_faults: bool,
    obs: &Obs,
) -> bool {
    cfg.validate().expect("invalid cluster config");
    let topo = ShardTopology::new(rank.size(), cfg.shards).expect("invalid sharded topology");
    let spec = ShardSpec::new(store.num_ests(), topo.shards);
    match topo.role_of(rank.rank()) {
        ShardRole::Reconciler => unreachable!("rank 0 is the launcher's in-process reconciler"),
        ShardRole::SubMaster(s) => {
            submaster_rank(rank, cfg, topo, spec, s, under_faults, obs);
        }
        ShardRole::Slave(_) => {
            let packed = cfg.packed_alignment.then(|| PackedText::from_store(store));
            let out = slave_rank(rank, store, packed.as_ref(), cfg, topo, spec, obs);
            let ShardOut::Slave { mut summary } = out else {
                unreachable!()
            };
            let injected = rank.fault_stats();
            summary.injected_drops = injected.dropped;
            summary.injected_delays = injected.delayed;
            summary.injected_stalls = injected.stalls;
            if !rank.crashed() {
                let copies = if under_faults { CONTROL_REDUNDANCY } else { 1 };
                for _ in 0..copies {
                    rank.send(0, Msg::Summary(summary.clone()));
                }
            }
        }
    }
    obs.flush();
    rank.crashed()
}

/// Rank 0: participate in the collectives, then collect `CrossMerge`
/// flushes (folding them into a running global DSU) and the shards'
/// final `ShardDone` reports. Under faults a progress deadline — reset
/// by every received message — writes silent shards off and releases
/// the slaves with a global abort `Shutdown`, so a crashed sub-master
/// can never hang the world.
fn reconciler_rank(
    rank: &Rank<Msg>,
    store: &SequenceStore,
    cfg: &ClusterConfig,
    topo: ShardTopology,
    under_faults: bool,
    obs: &Obs,
) -> ReconcilerOut {
    let span = obs.span_on(metric::PHASE_PARTITIONING, 0);
    let zeros = vec![0u64; num_buckets(cfg.window_w)];
    let _ = rank.allreduce_sum(&zeros);
    let partitioning = span.finish();
    rank.barrier();

    let k = topo.shards;
    let mut incremental = DisjointSets::new(store.num_ests());
    let mut shard_reports: Vec<Option<ShardReport>> = vec![None; k];
    let mut failed = vec![false; k];
    let mut early_summaries = Vec::new();
    let mut cross_received = 0u64;
    let mut cross_flushes = 0u64;
    let mut reconcile = Timer::new();
    let poll = Duration::from_secs_f64((cfg.slave_timeout / 4.0).clamp(0.001, 0.05));
    // Progress window: generous enough that a live sub-master always
    // gets a flush or a ShardDone out before it expires (sub-masters
    // send epoch flushes as heartbeats), tight enough that a crashed
    // one is written off in bounded time.
    let window = Duration::from_secs_f64(
        (cfg.slave_timeout * (f64::from(cfg.max_retries) + 2.0) * 2.0).clamp(1.0, 60.0),
    );
    let mut quiet_since = Instant::now();

    let outstanding = |reports: &[Option<ShardReport>], failed: &[bool]| -> usize {
        reports
            .iter()
            .zip(failed)
            .filter(|(r, f)| r.is_none() && !**f)
            .count()
    };

    while outstanding(&shard_reports, &failed) > 0 {
        match rank.recv_timeout(poll) {
            Ok(Some((from, msg))) => {
                quiet_since = Instant::now();
                match msg {
                    Msg::CrossMerge {
                        shard,
                        epoch: _,
                        edges,
                    } => {
                        reconcile.start();
                        cross_flushes += 1;
                        cross_received += edges.len() as u64;
                        for (a, b) in edges {
                            incremental.union(a as usize, b as usize);
                        }
                        reconcile.stop();
                        debug_assert!((shard as usize) < k);
                    }
                    Msg::ShardDone { shard, report } => {
                        let s = shard as usize;
                        if s < k && shard_reports[s].is_none() && !failed[s] {
                            shard_reports[s] = Some(report);
                        }
                    }
                    Msg::Summary(s) => early_summaries.push((from, s)),
                    // Nothing else is addressed to rank 0.
                    _ => {}
                }
            }
            Ok(None) => {
                if under_faults && quiet_since.elapsed() >= window {
                    write_off_silent_shards(rank, topo, &shard_reports, &mut failed, obs);
                }
            }
            Err(_) => {
                // World torn down: whatever has not arrived never will.
                for (s, rep) in shard_reports.iter().enumerate() {
                    if rep.is_none() {
                        failed[s] = true;
                    }
                }
            }
        }
    }

    ReconcilerOut {
        shard_reports,
        cross_received,
        cross_flushes,
        reconcile_secs: reconcile.secs(),
        comm: rank.stats(),
        injected: rank.fault_stats(),
        partitioning,
        early_summaries,
    }
}

/// Declare every shard that has not delivered its report failed, emit a
/// fault event per shard, and release the slaves: a `Shutdown` from
/// rank 0 is the global abort that closes every session a dead
/// sub-master can no longer close itself.
fn write_off_silent_shards(
    rank: &Rank<Msg>,
    topo: ShardTopology,
    shard_reports: &[Option<ShardReport>],
    failed: &mut [bool],
    obs: &Obs,
) {
    let mut newly_failed = false;
    for (s, rep) in shard_reports.iter().enumerate() {
        if rep.is_none() && !failed[s] {
            failed[s] = true;
            newly_failed = true;
            obs.emit_with(|| Event::Fault {
                t: obs.now(),
                rank: 0,
                kind: "shard_failed".into(),
                seq: None,
                detail: format!(
                    "shard {s} (rank {}) silent past the progress window",
                    topo.submaster_rank(s)
                ),
            });
        }
    }
    if newly_failed {
        for idx in 0..topo.num_slaves() {
            for _ in 0..CONTROL_REDUNDANCY {
                rank.send(topo.slave_rank(idx), Msg::Shutdown);
            }
        }
    }
}

/// Rank `1 + shard`: the unchanged master protocol machine over a
/// [`ShardDsu`] id-range view, plus the epoch-barrier cross-edge flush
/// and the final `ShardDone` report to the reconciler.
#[allow(clippy::too_many_arguments)]
fn submaster_rank(
    rank: &Rank<Msg>,
    cfg: &ClusterConfig,
    topo: ShardTopology,
    spec: ShardSpec,
    shard: usize,
    under_faults: bool,
    obs: &Obs,
) {
    let me = rank.rank();
    let span = obs.span_on(metric::PHASE_PARTITIONING, me);
    let zeros = vec![0u64; num_buckets(cfg.window_w)];
    let _ = rank.allreduce_sum(&zeros);
    let _partitioning = span.finish();
    rank.barrier();

    let num_slaves = topo.num_slaves();
    let mut master: Master<ShardDsu> =
        Master::with_sets(ShardDsu::new(spec, shard), num_slaves, cfg.clone());
    master.begin(obs.now());
    let poll = Duration::from_secs_f64((cfg.slave_timeout / 4.0).clamp(0.001, 0.05));
    let send_replies = |replies: Vec<(usize, Msg)>| {
        for (slave, reply) in replies {
            if let Msg::Work { seq, pairs, .. } = &reply {
                obs.trace_with(|tracer| {
                    let t = obs.now_us();
                    let id = flow_id(shard * num_slaves + slave, *seq);
                    tracer.flow(TraceKind::FlowStart, me, t, id);
                    tracer.instant(me, T_DISPATCH, t, id, pairs.len() as u64);
                });
            }
            let copies = match (&reply, under_faults) {
                (Msg::Shutdown, true) => CONTROL_REDUNDANCY,
                _ => 1,
            };
            let to = topo.slave_rank(slave);
            for _ in 1..copies {
                rank.send(to, reply.clone());
            }
            rank.send(to, reply);
        }
    };

    let loop_t0 = obs.now();
    let mut busy = Timer::new();
    let mut reports = 0u64;
    let mut epoch = 0u64;
    let mut hb_last_t = loop_t0;
    let mut hb_last_processed = 0u64;
    while !master.is_done() {
        let mut got_report = false;
        match rank.recv_timeout(poll) {
            Ok(Some((from, msg))) => {
                busy.start();
                // Anything other than a report (e.g. a redundant abort
                // copy) is a stray message: ignore.
                if let Msg::Report {
                    seq,
                    results,
                    pairs,
                    exhausted,
                } = msg
                {
                    debug_assert!(from > topo.shards, "report from non-slave rank {from}");
                    let slave = from - topo.shards - 1;
                    got_report = true;
                    let t0_us = obs.trace_enabled().then(|| obs.now_us());
                    send_replies(master.handle_report(
                        slave,
                        seq,
                        results,
                        pairs,
                        exhausted,
                        obs.now(),
                    ));
                    if let Some(t0) = t0_us {
                        obs.trace_with(|tracer| {
                            let end = obs.now_us();
                            let id = flow_id(shard * num_slaves + slave, seq);
                            tracer.span(me, T_HANDLE_REPORT, t0, end.saturating_sub(t0), id, seq);
                            tracer.flow(TraceKind::FlowEnd, me, t0, id);
                        });
                    }
                }
                busy.stop();
            }
            Ok(None) => {}
            Err(_) => master.handle_world_down(),
        }
        if !master.is_done() {
            busy.start();
            send_replies(master.tick(obs.now()));
            busy.stop();
        }

        // Epoch barrier: flush pending cross edges. Sent even when
        // empty — under faults the flush doubles as a liveness signal
        // for the reconciler's progress window.
        if got_report {
            reports += 1;
            if reports.is_multiple_of(cfg.shard_epoch as u64) {
                epoch += 1;
                let edges = master.sets_mut().drain_cross_edges();
                rank.send(
                    0,
                    Msg::CrossMerge {
                        shard: shard as u32,
                        epoch,
                        edges,
                    },
                );
            }
        }

        if obs.events_enabled() || obs.trace_enabled() {
            for note in master.drain_fault_notes() {
                let (kind, seq, detail) = match note {
                    FaultNote::Resend { slave, seq, retry } => (
                        "resend",
                        Some(seq),
                        format!("shard {shard} slave {slave} seq {seq} retry {retry}"),
                    ),
                    FaultNote::DeadSlave { slave, reassigned } => (
                        "dead_slave",
                        None,
                        format!("shard {shard} slave {slave}, {reassigned} pairs reassigned"),
                    ),
                    FaultNote::DuplicateReport { slave, seq } => (
                        "duplicate_report",
                        Some(seq),
                        format!("shard {shard} slave {slave} seq {seq}"),
                    ),
                    FaultNote::Abandoned { pairs } => (
                        "abandoned",
                        None,
                        format!("shard {shard}: {pairs} pairs, no live slaves"),
                    ),
                };
                obs.trace_with(|tracer| {
                    tracer.instant(me, tracer.intern(kind), obs.now_us(), seq.unwrap_or(0), 0);
                });
                obs.emit_with(|| Event::Fault {
                    t: obs.now(),
                    rank: me,
                    kind: kind.to_string(),
                    seq,
                    detail: detail.clone(),
                });
            }
        }
        if obs.events_enabled() && got_report && reports.is_multiple_of(HEARTBEAT_EVERY) {
            let now = obs.now();
            let elapsed = (now - loop_t0).max(f64::EPSILON);
            let processed = master.stats.pairs_processed;
            let dt = (now - hb_last_t).max(f64::EPSILON);
            obs.emit(Event::Heartbeat {
                rank: me,
                t: now,
                busy_frac: busy.secs() / elapsed,
                pairs_per_sec: (processed - hb_last_processed) as f64 / dt,
                processed,
            });
            hb_last_t = now;
            hb_last_processed = processed;
        }
    }
    let loop_total = (obs.now() - loop_t0).max(f64::EPSILON);

    // Final flush + the authoritative shard report.
    epoch += 1;
    let edges = master.sets_mut().drain_cross_edges();
    rank.send(
        0,
        Msg::CrossMerge {
            shard: shard as u32,
            epoch,
            edges,
        },
    );
    let stats = master.stats;
    let records = master.trace.records().to_vec();
    let cross_edges = master.sets_mut().cross_edges().total_unique() as u64;
    let report = ShardReport {
        records,
        pairs_received: stats.pairs_generated,
        pairs_processed: stats.pairs_processed,
        pairs_accepted: stats.pairs_accepted,
        pairs_skipped: stats.pairs_skipped,
        merges: stats.merges,
        cross_edges,
        epochs: epoch,
        retries: stats.faults.retries,
        duplicate_reports: stats.faults.duplicate_reports,
        dead_slaves: stats.faults.dead_slaves,
        reassigned_pairs: stats.faults.reassigned_pairs,
        abandoned_pairs: stats.faults.abandoned_pairs,
        injected_drops: rank.fault_stats().dropped,
        injected_delays: rank.fault_stats().delayed,
        injected_stalls: rank.fault_stats().stalls,
        busy_frac: busy.secs() / loop_total,
    };
    let copies = if under_faults { CONTROL_REDUNDANCY } else { 1 };
    for _ in 0..copies {
        rank.send(
            0,
            Msg::ShardDone {
                shard: shard as u32,
                report: report.clone(),
            },
        );
    }
}

/// A slave rank: the usual partition/build phases (with `num_slaves`
/// counted against the sharded topology), then the K-session slave loop.
fn slave_rank(
    rank: &Rank<Msg>,
    store: &SequenceStore,
    packed: Option<&PackedText>,
    cfg: &ClusterConfig,
    topo: ShardTopology,
    spec: ShardSpec,
    obs: &Obs,
) -> ShardOut {
    let ShardRole::Slave(slave_id) = topo.role_of(rank.rank()) else {
        unreachable!()
    };
    let num_slaves = topo.num_slaves();

    let span = obs.span_on(metric::PHASE_PARTITIONING, rank.rank());
    let local = count_buckets_stride(store, cfg.window_w, slave_id, num_slaves);
    let global = rank.allreduce_sum(&local);
    let partition = assign_buckets(&global, num_slaves);
    let partitioning = span.finish();

    let span = obs.span_on(metric::PHASE_GST_CONSTRUCTION, rank.rank());
    let forest = build_forest_for_rank(store, &partition, slave_id);
    let gst_construction = span.finish();
    record_gst_stats(obs, &partition, &forest);
    rank.barrier();

    let summary = run_slave_sharded_obs(rank, topo, spec, store, packed, &forest, cfg, obs);
    ShardOut::Slave {
        summary: worker_summary(&summary, partitioning, gst_construction),
    }
}

/// Fold the reconciler's collected state and the slave summaries into
/// the final result: replay each shard's merge records in shard order
/// through a fresh DSU, keeping only effective merges, so
/// `trace.len() == stats.merges` and `trace.replay(n)` reproduces the
/// labels exactly — the same invariants the single-master driver holds.
fn fold_sharded(
    num_ests: usize,
    topo: ShardTopology,
    recon: ReconcilerOut,
    summaries: Vec<WorkerSummary>,
    obs: &Obs,
    total: f64,
) -> (ClusterResult, MergeTrace) {
    let reg = obs.registry();
    let mut replay_timer = Timer::new();
    replay_timer.start();
    let mut dsu = DisjointSets::new(num_ests);
    let mut kept: Vec<MergeRecord> = Vec::new();
    for rep in recon.shard_reports.iter().flatten() {
        for r in &rep.records {
            if dsu.union(r.est_a, r.est_b) {
                kept.push(*r);
                obs.emit_with(|| Event::Merge {
                    t: obs.now(),
                    est_a: r.est_a,
                    est_b: r.est_b,
                    mcs_len: r.mcs_len,
                    score_ratio: r.score_ratio,
                });
            }
        }
    }
    let reconcile_secs = recon.reconcile_secs + replay_timer.stop();

    let mut stats = ClusterStats::default();
    let mut failed_shards = 0u64;
    let mut worker_injected = FaultSnapshot::default();
    for (s, rep) in recon.shard_reports.iter().enumerate() {
        match rep {
            Some(rep) => {
                worker_injected.dropped += rep.injected_drops;
                worker_injected.delayed += rep.injected_delays;
                worker_injected.stalls += rep.injected_stalls;
                stats.pairs_processed += rep.pairs_processed;
                stats.pairs_accepted += rep.pairs_accepted;
                stats.pairs_skipped += rep.pairs_skipped;
                stats.faults.retries += rep.retries;
                stats.faults.duplicate_reports += rep.duplicate_reports;
                stats.faults.dead_slaves += rep.dead_slaves;
                stats.faults.reassigned_pairs += rep.reassigned_pairs;
                stats.faults.abandoned_pairs += rep.abandoned_pairs;
                stats.master_busy_frac = stats.master_busy_frac.max(rep.busy_frac);
                reg.set_gauge(
                    &metric::shard_gauge_name(s, "received"),
                    rep.pairs_received as f64,
                );
                reg.set_gauge(
                    &metric::shard_gauge_name(s, "processed"),
                    rep.pairs_processed as f64,
                );
                reg.set_gauge(
                    &metric::shard_gauge_name(s, "skipped"),
                    rep.pairs_skipped as f64,
                );
                reg.set_gauge(&metric::shard_gauge_name(s, "merges"), rep.merges as f64);
                reg.set_gauge(
                    &metric::shard_gauge_name(s, "cross_edges"),
                    rep.cross_edges as f64,
                );
            }
            None => failed_shards += 1,
        }
    }
    stats.merges = kept.len() as u64;
    stats.messages = recon.comm.messages;

    reg.set_gauge(metric::SHARD_COUNT, topo.shards as f64);
    reg.set_gauge(metric::SHARD_RECONCILE_SECS, reconcile_secs);
    reg.add(metric::SHARD_CROSS_EDGES, recon.cross_received);
    reg.add(metric::SHARD_EPOCHS, recon.cross_flushes);
    reg.add(metric::SHARD_FAILED, failed_shards);
    reg.add(metric::COMM_MESSAGES, recon.comm.messages);
    reg.add(metric::COMM_BYTES, recon.comm.bytes);
    reg.add(metric::COMM_BARRIERS, recon.comm.barriers);
    reg.add(metric::COMM_REDUCTIONS, recon.comm.reductions);
    reg.add(metric::FAULTS_INJECTED_DROPS, recon.injected.dropped);
    reg.add(metric::FAULTS_INJECTED_DELAYS, recon.injected.delayed);
    reg.add(metric::FAULTS_INJECTED_CRASHES, recon.injected.crashes);
    reg.add(metric::FAULTS_INJECTED_STALLS, recon.injected.stalls);

    let mut timers = PhaseTimers {
        partitioning: recon.partitioning,
        ..PhaseTimers::default()
    };
    let mut generated_total = 0u64;
    let mut unconsumed_total = 0u64;
    let mut prefiltered_total = 0u64;
    let mut ws_reuses_total = 0u64;
    let mut gen_by_owner = vec![0u64; topo.shards];
    let mut unconsumed_by_owner = vec![0u64; topo.shards];
    for summary in &summaries {
        generated_total += summary.gen_emitted;
        unconsumed_total += summary.unconsumed;
        prefiltered_total += summary.prefiltered;
        ws_reuses_total += summary.ws_reuses;
        for (m, v) in summary.gen_by_owner.iter().enumerate().take(topo.shards) {
            gen_by_owner[m] += v;
        }
        for (m, v) in summary
            .unconsumed_by_owner
            .iter()
            .enumerate()
            .take(topo.shards)
        {
            unconsumed_by_owner[m] += v;
        }
        worker_injected.dropped += summary.injected_drops;
        worker_injected.delayed += summary.injected_delays;
        worker_injected.stalls += summary.injected_stalls;
        timers.max_with(&PhaseTimers {
            partitioning: summary.partitioning,
            gst_construction: summary.gst_construction,
            node_sorting: summary.node_sorting,
            alignment: summary.alignment,
            ..PhaseTimers::default()
        });
    }
    // Same conservation law as the single-master fold: anything the
    // generators emitted that no shard resolved and no slave still
    // buffers was lost to faults (a dropped message, a dead slave, or a
    // whole written-off shard). The max() credits generators whose
    // summaries went missing with exactly what the shards received.
    let generated_total =
        generated_total.max(stats.pairs_processed + stats.pairs_skipped + unconsumed_total);
    let lost = generated_total
        .saturating_sub(stats.pairs_processed + stats.pairs_skipped + unconsumed_total);
    stats.faults.lost_pairs = lost;
    stats.pairs_generated = generated_total;
    stats.pairs_unconsumed = unconsumed_total + lost;
    stats.pairs_prefiltered = prefiltered_total;
    timers.total = total;
    stats.timers = timers;

    for m in 0..topo.shards {
        reg.set_gauge(
            &metric::shard_gauge_name(m, "generated"),
            gen_by_owner[m] as f64,
        );
        reg.set_gauge(
            &metric::shard_gauge_name(m, "unconsumed"),
            unconsumed_by_owner[m] as f64,
        );
    }
    reg.add(metric::FAULTS_INJECTED_DROPS, worker_injected.dropped);
    reg.add(metric::FAULTS_INJECTED_DELAYS, worker_injected.delayed);
    reg.add(metric::FAULTS_INJECTED_STALLS, worker_injected.stalls);
    reg.add(metric::ALIGN_WS_REUSES, ws_reuses_total);
    record_cluster_counters(obs, &stats);
    obs.flush();

    let labels = dsu.labels();
    (
        ClusterResult {
            num_clusters: dsu.num_sets(),
            labels,
            stats,
        },
        MergeTrace::from_records(kept),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver_par::cluster_parallel_traced;
    use pace_simulate::{generate, SimConfig};

    fn small_cfg(shards: usize) -> ClusterConfig {
        let mut c = ClusterConfig::small();
        c.psi = 16;
        c.overlap.min_overlap_len = 40;
        c.batchsize = 8;
        c.shards = shards;
        c.shard_epoch = 4;
        c
    }

    fn dataset(n: usize, seed: u64) -> pace_simulate::EstDataset {
        generate(&SimConfig {
            num_genes: (n / 12).max(2),
            num_ests: n,
            est_len_mean: 220.0,
            est_len_sd: 25.0,
            est_len_min: 120,
            exon_len: (220, 400),
            exons_per_gene: (1, 2),
            seed,
            ..SimConfig::default()
        })
    }

    /// Canonical partition: each EST labelled by the smallest EST id in
    /// its cluster, so two runs agree iff their partitions are equal.
    fn canon(labels: &[usize]) -> Vec<usize> {
        let mut rep = std::collections::HashMap::new();
        for (i, &l) in labels.iter().enumerate() {
            rep.entry(l).or_insert(i);
        }
        labels.iter().map(|l| rep[l]).collect()
    }

    #[test]
    fn sharded_matches_single_master_partition() {
        let ds = dataset(80, 41);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let (single, _) = cluster_parallel_traced(&store, &small_cfg(0), 4);
        for k in [1usize, 2, 3] {
            let (sharded, trace) = cluster_sharded_obs(&store, &small_cfg(k), 4 + k, &Obs::noop());
            assert_eq!(
                canon(&sharded.labels),
                canon(&single.labels),
                "K={k} diverged from the single master"
            );
            assert_eq!(trace.len() as u64, sharded.stats.merges);
            assert_eq!(canon(&trace.replay(80)), canon(&sharded.labels));
        }
    }

    #[test]
    fn sharded_stats_conserve_flow() {
        let ds = dataset(80, 42);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let (r, _) = cluster_sharded_obs(&store, &small_cfg(2), 6, &Obs::noop());
        let s = &r.stats;
        assert_eq!(
            s.pairs_generated,
            s.pairs_processed + s.pairs_skipped + s.pairs_unconsumed
        );
        assert_eq!(s.faults.lost_pairs, 0);
        assert!(s.pairs_accepted <= s.pairs_processed);
        assert!(s.merges <= s.pairs_accepted);
    }

    #[test]
    fn sharded_registry_reports_per_shard_conservation() {
        let ds = dataset(80, 43);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let obs = Obs::noop();
        let (r, _) = cluster_sharded_obs(&store, &small_cfg(2), 6, &obs);
        let snap = obs.registry().snapshot();
        assert_eq!(snap.gauges[metric::SHARD_COUNT], 2.0);
        let mut gen_total = 0.0;
        for s in 0..2 {
            let gen = snap.gauges[&metric::shard_gauge_name(s, "generated")];
            let proc = snap.gauges[&metric::shard_gauge_name(s, "processed")];
            let skip = snap.gauges[&metric::shard_gauge_name(s, "skipped")];
            let uncons = snap.gauges[&metric::shard_gauge_name(s, "unconsumed")];
            let rec = snap.gauges[&metric::shard_gauge_name(s, "received")];
            assert_eq!(gen, proc + skip + uncons, "shard {s} leaked pairs");
            assert!(rec <= proc + skip, "shard {s}: received pairs unresolved");
            gen_total += gen;
        }
        assert_eq!(gen_total as u64, r.stats.pairs_generated);
    }

    #[test]
    fn sharded_p1_falls_back_to_sequential() {
        let ds = dataset(30, 44);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let (a, _) = cluster_sharded_obs(&store, &small_cfg(2), 1, &Obs::noop());
        let b = crate::driver_seq::cluster_sequential(&store, &small_cfg(2));
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn crashed_submaster_fails_loudly() {
        let ds = dataset(60, 45);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let mut cfg = small_cfg(2);
        cfg.slave_timeout = 0.2;
        cfg.max_retries = 2;
        // Rank 1 (shard 0) dies after a handful of sends.
        let plan = FaultPlan::none().crash(1, 5);
        let (r, _) = cluster_sharded_faults(&store, &cfg, 6, &plan, &Obs::noop());
        assert_eq!(
            r.stats.pairs_generated,
            r.stats.pairs_processed + r.stats.pairs_skipped + r.stats.pairs_unconsumed,
            "conservation must hold even with a dead shard"
        );
        assert!(
            r.stats.faults.lost_pairs > 0,
            "a crashed sub-master must surface as lost pairs"
        );
    }
}
