//! The slave processor loop.
//!
//! Each slave owns a portion of the suffix-tree forest (its buckets). It
//! interleaves three activities, overlapping communication with
//! computation exactly as the paper describes:
//!
//! 1. aligning the current `NEXTWORK` batch;
//! 2. generating promising pairs into `PAIRBUF` *while waiting* for the
//!    master's next message;
//! 3. on each `Work { W, E }` message: topping `PAIRBUF` up to `E`,
//!    sending the held results `R` plus `P = min(E, |PAIRBUF|)` pairs,
//!    and adopting `W` as the next batch.
//!
//! Startup: three `batchsize` portions are generated; portion 1 is
//! aligned and sent with portion 3 as the unsolicited first report,
//! portion 2 becomes the first `NEXTWORK`.

use crate::align_task::{AlignContext, PairOutcome};
use crate::config::ClusterConfig;
use crate::messages::Msg;
use pace_gst::LocalForest;
use pace_mpisim::Rank;
use pace_obs::trace::{flow_id, T_REPORT_SEND};
use pace_obs::{metric, Obs, Timer, TraceKind};
use pace_pairgen::{CandidatePair, GenStats, PairGenConfig, PairGenerator};
use pace_seq::{PackedText, SequenceStore};
use std::collections::VecDeque;

/// How many pairs to generate per idle poll while waiting for the master
/// (small, so the slave stays responsive).
pub(crate) const IDLE_GEN_CHUNK: usize = 16;

/// Timers a slave reports back to the driver (seconds).
#[derive(Debug, Clone, Copy, Default)]
pub struct SlaveTimers {
    /// Generator construction: node collection + string-depth sort.
    pub node_sorting: f64,
    /// Time spent inside the pairwise alignment kernel.
    pub alignment: f64,
}

/// What a slave hands back when the world shuts down.
#[derive(Debug, Clone, Default)]
pub struct SlaveReportSummary {
    /// Generator counters.
    pub gen: GenStats,
    /// Phase timers.
    pub timers: SlaveTimers,
    /// Pairs still sitting in `PAIRBUF` at shutdown: generated, counted
    /// by the generator, but never shipped to the master. Closes the
    /// flow-conservation balance
    /// `emitted == processed + skipped + unconsumed`.
    pub unconsumed: u64,
    /// Pairs this slave rejected via the cheap pre-alignment filters
    /// (no DP cell filled).
    pub prefiltered: u64,
    /// Pairs this slave served through its reused alignment workspace —
    /// every pair it aligned, since the context lives for the whole rank.
    pub ws_reuses: u64,
    /// Sharded runs only: emitted pairs by owning shard (empty here).
    pub gen_by_owner: Vec<u64>,
    /// Sharded runs only: buffered pairs by owning shard (empty here).
    pub unconsumed_by_owner: Vec<u64>,
}

/// Run the slave protocol to completion with no instrumentation.
pub fn run_slave(
    rank: &Rank<Msg>,
    master: usize,
    store: &SequenceStore,
    forest: &LocalForest,
    cfg: &ClusterConfig,
) -> SlaveReportSummary {
    run_slave_obs(rank, master, store, None, forest, cfg, &Obs::noop())
}

/// Run the slave protocol to completion, instrumented. `master` is the
/// master's rank id; `packed` is the shared 2-bit view the alignment
/// kernel reads when `cfg.packed_alignment` built one. Phase timings
/// land in `obs`'s per-rank series and the generator's MCS-length
/// distribution in the [`metric::PAIRS_MCS_LEN`] histogram.
pub fn run_slave_obs(
    rank: &Rank<Msg>,
    master: usize,
    store: &SequenceStore,
    packed: Option<&PackedText>,
    forest: &LocalForest,
    cfg: &ClusterConfig,
    obs: &Obs,
) -> SlaveReportSummary {
    let mut timers = SlaveTimers::default();

    let mut sort_timer = Timer::new();
    sort_timer.start();
    let mut generator = PairGenerator::new(
        store,
        forest,
        PairGenConfig {
            psi: cfg.psi,
            order: cfg.order,
        },
    );
    timers.node_sorting = sort_timer.stop();

    // One alignment context for the whole rank: DP scratch is allocated
    // once here and only grows to the largest pair this slave ever sees.
    let mut ctx = AlignContext::new(store, packed);

    // One closure owns the shutdown bookkeeping so every exit path
    // reports identically (including the abnormal world-teardown ones).
    let finish = |generator: &PairGenerator,
                  timers: SlaveTimers,
                  pairbuf: &VecDeque<CandidatePair>,
                  ctx: &AlignContext|
     -> SlaveReportSummary {
        for (&len, &n) in generator.emitted_by_mcs_len() {
            obs.registry()
                .observe_n(metric::PAIRS_MCS_LEN, len as u64, n);
        }
        obs.registry()
            .record_phase(metric::PHASE_NODE_SORTING, rank.rank(), timers.node_sorting);
        obs.registry()
            .record_phase(metric::PHASE_ALIGNMENT, rank.rank(), timers.alignment);
        SlaveReportSummary {
            gen: generator.stats(),
            timers,
            unconsumed: pairbuf.len() as u64,
            prefiltered: ctx.pairs_prefiltered(),
            ws_reuses: ctx.pairs_handled(),
            gen_by_owner: Vec::new(),
            unconsumed_by_owner: Vec::new(),
        }
    };

    let mut pairbuf: VecDeque<CandidatePair> = VecDeque::new();

    // Startup: three equal portions of batchsize pairs. The unsolicited
    // startup report is sequence 0; the cached copy answers duplicate
    // `Work` messages (the master re-sends a batch when our report goes
    // missing) without ever re-aligning anything.
    let portion1 = generator.next_batch(cfg.batchsize);
    let portion2 = generator.next_batch(cfg.batchsize);
    let portion3 = generator.next_batch(cfg.batchsize);
    let first_results = align_batch(&mut ctx, &portion1, cfg, &mut timers, obs, rank.rank());
    let startup = Msg::Report {
        seq: 0,
        results: first_results,
        pairs: portion3,
        exhausted: generator.is_exhausted() && pairbuf.is_empty(),
    };
    send_report(rank, master, obs, &startup);
    let mut last_report = startup;
    let mut last_seq: u64 = 0;
    let mut nextwork = portion2;

    loop {
        // Compute alignments on NEXTWORK; the master's reply to our last
        // report travels concurrently.
        let results = align_batch(&mut ctx, &nextwork, cfg, &mut timers, obs, rank.rank());

        // Wait for the master, generating pairs in the meantime. A
        // duplicate `Work` (sequence we already handled) means the
        // master lost our report: answer with the cached copy and keep
        // waiting — the pairs it carries were aligned exactly once.
        let msg = 'wait: loop {
            let incoming = match rank.try_recv() {
                Ok(Some((_, msg))) => Some(msg),
                Err(_) => {
                    // World torn down without a Shutdown (should not
                    // happen in normal operation).
                    return finish(&generator, timers, &pairbuf, &ctx);
                }
                Ok(None) => {
                    if !generator.is_exhausted() && pairbuf.len() < cfg.pairbuf_cap {
                        let room = cfg.pairbuf_cap - pairbuf.len();
                        pairbuf.extend(generator.next_batch(IDLE_GEN_CHUNK.min(room)));
                        None
                    } else {
                        // Nothing useful to do: block.
                        match rank.recv() {
                            Ok((_, msg)) => Some(msg),
                            Err(_) => return finish(&generator, timers, &pairbuf, &ctx),
                        }
                    }
                }
            };
            match incoming {
                Some(Msg::Work { seq, .. }) if seq <= last_seq => {
                    send_report(rank, master, obs, &last_report);
                }
                Some(msg) => break 'wait msg,
                None => {}
            }
        };

        match msg {
            Msg::Shutdown => {
                return finish(&generator, timers, &pairbuf, &ctx);
            }
            Msg::Work {
                seq,
                pairs,
                request,
            } => {
                debug_assert_eq!(seq, last_seq + 1, "master skipped a sequence number");
                // Top PAIRBUF up to the requested E.
                while pairbuf.len() < request && !generator.is_exhausted() {
                    let want = (request - pairbuf.len()).max(IDLE_GEN_CHUNK);
                    pairbuf.extend(generator.next_batch(want));
                }
                let take = request.min(pairbuf.len());
                let outgoing: Vec<CandidatePair> = pairbuf.drain(..take).collect();
                let report = Msg::Report {
                    seq,
                    results,
                    pairs: outgoing,
                    exhausted: generator.is_exhausted() && pairbuf.is_empty(),
                };
                send_report(rank, master, obs, &report);
                last_report = report;
                last_seq = seq;
                nextwork = pairs;
            }
            Msg::Report { .. }
            | Msg::Summary(_)
            | Msg::CrossMerge { .. }
            | Msg::ShardDone { .. } => {
                unreachable!("slaves never receive {}", msg.kind())
            }
        }
    }
}

/// Send one report to the master, recording its trace footprint when a
/// tracer is attached: a `report_send` span on this rank plus the flow
/// point that ties the report to its batch's dispatch arrow. The
/// unsolicited startup report (sequence 0) *opens* its flow — there is
/// no master dispatch for it — while every later report (including
/// duplicate resends of the cached copy) is a step on the flow the
/// master opened.
fn send_report(rank: &Rank<Msg>, master: usize, obs: &Obs, report: &Msg) {
    let t0_us = obs.trace_enabled().then(|| obs.now_us());
    rank.send(master, report.clone());
    if let (Some(t0), Msg::Report { seq, pairs, .. }) = (t0_us, report) {
        obs.trace_with(|tracer| {
            let end = obs.now_us();
            let r = rank.rank();
            let id = flow_id(rank.rank().saturating_sub(1), *seq);
            tracer.span(
                r,
                T_REPORT_SEND,
                t0,
                end.saturating_sub(t0),
                id,
                pairs.len() as u64,
            );
            let kind = if *seq == 0 {
                TraceKind::FlowStart
            } else {
                TraceKind::FlowStep
            };
            tracer.flow(kind, r, t0, id);
        });
    }
}

/// Align one work batch through the rank's shared context. Each
/// non-empty batch is its own [`metric::PHASE_ALIGN_BATCH`] span (the
/// per-batch series behind batch-size tuning); the elapsed time also
/// accumulates into the rank's legacy alignment total.
pub(crate) fn align_batch(
    ctx: &mut AlignContext,
    batch: &[CandidatePair],
    cfg: &ClusterConfig,
    timers: &mut SlaveTimers,
    obs: &Obs,
    rank_id: usize,
) -> Vec<PairOutcome> {
    if batch.is_empty() {
        return Vec::new();
    }
    let span = obs.span_on(metric::PHASE_ALIGN_BATCH, rank_id);
    let out = batch.iter().map(|p| ctx.align(p, cfg)).collect();
    timers.alignment += span.finish();
    out
}

// Integration coverage for this loop lives in `driver_par` tests, which
// run full master+slave worlds; unit-testing the loop alone would need a
// mock master speaking the whole protocol.
