//! The slave processor loop.
//!
//! Each slave owns a portion of the suffix-tree forest (its buckets). It
//! interleaves three activities, overlapping communication with
//! computation exactly as the paper describes:
//!
//! 1. aligning the current `NEXTWORK` batch;
//! 2. generating promising pairs into `PAIRBUF` *while waiting* for the
//!    master's next message;
//! 3. on each `Work { W, E }` message: topping `PAIRBUF` up to `E`,
//!    sending the held results `R` plus `P = min(E, |PAIRBUF|)` pairs,
//!    and adopting `W` as the next batch.
//!
//! Startup: three `batchsize` portions are generated; portion 1 is
//! aligned and sent with portion 3 as the unsolicited first report,
//! portion 2 becomes the first `NEXTWORK`.

use crate::align_task::{align_pair, PairOutcome};
use crate::config::ClusterConfig;
use crate::messages::Msg;
use pace_gst::LocalForest;
use pace_mpisim::Rank;
use pace_pairgen::{CandidatePair, GenStats, PairGenConfig, PairGenerator};
use pace_seq::SequenceStore;
use std::collections::VecDeque;
use std::time::Instant;

/// How many pairs to generate per idle poll while waiting for the master
/// (small, so the slave stays responsive).
const IDLE_GEN_CHUNK: usize = 16;

/// Timers a slave reports back to the driver (seconds).
#[derive(Debug, Clone, Copy, Default)]
pub struct SlaveTimers {
    /// Generator construction: node collection + string-depth sort.
    pub node_sorting: f64,
    /// Time spent inside the pairwise alignment kernel.
    pub alignment: f64,
}

/// What a slave hands back when the world shuts down.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlaveReportSummary {
    /// Generator counters.
    pub gen: GenStats,
    /// Phase timers.
    pub timers: SlaveTimers,
}

/// Run the slave protocol to completion. `master` is the master's rank id.
pub fn run_slave(
    rank: &Rank<Msg>,
    master: usize,
    store: &SequenceStore,
    forest: &LocalForest,
    cfg: &ClusterConfig,
) -> SlaveReportSummary {
    let mut timers = SlaveTimers::default();

    let sort_started = Instant::now();
    let mut generator = PairGenerator::new(
        store,
        forest,
        PairGenConfig {
            psi: cfg.psi,
            order: cfg.order,
        },
    );
    timers.node_sorting = sort_started.elapsed().as_secs_f64();

    let mut pairbuf: VecDeque<CandidatePair> = VecDeque::new();

    // Startup: three equal portions of batchsize pairs.
    let portion1 = generator.next_batch(cfg.batchsize);
    let portion2 = generator.next_batch(cfg.batchsize);
    let portion3 = generator.next_batch(cfg.batchsize);
    let first_results = align_batch(store, &portion1, cfg, &mut timers);
    rank.send(
        master,
        Msg::Report {
            results: first_results,
            pairs: portion3,
            exhausted: generator.is_exhausted() && pairbuf.is_empty(),
        },
    );
    let mut nextwork = portion2;

    loop {
        // Compute alignments on NEXTWORK; the master's reply to our last
        // report travels concurrently.
        let results = align_batch(store, &nextwork, cfg, &mut timers);

        // Wait for the master, generating pairs in the meantime.
        let msg = loop {
            match rank.try_recv() {
                Ok(Some((_, msg))) => break msg,
                Err(_) => {
                    // World torn down without a Shutdown (should not
                    // happen in normal operation).
                    return SlaveReportSummary {
                        gen: generator.stats(),
                        timers,
                    };
                }
                Ok(None) => {
                    if !generator.is_exhausted() && pairbuf.len() < cfg.pairbuf_cap {
                        let room = cfg.pairbuf_cap - pairbuf.len();
                        pairbuf.extend(generator.next_batch(IDLE_GEN_CHUNK.min(room)));
                    } else {
                        // Nothing useful to do: block.
                        match rank.recv() {
                            Ok((_, msg)) => break msg,
                            Err(_) => {
                                return SlaveReportSummary {
                                    gen: generator.stats(),
                                    timers,
                                }
                            }
                        }
                    }
                }
            }
        };

        match msg {
            Msg::Shutdown => {
                return SlaveReportSummary {
                    gen: generator.stats(),
                    timers,
                };
            }
            Msg::Work { pairs, request } => {
                // Top PAIRBUF up to the requested E.
                while pairbuf.len() < request && !generator.is_exhausted() {
                    let want = (request - pairbuf.len()).max(IDLE_GEN_CHUNK);
                    pairbuf.extend(generator.next_batch(want));
                }
                let take = request.min(pairbuf.len());
                let outgoing: Vec<CandidatePair> = pairbuf.drain(..take).collect();
                rank.send(
                    master,
                    Msg::Report {
                        results,
                        pairs: outgoing,
                        exhausted: generator.is_exhausted() && pairbuf.is_empty(),
                    },
                );
                nextwork = pairs;
            }
            Msg::Report { .. } => unreachable!("slaves never receive reports"),
        }
    }
}

/// Align a batch, timing the kernel.
fn align_batch(
    store: &SequenceStore,
    batch: &[CandidatePair],
    cfg: &ClusterConfig,
    timers: &mut SlaveTimers,
) -> Vec<PairOutcome> {
    let started = Instant::now();
    let out = batch.iter().map(|p| align_pair(store, p, cfg)).collect();
    timers.alignment += started.elapsed().as_secs_f64();
    out
}

// Integration coverage for this loop lives in `driver_par` tests, which
// run full master+slave worlds; unit-testing the loop alone would need a
// mock master speaking the whole protocol.
