//! The per-pair alignment task slaves execute.
//!
//! The hot path is [`AlignContext`]: one per rank, owning the DP
//! workspace (so a slave allocates its band and row buffers once, not
//! once per pair), the optional 2-bit packed view of the store, and the
//! cheap pre-alignment filters. [`align_pair`] remains as the
//! single-shot convenience used by tests and tools.

use crate::config::ClusterConfig;
use pace_align::{
    align_anchored_myers_with, align_anchored_with, decide_outcome, diagonal_identity,
    AlignWorkspace, Anchor, SeqView,
};
use pace_pairgen::CandidatePair;
use pace_seq::{PackedText, SequenceStore, SketchParams, SketchSet};

/// Result of aligning one promising pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairOutcome {
    /// The pair that was aligned.
    pub pair: CandidatePair,
    /// Whether the alignment is merge evidence (pattern + score passed).
    pub accepted: bool,
    /// Achieved score / ideal score of the overlap region.
    pub score_ratio: f64,
}

/// Per-rank alignment state: sequences, reusable DP scratch, counters.
///
/// A context lives for a whole rank (or a whole sequential run) and is
/// threaded through every batch, so the banded/row buffers inside its
/// [`AlignWorkspace`] are allocated once and only ever *grow* to the
/// largest pair seen. [`AlignContext::pairs_handled`] therefore counts
/// exactly the pairs served without per-pair heap allocation — the
/// number the smoke benchmark checks against `pairs.processed`.
pub struct AlignContext<'s> {
    store: &'s SequenceStore,
    /// 2-bit packed mirror of the store; `Some` routes the kernels over
    /// packed codes instead of ASCII bytes (identical scores).
    packed: Option<&'s PackedText>,
    ws: AlignWorkspace,
    /// MinHash bottom-sketches for the sketch prefilter, built lazily on
    /// the first gated pair and reused for the context's lifetime (the
    /// string count is remembered so an incrementally grown store gets a
    /// fresh set).
    sketches: Option<SketchSet>,
    sketched_strings: usize,
    pairs_handled: u64,
    pairs_prefiltered: u64,
}

impl<'s> AlignContext<'s> {
    /// A context over `store`, optionally aligning on `packed` codes.
    pub fn new(store: &'s SequenceStore, packed: Option<&'s PackedText>) -> Self {
        AlignContext {
            store,
            packed,
            ws: AlignWorkspace::new(),
            sketches: None,
            sketched_strings: 0,
            pairs_handled: 0,
            pairs_prefiltered: 0,
        }
    }

    /// Pairs served by this context (every [`align`](Self::align) call).
    pub fn pairs_handled(&self) -> u64 {
        self.pairs_handled
    }

    /// Pairs rejected by the prefilters without any DP.
    pub fn pairs_prefiltered(&self) -> u64 {
        self.pairs_prefiltered
    }

    /// Workspace resets performed so far (diagnostic; see
    /// [`AlignWorkspace::uses`]).
    pub fn workspace_uses(&self) -> u64 {
        self.ws.uses()
    }

    /// Current heap footprint of the reused DP scratch.
    pub fn workspace_bytes(&self) -> usize {
        self.ws.capacity_bytes()
    }

    /// Build (or rebuild, after the store grew) the per-string MinHash
    /// sketches backing [`should_align`](Self::should_align).
    fn ensure_sketches(&mut self, cfg: &ClusterConfig) {
        let n = self.store.num_strings();
        if self.sketches.is_none() || self.sketched_strings != n {
            let params = SketchParams {
                k: cfg.sketch_k,
                s: cfg.sketch_size,
            };
            self.sketches = Some(SketchSet::from_store(self.store, params));
            self.sketched_strings = n;
        }
    }

    /// The sketch prefilter: `true` unless the Mash-style Jaccard
    /// estimate between the pair's strings falls below
    /// `prefilter_min_sketch_jaccard`. With the threshold at `0.0`
    /// (default) the gate is open and no sketches are ever built. A
    /// string too short to sketch yields no estimate, which passes — the
    /// DP, not absence of evidence, should decide such pairs.
    pub fn should_align(&mut self, pair: &CandidatePair, cfg: &ClusterConfig) -> bool {
        if cfg.prefilter_min_sketch_jaccard <= 0.0 {
            return true;
        }
        self.ensure_sketches(cfg);
        let sketches = self.sketches.as_ref().expect("just built");
        match sketches.jaccard(pair.s1, pair.s2) {
            Some(j) => j >= cfg.prefilter_min_sketch_jaccard,
            None => true,
        }
    }

    /// Align `pair` by extending its maximal-common-substring anchor in
    /// both directions with banded DP (Figure 5a) and applying the
    /// accept criterion against the four patterns of Figure 5b.
    ///
    /// Before any DP runs, three cheap filters get a veto:
    /// 1. the *lossless* geometry bound ([`Anchor::max_overlap_reach`]):
    ///    if even a maximally gapped extension cannot reach
    ///    `overlap.min_overlap_len`, the pair is rejected outright;
    /// 2. the optional *lossy* MinHash sketch threshold
    ///    (`prefilter_min_sketch_jaccard > 0`, see
    ///    [`should_align`](Self::should_align));
    /// 3. the optional *lossy* diagonal-identity threshold
    ///    (`prefilter_min_diag_identity > 0`).
    ///
    /// Prefiltered pairs still produce a (rejected) [`PairOutcome`], so
    /// flow conservation over processed pairs is unchanged.
    pub fn align(&mut self, pair: &CandidatePair, cfg: &ClusterConfig) -> PairOutcome {
        self.pairs_handled += 1;
        let anchor = Anchor {
            a_pos: pair.off1 as usize,
            b_pos: pair.off2 as usize,
            len: pair.mcs_len as usize,
        };
        if cfg.prefilter_overlap {
            let a_len = self.store.len_of(pair.s1);
            let b_len = self.store.len_of(pair.s2);
            if anchor.max_overlap_reach(a_len, b_len, cfg.band_radius) < cfg.overlap.min_overlap_len
            {
                self.pairs_prefiltered += 1;
                return rejected(pair);
            }
        }
        if !self.should_align(pair, cfg) {
            self.pairs_prefiltered += 1;
            return rejected(pair);
        }
        let (outcome, prefiltered) = match self.packed {
            Some(text) => extend_and_decide(
                text.slice(pair.s1),
                text.slice(pair.s2),
                anchor,
                pair,
                cfg,
                &mut self.ws,
            ),
            None => extend_and_decide(
                self.store.seq(pair.s1),
                self.store.seq(pair.s2),
                anchor,
                pair,
                cfg,
                &mut self.ws,
            ),
        };
        if prefiltered {
            self.pairs_prefiltered += 1;
        }
        outcome
    }
}

/// A rejected outcome that never reached the DP kernels.
fn rejected(pair: &CandidatePair) -> PairOutcome {
    PairOutcome {
        pair: *pair,
        accepted: false,
        score_ratio: 0.0,
    }
}

/// Representation-generic tail of the task: optional identity filter,
/// anchored extension, accept decision. Returns the outcome and whether
/// the identity filter vetoed the DP.
fn extend_and_decide<V: SeqView>(
    a: V,
    b: V,
    anchor: Anchor,
    pair: &CandidatePair,
    cfg: &ClusterConfig,
    ws: &mut AlignWorkspace,
) -> (PairOutcome, bool) {
    if cfg.prefilter_min_diag_identity > 0.0
        && diagonal_identity(a, b, anchor) < cfg.prefilter_min_diag_identity
    {
        return (rejected(pair), true);
    }
    let aln = if cfg.myers_alignment {
        // The bit-parallel kernel declines (returns None) when the
        // scoring is not edit-convertible or the radius exceeds its
        // one-word cap; fall back to the scalar band in that case.
        match align_anchored_myers_with(a, b, anchor, &cfg.scoring, cfg.band_radius, ws) {
            Some(aln) => aln,
            None => align_anchored_with(a, b, anchor, &cfg.scoring, cfg.band_radius, ws),
        }
    } else {
        align_anchored_with(a, b, anchor, &cfg.scoring, cfg.band_radius, ws)
    };
    let decision = decide_outcome(&aln, &cfg.scoring, &cfg.overlap);
    (
        PairOutcome {
            pair: *pair,
            accepted: decision.accepted,
            score_ratio: decision.ratio,
        },
        false,
    )
}

/// Align one pair with a throwaway context (tests, tools, baselines).
/// Hot paths keep an [`AlignContext`] alive across batches instead.
pub fn align_pair(store: &SequenceStore, pair: &CandidatePair, cfg: &ClusterConfig) -> PairOutcome {
    AlignContext::new(store, None).align(pair, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_seq::{EstId, Strand};

    fn pair_of(ests: &[&[u8]], psi: u32, w: usize) -> (SequenceStore, Vec<CandidatePair>) {
        let store = SequenceStore::from_ests(ests).unwrap();
        let forest = pace_gst::build_sequential(&store, w);
        let mut g = pace_pairgen::PairGenerator::new(
            &store,
            &forest,
            pace_pairgen::PairGenConfig::new(psi),
        );
        let pairs = g.generate_all();
        (store, pairs)
    }

    /// Deterministic pseudorandom DNA (LCG), aperiodic enough to give a
    /// unique anchor.
    fn lcg_dna(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                [b'A', b'C', b'G', b'T'][(x >> 33) as usize % 4]
            })
            .collect()
    }

    #[test]
    fn clean_overlap_is_accepted() {
        // 40-base overlap between the two reads, no errors.
        let template = lcg_dna(12345, 100);
        let a = &template[..70];
        let b = &template[30..];
        let (store, pairs) = pair_of(&[a, b], 12, 4);
        assert!(!pairs.is_empty());
        let mut cfg = ClusterConfig::small();
        cfg.overlap.min_overlap_len = 30;
        let accepted = pairs
            .iter()
            .map(|p| align_pair(&store, p, &cfg))
            .any(|o| o.accepted);
        assert!(accepted, "clean 40-base overlap must be accepted");
    }

    #[test]
    fn spurious_short_match_is_rejected() {
        // Two unrelated reads sharing only a short planted word; the
        // flanks are independent pseudorandom DNA (low-complexity flanks
        // such as poly-A would legitimately align across strands).
        let mut a = lcg_dna(71, 30);
        a.extend_from_slice(b"GGGGCCCCGGGG");
        a.extend(lcg_dna(72, 30));
        let mut b = lcg_dna(73, 30);
        b.extend_from_slice(b"GGGGCCCCGGGG");
        b.extend(lcg_dna(74, 30));
        let (store, pairs) = pair_of(&[&a, &b], 8, 4);
        let cfg = ClusterConfig::small();
        for p in &pairs {
            if p.est_indices() == (0, 1) {
                let o = align_pair(&store, p, &cfg);
                assert!(!o.accepted, "internal repeat must not be merge evidence");
            }
        }
    }

    #[test]
    fn outcome_carries_pair_identity() {
        let template = lcg_dna(999, 80);
        let (store, pairs) = pair_of(&[&template[..60], &template[20..]], 12, 4);
        let cfg = ClusterConfig::small();
        for p in &pairs {
            let o = align_pair(&store, p, &cfg);
            assert_eq!(o.pair, *p);
            assert_eq!(o.pair.s1.est().min(o.pair.s2.est()), EstId(0));
            assert_eq!(o.pair.s1.strand(), Strand::Forward);
            assert!((0.0..=1.0 + 1e-9).contains(&o.score_ratio));
        }
    }

    #[test]
    fn context_reuse_matches_single_shot() {
        // One context serving every pair must decide exactly like a
        // fresh context per pair, on both representations.
        let template = lcg_dna(4242, 150);
        let (store, pairs) = pair_of(
            &[&template[..90], &template[40..120], &template[70..]],
            12,
            4,
        );
        assert!(!pairs.is_empty());
        let cfg = ClusterConfig::small();
        let packed = PackedText::from_store(&store);

        let mut ascii_ctx = AlignContext::new(&store, None);
        let mut packed_ctx = AlignContext::new(&store, Some(&packed));
        for p in &pairs {
            let single = align_pair(&store, p, &cfg);
            assert_eq!(ascii_ctx.align(p, &cfg), single);
            assert_eq!(packed_ctx.align(p, &cfg), single);
        }
        assert_eq!(ascii_ctx.pairs_handled(), pairs.len() as u64);
        assert_eq!(packed_ctx.pairs_handled(), pairs.len() as u64);
    }

    #[test]
    fn geometry_prefilter_rejects_unreachable_overlaps() {
        // Tiny anchor at opposite extremes of two long reads: the
        // required overlap is unreachable, so no DP should run.
        let mut a = lcg_dna(7, 60);
        a.extend_from_slice(b"ACGTACGTACGT");
        let mut b = b"ACGTACGTACGT".to_vec();
        b.extend(lcg_dna(8, 60));
        let store = SequenceStore::from_ests(&[&a, &b]).unwrap();
        let pair = CandidatePair {
            s1: EstId(0).str_id(Strand::Forward),
            s2: EstId(1).str_id(Strand::Forward),
            off1: 60,
            off2: 0,
            mcs_len: 12,
        };
        let mut cfg = ClusterConfig::small();
        cfg.overlap.min_overlap_len = 60; // reach is 12 + radius slack only
        cfg.band_radius = 4;

        let mut ctx = AlignContext::new(&store, None);
        let o = ctx.align(&pair, &cfg);
        assert!(!o.accepted);
        assert_eq!(ctx.pairs_prefiltered(), 1);
        assert_eq!(ctx.workspace_uses(), 0, "prefiltered pair must skip DP");

        // The filter must be lossless: disabling it and running the full
        // DP reaches the same *decision* (the ratio may differ — a
        // prefiltered pair reports 0.0 without computing one).
        cfg.prefilter_overlap = false;
        let mut unfiltered = AlignContext::new(&store, None);
        assert!(!unfiltered.align(&pair, &cfg).accepted);
        assert_eq!(unfiltered.pairs_prefiltered(), 0);
    }

    #[test]
    fn diag_identity_prefilter_vetoes_noisy_diagonals() {
        // A planted 12-mer anchor between otherwise-unrelated reads:
        // the anchor diagonal is ~25% identity outside the word.
        let mut a = lcg_dna(71, 30);
        a.extend_from_slice(b"GGGGCCCCGGGG");
        a.extend(lcg_dna(72, 30));
        let mut b = lcg_dna(73, 30);
        b.extend_from_slice(b"GGGGCCCCGGGG");
        b.extend(lcg_dna(74, 30));
        let store = SequenceStore::from_ests(&[&a, &b]).unwrap();
        let pair = CandidatePair {
            s1: EstId(0).str_id(Strand::Forward),
            s2: EstId(1).str_id(Strand::Forward),
            off1: 30,
            off2: 30,
            mcs_len: 12,
        };
        let mut cfg = ClusterConfig::small();
        cfg.prefilter_overlap = false;
        assert_eq!(
            ClusterConfig::default().prefilter_min_diag_identity,
            0.0,
            "lossy filter must be opt-in"
        );

        // Off by default: the pair goes through the full DP.
        let mut open = AlignContext::new(&store, None);
        open.align(&pair, &cfg);
        assert_eq!(open.pairs_prefiltered(), 0);

        // Demanding 90% identity vetoes it before any DP.
        cfg.prefilter_min_diag_identity = 0.9;
        let mut strict = AlignContext::new(&store, None);
        let o = strict.align(&pair, &cfg);
        assert!(!o.accepted);
        assert_eq!(strict.pairs_prefiltered(), 1);
        assert_eq!(strict.workspace_uses(), 0, "vetoed pair must skip DP");
    }

    #[test]
    fn myers_path_decides_like_scalar_path() {
        // Same pairs, same (edit-convertible) scoring: the bit-parallel
        // kernel must reproduce the scalar outcomes exactly, on both the
        // ASCII and packed representations.
        let template = lcg_dna(2026, 160);
        let (store, pairs) = pair_of(
            &[&template[..95], &template[45..130], &template[80..]],
            12,
            4,
        );
        assert!(!pairs.is_empty());
        let mut scalar_cfg = ClusterConfig::small();
        scalar_cfg.scoring = pace_align::Scoring::edit_linear();
        let mut myers_cfg = scalar_cfg.clone();
        myers_cfg.myers_alignment = true;
        myers_cfg.validate().expect("edit_linear is convertible");
        let packed = PackedText::from_store(&store);

        let mut scalar_ctx = AlignContext::new(&store, None);
        let mut myers_ctx = AlignContext::new(&store, None);
        let mut myers_packed_ctx = AlignContext::new(&store, Some(&packed));
        for p in &pairs {
            let want = scalar_ctx.align(p, &scalar_cfg);
            assert_eq!(myers_ctx.align(p, &myers_cfg), want);
            assert_eq!(myers_packed_ctx.align(p, &myers_cfg), want);
        }
    }

    #[test]
    fn sketch_prefilter_vetoes_unrelated_pairs() {
        // A planted 12-mer anchor between otherwise-unrelated reads
        // (same setup as the diagonal-identity test): the sketch
        // Jaccard estimate is near zero, so a modest threshold vetoes
        // the pair before any DP.
        let mut a = lcg_dna(71, 40);
        a.extend_from_slice(b"GGGGCCCCGGGG");
        a.extend(lcg_dna(72, 40));
        let mut b = lcg_dna(73, 40);
        b.extend_from_slice(b"GGGGCCCCGGGG");
        b.extend(lcg_dna(74, 40));
        let store = SequenceStore::from_ests(&[&a, &b]).unwrap();
        let pair = CandidatePair {
            s1: EstId(0).str_id(Strand::Forward),
            s2: EstId(1).str_id(Strand::Forward),
            off1: 40,
            off2: 40,
            mcs_len: 12,
        };
        let mut cfg = ClusterConfig::small();
        cfg.prefilter_overlap = false;
        assert_eq!(
            ClusterConfig::default().prefilter_min_sketch_jaccard,
            0.0,
            "sketch filter must be opt-in"
        );

        // Off by default: the pair goes through the full DP and no
        // sketches are ever built.
        let mut open = AlignContext::new(&store, None);
        open.align(&pair, &cfg);
        assert_eq!(open.pairs_prefiltered(), 0);
        assert!(open.sketches.is_none(), "open gate must not build sketches");

        // With a threshold, the unrelated pair is vetoed without DP.
        cfg.prefilter_min_sketch_jaccard = 0.2;
        let mut gated = AlignContext::new(&store, None);
        let o = gated.align(&pair, &cfg);
        assert!(!o.accepted);
        assert_eq!(gated.pairs_prefiltered(), 1);
        assert_eq!(gated.workspace_uses(), 0, "vetoed pair must skip DP");
        assert!(gated.sketches.is_some(), "gate must have built sketches");
    }

    #[test]
    fn sketch_prefilter_passes_genuine_overlaps() {
        // A clean 50-base overlap sails through the same threshold that
        // vetoes unrelated pairs, and the accept decision is unchanged.
        let template = lcg_dna(5150, 120);
        let (store, pairs) = pair_of(&[&template[..80], &template[30..]], 12, 4);
        assert!(!pairs.is_empty());
        let mut cfg = ClusterConfig::small();
        cfg.overlap.min_overlap_len = 30;
        let open: Vec<_> = {
            let mut ctx = AlignContext::new(&store, None);
            pairs.iter().map(|p| ctx.align(p, &cfg)).collect()
        };
        assert!(open.iter().any(|o| o.accepted));

        cfg.prefilter_min_sketch_jaccard = 0.2;
        let mut gated = AlignContext::new(&store, None);
        for (p, want) in pairs.iter().zip(&open) {
            assert_eq!(gated.align(p, &cfg), *want);
        }
        assert_eq!(
            gated.pairs_prefiltered(),
            0,
            "genuine overlaps must pass the sketch gate"
        );
    }
}
