//! The per-pair alignment task slaves execute.

use crate::config::ClusterConfig;
use pace_align::{align_anchored, decide_outcome, Anchor};
use pace_pairgen::CandidatePair;
use pace_seq::SequenceStore;

/// Result of aligning one promising pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairOutcome {
    /// The pair that was aligned.
    pub pair: CandidatePair,
    /// Whether the alignment is merge evidence (pattern + score passed).
    pub accepted: bool,
    /// Achieved score / ideal score of the overlap region.
    pub score_ratio: f64,
}

/// Align `pair` by extending its maximal-common-substring anchor in both
/// directions with banded DP (Figure 5a) and applying the accept
/// criterion against the four patterns of Figure 5b.
pub fn align_pair(store: &SequenceStore, pair: &CandidatePair, cfg: &ClusterConfig) -> PairOutcome {
    let a = store.seq(pair.s1);
    let b = store.seq(pair.s2);
    let anchor = Anchor {
        a_pos: pair.off1 as usize,
        b_pos: pair.off2 as usize,
        len: pair.mcs_len as usize,
    };
    let aln = align_anchored(a, b, anchor, &cfg.scoring, cfg.band_radius);
    let decision = decide_outcome(&aln, &cfg.scoring, &cfg.overlap);
    PairOutcome {
        pair: *pair,
        accepted: decision.accepted,
        score_ratio: decision.ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_seq::{EstId, Strand};

    fn pair_of(ests: &[&[u8]], psi: u32, w: usize) -> (SequenceStore, Vec<CandidatePair>) {
        let store = SequenceStore::from_ests(ests).unwrap();
        let forest = pace_gst::build_sequential(&store, w);
        let mut g = pace_pairgen::PairGenerator::new(
            &store,
            &forest,
            pace_pairgen::PairGenConfig::new(psi),
        );
        let pairs = g.generate_all();
        (store, pairs)
    }

    /// Deterministic pseudorandom DNA (LCG), aperiodic enough to give a
    /// unique anchor.
    fn lcg_dna(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                [b'A', b'C', b'G', b'T'][(x >> 33) as usize % 4]
            })
            .collect()
    }

    #[test]
    fn clean_overlap_is_accepted() {
        // 40-base overlap between the two reads, no errors.
        let template = lcg_dna(12345, 100);
        let a = &template[..70];
        let b = &template[30..];
        let (store, pairs) = pair_of(&[a, b], 12, 4);
        assert!(!pairs.is_empty());
        let mut cfg = ClusterConfig::small();
        cfg.overlap.min_overlap_len = 30;
        let accepted = pairs
            .iter()
            .map(|p| align_pair(&store, p, &cfg))
            .any(|o| o.accepted);
        assert!(accepted, "clean 40-base overlap must be accepted");
    }

    #[test]
    fn spurious_short_match_is_rejected() {
        // Two unrelated reads sharing only a short planted word; the
        // flanks are independent pseudorandom DNA (low-complexity flanks
        // such as poly-A would legitimately align across strands).
        let mut a = lcg_dna(71, 30);
        a.extend_from_slice(b"GGGGCCCCGGGG");
        a.extend(lcg_dna(72, 30));
        let mut b = lcg_dna(73, 30);
        b.extend_from_slice(b"GGGGCCCCGGGG");
        b.extend(lcg_dna(74, 30));
        let (store, pairs) = pair_of(&[&a, &b], 8, 4);
        let cfg = ClusterConfig::small();
        for p in &pairs {
            if p.est_indices() == (0, 1) {
                let o = align_pair(&store, p, &cfg);
                assert!(!o.accepted, "internal repeat must not be merge evidence");
            }
        }
    }

    #[test]
    fn outcome_carries_pair_identity() {
        let template = lcg_dna(999, 80);
        let (store, pairs) = pair_of(&[&template[..60], &template[20..]], 12, 4);
        let cfg = ClusterConfig::small();
        for p in &pairs {
            let o = align_pair(&store, p, &cfg);
            assert_eq!(o.pair, *p);
            assert_eq!(o.pair.s1.est().min(o.pair.s2.est()), EstId(0));
            assert_eq!(o.pair.s1.strand(), Strand::Forward);
            assert!((0.0..=1.0 + 1e-9).contains(&o.score_ratio));
        }
    }
}
