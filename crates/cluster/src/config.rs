//! Clustering engine configuration.

use pace_align::{OverlapParams, Scoring};
use pace_pairgen::PairOrder;

/// All knobs of the clustering pipeline, with the paper's experimental
/// settings as defaults (window 8, batchsize 60).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Bucket window size `w` for suffix-tree construction. The paper
    /// uses 8 in its experiments.
    pub window_w: usize,
    /// Promising-pair threshold ψ: minimum maximal-common-substring
    /// length. Must be ≥ `window_w`.
    pub psi: u32,
    /// Pairs per master→slave work batch. The paper finds 40–60 optimal
    /// and uses 60.
    pub batchsize: usize,
    /// Capacity of the master's `WORKBUF` queue.
    pub workbuf_cap: usize,
    /// Capacity of each slave's `PAIRBUF` of pre-generated pairs.
    pub pairbuf_cap: usize,
    /// Alignment scoring scheme.
    pub scoring: Scoring,
    /// Accept thresholds for merge evidence.
    pub overlap: OverlapParams,
    /// Banded-DP half-width for anchor extension (errors tolerated).
    pub band_radius: usize,
    /// Pair generation order (decreasing MCS vs arbitrary — ablation).
    pub order: PairOrder,
    /// Whether the master skips pairs whose ESTs already share a cluster
    /// (`true` in PaCE; `false` reproduces the traditional behaviour for
    /// ablation).
    pub skip_clustered_pairs: bool,
    /// Reject a pair without running any DP when its anchor geometry
    /// proves the overlap cannot reach `overlap.min_overlap_len` even
    /// with every band-radius gap spent (lossless — the bound is an
    /// upper bound on the achievable overlap, property-tested in
    /// `pace-align`).
    pub prefilter_overlap: bool,
    /// Minimum exact-match fraction along the anchor diagonal for a pair
    /// to be aligned at all. `0.0` disables the filter (the default);
    /// positive values trade recall for speed (lossy) — useful on very
    /// noisy inputs where most promising pairs fail the score ratio.
    pub prefilter_min_diag_identity: f64,
    /// Align directly over the 2-bit packed representation instead of
    /// the ASCII store. Scores are bit-identical (equality-only scoring;
    /// property-tested); the packed text costs one extra pass at startup
    /// but quarters the bytes the alignment kernel touches.
    pub packed_alignment: bool,
    /// Extend anchors with the Myers bit-parallel banded kernel instead
    /// of the scalar banded DP. Score-identical (property-tested) but
    /// requires an edit-convertible scoring scheme
    /// ([`Scoring::edit_unit_cost`]) and `band_radius ≤ 31`; `validate`
    /// rejects configurations outside that envelope.
    pub myers_alignment: bool,
    /// `k`-mer length of the MinHash bottom-sketches backing the sketch
    /// prefilter (1..=31).
    pub sketch_k: usize,
    /// Bottom-sketch size `s`: hashes kept per string.
    pub sketch_size: usize,
    /// Minimum Mash-style sketch Jaccard estimate for a pair to be
    /// aligned at all. `0.0` disables the filter (the default); positive
    /// values skip the DP for pairs whose estimated k-mer similarity
    /// falls below the threshold (lossy — recall measured by the
    /// `pace-quality` harness). Pairs too short to sketch always pass.
    pub prefilter_min_sketch_jaccard: f64,
    /// Seconds the master waits for a slave's report before re-sending
    /// the outstanding `Work` batch. Generous by default — on the
    /// fault-free path no deadline ever fires.
    pub slave_timeout: f64,
    /// Resends of one outstanding batch before the master declares the
    /// slave dead and reassigns its pairs to the survivors.
    pub max_retries: u32,
    /// Number of clustering-master shards. `0` (the default) runs the
    /// classic single master; `K ≥ 1` runs K sub-masters (ranks
    /// `1..=K`, each owning an EST id-range) under a reconciler at rank
    /// 0, leaving ranks `K+1..p` as slaves — so a sharded world needs
    /// `p ≥ K + 2`.
    pub shards: usize,
    /// Reports a sub-master handles between cross-edge flushes to the
    /// reconciler (the epoch barrier length). Only meaningful when
    /// `shards > 0`.
    pub shard_epoch: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            window_w: 8,
            psi: 20,
            batchsize: 60,
            workbuf_cap: 1 << 14,
            pairbuf_cap: 1 << 12,
            scoring: Scoring::default_est(),
            overlap: OverlapParams::default(),
            band_radius: 8,
            order: PairOrder::DecreasingMcs,
            skip_clustered_pairs: true,
            prefilter_overlap: true,
            prefilter_min_diag_identity: 0.0,
            packed_alignment: false,
            myers_alignment: false,
            sketch_k: 11,
            sketch_size: 32,
            prefilter_min_sketch_jaccard: 0.0,
            slave_timeout: 5.0,
            max_retries: 5,
            shards: 0,
            shard_epoch: 32,
        }
    }
}

impl ClusterConfig {
    /// A configuration suited to small test inputs (short reads, short
    /// overlaps): window 4, ψ 8, relaxed minimum overlap.
    pub fn small() -> Self {
        ClusterConfig {
            window_w: 4,
            psi: 8,
            overlap: OverlapParams {
                min_score_ratio: 0.75,
                min_overlap_len: 12,
            },
            ..ClusterConfig::default()
        }
    }

    /// Serialize to a single `k=v,k=v,…` token (no spaces) for worker
    /// process argv. Floats travel as their IEEE-754 bit pattern in hex,
    /// so [`ClusterConfig::from_kv_string`] reconstructs the exact value
    /// — bit-identical configs are what make a multi-process run
    /// reproduce the in-process partition.
    pub fn to_kv_string(&self) -> String {
        let f = |v: f64| format!("{:016x}", v.to_bits());
        let order = match self.order {
            PairOrder::DecreasingMcs => "decreasing_mcs",
            PairOrder::Arbitrary => "arbitrary",
        };
        [
            format!("window_w={}", self.window_w),
            format!("psi={}", self.psi),
            format!("batchsize={}", self.batchsize),
            format!("workbuf_cap={}", self.workbuf_cap),
            format!("pairbuf_cap={}", self.pairbuf_cap),
            format!("match_score={}", self.scoring.match_score),
            format!("mismatch={}", self.scoring.mismatch),
            format!("gap_open={}", self.scoring.gap_open),
            format!("gap_extend={}", self.scoring.gap_extend),
            format!("min_score_ratio={}", f(self.overlap.min_score_ratio)),
            format!("min_overlap_len={}", self.overlap.min_overlap_len),
            format!("band_radius={}", self.band_radius),
            format!("order={order}"),
            format!(
                "skip_clustered_pairs={}",
                u8::from(self.skip_clustered_pairs)
            ),
            format!("prefilter_overlap={}", u8::from(self.prefilter_overlap)),
            format!(
                "prefilter_min_diag_identity={}",
                f(self.prefilter_min_diag_identity)
            ),
            format!("packed_alignment={}", u8::from(self.packed_alignment)),
            format!("myers_alignment={}", u8::from(self.myers_alignment)),
            format!("sketch_k={}", self.sketch_k),
            format!("sketch_size={}", self.sketch_size),
            format!(
                "prefilter_min_sketch_jaccard={}",
                f(self.prefilter_min_sketch_jaccard)
            ),
            format!("slave_timeout={}", f(self.slave_timeout)),
            format!("max_retries={}", self.max_retries),
            format!("shards={}", self.shards),
            format!("shard_epoch={}", self.shard_epoch),
        ]
        .join(",")
    }

    /// Parse a [`ClusterConfig::to_kv_string`] token. Unknown keys and
    /// malformed values are errors; omitted keys keep their defaults
    /// (the encoder always emits every key, so a full round trip is
    /// exact — `from_kv_string(to_kv_string()) == self`, floats
    /// included).
    pub fn from_kv_string(s: &str) -> Result<Self, String> {
        fn float(v: &str) -> Result<f64, String> {
            let bits =
                u64::from_str_radix(v, 16).map_err(|e| format!("bad float bits {v:?}: {e}"))?;
            Ok(f64::from_bits(bits))
        }
        fn flag(v: &str) -> Result<bool, String> {
            match v {
                "0" => Ok(false),
                "1" => Ok(true),
                _ => Err(format!("bad flag {v:?} (want 0 or 1)")),
            }
        }
        fn int<T: std::str::FromStr>(v: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("bad integer {v:?}: {e}"))
        }

        let mut cfg = ClusterConfig::default();
        for entry in s.split(',').filter(|e| !e.is_empty()) {
            let (k, v) = entry
                .split_once('=')
                .ok_or_else(|| format!("malformed config entry {entry:?}"))?;
            match k {
                "window_w" => cfg.window_w = int(v)?,
                "psi" => cfg.psi = int(v)?,
                "batchsize" => cfg.batchsize = int(v)?,
                "workbuf_cap" => cfg.workbuf_cap = int(v)?,
                "pairbuf_cap" => cfg.pairbuf_cap = int(v)?,
                "match_score" => cfg.scoring.match_score = int(v)?,
                "mismatch" => cfg.scoring.mismatch = int(v)?,
                "gap_open" => cfg.scoring.gap_open = int(v)?,
                "gap_extend" => cfg.scoring.gap_extend = int(v)?,
                "min_score_ratio" => cfg.overlap.min_score_ratio = float(v)?,
                "min_overlap_len" => cfg.overlap.min_overlap_len = int(v)?,
                "band_radius" => cfg.band_radius = int(v)?,
                "order" => {
                    cfg.order = match v {
                        "decreasing_mcs" => PairOrder::DecreasingMcs,
                        "arbitrary" => PairOrder::Arbitrary,
                        _ => return Err(format!("unknown pair order {v:?}")),
                    }
                }
                "skip_clustered_pairs" => cfg.skip_clustered_pairs = flag(v)?,
                "prefilter_overlap" => cfg.prefilter_overlap = flag(v)?,
                "prefilter_min_diag_identity" => cfg.prefilter_min_diag_identity = float(v)?,
                "packed_alignment" => cfg.packed_alignment = flag(v)?,
                "myers_alignment" => cfg.myers_alignment = flag(v)?,
                "sketch_k" => cfg.sketch_k = int(v)?,
                "sketch_size" => cfg.sketch_size = int(v)?,
                "prefilter_min_sketch_jaccard" => cfg.prefilter_min_sketch_jaccard = float(v)?,
                "slave_timeout" => cfg.slave_timeout = float(v)?,
                "max_retries" => cfg.max_retries = int(v)?,
                "shards" => cfg.shards = int(v)?,
                "shard_epoch" => cfg.shard_epoch = int(v)?,
                _ => return Err(format!("unknown config key {k:?}")),
            }
        }
        Ok(cfg)
    }

    /// Check internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_w == 0 || self.window_w > 12 {
            return Err(format!("window_w {} out of range 1..=12", self.window_w));
        }
        if (self.psi as usize) < self.window_w {
            return Err(format!(
                "psi {} must be >= window_w {}",
                self.psi, self.window_w
            ));
        }
        if self.batchsize == 0 {
            return Err("batchsize must be positive".into());
        }
        if self.workbuf_cap < self.batchsize {
            return Err(format!(
                "workbuf_cap {} smaller than batchsize {}",
                self.workbuf_cap, self.batchsize
            ));
        }
        if self.pairbuf_cap == 0 {
            return Err("pairbuf_cap must be positive".into());
        }
        self.scoring.validate()?;
        if !(0.0..=1.0).contains(&self.overlap.min_score_ratio) {
            return Err(format!(
                "min_score_ratio {} not a ratio",
                self.overlap.min_score_ratio
            ));
        }
        if !(0.0..=1.0).contains(&self.prefilter_min_diag_identity) {
            return Err(format!(
                "prefilter_min_diag_identity {} not a fraction",
                self.prefilter_min_diag_identity
            ));
        }
        if self.myers_alignment {
            if self.scoring.edit_unit_cost().is_none() {
                return Err(format!(
                    "myers_alignment needs an edit-convertible scoring \
                     (linear gaps with 2·(match − mismatch) == match − 2·gap, \
                     e.g. match=2, mismatch=0, gap=-1); got match={} mismatch={} \
                     gap_open={} gap_extend={}",
                    self.scoring.match_score,
                    self.scoring.mismatch,
                    self.scoring.gap_open,
                    self.scoring.gap_extend
                ));
            }
            if self.band_radius > pace_align::MYERS_MAX_RADIUS {
                return Err(format!(
                    "myers_alignment supports band_radius <= {}, got {}",
                    pace_align::MYERS_MAX_RADIUS,
                    self.band_radius
                ));
            }
        }
        pace_seq::SketchParams {
            k: self.sketch_k,
            s: self.sketch_size,
        }
        .validate()?;
        if !(0.0..=1.0).contains(&self.prefilter_min_sketch_jaccard) {
            return Err(format!(
                "prefilter_min_sketch_jaccard {} not a fraction",
                self.prefilter_min_sketch_jaccard
            ));
        }
        if self.slave_timeout <= 0.0 || !self.slave_timeout.is_finite() {
            return Err(format!(
                "slave_timeout {} must be a positive finite number of seconds",
                self.slave_timeout
            ));
        }
        if self.shard_epoch == 0 {
            return Err("shard_epoch must be positive".into());
        }
        Ok(())
    }
}

/// The role a simulated rank plays in a sharded world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRole {
    /// Rank 0: folds cross-shard merges and replays shard traces.
    Reconciler,
    /// Ranks `1..=K`: sub-master owning shard `.0`.
    SubMaster(usize),
    /// Ranks `K+1..p`: slave with local index `.0` (0-based).
    Slave(usize),
}

/// Rank layout of a sharded world: rank 0 is the reconciler, ranks
/// `1..=K` are sub-masters (shard `s` lives at rank `1 + s`), and the
/// remaining ranks are slaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTopology {
    /// World size.
    pub world: usize,
    /// Sub-master count K.
    pub shards: usize,
}

impl ShardTopology {
    /// Validate `world` against `shards`: a sharded world needs the
    /// reconciler, every sub-master, and at least one slave.
    pub fn new(world: usize, shards: usize) -> Result<Self, String> {
        if shards == 0 {
            return Err("sharded topology needs at least one shard".into());
        }
        if world < shards + 2 {
            return Err(format!(
                "world size {world} too small for {shards} shards (need >= {})",
                shards + 2
            ));
        }
        Ok(ShardTopology { world, shards })
    }

    /// Number of slave ranks.
    pub fn num_slaves(&self) -> usize {
        self.world - self.shards - 1
    }

    /// The role of `rank`.
    pub fn role_of(&self, rank: usize) -> ShardRole {
        debug_assert!(rank < self.world);
        if rank == 0 {
            ShardRole::Reconciler
        } else if rank <= self.shards {
            ShardRole::SubMaster(rank - 1)
        } else {
            ShardRole::Slave(rank - self.shards - 1)
        }
    }

    /// The rank hosting sub-master `shard`.
    pub fn submaster_rank(&self, shard: usize) -> usize {
        debug_assert!(shard < self.shards);
        1 + shard
    }

    /// The rank hosting slave `idx`.
    pub fn slave_rank(&self, idx: usize) -> usize {
        debug_assert!(idx < self.num_slaves());
        self.shards + 1 + idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_settings() {
        let c = ClusterConfig::default();
        c.validate().unwrap();
        assert_eq!(c.window_w, 8);
        assert_eq!(c.batchsize, 60);
        assert!(c.skip_clustered_pairs);
    }

    #[test]
    fn small_preset_is_valid() {
        ClusterConfig::small().validate().unwrap();
    }

    #[test]
    fn validation_rejects_psi_below_window() {
        let c = ClusterConfig {
            psi: 4,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_batch() {
        let c = ClusterConfig {
            batchsize: 0,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_diag_identity() {
        let c = ClusterConfig {
            prefilter_min_diag_identity: 1.5,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ClusterConfig {
            prefilter_min_diag_identity: -0.1,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_slave_timeout() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let c = ClusterConfig {
                slave_timeout: bad,
                ..ClusterConfig::default()
            };
            assert!(c.validate().is_err(), "slave_timeout {bad} accepted");
        }
    }

    #[test]
    fn kv_round_trip_is_exact() {
        let mut odd = ClusterConfig::small();
        odd.psi = 17;
        odd.batchsize = 41;
        odd.order = PairOrder::Arbitrary;
        odd.packed_alignment = true;
        odd.skip_clustered_pairs = false;
        odd.slave_timeout = 0.3;
        odd.overlap.min_score_ratio = 0.1 + 0.2; // not representable cleanly
        odd.prefilter_min_diag_identity = 0.625;
        odd.myers_alignment = true;
        odd.scoring = pace_align::Scoring::edit_linear();
        odd.sketch_k = 9;
        odd.sketch_size = 48;
        odd.prefilter_min_sketch_jaccard = 0.1 + 0.03;
        for cfg in [ClusterConfig::default(), ClusterConfig::small(), odd] {
            let s = cfg.to_kv_string();
            assert!(!s.contains(' '), "argv token must not contain spaces: {s}");
            let back = ClusterConfig::from_kv_string(&s).expect("parse");
            assert_eq!(back, cfg, "round trip changed the config: {s}");
        }
    }

    #[test]
    fn kv_parse_rejects_junk() {
        assert!(ClusterConfig::from_kv_string("nonsense=1").is_err());
        assert!(ClusterConfig::from_kv_string("window_w").is_err());
        assert!(ClusterConfig::from_kv_string("psi=abc").is_err());
        assert!(ClusterConfig::from_kv_string("order=sideways").is_err());
        assert!(ClusterConfig::from_kv_string("packed_alignment=yes").is_err());
        assert!(ClusterConfig::from_kv_string("slave_timeout=zz").is_err());
        // Empty string is the default config.
        assert_eq!(
            ClusterConfig::from_kv_string("").unwrap(),
            ClusterConfig::default()
        );
    }

    #[test]
    fn myers_flag_requires_convertible_scoring() {
        // Off by default, and default scoring is not convertible.
        let c = ClusterConfig::default();
        assert!(!c.myers_alignment);
        // Turning it on under the default (affine) scoring must fail.
        let c = ClusterConfig {
            myers_alignment: true,
            ..ClusterConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("edit-convertible"), "{err}");
        // A convertible scheme passes…
        let mut c = ClusterConfig::default();
        c.myers_alignment = true;
        c.scoring = pace_align::Scoring::edit_linear();
        c.validate().unwrap();
        // …until the radius leaves the single-word band.
        c.band_radius = 32;
        assert!(c.validate().unwrap_err().contains("band_radius"));
    }

    #[test]
    fn sketch_settings_are_validated() {
        for (k, s) in [(0usize, 32usize), (32, 32), (11, 0)] {
            let c = ClusterConfig {
                sketch_k: k,
                sketch_size: s,
                ..ClusterConfig::default()
            };
            assert!(c.validate().is_err(), "sketch k={k} s={s} accepted");
        }
        let c = ClusterConfig {
            prefilter_min_sketch_jaccard: 1.5,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
        assert_eq!(
            ClusterConfig::default().prefilter_min_sketch_jaccard,
            0.0,
            "sketch prefilter must be opt-in"
        );
    }

    #[test]
    fn kv_carries_shard_settings() {
        let cfg = ClusterConfig {
            shards: 4,
            shard_epoch: 7,
            ..ClusterConfig::small()
        };
        let back = ClusterConfig::from_kv_string(&cfg.to_kv_string()).unwrap();
        assert_eq!(back.shards, 4);
        assert_eq!(back.shard_epoch, 7);
    }

    #[test]
    fn validation_rejects_zero_shard_epoch() {
        let c = ClusterConfig {
            shard_epoch: 0,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn shard_topology_assigns_roles() {
        let t = ShardTopology::new(7, 2).unwrap();
        assert_eq!(t.num_slaves(), 4);
        assert_eq!(t.role_of(0), ShardRole::Reconciler);
        assert_eq!(t.role_of(1), ShardRole::SubMaster(0));
        assert_eq!(t.role_of(2), ShardRole::SubMaster(1));
        assert_eq!(t.role_of(3), ShardRole::Slave(0));
        assert_eq!(t.role_of(6), ShardRole::Slave(3));
        assert_eq!(t.submaster_rank(1), 2);
        assert_eq!(t.slave_rank(3), 6);
    }

    #[test]
    fn shard_topology_rejects_small_worlds() {
        assert!(ShardTopology::new(3, 2).is_err());
        assert!(ShardTopology::new(2, 0).is_err());
        assert!(ShardTopology::new(3, 1).is_ok());
    }

    #[test]
    fn validation_rejects_tiny_workbuf() {
        let c = ClusterConfig {
            workbuf_cap: 10,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
