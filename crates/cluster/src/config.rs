//! Clustering engine configuration.

use pace_align::{OverlapParams, Scoring};
use pace_pairgen::PairOrder;

/// All knobs of the clustering pipeline, with the paper's experimental
/// settings as defaults (window 8, batchsize 60).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Bucket window size `w` for suffix-tree construction. The paper
    /// uses 8 in its experiments.
    pub window_w: usize,
    /// Promising-pair threshold ψ: minimum maximal-common-substring
    /// length. Must be ≥ `window_w`.
    pub psi: u32,
    /// Pairs per master→slave work batch. The paper finds 40–60 optimal
    /// and uses 60.
    pub batchsize: usize,
    /// Capacity of the master's `WORKBUF` queue.
    pub workbuf_cap: usize,
    /// Capacity of each slave's `PAIRBUF` of pre-generated pairs.
    pub pairbuf_cap: usize,
    /// Alignment scoring scheme.
    pub scoring: Scoring,
    /// Accept thresholds for merge evidence.
    pub overlap: OverlapParams,
    /// Banded-DP half-width for anchor extension (errors tolerated).
    pub band_radius: usize,
    /// Pair generation order (decreasing MCS vs arbitrary — ablation).
    pub order: PairOrder,
    /// Whether the master skips pairs whose ESTs already share a cluster
    /// (`true` in PaCE; `false` reproduces the traditional behaviour for
    /// ablation).
    pub skip_clustered_pairs: bool,
    /// Reject a pair without running any DP when its anchor geometry
    /// proves the overlap cannot reach `overlap.min_overlap_len` even
    /// with every band-radius gap spent (lossless — the bound is an
    /// upper bound on the achievable overlap, property-tested in
    /// `pace-align`).
    pub prefilter_overlap: bool,
    /// Minimum exact-match fraction along the anchor diagonal for a pair
    /// to be aligned at all. `0.0` disables the filter (the default);
    /// positive values trade recall for speed (lossy) — useful on very
    /// noisy inputs where most promising pairs fail the score ratio.
    pub prefilter_min_diag_identity: f64,
    /// Align directly over the 2-bit packed representation instead of
    /// the ASCII store. Scores are bit-identical (equality-only scoring;
    /// property-tested); the packed text costs one extra pass at startup
    /// but quarters the bytes the alignment kernel touches.
    pub packed_alignment: bool,
    /// Seconds the master waits for a slave's report before re-sending
    /// the outstanding `Work` batch. Generous by default — on the
    /// fault-free path no deadline ever fires.
    pub slave_timeout: f64,
    /// Resends of one outstanding batch before the master declares the
    /// slave dead and reassigns its pairs to the survivors.
    pub max_retries: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            window_w: 8,
            psi: 20,
            batchsize: 60,
            workbuf_cap: 1 << 14,
            pairbuf_cap: 1 << 12,
            scoring: Scoring::default_est(),
            overlap: OverlapParams::default(),
            band_radius: 8,
            order: PairOrder::DecreasingMcs,
            skip_clustered_pairs: true,
            prefilter_overlap: true,
            prefilter_min_diag_identity: 0.0,
            packed_alignment: false,
            slave_timeout: 5.0,
            max_retries: 5,
        }
    }
}

impl ClusterConfig {
    /// A configuration suited to small test inputs (short reads, short
    /// overlaps): window 4, ψ 8, relaxed minimum overlap.
    pub fn small() -> Self {
        ClusterConfig {
            window_w: 4,
            psi: 8,
            overlap: OverlapParams {
                min_score_ratio: 0.75,
                min_overlap_len: 12,
            },
            ..ClusterConfig::default()
        }
    }

    /// Check internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_w == 0 || self.window_w > 12 {
            return Err(format!("window_w {} out of range 1..=12", self.window_w));
        }
        if (self.psi as usize) < self.window_w {
            return Err(format!(
                "psi {} must be >= window_w {}",
                self.psi, self.window_w
            ));
        }
        if self.batchsize == 0 {
            return Err("batchsize must be positive".into());
        }
        if self.workbuf_cap < self.batchsize {
            return Err(format!(
                "workbuf_cap {} smaller than batchsize {}",
                self.workbuf_cap, self.batchsize
            ));
        }
        if self.pairbuf_cap == 0 {
            return Err("pairbuf_cap must be positive".into());
        }
        self.scoring.validate()?;
        if !(0.0..=1.0).contains(&self.overlap.min_score_ratio) {
            return Err(format!(
                "min_score_ratio {} not a ratio",
                self.overlap.min_score_ratio
            ));
        }
        if !(0.0..=1.0).contains(&self.prefilter_min_diag_identity) {
            return Err(format!(
                "prefilter_min_diag_identity {} not a fraction",
                self.prefilter_min_diag_identity
            ));
        }
        if self.slave_timeout <= 0.0 || !self.slave_timeout.is_finite() {
            return Err(format!(
                "slave_timeout {} must be a positive finite number of seconds",
                self.slave_timeout
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_settings() {
        let c = ClusterConfig::default();
        c.validate().unwrap();
        assert_eq!(c.window_w, 8);
        assert_eq!(c.batchsize, 60);
        assert!(c.skip_clustered_pairs);
    }

    #[test]
    fn small_preset_is_valid() {
        ClusterConfig::small().validate().unwrap();
    }

    #[test]
    fn validation_rejects_psi_below_window() {
        let c = ClusterConfig {
            psi: 4,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_batch() {
        let c = ClusterConfig {
            batchsize: 0,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_diag_identity() {
        let c = ClusterConfig {
            prefilter_min_diag_identity: 1.5,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ClusterConfig {
            prefilter_min_diag_identity: -0.1,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_slave_timeout() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let c = ClusterConfig {
                slave_timeout: bad,
                ..ClusterConfig::default()
            };
            assert!(c.validate().is_err(), "slave_timeout {bad} accepted");
        }
    }

    #[test]
    fn validation_rejects_tiny_workbuf() {
        let c = ClusterConfig {
            workbuf_cap: 10,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
