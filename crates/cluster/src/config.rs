//! Clustering engine configuration.

use pace_align::{OverlapParams, Scoring};
use pace_pairgen::PairOrder;

/// All knobs of the clustering pipeline, with the paper's experimental
/// settings as defaults (window 8, batchsize 60).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Bucket window size `w` for suffix-tree construction. The paper
    /// uses 8 in its experiments.
    pub window_w: usize,
    /// Promising-pair threshold ψ: minimum maximal-common-substring
    /// length. Must be ≥ `window_w`.
    pub psi: u32,
    /// Pairs per master→slave work batch. The paper finds 40–60 optimal
    /// and uses 60.
    pub batchsize: usize,
    /// Capacity of the master's `WORKBUF` queue.
    pub workbuf_cap: usize,
    /// Capacity of each slave's `PAIRBUF` of pre-generated pairs.
    pub pairbuf_cap: usize,
    /// Alignment scoring scheme.
    pub scoring: Scoring,
    /// Accept thresholds for merge evidence.
    pub overlap: OverlapParams,
    /// Banded-DP half-width for anchor extension (errors tolerated).
    pub band_radius: usize,
    /// Pair generation order (decreasing MCS vs arbitrary — ablation).
    pub order: PairOrder,
    /// Whether the master skips pairs whose ESTs already share a cluster
    /// (`true` in PaCE; `false` reproduces the traditional behaviour for
    /// ablation).
    pub skip_clustered_pairs: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            window_w: 8,
            psi: 20,
            batchsize: 60,
            workbuf_cap: 1 << 14,
            pairbuf_cap: 1 << 12,
            scoring: Scoring::default_est(),
            overlap: OverlapParams::default(),
            band_radius: 8,
            order: PairOrder::DecreasingMcs,
            skip_clustered_pairs: true,
        }
    }
}

impl ClusterConfig {
    /// A configuration suited to small test inputs (short reads, short
    /// overlaps): window 4, ψ 8, relaxed minimum overlap.
    pub fn small() -> Self {
        ClusterConfig {
            window_w: 4,
            psi: 8,
            overlap: OverlapParams {
                min_score_ratio: 0.75,
                min_overlap_len: 12,
            },
            ..ClusterConfig::default()
        }
    }

    /// Check internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_w == 0 || self.window_w > 12 {
            return Err(format!("window_w {} out of range 1..=12", self.window_w));
        }
        if (self.psi as usize) < self.window_w {
            return Err(format!(
                "psi {} must be >= window_w {}",
                self.psi, self.window_w
            ));
        }
        if self.batchsize == 0 {
            return Err("batchsize must be positive".into());
        }
        if self.workbuf_cap < self.batchsize {
            return Err(format!(
                "workbuf_cap {} smaller than batchsize {}",
                self.workbuf_cap, self.batchsize
            ));
        }
        if self.pairbuf_cap == 0 {
            return Err("pairbuf_cap must be positive".into());
        }
        self.scoring.validate()?;
        if !(0.0..=1.0).contains(&self.overlap.min_score_ratio) {
            return Err(format!(
                "min_score_ratio {} not a ratio",
                self.overlap.min_score_ratio
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_settings() {
        let c = ClusterConfig::default();
        c.validate().unwrap();
        assert_eq!(c.window_w, 8);
        assert_eq!(c.batchsize, 60);
        assert!(c.skip_clustered_pairs);
    }

    #[test]
    fn small_preset_is_valid() {
        ClusterConfig::small().validate().unwrap();
    }

    #[test]
    fn validation_rejects_psi_below_window() {
        let c = ClusterConfig {
            psi: 4,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_batch() {
        let c = ClusterConfig {
            batchsize: 0,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_tiny_workbuf() {
        let c = ClusterConfig {
            workbuf_cap: 10,
            ..ClusterConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
