//! The master processor's state machine.
//!
//! The master owns the cluster structure and the work buffer, and reacts
//! to slave reports; it is written as a pure state machine (no I/O, no
//! clock — the caller passes timestamps) so the protocol logic is
//! unit-testable without threads. The parallel driver feeds it received
//! messages plus periodic `tick`s and sends whatever it returns.
//!
//! Protocol invariant: a slave piggybacks the results of work batch `k`
//! on the report it sends when work batch `k+1` arrives. The master
//! therefore may park a slave (send no reply) only when it is owed no
//! results; otherwise it sends an empty `Work` to flush them back.
//!
//! ## Recovery
//!
//! Every `Work` carries a per-slave sequence number and is remembered
//! until its report arrives; at most one batch per slave is ever
//! outstanding. If the report misses its deadline the batch is re-sent
//! under the *same* sequence number (slaves answer duplicates from a
//! cached report, so nothing is aligned twice), and after
//! `max_retries` resends the slave is declared dead: its outstanding
//! pairs go back on the work buffer for the survivors and the run
//! degrades to `p − 2` workers. Reports that do not match the expected
//! sequence number — duplicates from recovered slaves, stragglers from
//! slaves already declared dead, or messages still in flight when the
//! world tears down — are counted and ignored rather than corrupting
//! state (or, as an earlier version did, tripping an assertion).

use crate::align_task::PairOutcome;
use crate::config::ClusterConfig;
use crate::messages::Msg;
use crate::stats::ClusterStats;
use crate::trace::MergeTrace;
use pace_dsu::DisjointSets;
use pace_pairgen::CandidatePair;
use std::collections::VecDeque;

/// Cap applied to the demand amplification factor α = P/P′ when a report
/// contributes no useful pairs (P′ = 0).
const ALPHA_CAP: f64 = 4.0;

/// The cluster-structure operations the master needs. The flat
/// [`DisjointSets`] is the single-master implementation; the sharded
/// driver plugs in a shard-local view whose `same` is a conservative
/// under-approximation of global connectivity (never claiming two ESTs
/// connected when they might not be), which keeps pair skipping sound.
pub trait ClusterSets {
    /// Merge the clusters of `a` and `b`. Returns `true` when a merge is
    /// recorded (i.e. the caller should log it in the merge trace).
    fn union(&mut self, a: usize, b: usize) -> bool;
    /// Whether `a` and `b` are provably in the same cluster. `false` is
    /// always a safe answer; `true` must be certain.
    fn same(&mut self, a: usize, b: usize) -> bool;
}

impl ClusterSets for DisjointSets {
    fn union(&mut self, a: usize, b: usize) -> bool {
        DisjointSets::union(self, a, b)
    }
    fn same(&mut self, a: usize, b: usize) -> bool {
        DisjointSets::same(self, a, b)
    }
}

/// The sharded master's view: in-range unions are local, straddling
/// ones are logged as cross edges (`union` still returns `true` the
/// first time so the merge lands in the shard's trace), and `same` is
/// `false` for anything out of range — the safe under-approximation.
impl ClusterSets for pace_dsu::ShardDsu {
    fn union(&mut self, a: usize, b: usize) -> bool {
        pace_dsu::ShardDsu::union(self, a, b)
    }
    fn same(&mut self, a: usize, b: usize) -> bool {
        pace_dsu::ShardDsu::same(self, a, b)
    }
}

/// A recovery action the master took, for the driver to surface as a
/// fault event. Purely observational — counters live in
/// [`ClusterStats::faults`](crate::stats::FaultStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultNote {
    /// An outstanding batch was re-sent (`retry` counts from 1).
    Resend { slave: usize, seq: u64, retry: u32 },
    /// A slave exhausted its retry budget; `reassigned` of its pairs
    /// went back on the work buffer.
    DeadSlave { slave: usize, reassigned: usize },
    /// A report was ignored as duplicate or stale.
    DuplicateReport { slave: usize, seq: u64 },
    /// Queued pairs were discarded because no live slave remained.
    Abandoned { pairs: u64 },
}

/// Per-slave protocol state.
struct SlaveLink {
    /// Slave has permanently run out of pairs to generate.
    exhausted: bool,
    /// Declared dead after exhausting the retry budget.
    dead: bool,
    /// Sequence number of the outstanding message we await a report for
    /// (`Some(0)` initially: the unsolicited startup report).
    expecting: Option<u64>,
    /// The work batch behind `expecting`, kept verbatim for resend and
    /// reassignment. `None` while awaiting the startup report.
    pending: Option<(Vec<CandidatePair>, usize)>,
    /// The last work batch sent was non-empty, so its results are still
    /// on the slave (initially true: the slave's self-assigned second
    /// startup portion plays the role of the first work batch).
    owed_results: bool,
    /// Next fresh sequence number (startup is 0; batches count from 1).
    next_seq: u64,
    /// When the outstanding report is overdue (`INFINITY` = never; armed
    /// by [`Master::begin`] and every send).
    deadline: f64,
    /// Resends already performed for the outstanding sequence number.
    retries: u32,
}

/// Master state: `CLUSTERS` + `WORKBUF` + flow control + recovery.
///
/// Generic over the cluster structure so the same protocol machine runs
/// both as the flat single master (`Master<DisjointSets>`, the default)
/// and as a sharded sub-master over an id-range view.
pub struct Master<S: ClusterSets = DisjointSets> {
    clusters: S,
    workbuf: VecDeque<CandidatePair>,
    cfg: ClusterConfig,
    num_slaves: usize,
    links: Vec<SlaveLink>,
    /// Slaves parked without work (all of them exhausted and flushed).
    waiting: VecDeque<usize>,
    /// Statistics accumulated master-side. `pairs_generated` counts the
    /// pairs *received* in reports — under message loss this is less
    /// than what the generators emitted; the driver reconciles.
    pub stats: ClusterStats,
    /// Audit log of every merge, in the order it was performed.
    pub trace: MergeTrace,
    /// Recovery actions since the last [`Master::drain_fault_notes`].
    notes: Vec<FaultNote>,
    done: bool,
}

impl Master {
    /// A master over `num_ests` ESTs and `num_slaves` slave ranks.
    ///
    /// Every slave is initially expected to send the unsolicited startup
    /// report (first portion's results + third portion's pairs) under
    /// sequence number 0. Deadlines stay unarmed (infinite) until
    /// [`Master::begin`].
    pub fn new(num_ests: usize, num_slaves: usize, cfg: ClusterConfig) -> Self {
        Master::with_sets(DisjointSets::new(num_ests), num_slaves, cfg)
    }
}

impl<S: ClusterSets> Master<S> {
    /// A master over an arbitrary cluster structure (used by the sharded
    /// driver with a [`ShardDsu`](pace_dsu::ShardDsu) id-range view).
    /// Same protocol state as [`Master::new`].
    pub fn with_sets(sets: S, num_slaves: usize, cfg: ClusterConfig) -> Self {
        assert!(num_slaves > 0, "need at least one slave");
        Master {
            clusters: sets,
            workbuf: VecDeque::new(),
            cfg,
            num_slaves,
            links: (0..num_slaves)
                .map(|_| SlaveLink {
                    exhausted: false,
                    dead: false,
                    expecting: Some(0),
                    pending: None,
                    owed_results: true,
                    next_seq: 1,
                    deadline: f64::INFINITY,
                    retries: 0,
                })
                .collect(),
            waiting: VecDeque::new(),
            stats: ClusterStats::default(),
            trace: MergeTrace::new(),
            notes: Vec::new(),
            done: false,
        }
    }

    /// Arm the startup-report deadlines. Call once when the protocol
    /// loop starts; without it the master never times anyone out.
    pub fn begin(&mut self, now: f64) {
        for link in &mut self.links {
            if link.expecting.is_some() && !link.dead {
                link.deadline = now + self.cfg.slave_timeout;
            }
        }
    }

    /// Whether clustering has completed (shutdowns have been issued).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Pairs currently queued for alignment.
    pub fn workbuf_len(&self) -> usize {
        self.workbuf.len()
    }

    /// Whether `slave` has been declared dead.
    pub fn is_dead(&self, slave: usize) -> bool {
        self.links[slave].dead
    }

    /// Whether `slave` is parked (exhausted, flushed, awaiting work).
    pub fn is_parked(&self, slave: usize) -> bool {
        self.waiting.contains(&slave)
    }

    /// The sequence number of the report the master currently awaits
    /// from `slave`, if any.
    pub fn expected_seq(&self, slave: usize) -> Option<u64> {
        self.links[slave].expecting
    }

    /// Recovery actions accumulated since the last drain, in order.
    pub fn drain_fault_notes(&mut self) -> Vec<FaultNote> {
        std::mem::take(&mut self.notes)
    }

    /// Consume the master, yielding the final cluster structure.
    pub fn into_clusters(self) -> S {
        self.clusters
    }

    /// Mutable access to the cluster structure (the sharded sub-master
    /// drains its pending cross edges through this at epoch barriers).
    pub fn sets_mut(&mut self) -> &mut S {
        &mut self.clusters
    }

    /// Handle one slave report (slave ids are `0..num_slaves`). Returns
    /// the messages to send, as `(slave, message)` pairs — the reply to
    /// the reporting slave, possibly wake-ups for parked slaves, and
    /// shutdowns once everything is finished.
    ///
    /// A report whose `seq` is not the one outstanding for that slave —
    /// or from a slave already declared dead — is counted and dropped:
    /// resends make duplicates a normal occurrence, and each sequence
    /// number must be folded into `CLUSTERS` exactly once.
    pub fn handle_report(
        &mut self,
        slave: usize,
        seq: u64,
        results: Vec<PairOutcome>,
        pairs: Vec<CandidatePair>,
        exhausted: bool,
        now: f64,
    ) -> Vec<(usize, Msg)> {
        debug_assert!(slave < self.num_slaves);
        let link = &mut self.links[slave];
        if link.dead || link.expecting != Some(seq) {
            self.stats.faults.duplicate_reports += 1;
            self.notes.push(FaultNote::DuplicateReport { slave, seq });
            return Vec::new();
        }
        link.expecting = None;
        link.pending = None;
        link.retries = 0;
        link.deadline = f64::INFINITY;
        link.exhausted |= exhausted;

        // 1. Fold the alignment results into CLUSTERS.
        for r in &results {
            self.stats.pairs_processed += 1;
            if r.accepted {
                self.stats.pairs_accepted += 1;
                let (i, j) = r.pair.est_indices();
                if self.clusters.union(i, j) {
                    self.stats.merges += 1;
                    self.trace.record(r);
                }
            }
        }

        // 2. Admit the useful subset of the reported pairs (P′ of P):
        //    a pair earns a WORKBUF slot only if its ESTs are still in
        //    different clusters.
        let p = pairs.len();
        let mut p_useful = 0usize;
        for pair in pairs {
            self.stats.pairs_generated += 1;
            let (i, j) = pair.est_indices();
            if self.cfg.skip_clustered_pairs && self.clusters.same(i, j) {
                self.stats.pairs_skipped += 1;
            } else {
                self.workbuf.push_back(pair);
                p_useful += 1;
            }
        }

        let mut out = Vec::new();

        // 3. Reply to the reporting slave.
        if let Some(msg) = self.reply_for(slave, p, p_useful, now) {
            out.push((slave, msg));
        }

        // 4. Excess work re-activates parked slaves.
        self.dispatch_waiting(now, &mut out);

        // 5. Termination check.
        self.maybe_finish(&mut out);
        out
    }

    /// Deadline sweep: re-send overdue batches, declare slaves past
    /// their retry budget dead (reassigning their pairs), and re-check
    /// dispatch and termination. The driver calls this on every poll
    /// cycle; with no deadline passed it returns nothing.
    pub fn tick(&mut self, now: f64) -> Vec<(usize, Msg)> {
        let mut out = Vec::new();
        if self.done {
            return out;
        }
        for s in 0..self.num_slaves {
            let link = &mut self.links[s];
            let Some(seq) = link.expecting else { continue };
            if link.dead || now < link.deadline {
                continue;
            }
            if link.retries < self.cfg.max_retries {
                link.retries += 1;
                link.deadline = now + self.cfg.slave_timeout;
                let retry = link.retries;
                let msg = match &link.pending {
                    Some((work, request)) => Msg::Work {
                        seq,
                        pairs: work.clone(),
                        request: *request,
                    },
                    // The startup report is missing: probe with an empty
                    // batch under seq 0 — the slave answers duplicates
                    // with its cached report.
                    None => Msg::Work {
                        seq: 0,
                        pairs: Vec::new(),
                        request: 0,
                    },
                };
                self.stats.faults.retries += 1;
                self.notes.push(FaultNote::Resend {
                    slave: s,
                    seq,
                    retry,
                });
                out.push((s, msg));
            } else {
                self.declare_dead(s);
            }
        }
        self.dispatch_waiting(now, &mut out);
        self.maybe_finish(&mut out);
        out
    }

    /// The runtime reported that no message can ever arrive again (the
    /// world is tearing down). Write off every slave still owing us
    /// anything, discard undispatchable work, and finish — the in-flight
    /// messages we will never see must not keep the master looping.
    pub fn handle_world_down(&mut self) {
        for s in 0..self.num_slaves {
            let l = &self.links[s];
            if !l.dead && (l.expecting.is_some() || l.owed_results || !l.exhausted) {
                self.declare_dead(s);
            }
        }
        self.abandon_workbuf();
        self.done = true;
    }

    /// Build the `Work { W, E }` reply, or `None` when the slave can be
    /// parked: nothing to align, nothing to request, nothing owed.
    fn reply_for(&mut self, slave: usize, p: usize, p_useful: usize, now: f64) -> Option<Msg> {
        let work = self.drain_work();

        let request = if self.links[slave].exhausted {
            0
        } else {
            // α = P / P′ (how many raw pairs buy one useful pair).
            let alpha = if p_useful > 0 {
                (p as f64 / p_useful as f64).min(ALPHA_CAP)
            } else if p > 0 {
                ALPHA_CAP
            } else {
                1.0
            };
            // δ = p / (active slaves): over-request to keep passive slaves
            // supplied with alignment work.
            let active = self.links.iter().filter(|l| !l.exhausted).count().max(1);
            let delta = self.num_slaves as f64 / active as f64;
            let nfree = self.cfg.workbuf_cap.saturating_sub(self.workbuf.len());
            let demand = (alpha * delta * self.cfg.batchsize as f64).round() as usize;
            // Active slaves always request at least one pair so they never
            // stall silently.
            demand.min(nfree / self.num_slaves).max(1)
        };

        if work.is_empty() && request == 0 && !self.links[slave].owed_results {
            self.waiting.push_back(slave);
            return None;
        }
        Some(self.send_work(slave, work, request, now))
    }

    /// Record a fresh outgoing batch for `slave` — sequence number,
    /// resend copy, deadline — and build its message.
    fn send_work(
        &mut self,
        slave: usize,
        work: Vec<CandidatePair>,
        request: usize,
        now: f64,
    ) -> Msg {
        let link = &mut self.links[slave];
        debug_assert!(!link.dead && link.expecting.is_none());
        let seq = link.next_seq;
        link.next_seq += 1;
        link.owed_results = !work.is_empty();
        link.expecting = Some(seq);
        link.pending = Some((work.clone(), request));
        link.retries = 0;
        link.deadline = now + self.cfg.slave_timeout;
        Msg::Work {
            seq,
            pairs: work,
            request,
        }
    }

    /// Hand queued work to parked slaves while both exist.
    fn dispatch_waiting(&mut self, now: f64, out: &mut Vec<(usize, Msg)>) {
        while !self.workbuf.is_empty() && !self.waiting.is_empty() {
            let s = self.waiting.pop_front().expect("checked non-empty");
            let work = self.drain_work();
            if work.is_empty() {
                // Everything left in the buffer got skipped; re-park.
                self.waiting.push_front(s);
                break;
            }
            out.push((s, self.send_work(s, work, 0, now)));
        }
    }

    /// Termination: every slave dead, or out of pairs with nothing
    /// outstanding; no queued work (unless nobody is left to run it).
    fn maybe_finish(&mut self, out: &mut Vec<(usize, Msg)>) {
        if self.done {
            return;
        }
        let settled = self
            .links
            .iter()
            .all(|l| l.dead || (l.exhausted && l.expecting.is_none() && !l.owed_results));
        if !settled {
            return;
        }
        if !self.workbuf.is_empty() {
            // A live settled slave is parked, and `dispatch_waiting` ran
            // before this check — so leftover work means everyone died.
            if self.links.iter().any(|l| !l.dead) {
                return;
            }
            self.abandon_workbuf();
        }
        self.done = true;
        // Dead slaves get one too: if a "dead" slave was merely slow,
        // the shutdown releases it; if truly gone, the send is discarded.
        for s in 0..self.num_slaves {
            out.push((s, Msg::Shutdown));
        }
    }

    /// Give up on `slave`: mark it dead and put its outstanding batch
    /// back on the work buffer for the survivors.
    fn declare_dead(&mut self, slave: usize) {
        let link = &mut self.links[slave];
        link.dead = true;
        link.exhausted = true;
        link.expecting = None;
        link.owed_results = false;
        link.deadline = f64::INFINITY;
        let pending = link.pending.take();
        let reassigned = pending.as_ref().map_or(0, |(w, _)| w.len());
        if let Some((work, _)) = pending {
            for pair in work {
                self.workbuf.push_back(pair);
            }
        }
        self.waiting.retain(|&w| w != slave);
        self.stats.faults.dead_slaves += 1;
        self.stats.faults.reassigned_pairs += reassigned as u64;
        self.notes.push(FaultNote::DeadSlave { slave, reassigned });
    }

    /// Discard everything still queued (no live slave remains), keeping
    /// flow conservation: abandoned pairs count as skipped.
    fn abandon_workbuf(&mut self) {
        let n = self.workbuf.len() as u64;
        if n == 0 {
            return;
        }
        self.workbuf.clear();
        self.stats.pairs_skipped += n;
        self.stats.faults.abandoned_pairs += n;
        self.notes.push(FaultNote::Abandoned { pairs: n });
    }

    /// Pull up to `batchsize` pairs from WORKBUF, re-checking each against
    /// the *latest* cluster state (a pair admitted earlier may have become
    /// redundant since).
    fn drain_work(&mut self) -> Vec<CandidatePair> {
        let mut work = Vec::with_capacity(self.cfg.batchsize.min(self.workbuf.len()));
        while work.len() < self.cfg.batchsize {
            let Some(pair) = self.workbuf.pop_front() else {
                break;
            };
            let (i, j) = pair.est_indices();
            if self.cfg.skip_clustered_pairs && self.clusters.same(i, j) {
                self.stats.pairs_skipped += 1;
            } else {
                work.push(pair);
            }
        }
        work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_seq::{EstId, Strand};

    fn pair(i: u32, j: u32) -> CandidatePair {
        CandidatePair {
            s1: EstId(i).str_id(Strand::Forward),
            s2: EstId(j).str_id(Strand::Forward),
            off1: 0,
            off2: 0,
            mcs_len: 30,
        }
    }

    fn outcome(i: u32, j: u32, accepted: bool) -> PairOutcome {
        PairOutcome {
            pair: pair(i, j),
            accepted,
            score_ratio: if accepted { 0.95 } else { 0.2 },
        }
    }

    fn cfg() -> ClusterConfig {
        let mut c = ClusterConfig::small();
        c.batchsize = 4;
        c.workbuf_cap = 64;
        c
    }

    /// Deliver a report under the sequence number the master currently
    /// expects from `slave` — the happy path every pre-recovery test
    /// exercised.
    fn report(
        m: &mut Master,
        slave: usize,
        results: Vec<PairOutcome>,
        pairs: Vec<CandidatePair>,
        exhausted: bool,
    ) -> Vec<(usize, Msg)> {
        let seq = m
            .expected_seq(slave)
            .expect("test sent a report the master is not expecting");
        m.handle_report(slave, seq, results, pairs, exhausted, 0.0)
    }

    /// Report with `exhausted: true` and nothing else, repeatedly, until
    /// the master stops responding — drains the flush handshake.
    fn drain_slave(m: &mut Master, slave: usize) -> Vec<(usize, Msg)> {
        let mut all = Vec::new();
        loop {
            let replies = report(m, slave, vec![], vec![], true);
            let work_for_me = replies
                .iter()
                .any(|(s, msg)| *s == slave && matches!(msg, Msg::Work { .. }));
            all.extend(replies);
            if !work_for_me {
                return all;
            }
        }
    }

    #[test]
    fn accepted_results_merge_clusters() {
        let mut m = Master::new(10, 1, cfg());
        let replies = report(
            &mut m,
            0,
            vec![outcome(1, 2, true), outcome(3, 4, false)],
            vec![],
            false,
        );
        assert_eq!(m.stats.pairs_processed, 2);
        assert_eq!(m.stats.pairs_accepted, 1);
        assert_eq!(m.stats.merges, 1);
        // Active slave always gets a reply with positive demand.
        assert_eq!(replies.len(), 1);
        match &replies[0].1 {
            Msg::Work { pairs, request, .. } => {
                assert!(pairs.is_empty());
                assert!(*request > 0);
            }
            other => panic!("expected Work, got {}", other.kind()),
        }
        let mut clusters = m.into_clusters();
        assert!(clusters.same(1, 2));
        assert!(!clusters.same(3, 4));
    }

    #[test]
    fn redundant_pairs_are_skipped_at_admission() {
        let mut m = Master::new(10, 1, cfg());
        report(&mut m, 0, vec![outcome(1, 2, true)], vec![], false);
        report(&mut m, 0, vec![], vec![pair(1, 2), pair(5, 6)], false);
        assert_eq!(m.stats.pairs_generated, 2);
        assert_eq!(m.stats.pairs_skipped, 1);
    }

    #[test]
    fn work_is_rechecked_at_dispatch() {
        let mut c = cfg();
        c.batchsize = 1; // the duplicate stays queued while (5,6) merges
        let mut m = Master::new(10, 1, c);
        let replies = report(&mut m, 0, vec![], vec![pair(5, 6), pair(5, 6)], false);
        match &replies[0].1 {
            Msg::Work { pairs, .. } => assert_eq!(pairs.len(), 1),
            other => panic!("unexpected {}", other.kind()),
        }
        // The dispatched pair merges 5 and 6; the queued duplicate must be
        // dropped at the next dispatch.
        let replies = report(&mut m, 0, vec![outcome(5, 6, true)], vec![], false);
        match &replies[0].1 {
            Msg::Work { pairs, .. } => assert!(pairs.is_empty(), "stale pair dispatched"),
            other => panic!("unexpected {}", other.kind()),
        }
        assert_eq!(m.stats.pairs_skipped, 1);
    }

    #[test]
    fn exhausted_slaves_are_flushed_then_shut_down() {
        let mut m = Master::new(10, 2, cfg());
        // Both slaves report exhausted. Each first gets an empty flush
        // Work (their startup portion-2 results are still owed), then
        // parks; once both are parked the master shuts everything down.
        let r0 = drain_slave(&mut m, 0);
        assert!(
            r0.iter()
                .any(|(s, msg)| *s == 0
                    && matches!(msg, Msg::Work { pairs, .. } if pairs.is_empty())),
            "flush Work expected"
        );
        assert!(!m.is_done());
        let r1 = drain_slave(&mut m, 1);
        assert!(m.is_done());
        let shutdowns = r1
            .iter()
            .filter(|(_, msg)| matches!(msg, Msg::Shutdown))
            .count();
        assert_eq!(shutdowns, 2);
    }

    #[test]
    fn parked_slave_is_woken_by_new_work() {
        let mut m = Master::new(40, 2, cfg());
        drain_slave(&mut m, 0); // slave 0 exhausted, flushed, parked
        assert!(!m.is_done());
        assert!(m.is_parked(0));
        // Slave 1 reports fresh pairs; slave 0 must be woken with work.
        let replies = report(
            &mut m,
            1,
            vec![],
            (0..6).map(|k| pair(2 * k, 2 * k + 1)).collect(),
            false,
        );
        let to_slave0: Vec<_> = replies.iter().filter(|(s, _)| *s == 0).collect();
        assert_eq!(to_slave0.len(), 1);
        match &to_slave0[0].1 {
            Msg::Work { pairs, request, .. } => {
                assert!(!pairs.is_empty());
                assert_eq!(*request, 0, "exhausted slave asked for pairs");
            }
            other => panic!("unexpected {}", other.kind()),
        }
        assert!(!m.is_parked(0));
    }

    #[test]
    fn termination_waits_for_outstanding_results() {
        let mut m = Master::new(10, 1, cfg());
        // Slave gets real work, so the master owes it a flush even after
        // it reports exhausted.
        let replies = report(&mut m, 0, vec![], vec![pair(0, 1)], true);
        match &replies[0].1 {
            Msg::Work { pairs, .. } => assert_eq!(pairs.len(), 1),
            other => panic!("unexpected {}", other.kind()),
        }
        assert!(!m.is_done());
        // Results of that work come back; master flushes (empty Work).
        let replies = report(&mut m, 0, vec![outcome(0, 1, true)], vec![], true);
        assert!(
            matches!(&replies[0].1, Msg::Work { pairs, .. } if pairs.is_empty()),
            "flush expected"
        );
        assert!(!m.is_done());
        // Empty report closes the loop: now shutdown.
        let replies = report(&mut m, 0, vec![], vec![], true);
        assert!(m.is_done());
        assert!(replies.iter().any(|(_, msg)| matches!(msg, Msg::Shutdown)));
        assert_eq!(m.stats.merges, 1);
    }

    #[test]
    fn demand_respects_workbuf_free_space() {
        let mut c = cfg();
        c.workbuf_cap = 8;
        c.batchsize = 4;
        let mut m = Master::new(100, 1, c);
        let pairs: Vec<_> = (0..8).map(|k| pair(2 * k, 2 * k + 1)).collect();
        let replies = report(&mut m, 0, vec![], pairs, false);
        match &replies[0].1 {
            Msg::Work { pairs, request, .. } => {
                // 4 dispatched, 4 remain; nfree = 8 − 4 = 4 → E ≤ 4.
                assert_eq!(pairs.len(), 4);
                assert!(*request <= 4, "request {request} exceeds free space");
            }
            other => panic!("unexpected {}", other.kind()),
        }
    }

    #[test]
    fn stats_balance_generated() {
        let mut m = Master::new(10, 1, cfg());
        report(
            &mut m,
            0,
            vec![outcome(0, 1, true)],
            vec![pair(0, 1), pair(2, 3)],
            false,
        );
        assert_eq!(m.stats.pairs_generated, 2);
        assert_eq!(m.stats.pairs_skipped, 1);
    }

    // ---- recovery machinery ------------------------------------------

    #[test]
    fn sequence_numbers_are_per_slave_and_monotonic() {
        let mut m = Master::new(10, 2, cfg());
        let r = report(&mut m, 0, vec![], vec![], false);
        let Msg::Work { seq, .. } = &r[0].1 else {
            panic!("expected Work");
        };
        assert_eq!(*seq, 1);
        assert_eq!(m.expected_seq(0), Some(1));
        let r = m.handle_report(0, 1, vec![], vec![], false, 0.0);
        let Msg::Work { seq, .. } = &r[0].1 else {
            panic!("expected Work");
        };
        assert_eq!(*seq, 2);
        // Slave 1 still counts from its own startup sequence.
        assert_eq!(m.expected_seq(1), Some(0));
    }

    #[test]
    fn stale_or_unsolicited_reports_are_ignored_not_fatal() {
        // Regression: this used to trip `debug_assert!(expecting_report)`
        // and corrupt counters in release builds. A report the master is
        // not waiting for must be a counted no-op.
        let mut m = Master::new(10, 1, cfg());
        report(&mut m, 0, vec![], vec![], false); // consume startup (now expecting seq 1)
        let replies = m.handle_report(
            0,
            99,
            vec![outcome(1, 2, true)],
            vec![pair(3, 4)],
            true,
            0.0,
        );
        assert!(replies.is_empty(), "stale report must produce no sends");
        assert_eq!(m.stats.faults.duplicate_reports, 1);
        assert_eq!(m.stats.pairs_processed, 0, "stale results folded");
        assert_eq!(m.stats.pairs_generated, 0, "stale pairs admitted");
        assert!(!m.is_done());
        assert_eq!(
            m.drain_fault_notes(),
            vec![FaultNote::DuplicateReport { slave: 0, seq: 99 }]
        );
    }

    #[test]
    fn overdue_batch_is_resent_with_same_sequence_number() {
        let mut c = cfg();
        c.slave_timeout = 1.0;
        c.max_retries = 3;
        let mut m = Master::new(40, 1, c);
        let r = report(
            &mut m,
            0,
            vec![],
            (0..4).map(|k| pair(2 * k, 2 * k + 1)).collect(),
            false,
        );
        let Msg::Work {
            seq,
            pairs,
            request,
        } = &r[0].1
        else {
            panic!("expected Work");
        };
        let (orig_seq, orig_pairs, orig_request) = (*seq, pairs.clone(), *request);

        assert!(m.tick(0.5).is_empty(), "deadline not reached yet");
        let r = m.tick(1.5);
        assert_eq!(r.len(), 1);
        let Msg::Work {
            seq,
            pairs,
            request,
        } = &r[0].1
        else {
            panic!("expected resent Work");
        };
        assert_eq!(*seq, orig_seq, "resend must reuse the sequence number");
        assert_eq!(pairs.len(), orig_pairs.len());
        assert_eq!(*request, orig_request);
        assert_eq!(m.stats.faults.retries, 1);
        // The resent batch is answered normally.
        let r = m.handle_report(0, orig_seq, vec![], vec![], true, 2.0);
        assert!(!r.is_empty());
        assert_eq!(m.stats.faults.dead_slaves, 0);
    }

    #[test]
    fn startup_silence_is_probed_then_fatal() {
        let mut c = cfg();
        c.slave_timeout = 1.0;
        c.max_retries = 2;
        let mut m = Master::new(10, 1, c);
        m.begin(0.0);
        // Two probes under seq 0, then death; with every slave dead the
        // run finishes (shutdown still sent in case it was merely slow).
        let r = m.tick(1.5);
        assert!(
            matches!(&r[0].1, Msg::Work { seq: 0, pairs, request: 0 } if pairs.is_empty()),
            "expected empty probe"
        );
        let r = m.tick(3.0);
        assert_eq!(r.len(), 1);
        let r = m.tick(4.5);
        assert!(m.is_dead(0));
        assert!(m.is_done(), "all slaves dead must terminate the run");
        assert!(r.iter().any(|(_, msg)| matches!(msg, Msg::Shutdown)));
        assert_eq!(m.stats.faults.dead_slaves, 1);
        assert_eq!(m.stats.faults.retries, 2);
    }

    #[test]
    fn dead_slaves_pairs_are_reassigned_to_survivors() {
        let mut c = cfg();
        c.slave_timeout = 1.0;
        c.max_retries = 0; // first missed deadline is fatal
        let mut m = Master::new(40, 2, c);
        // Slave 0 takes a 4-pair batch and then goes silent.
        let r = report(
            &mut m,
            0,
            vec![],
            (0..8).map(|k| pair(2 * k, 2 * k + 1)).collect(),
            true,
        );
        let Msg::Work { pairs, .. } = &r[0].1 else {
            panic!("expected Work");
        };
        assert_eq!(pairs.len(), 4);
        let before = m.workbuf_len();
        m.tick(2.0);
        assert!(m.is_dead(0));
        assert_eq!(m.stats.faults.reassigned_pairs, 4);
        assert_eq!(m.workbuf_len(), before + 4, "pending batch reclaimed");
        assert!(!m.is_done(), "slave 1 still owes its startup report");
        // Slave 1 arrives and inherits the reassigned work.
        let r = report(&mut m, 1, vec![], vec![], true);
        assert!(
            r.iter()
                .any(|(s, msg)| *s == 1
                    && matches!(msg, Msg::Work { pairs, .. } if !pairs.is_empty())),
            "survivor did not receive reassigned pairs"
        );
        let notes = m.drain_fault_notes();
        assert!(notes.iter().any(|n| matches!(
            n,
            FaultNote::DeadSlave {
                slave: 0,
                reassigned: 4
            }
        )));
    }

    #[test]
    fn all_slaves_dead_abandons_queued_pairs_conservatively() {
        let mut c = cfg();
        c.slave_timeout = 1.0;
        c.max_retries = 0;
        c.batchsize = 2;
        let mut m = Master::new(40, 1, c);
        // 5 pairs arrive: 2 dispatched, 3 queued; then the slave dies.
        report(
            &mut m,
            0,
            vec![],
            (0..5).map(|k| pair(2 * k, 2 * k + 1)).collect(),
            true,
        );
        m.tick(2.0);
        assert!(m.is_dead(0) && m.is_done());
        // 2 reassigned + 3 queued = 5 abandoned; conservation holds:
        // received == processed + skipped.
        assert_eq!(m.stats.faults.reassigned_pairs, 2);
        assert_eq!(m.stats.faults.abandoned_pairs, 5);
        assert_eq!(
            m.stats.pairs_generated,
            m.stats.pairs_processed + m.stats.pairs_skipped
        );
        assert_eq!(m.workbuf_len(), 0);
    }

    #[test]
    fn world_down_terminates_with_accounting_intact() {
        // Regression for the latent shutdown bug: the world tears a rank
        // down while the master still expects its report. The master must
        // finish cleanly instead of spinning on a rank that cannot answer.
        let mut m = Master::new(40, 2, cfg());
        report(
            &mut m,
            0,
            vec![],
            (0..6).map(|k| pair(2 * k, 2 * k + 1)).collect(),
            false,
        );
        assert!(m.expected_seq(0).is_some(), "slave 0 owes a report");
        m.handle_world_down();
        assert!(m.is_done());
        assert_eq!(m.stats.faults.dead_slaves, 2);
        assert_eq!(m.workbuf_len(), 0);
        assert_eq!(
            m.stats.pairs_generated,
            m.stats.pairs_processed + m.stats.pairs_skipped
        );
        // Idempotent: a second notification changes nothing.
        let dup = m.stats;
        m.handle_world_down();
        assert_eq!(m.stats, dup);
    }

    #[test]
    fn resend_keeps_owed_slave_unparked() {
        // A slave owed results must never end up parked by the retry
        // path: parking is only legal once the flush handshake completed.
        let mut c = cfg();
        c.slave_timeout = 1.0;
        c.max_retries = 5;
        let mut m = Master::new(40, 1, c);
        report(
            &mut m,
            0,
            vec![],
            (0..4).map(|k| pair(2 * k, 2 * k + 1)).collect(),
            true,
        );
        for round in 1..=3 {
            m.tick(round as f64 * 1.5);
            assert!(!m.is_parked(0), "owed slave parked after resend {round}");
            assert!(m.expected_seq(0).is_some());
        }
    }

    #[test]
    fn begin_arms_startup_deadlines() {
        let mut c = cfg();
        c.slave_timeout = 1.0;
        c.max_retries = 1;
        let mut m = Master::new(10, 1, c);
        // Without begin(), deadlines stay infinite: tick never fires.
        assert!(m.tick(1e12).is_empty());
        m.begin(1e12);
        assert!(m.tick(1e12 + 0.5).is_empty());
        assert_eq!(m.tick(1e12 + 1.5).len(), 1, "armed deadline must fire");
    }
}
