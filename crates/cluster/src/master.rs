//! The master processor's state machine.
//!
//! The master owns the cluster structure and the work buffer, and reacts
//! to slave reports; it is written as a pure state machine (no I/O) so
//! the protocol logic is unit-testable without threads. The parallel
//! driver feeds it received messages and sends whatever it returns.
//!
//! Protocol invariant: a slave piggybacks the results of work batch `k`
//! on the report it sends when work batch `k+1` arrives. The master
//! therefore may park a slave (send no reply) only when it is owed no
//! results; otherwise it sends an empty `Work` to flush them back.

use crate::align_task::PairOutcome;
use crate::config::ClusterConfig;
use crate::messages::Msg;
use crate::stats::ClusterStats;
use crate::trace::MergeTrace;
use pace_dsu::DisjointSets;
use pace_pairgen::CandidatePair;
use std::collections::VecDeque;

/// Cap applied to the demand amplification factor α = P/P′ when a report
/// contributes no useful pairs (P′ = 0).
const ALPHA_CAP: f64 = 4.0;

/// Master state: `CLUSTERS` + `WORKBUF` + flow control.
pub struct Master {
    clusters: DisjointSets,
    workbuf: VecDeque<CandidatePair>,
    cfg: ClusterConfig,
    num_slaves: usize,
    /// Slave has permanently run out of pairs to generate.
    exhausted: Vec<bool>,
    /// A `Work` message is out and the matching report has not arrived.
    expecting_report: Vec<bool>,
    /// The last work batch sent was non-empty, so its results are still
    /// on the slave (initially true: the slave's self-assigned second
    /// startup portion plays the role of the first work batch).
    owed_results: Vec<bool>,
    /// Slaves parked without work (all of them exhausted and flushed).
    waiting: VecDeque<usize>,
    /// Statistics accumulated master-side.
    pub stats: ClusterStats,
    /// Audit log of every merge, in the order it was performed.
    pub trace: MergeTrace,
    done: bool,
}

impl Master {
    /// A master over `num_ests` ESTs and `num_slaves` slave ranks.
    ///
    /// Every slave is initially expected to send the unsolicited startup
    /// report (first portion's results + third portion's pairs).
    pub fn new(num_ests: usize, num_slaves: usize, cfg: ClusterConfig) -> Self {
        assert!(num_slaves > 0, "need at least one slave");
        Master {
            clusters: DisjointSets::new(num_ests),
            workbuf: VecDeque::new(),
            cfg,
            num_slaves,
            exhausted: vec![false; num_slaves],
            expecting_report: vec![true; num_slaves],
            owed_results: vec![true; num_slaves],
            waiting: VecDeque::new(),
            stats: ClusterStats::default(),
            trace: MergeTrace::new(),
            done: false,
        }
    }

    /// Whether clustering has completed (shutdowns have been issued).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Pairs currently queued for alignment.
    pub fn workbuf_len(&self) -> usize {
        self.workbuf.len()
    }

    /// Consume the master, yielding the final cluster structure.
    pub fn into_clusters(self) -> DisjointSets {
        self.clusters
    }

    /// Handle one slave report (slave ids are `0..num_slaves`). Returns
    /// the messages to send, as `(slave, message)` pairs — the reply to
    /// the reporting slave, possibly wake-ups for parked slaves, and
    /// shutdowns once everything is finished.
    pub fn handle_report(
        &mut self,
        slave: usize,
        results: Vec<PairOutcome>,
        pairs: Vec<CandidatePair>,
        exhausted: bool,
    ) -> Vec<(usize, Msg)> {
        debug_assert!(slave < self.num_slaves);
        debug_assert!(self.expecting_report[slave], "unsolicited report");
        self.expecting_report[slave] = false;
        self.exhausted[slave] |= exhausted;

        // 1. Fold the alignment results into CLUSTERS.
        for r in &results {
            self.stats.pairs_processed += 1;
            if r.accepted {
                self.stats.pairs_accepted += 1;
                let (i, j) = r.pair.est_indices();
                if self.clusters.union(i, j) {
                    self.stats.merges += 1;
                    self.trace.record(r);
                }
            }
        }

        // 2. Admit the useful subset of the reported pairs (P′ of P):
        //    a pair earns a WORKBUF slot only if its ESTs are still in
        //    different clusters.
        let p = pairs.len();
        let mut p_useful = 0usize;
        for pair in pairs {
            self.stats.pairs_generated += 1;
            let (i, j) = pair.est_indices();
            if self.cfg.skip_clustered_pairs && self.clusters.same(i, j) {
                self.stats.pairs_skipped += 1;
            } else {
                self.workbuf.push_back(pair);
                p_useful += 1;
            }
        }

        let mut out = Vec::new();

        // 3. Reply to the reporting slave.
        if let Some(msg) = self.reply_for(slave, p, p_useful) {
            out.push((slave, msg));
        }

        // 4. Excess work re-activates parked slaves.
        while !self.workbuf.is_empty() && !self.waiting.is_empty() {
            let s = self.waiting.pop_front().expect("checked non-empty");
            let work = self.drain_work();
            if work.is_empty() {
                // Everything left in the buffer got skipped; re-park.
                self.waiting.push_front(s);
                break;
            }
            self.expecting_report[s] = true;
            self.owed_results[s] = true;
            out.push((
                s,
                Msg::Work {
                    pairs: work,
                    request: 0,
                },
            ));
        }

        // 5. Termination: every slave out of pairs and flushed, no queued
        //    work, no outstanding reports.
        if !self.done
            && self.exhausted.iter().all(|&e| e)
            && self.workbuf.is_empty()
            && self.expecting_report.iter().all(|&e| !e)
            && self.owed_results.iter().all(|&o| !o)
        {
            self.done = true;
            for s in 0..self.num_slaves {
                out.push((s, Msg::Shutdown));
            }
        }
        out
    }

    /// Build the `Work { W, E }` reply, or `None` when the slave can be
    /// parked: nothing to align, nothing to request, nothing owed.
    fn reply_for(&mut self, slave: usize, p: usize, p_useful: usize) -> Option<Msg> {
        let work = self.drain_work();

        let request = if self.exhausted[slave] {
            0
        } else {
            // α = P / P′ (how many raw pairs buy one useful pair).
            let alpha = if p_useful > 0 {
                (p as f64 / p_useful as f64).min(ALPHA_CAP)
            } else if p > 0 {
                ALPHA_CAP
            } else {
                1.0
            };
            // δ = p / (active slaves): over-request to keep passive slaves
            // supplied with alignment work.
            let active = self.exhausted.iter().filter(|&&e| !e).count().max(1);
            let delta = self.num_slaves as f64 / active as f64;
            let nfree = self.cfg.workbuf_cap.saturating_sub(self.workbuf.len());
            let demand = (alpha * delta * self.cfg.batchsize as f64).round() as usize;
            // Active slaves always request at least one pair so they never
            // stall silently.
            demand.min(nfree / self.num_slaves).max(1)
        };

        if work.is_empty() && request == 0 && !self.owed_results[slave] {
            self.waiting.push_back(slave);
            return None;
        }
        self.owed_results[slave] = !work.is_empty();
        self.expecting_report[slave] = true;
        Some(Msg::Work {
            pairs: work,
            request,
        })
    }

    /// Pull up to `batchsize` pairs from WORKBUF, re-checking each against
    /// the *latest* cluster state (a pair admitted earlier may have become
    /// redundant since).
    fn drain_work(&mut self) -> Vec<CandidatePair> {
        let mut work = Vec::with_capacity(self.cfg.batchsize.min(self.workbuf.len()));
        while work.len() < self.cfg.batchsize {
            let Some(pair) = self.workbuf.pop_front() else {
                break;
            };
            let (i, j) = pair.est_indices();
            if self.cfg.skip_clustered_pairs && self.clusters.same(i, j) {
                self.stats.pairs_skipped += 1;
            } else {
                work.push(pair);
            }
        }
        work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_seq::{EstId, Strand};

    fn pair(i: u32, j: u32) -> CandidatePair {
        CandidatePair {
            s1: EstId(i).str_id(Strand::Forward),
            s2: EstId(j).str_id(Strand::Forward),
            off1: 0,
            off2: 0,
            mcs_len: 30,
        }
    }

    fn outcome(i: u32, j: u32, accepted: bool) -> PairOutcome {
        PairOutcome {
            pair: pair(i, j),
            accepted,
            score_ratio: if accepted { 0.95 } else { 0.2 },
        }
    }

    fn cfg() -> ClusterConfig {
        let mut c = ClusterConfig::small();
        c.batchsize = 4;
        c.workbuf_cap = 64;
        c
    }

    /// Report with `exhausted: true` and nothing else, repeatedly, until
    /// the master stops responding — drains the flush handshake.
    fn drain_slave(m: &mut Master, slave: usize) -> Vec<(usize, Msg)> {
        let mut all = Vec::new();
        loop {
            let replies = m.handle_report(slave, vec![], vec![], true);
            let work_for_me = replies
                .iter()
                .any(|(s, msg)| *s == slave && matches!(msg, Msg::Work { .. }));
            all.extend(replies);
            if !work_for_me {
                return all;
            }
        }
    }

    #[test]
    fn accepted_results_merge_clusters() {
        let mut m = Master::new(10, 1, cfg());
        let replies = m.handle_report(
            0,
            vec![outcome(1, 2, true), outcome(3, 4, false)],
            vec![],
            false,
        );
        assert_eq!(m.stats.pairs_processed, 2);
        assert_eq!(m.stats.pairs_accepted, 1);
        assert_eq!(m.stats.merges, 1);
        // Active slave always gets a reply with positive demand.
        assert_eq!(replies.len(), 1);
        match &replies[0].1 {
            Msg::Work { pairs, request } => {
                assert!(pairs.is_empty());
                assert!(*request > 0);
            }
            other => panic!("expected Work, got {}", other.kind()),
        }
        let mut clusters = m.into_clusters();
        assert!(clusters.same(1, 2));
        assert!(!clusters.same(3, 4));
    }

    #[test]
    fn redundant_pairs_are_skipped_at_admission() {
        let mut m = Master::new(10, 1, cfg());
        m.handle_report(0, vec![outcome(1, 2, true)], vec![], false);
        m.handle_report(0, vec![], vec![pair(1, 2), pair(5, 6)], false);
        assert_eq!(m.stats.pairs_generated, 2);
        assert_eq!(m.stats.pairs_skipped, 1);
    }

    #[test]
    fn work_is_rechecked_at_dispatch() {
        let mut c = cfg();
        c.batchsize = 1; // the duplicate stays queued while (5,6) merges
        let mut m = Master::new(10, 1, c);
        let replies = m.handle_report(0, vec![], vec![pair(5, 6), pair(5, 6)], false);
        match &replies[0].1 {
            Msg::Work { pairs, .. } => assert_eq!(pairs.len(), 1),
            other => panic!("unexpected {}", other.kind()),
        }
        // The dispatched pair merges 5 and 6; the queued duplicate must be
        // dropped at the next dispatch.
        let replies = m.handle_report(0, vec![outcome(5, 6, true)], vec![], false);
        match &replies[0].1 {
            Msg::Work { pairs, .. } => assert!(pairs.is_empty(), "stale pair dispatched"),
            other => panic!("unexpected {}", other.kind()),
        }
        assert_eq!(m.stats.pairs_skipped, 1);
    }

    #[test]
    fn exhausted_slaves_are_flushed_then_shut_down() {
        let mut m = Master::new(10, 2, cfg());
        // Both slaves report exhausted. Each first gets an empty flush
        // Work (their startup portion-2 results are still owed), then
        // parks; once both are parked the master shuts everything down.
        let r0 = drain_slave(&mut m, 0);
        assert!(
            r0.iter()
                .any(|(s, msg)| *s == 0
                    && matches!(msg, Msg::Work { pairs, .. } if pairs.is_empty())),
            "flush Work expected"
        );
        assert!(!m.is_done());
        let r1 = drain_slave(&mut m, 1);
        assert!(m.is_done());
        let shutdowns = r1
            .iter()
            .filter(|(_, msg)| matches!(msg, Msg::Shutdown))
            .count();
        assert_eq!(shutdowns, 2);
    }

    #[test]
    fn parked_slave_is_woken_by_new_work() {
        let mut m = Master::new(40, 2, cfg());
        drain_slave(&mut m, 0); // slave 0 exhausted, flushed, parked
        assert!(!m.is_done());
        // Slave 1 reports fresh pairs; slave 0 must be woken with work.
        let replies = m.handle_report(
            1,
            vec![],
            (0..6).map(|k| pair(2 * k, 2 * k + 1)).collect(),
            false,
        );
        let to_slave0: Vec<_> = replies.iter().filter(|(s, _)| *s == 0).collect();
        assert_eq!(to_slave0.len(), 1);
        match &to_slave0[0].1 {
            Msg::Work { pairs, request } => {
                assert!(!pairs.is_empty());
                assert_eq!(*request, 0, "exhausted slave asked for pairs");
            }
            other => panic!("unexpected {}", other.kind()),
        }
    }

    #[test]
    fn termination_waits_for_outstanding_results() {
        let mut m = Master::new(10, 1, cfg());
        // Slave gets real work, so the master owes it a flush even after
        // it reports exhausted.
        let replies = m.handle_report(0, vec![], vec![pair(0, 1)], true);
        match &replies[0].1 {
            Msg::Work { pairs, .. } => assert_eq!(pairs.len(), 1),
            other => panic!("unexpected {}", other.kind()),
        }
        assert!(!m.is_done());
        // Results of that work come back; master flushes (empty Work).
        let replies = m.handle_report(0, vec![outcome(0, 1, true)], vec![], true);
        assert!(
            matches!(&replies[0].1, Msg::Work { pairs, .. } if pairs.is_empty()),
            "flush expected"
        );
        assert!(!m.is_done());
        // Empty report closes the loop: now shutdown.
        let replies = m.handle_report(0, vec![], vec![], true);
        assert!(m.is_done());
        assert!(replies.iter().any(|(_, msg)| matches!(msg, Msg::Shutdown)));
        assert_eq!(m.stats.merges, 1);
    }

    #[test]
    fn demand_respects_workbuf_free_space() {
        let mut c = cfg();
        c.workbuf_cap = 8;
        c.batchsize = 4;
        let mut m = Master::new(100, 1, c);
        let pairs: Vec<_> = (0..8).map(|k| pair(2 * k, 2 * k + 1)).collect();
        let replies = m.handle_report(0, vec![], pairs, false);
        match &replies[0].1 {
            Msg::Work { pairs, request } => {
                // 4 dispatched, 4 remain; nfree = 8 − 4 = 4 → E ≤ 4.
                assert_eq!(pairs.len(), 4);
                assert!(*request <= 4, "request {request} exceeds free space");
            }
            other => panic!("unexpected {}", other.kind()),
        }
    }

    #[test]
    fn stats_balance_generated() {
        let mut m = Master::new(10, 1, cfg());
        m.handle_report(
            0,
            vec![outcome(0, 1, true)],
            vec![pair(0, 1), pair(2, 3)],
            false,
        );
        assert_eq!(m.stats.pairs_generated, 2);
        assert_eq!(m.stats.pairs_skipped, 1);
    }
}
