//! Sequential reference driver.
//!
//! Runs the whole pipeline in one thread with the master's bookkeeping
//! inline: build the GST, generate pairs in decreasing-MCS order, skip
//! pairs already clustered together, align the rest, merge on acceptance.
//! This is the semantic reference the parallel driver is compared
//! against, and the engine used when `p = 1`.
//!
//! All phase timing goes through `pace-obs` spans; the legacy
//! [`PhaseTimers`](crate::stats::PhaseTimers) struct is populated from
//! the spans' return values, so the two views always agree.

use crate::align_task::AlignContext;
use crate::config::ClusterConfig;
use crate::stats::{ClusterResult, ClusterStats};
use crate::trace::MergeTrace;
use pace_dsu::DisjointSets;
use pace_obs::{metric, Event, Obs, Timer};
use pace_pairgen::{CandidatePair, PairGenConfig, PairGenerator};
use pace_seq::{PackedText, SequenceStore};

/// Cluster `store`'s ESTs sequentially.
pub fn cluster_sequential(store: &SequenceStore, cfg: &ClusterConfig) -> ClusterResult {
    cluster_sequential_obs(store, cfg, &Obs::noop()).0
}

/// Like [`cluster_sequential`], additionally returning the [`MergeTrace`]
/// of every accepted merge in order — the audit log used by the analysis
/// tooling (replaying the trace reproduces the partition exactly).
pub fn cluster_sequential_traced(
    store: &SequenceStore,
    cfg: &ClusterConfig,
) -> (ClusterResult, MergeTrace) {
    cluster_sequential_obs(store, cfg, &Obs::noop())
}

/// Fully instrumented sequential run: phase timings, counters and the
/// MCS-length histogram land in `obs`'s registry, and accepted merges
/// are emitted as events when a real sink is attached.
pub fn cluster_sequential_obs(
    store: &SequenceStore,
    cfg: &ClusterConfig,
    obs: &Obs,
) -> (ClusterResult, MergeTrace) {
    cfg.validate().expect("invalid cluster config");
    let total_span = obs.span(metric::PHASE_TOTAL);
    let mut stats = ClusterStats::default();

    // Phase 1+2: bucket partitioning and GST construction (single rank).
    let span = obs.span(metric::PHASE_PARTITIONING);
    let counts = pace_gst::count_buckets(store, cfg.window_w);
    let partition = pace_gst::assign_buckets(&counts, 1);
    stats.timers.partitioning = span.finish();

    let span = obs.span(metric::PHASE_GST_CONSTRUCTION);
    let forest = pace_gst::build_forest_for_rank(store, &partition, 0);
    stats.timers.gst_construction = span.finish();
    record_gst_stats(obs, &partition, &forest);

    // Phase 3: node collection + sort (generator setup).
    let span = obs.span(metric::PHASE_NODE_SORTING);
    let mut generator = PairGenerator::new(
        store,
        &forest,
        PairGenConfig {
            psi: cfg.psi,
            order: cfg.order,
        },
    );
    stats.timers.node_sorting = span.finish();

    // Phase 4: demand-driven clustering loop. Alignment runs in many
    // short bursts, so it accumulates on a Timer and is recorded once.
    // One context (and one batch buffer) serves the whole run: DP
    // scratch and the batch vector are allocated once, never per pair.
    let packed = cfg.packed_alignment.then(|| PackedText::from_store(store));
    let mut ctx = AlignContext::new(store, packed.as_ref());
    let mut clusters = DisjointSets::new(store.num_ests());
    let mut trace = MergeTrace::new();
    let mut align_timer = Timer::new();
    let mut batch: Vec<CandidatePair> = Vec::new();
    loop {
        generator.next_batch_into(cfg.batchsize, &mut batch);
        if batch.is_empty() {
            break;
        }
        for &pair in &batch {
            let (i, j) = pair.est_indices();
            if cfg.skip_clustered_pairs && clusters.same(i, j) {
                stats.pairs_skipped += 1;
                continue;
            }
            let outcome = align_timer.time(|| ctx.align(&pair, cfg));
            stats.pairs_processed += 1;
            if outcome.accepted {
                stats.pairs_accepted += 1;
                if clusters.union(i, j) {
                    stats.merges += 1;
                    trace.record(&outcome);
                    obs.emit_with(|| Event::Merge {
                        t: obs.now(),
                        est_a: i,
                        est_b: j,
                        mcs_len: outcome.pair.mcs_len,
                        score_ratio: outcome.score_ratio,
                    });
                }
            }
        }
    }
    stats.timers.alignment = align_timer.secs();
    obs.registry()
        .record_phase(metric::PHASE_ALIGNMENT, 0, stats.timers.alignment);
    stats.pairs_generated = generator.stats().emitted;
    stats.pairs_prefiltered = ctx.pairs_prefiltered();
    debug_assert_eq!(ctx.pairs_handled(), stats.pairs_processed);
    obs.registry()
        .add(metric::ALIGN_WS_REUSES, ctx.pairs_handled());
    // Sequential conservation is exact with nothing buffered:
    // generated == processed + skipped.
    stats.pairs_unconsumed = 0;
    for (&len, &n) in generator.emitted_by_mcs_len() {
        obs.registry()
            .observe_n(metric::PAIRS_MCS_LEN, len as u64, n);
    }
    stats.timers.total = total_span.finish();
    record_cluster_counters(obs, &stats);

    let labels = clusters.labels();
    (
        ClusterResult {
            num_clusters: clusters.num_sets(),
            labels,
            stats,
        },
        trace,
    )
}

/// Record a built forest's shape into the registry.
pub fn record_gst_stats(
    obs: &Obs,
    partition: &pace_gst::BucketPartition,
    forest: &pace_gst::LocalForest,
) {
    let nonempty = partition.counts.iter().filter(|&&c| c > 0).count() as u64;
    // Buckets are a global property; every rank sees the same partition,
    // so only rank 0's forest-owner records them (sequential: rank 0).
    if forest.rank == 0 {
        obs.registry().add(metric::GST_BUCKETS, nonempty);
    }
    obs.registry()
        .add(metric::GST_SUBTREES, forest.subtrees.len() as u64);
    obs.registry()
        .add(metric::GST_NODES, forest.num_nodes() as u64);
    obs.registry()
        .set_gauge_max(metric::GST_MAX_DEPTH, forest.max_depth() as f64);
}

/// Fold the final [`ClusterStats`] into the registry, so both drivers
/// report through the same counter names.
pub fn record_cluster_counters(obs: &Obs, stats: &ClusterStats) {
    let reg = obs.registry();
    reg.add(metric::PAIRS_GENERATED, stats.pairs_generated);
    reg.add(metric::PAIRS_PROCESSED, stats.pairs_processed);
    reg.add(metric::PAIRS_ACCEPTED, stats.pairs_accepted);
    reg.add(metric::PAIRS_SKIPPED, stats.pairs_skipped);
    reg.add(metric::PAIRS_UNCONSUMED, stats.pairs_unconsumed);
    reg.add(metric::PAIRS_PREFILTERED, stats.pairs_prefiltered);
    reg.add(metric::MERGES, stats.merges);
    reg.add(metric::FAULTS_RETRIES, stats.faults.retries);
    reg.add(
        metric::FAULTS_DUPLICATE_REPORTS,
        stats.faults.duplicate_reports,
    );
    reg.add(metric::FAULTS_DEAD_SLAVES, stats.faults.dead_slaves);
    reg.add(
        metric::FAULTS_REASSIGNED_PAIRS,
        stats.faults.reassigned_pairs,
    );
    reg.add(metric::FAULTS_ABANDONED_PAIRS, stats.faults.abandoned_pairs);
    reg.add(metric::FAULTS_LOST_PAIRS, stats.faults.lost_pairs);
    reg.set_gauge(metric::MASTER_BUSY_FRAC, stats.master_busy_frac);
}

/// Convenience used by tests and examples: cluster raw EST byte vectors.
pub fn cluster_ests<S: AsRef<[u8]>>(ests: &[S], cfg: &ClusterConfig) -> ClusterResult {
    let store = SequenceStore::from_ests(ests).expect("invalid ESTs");
    cluster_sequential(&store, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_simulate::{generate, SimConfig};

    fn small_cfg() -> ClusterConfig {
        let mut c = ClusterConfig::small();
        c.psi = 16;
        c.overlap.min_overlap_len = 40;
        c
    }

    #[test]
    fn perfect_reads_recover_true_clusters() {
        let sim = SimConfig {
            num_genes: 12,
            num_ests: 150,
            est_len_mean: 220.0,
            est_len_sd: 30.0,
            est_len_min: 120,
            exon_len: (200, 400),
            exons_per_gene: (1, 3),
            seed: 11,
            ..SimConfig::default()
        }
        .error_free()
        .repeat_free();
        let ds = generate(&sim);
        let result = cluster_ests(&ds.ests, &small_cfg());
        let m = pace_quality::assess(&result.labels, &ds.truth);
        // Error-free overlapping reads from disjoint random genes must
        // show zero over-prediction; under-prediction stays (reads that
        // happen not to overlap cannot be joined — the paper observes the
        // same asymmetry, UN > OV, in Table 2).
        assert!(m.oq > 0.88, "OQ {} too low\n{m}", m.oq);
        assert!(m.ov < 0.005, "over-prediction {}\n{m}", m.ov);
        assert!(m.un < 0.12, "under-prediction {}\n{m}", m.un);
        assert!(m.cc > 0.92, "CC {} too low\n{m}", m.cc);
    }

    #[test]
    fn noisy_reads_still_cluster_well() {
        let sim = SimConfig {
            num_genes: 10,
            num_ests: 120,
            est_len_mean: 220.0,
            est_len_sd: 30.0,
            est_len_min: 120,
            exon_len: (200, 400),
            exons_per_gene: (1, 3),
            error_rate: 0.02,
            seed: 12,
            ..SimConfig::default()
        }
        .repeat_free(); // isolate the error-tolerance effect
        let ds = generate(&sim);
        let result = cluster_ests(&ds.ests, &small_cfg());
        let m = pace_quality::assess(&result.labels, &ds.truth);
        assert!(m.oq > 0.80, "OQ {} too low with 2% errors\n{m}", m.oq);
        assert!(m.cc > 0.85, "CC {} too low\n{m}", m.cc);
    }

    #[test]
    fn unrelated_singletons_stay_apart() {
        // Few ESTs per gene, one gene each: nothing should merge.
        let sim = SimConfig {
            num_genes: 30,
            num_ests: 30,
            expression: pace_simulate::Expression::Uniform,
            est_len_mean: 200.0,
            est_len_sd: 10.0,
            est_len_min: 150,
            seed: 13,
            ..SimConfig::default()
        }
        .error_free()
        .repeat_free();
        let ds = generate(&sim);
        let result = cluster_ests(&ds.ests, &small_cfg());
        let m = pace_quality::assess(&result.labels, &ds.truth);
        assert_eq!(m.counts.fp, 0, "random genes must not be merged\n{m}");
    }

    #[test]
    fn skipping_reduces_alignments_without_quality_loss() {
        let sim = SimConfig {
            num_genes: 8,
            num_ests: 120,
            est_len_mean: 220.0,
            est_len_sd: 20.0,
            est_len_min: 150,
            exon_len: (250, 400),
            exons_per_gene: (1, 2),
            seed: 14,
            ..SimConfig::default()
        }
        .error_free();
        let ds = generate(&sim);
        let with_skip = cluster_ests(&ds.ests, &small_cfg());
        let mut no_skip_cfg = small_cfg();
        no_skip_cfg.skip_clustered_pairs = false;
        let without_skip = cluster_ests(&ds.ests, &no_skip_cfg);

        assert!(
            with_skip.stats.pairs_processed < without_skip.stats.pairs_processed,
            "skip rule saved nothing: {} vs {}",
            with_skip.stats.pairs_processed,
            without_skip.stats.pairs_processed
        );
        // Both must produce the same partition on clean data.
        let a = pace_quality::assess(&with_skip.labels, &without_skip.labels);
        assert_eq!(a.counts.fp + a.counts.fn_, 0, "partitions differ");
    }

    #[test]
    fn stats_are_internally_consistent() {
        let sim = SimConfig {
            num_genes: 6,
            num_ests: 60,
            est_len_mean: 200.0,
            est_len_sd: 20.0,
            est_len_min: 120,
            seed: 15,
            ..SimConfig::default()
        };
        let ds = generate(&sim);
        let r = cluster_ests(&ds.ests, &small_cfg());
        let s = &r.stats;
        assert_eq!(s.pairs_unconsumed, 0, "sequential driver buffers nothing");
        assert_eq!(
            s.pairs_generated,
            s.pairs_processed + s.pairs_skipped + s.pairs_unconsumed
        );
        assert!(s.pairs_accepted <= s.pairs_processed);
        assert!(s.merges <= s.pairs_accepted);
        assert_eq!(r.labels.len(), 60);
        assert_eq!(r.num_clusters, r.clusters().len(), "cluster count mismatch");
        // n ESTs and m merges leave exactly n − m clusters.
        assert_eq!(r.num_clusters as u64, 60 - s.merges);
    }

    #[test]
    fn trace_replay_reproduces_partition() {
        let sim = SimConfig {
            num_genes: 8,
            num_ests: 80,
            est_len_mean: 200.0,
            est_len_sd: 20.0,
            est_len_min: 120,
            seed: 16,
            ..SimConfig::default()
        };
        let ds = generate(&sim);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let (result, trace) = cluster_sequential_traced(&store, &small_cfg());
        assert_eq!(trace.len() as u64, result.stats.merges);
        let replayed = trace.replay(80);
        let agreement = pace_quality::assess(&replayed, &result.labels);
        assert_eq!(
            agreement.counts.fp + agreement.counts.fn_,
            0,
            "trace replay diverges from the actual partition"
        );
        // Every recorded merge was promoted by an MCS of at least ψ.
        for r in trace.records() {
            assert!(r.mcs_len >= small_cfg().psi);
            assert!(r.score_ratio >= small_cfg().overlap.min_score_ratio - 1e-9);
        }
    }

    #[test]
    fn registry_agrees_with_stats() {
        let sim = SimConfig {
            num_genes: 5,
            num_ests: 50,
            est_len_mean: 200.0,
            est_len_sd: 20.0,
            est_len_min: 120,
            seed: 17,
            ..SimConfig::default()
        };
        let ds = generate(&sim);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let obs = Obs::noop();
        let (result, _) = cluster_sequential_obs(&store, &small_cfg(), &obs);
        let snap = obs.registry().snapshot();
        let s = &result.stats;
        assert_eq!(snap.counters[metric::PAIRS_GENERATED], s.pairs_generated);
        assert_eq!(snap.counters[metric::PAIRS_PROCESSED], s.pairs_processed);
        assert_eq!(snap.counters[metric::MERGES], s.merges);
        // The MCS histogram covers every generated pair.
        assert_eq!(
            snap.histograms[metric::PAIRS_MCS_LEN].count(),
            s.pairs_generated
        );
        // Spans and the legacy timers are two views of the same clocks.
        let total = &snap.phases[metric::PHASE_TOTAL];
        assert_eq!(total.count, 1);
        assert!((total.max - s.timers.total).abs() < 1e-9);
        assert!(snap.counters[metric::GST_NODES] > 0);
        assert!(snap.counters[metric::GST_BUCKETS] > 0);
        assert!(snap.gauges[metric::GST_MAX_DEPTH] >= small_cfg().psi as f64);
    }

    #[test]
    fn merge_events_match_trace() {
        let sim = SimConfig {
            num_genes: 4,
            num_ests: 40,
            est_len_mean: 200.0,
            est_len_sd: 20.0,
            est_len_min: 120,
            seed: 18,
            ..SimConfig::default()
        };
        let ds = generate(&sim);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let sink = pace_obs::VecSink::shared();
        let obs = Obs::with_sink(Box::new(sink.clone()));
        let (result, trace) = cluster_sequential_obs(&store, &small_cfg(), &obs);
        let merges: Vec<_> = sink
            .snapshot()
            .into_iter()
            .filter_map(|e| match e {
                Event::Merge { est_a, est_b, .. } => Some((est_a, est_b)),
                _ => None,
            })
            .collect();
        assert_eq!(merges.len() as u64, result.stats.merges);
        let traced: Vec<_> = trace.records().iter().map(|r| (r.est_a, r.est_b)).collect();
        assert_eq!(merges, traced);
    }

    #[test]
    fn empty_input() {
        let r = cluster_ests::<&[u8]>(&[], &ClusterConfig::small());
        assert_eq!(r.num_clusters, 0);
        assert!(r.labels.is_empty());
    }

    #[test]
    fn single_est_is_one_cluster() {
        let r = cluster_ests(&[b"ACGTACGTACGTACGTACGT"], &ClusterConfig::small());
        assert_eq!(r.num_clusters, 1);
        assert_eq!(r.labels, vec![0]);
    }
}
