//! Sequential reference driver.
//!
//! Runs the whole pipeline in one thread with the master's bookkeeping
//! inline: build the GST, generate pairs in decreasing-MCS order, skip
//! pairs already clustered together, align the rest, merge on acceptance.
//! This is the semantic reference the parallel driver is compared
//! against, and the engine used when `p = 1`.

use crate::align_task::align_pair;
use crate::config::ClusterConfig;
use crate::stats::{ClusterResult, ClusterStats};
use crate::trace::MergeTrace;
use pace_dsu::DisjointSets;
use pace_pairgen::{PairGenConfig, PairGenerator};
use pace_seq::SequenceStore;
use std::time::Instant;

/// Cluster `store`'s ESTs sequentially.
pub fn cluster_sequential(store: &SequenceStore, cfg: &ClusterConfig) -> ClusterResult {
    cluster_sequential_traced(store, cfg).0
}

/// Like [`cluster_sequential`], additionally returning the [`MergeTrace`]
/// of every accepted merge in order — the audit log used by the analysis
/// tooling (replaying the trace reproduces the partition exactly).
pub fn cluster_sequential_traced(
    store: &SequenceStore,
    cfg: &ClusterConfig,
) -> (ClusterResult, MergeTrace) {
    cfg.validate().expect("invalid cluster config");
    let total_started = Instant::now();
    let mut stats = ClusterStats::default();

    // Phase 1+2: bucket partitioning and GST construction (single rank).
    let phase_started = Instant::now();
    let counts = pace_gst::count_buckets(store, cfg.window_w);
    let partition = pace_gst::assign_buckets(&counts, 1);
    stats.timers.partitioning = phase_started.elapsed().as_secs_f64();

    let phase_started = Instant::now();
    let forest = pace_gst::build_forest_for_rank(store, &partition, 0);
    stats.timers.gst_construction = phase_started.elapsed().as_secs_f64();

    // Phase 3: node collection + sort (generator setup).
    let phase_started = Instant::now();
    let mut generator = PairGenerator::new(
        store,
        &forest,
        PairGenConfig {
            psi: cfg.psi,
            order: cfg.order,
        },
    );
    stats.timers.node_sorting = phase_started.elapsed().as_secs_f64();

    // Phase 4: demand-driven clustering loop.
    let mut clusters = DisjointSets::new(store.num_ests());
    let mut trace = MergeTrace::new();
    loop {
        let batch = generator.next_batch(cfg.batchsize);
        if batch.is_empty() {
            break;
        }
        for pair in batch {
            let (i, j) = pair.est_indices();
            if cfg.skip_clustered_pairs && clusters.same(i, j) {
                stats.pairs_skipped += 1;
                continue;
            }
            let align_started = Instant::now();
            let outcome = align_pair(store, &pair, cfg);
            stats.timers.alignment += align_started.elapsed().as_secs_f64();
            stats.pairs_processed += 1;
            if outcome.accepted {
                stats.pairs_accepted += 1;
                if clusters.union(i, j) {
                    stats.merges += 1;
                    trace.record(&outcome);
                }
            }
        }
    }
    stats.pairs_generated = generator.stats().emitted;
    stats.timers.total = total_started.elapsed().as_secs_f64();

    let labels = clusters.labels();
    (
        ClusterResult {
            num_clusters: clusters.num_sets(),
            labels,
            stats,
        },
        trace,
    )
}

/// Convenience used by tests and examples: cluster raw EST byte vectors.
pub fn cluster_ests<S: AsRef<[u8]>>(ests: &[S], cfg: &ClusterConfig) -> ClusterResult {
    let store = SequenceStore::from_ests(ests).expect("invalid ESTs");
    cluster_sequential(&store, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_simulate::{generate, SimConfig};

    fn small_cfg() -> ClusterConfig {
        let mut c = ClusterConfig::small();
        c.psi = 16;
        c.overlap.min_overlap_len = 40;
        c
    }

    #[test]
    fn perfect_reads_recover_true_clusters() {
        let sim = SimConfig {
            num_genes: 12,
            num_ests: 150,
            est_len_mean: 220.0,
            est_len_sd: 30.0,
            est_len_min: 120,
            exon_len: (200, 400),
            exons_per_gene: (1, 3),
            seed: 11,
            ..SimConfig::default()
        }
        .error_free()
        .repeat_free();
        let ds = generate(&sim);
        let result = cluster_ests(&ds.ests, &small_cfg());
        let m = pace_quality::assess(&result.labels, &ds.truth);
        // Error-free overlapping reads from disjoint random genes must
        // show zero over-prediction; under-prediction stays (reads that
        // happen not to overlap cannot be joined — the paper observes the
        // same asymmetry, UN > OV, in Table 2).
        assert!(m.oq > 0.88, "OQ {} too low\n{m}", m.oq);
        assert!(m.ov < 0.005, "over-prediction {}\n{m}", m.ov);
        assert!(m.un < 0.12, "under-prediction {}\n{m}", m.un);
        assert!(m.cc > 0.92, "CC {} too low\n{m}", m.cc);
    }

    #[test]
    fn noisy_reads_still_cluster_well() {
        let sim = SimConfig {
            num_genes: 10,
            num_ests: 120,
            est_len_mean: 220.0,
            est_len_sd: 30.0,
            est_len_min: 120,
            exon_len: (200, 400),
            exons_per_gene: (1, 3),
            error_rate: 0.02,
            seed: 12,
            ..SimConfig::default()
        }
        .repeat_free(); // isolate the error-tolerance effect
        let ds = generate(&sim);
        let result = cluster_ests(&ds.ests, &small_cfg());
        let m = pace_quality::assess(&result.labels, &ds.truth);
        assert!(m.oq > 0.80, "OQ {} too low with 2% errors\n{m}", m.oq);
        assert!(m.cc > 0.85, "CC {} too low\n{m}", m.cc);
    }

    #[test]
    fn unrelated_singletons_stay_apart() {
        // Few ESTs per gene, one gene each: nothing should merge.
        let sim = SimConfig {
            num_genes: 30,
            num_ests: 30,
            expression: pace_simulate::Expression::Uniform,
            est_len_mean: 200.0,
            est_len_sd: 10.0,
            est_len_min: 150,
            seed: 13,
            ..SimConfig::default()
        }
        .error_free()
        .repeat_free();
        let ds = generate(&sim);
        let result = cluster_ests(&ds.ests, &small_cfg());
        let m = pace_quality::assess(&result.labels, &ds.truth);
        assert_eq!(m.counts.fp, 0, "random genes must not be merged\n{m}");
    }

    #[test]
    fn skipping_reduces_alignments_without_quality_loss() {
        let sim = SimConfig {
            num_genes: 8,
            num_ests: 120,
            est_len_mean: 220.0,
            est_len_sd: 20.0,
            est_len_min: 150,
            exon_len: (250, 400),
            exons_per_gene: (1, 2),
            seed: 14,
            ..SimConfig::default()
        }
        .error_free();
        let ds = generate(&sim);
        let with_skip = cluster_ests(&ds.ests, &small_cfg());
        let mut no_skip_cfg = small_cfg();
        no_skip_cfg.skip_clustered_pairs = false;
        let without_skip = cluster_ests(&ds.ests, &no_skip_cfg);

        assert!(
            with_skip.stats.pairs_processed < without_skip.stats.pairs_processed,
            "skip rule saved nothing: {} vs {}",
            with_skip.stats.pairs_processed,
            without_skip.stats.pairs_processed
        );
        // Both must produce the same partition on clean data.
        let a = pace_quality::assess(&with_skip.labels, &without_skip.labels);
        assert_eq!(a.counts.fp + a.counts.fn_, 0, "partitions differ");
    }

    #[test]
    fn stats_are_internally_consistent() {
        let sim = SimConfig {
            num_genes: 6,
            num_ests: 60,
            est_len_mean: 200.0,
            est_len_sd: 20.0,
            est_len_min: 120,
            seed: 15,
            ..SimConfig::default()
        };
        let ds = generate(&sim);
        let r = cluster_ests(&ds.ests, &small_cfg());
        let s = &r.stats;
        assert_eq!(s.pairs_generated, s.pairs_processed + s.pairs_skipped);
        assert!(s.pairs_accepted <= s.pairs_processed);
        assert!(s.merges <= s.pairs_accepted);
        assert_eq!(r.labels.len(), 60);
        assert_eq!(
            r.num_clusters,
            r.clusters().len(),
            "cluster count mismatch"
        );
        // n ESTs and m merges leave exactly n − m clusters.
        assert_eq!(r.num_clusters as u64, 60 - s.merges);
    }

    #[test]
    fn trace_replay_reproduces_partition() {
        let sim = SimConfig {
            num_genes: 8,
            num_ests: 80,
            est_len_mean: 200.0,
            est_len_sd: 20.0,
            est_len_min: 120,
            seed: 16,
            ..SimConfig::default()
        };
        let ds = generate(&sim);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let (result, trace) = cluster_sequential_traced(&store, &small_cfg());
        assert_eq!(trace.len() as u64, result.stats.merges);
        let replayed = trace.replay(80);
        let agreement = pace_quality::assess(&replayed, &result.labels);
        assert_eq!(
            agreement.counts.fp + agreement.counts.fn_,
            0,
            "trace replay diverges from the actual partition"
        );
        // Every recorded merge was promoted by an MCS of at least ψ.
        for r in trace.records() {
            assert!(r.mcs_len >= small_cfg().psi);
            assert!(r.score_ratio >= small_cfg().overlap.min_score_ratio - 1e-9);
        }
    }

    #[test]
    fn empty_input() {
        let r = cluster_ests::<&[u8]>(&[], &ClusterConfig::small());
        assert_eq!(r.num_clusters, 0);
        assert!(r.labels.is_empty());
    }

    #[test]
    fn single_est_is_one_cluster() {
        let r = cluster_ests(&[b"ACGTACGTACGTACGTACGT"], &ClusterConfig::small());
        assert_eq!(r.num_clusters, 1);
        assert_eq!(r.labels, vec![0]);
    }
}
