//! Wire encoding of the protocol messages for the socket transport.
//!
//! [`Msg`] implements [`Wire`] so a `Rank<Msg>` can run over
//! `UdsHub`/`UdsEndpoint`. `CandidatePair` and `PairOutcome` live in
//! other crates, so their codecs are free functions here rather than
//! trait impls (the orphan rule). Layouts follow the crate convention:
//! little-endian, `u32` length prefixes, floats as IEEE-754 bits.

use crate::align_task::PairOutcome;
use crate::messages::{Msg, ShardReport, WorkerSummary};
use crate::trace::MergeRecord;
use pace_mpisim::wire::{Wire, WireError, WireReader};
use pace_pairgen::CandidatePair;
use pace_seq::StrId;

/// Bytes of one encoded [`CandidatePair`]: five `u32` fields.
const PAIR_BYTES: usize = 20;
/// Bytes of one encoded [`PairOutcome`]: pair + bool + f64 bits.
const OUTCOME_BYTES: usize = PAIR_BYTES + 1 + 8;
/// Bytes of one encoded [`MergeRecord`]: two `u64` ids + `u32` + f64 bits.
const RECORD_BYTES: usize = 8 + 8 + 4 + 8;
/// Bytes of one encoded cross edge: two `u32` ids.
const EDGE_BYTES: usize = 8;

const TAG_REPORT: u8 = 0;
const TAG_WORK: u8 = 1;
const TAG_SHUTDOWN: u8 = 2;
const TAG_SUMMARY: u8 = 3;
const TAG_CROSS_MERGE: u8 = 4;
const TAG_SHARD_DONE: u8 = 5;

fn encode_pair(p: &CandidatePair, out: &mut Vec<u8>) {
    p.s1.0.encode(out);
    p.s2.0.encode(out);
    p.off1.encode(out);
    p.off2.encode(out);
    p.mcs_len.encode(out);
}

fn decode_pair(r: &mut WireReader<'_>) -> Result<CandidatePair, WireError> {
    Ok(CandidatePair {
        s1: StrId(r.u32()?),
        s2: StrId(r.u32()?),
        off1: r.u32()?,
        off2: r.u32()?,
        mcs_len: r.u32()?,
    })
}

fn encode_u64s(v: &[u64], out: &mut Vec<u8>) {
    let n = u32::try_from(v.len()).expect("u64 vector too long for wire format");
    n.encode(out);
    for x in v {
        x.encode(out);
    }
}

fn decode_u64s(r: &mut WireReader<'_>) -> Result<Vec<u64>, WireError> {
    let n = r.len_prefix(8)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(r.u64()?);
    }
    Ok(v)
}

fn encode_pairs(pairs: &[CandidatePair], out: &mut Vec<u8>) {
    let n = u32::try_from(pairs.len()).expect("pair batch too long for wire format");
    n.encode(out);
    for p in pairs {
        encode_pair(p, out);
    }
}

fn decode_pairs(r: &mut WireReader<'_>) -> Result<Vec<CandidatePair>, WireError> {
    let n = r.len_prefix(PAIR_BYTES)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_pair(r)?);
    }
    Ok(out)
}

fn encode_outcome(o: &PairOutcome, out: &mut Vec<u8>) {
    encode_pair(&o.pair, out);
    o.accepted.encode(out);
    o.score_ratio.encode(out);
}

fn decode_outcome(r: &mut WireReader<'_>) -> Result<PairOutcome, WireError> {
    Ok(PairOutcome {
        pair: decode_pair(r)?,
        accepted: bool::decode(r)?,
        score_ratio: f64::decode(r)?,
    })
}

fn encode_outcomes(results: &[PairOutcome], out: &mut Vec<u8>) {
    let n = u32::try_from(results.len()).expect("result batch too long for wire format");
    n.encode(out);
    for o in results {
        encode_outcome(o, out);
    }
}

fn decode_outcomes(r: &mut WireReader<'_>) -> Result<Vec<PairOutcome>, WireError> {
    let n = r.len_prefix(OUTCOME_BYTES)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_outcome(r)?);
    }
    Ok(out)
}

fn encode_records(records: &[MergeRecord], out: &mut Vec<u8>) {
    let n = u32::try_from(records.len()).expect("merge trace too long for wire format");
    n.encode(out);
    for rec in records {
        rec.est_a.encode(out);
        rec.est_b.encode(out);
        rec.mcs_len.encode(out);
        rec.score_ratio.encode(out);
    }
}

fn decode_records(r: &mut WireReader<'_>) -> Result<Vec<MergeRecord>, WireError> {
    let n = r.len_prefix(RECORD_BYTES)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(MergeRecord {
            est_a: usize::decode(r)?,
            est_b: usize::decode(r)?,
            mcs_len: u32::decode(r)?,
            score_ratio: f64::decode(r)?,
        });
    }
    Ok(out)
}

fn encode_edges(edges: &[(u32, u32)], out: &mut Vec<u8>) {
    let n = u32::try_from(edges.len()).expect("cross-edge batch too long for wire format");
    n.encode(out);
    for &(a, b) in edges {
        a.encode(out);
        b.encode(out);
    }
}

fn decode_edges(r: &mut WireReader<'_>) -> Result<Vec<(u32, u32)>, WireError> {
    let n = r.len_prefix(EDGE_BYTES)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((r.u32()?, r.u32()?));
    }
    Ok(out)
}

impl Wire for ShardReport {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_records(&self.records, out);
        self.pairs_received.encode(out);
        self.pairs_processed.encode(out);
        self.pairs_accepted.encode(out);
        self.pairs_skipped.encode(out);
        self.merges.encode(out);
        self.cross_edges.encode(out);
        self.epochs.encode(out);
        self.retries.encode(out);
        self.duplicate_reports.encode(out);
        self.dead_slaves.encode(out);
        self.reassigned_pairs.encode(out);
        self.abandoned_pairs.encode(out);
        self.injected_drops.encode(out);
        self.injected_delays.encode(out);
        self.injected_stalls.encode(out);
        self.busy_frac.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ShardReport {
            records: decode_records(r)?,
            pairs_received: u64::decode(r)?,
            pairs_processed: u64::decode(r)?,
            pairs_accepted: u64::decode(r)?,
            pairs_skipped: u64::decode(r)?,
            merges: u64::decode(r)?,
            cross_edges: u64::decode(r)?,
            epochs: u64::decode(r)?,
            retries: u64::decode(r)?,
            duplicate_reports: u64::decode(r)?,
            dead_slaves: u64::decode(r)?,
            reassigned_pairs: u64::decode(r)?,
            abandoned_pairs: u64::decode(r)?,
            injected_drops: u64::decode(r)?,
            injected_delays: u64::decode(r)?,
            injected_stalls: u64::decode(r)?,
            busy_frac: f64::decode(r)?,
        })
    }
}

impl Wire for WorkerSummary {
    fn encode(&self, out: &mut Vec<u8>) {
        self.gen_nodes_processed.encode(out);
        self.gen_raw_pairs.encode(out);
        self.gen_discarded_self.encode(out);
        self.gen_discarded_mirror.encode(out);
        self.gen_emitted.encode(out);
        self.node_sorting.encode(out);
        self.alignment.encode(out);
        self.partitioning.encode(out);
        self.gst_construction.encode(out);
        self.unconsumed.encode(out);
        self.prefiltered.encode(out);
        self.ws_reuses.encode(out);
        self.injected_drops.encode(out);
        self.injected_delays.encode(out);
        self.injected_stalls.encode(out);
        encode_u64s(&self.gen_by_owner, out);
        encode_u64s(&self.unconsumed_by_owner, out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(WorkerSummary {
            gen_nodes_processed: u64::decode(r)?,
            gen_raw_pairs: u64::decode(r)?,
            gen_discarded_self: u64::decode(r)?,
            gen_discarded_mirror: u64::decode(r)?,
            gen_emitted: u64::decode(r)?,
            node_sorting: f64::decode(r)?,
            alignment: f64::decode(r)?,
            partitioning: f64::decode(r)?,
            gst_construction: f64::decode(r)?,
            unconsumed: u64::decode(r)?,
            prefiltered: u64::decode(r)?,
            ws_reuses: u64::decode(r)?,
            injected_drops: u64::decode(r)?,
            injected_delays: u64::decode(r)?,
            injected_stalls: u64::decode(r)?,
            gen_by_owner: decode_u64s(r)?,
            unconsumed_by_owner: decode_u64s(r)?,
        })
    }
}

impl Wire for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::Report {
                seq,
                results,
                pairs,
                exhausted,
            } => {
                TAG_REPORT.encode(out);
                seq.encode(out);
                encode_outcomes(results, out);
                encode_pairs(pairs, out);
                exhausted.encode(out);
            }
            Msg::Work {
                seq,
                pairs,
                request,
            } => {
                TAG_WORK.encode(out);
                seq.encode(out);
                encode_pairs(pairs, out);
                request.encode(out);
            }
            Msg::Shutdown => TAG_SHUTDOWN.encode(out),
            Msg::Summary(s) => {
                TAG_SUMMARY.encode(out);
                s.encode(out);
            }
            Msg::CrossMerge {
                shard,
                epoch,
                edges,
            } => {
                TAG_CROSS_MERGE.encode(out);
                shard.encode(out);
                epoch.encode(out);
                encode_edges(edges, out);
            }
            Msg::ShardDone { shard, report } => {
                TAG_SHARD_DONE.encode(out);
                shard.encode(out);
                report.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            TAG_REPORT => Ok(Msg::Report {
                seq: u64::decode(r)?,
                results: decode_outcomes(r)?,
                pairs: decode_pairs(r)?,
                exhausted: bool::decode(r)?,
            }),
            TAG_WORK => Ok(Msg::Work {
                seq: u64::decode(r)?,
                pairs: decode_pairs(r)?,
                request: usize::decode(r)?,
            }),
            TAG_SHUTDOWN => Ok(Msg::Shutdown),
            TAG_SUMMARY => Ok(Msg::Summary(WorkerSummary::decode(r)?)),
            TAG_CROSS_MERGE => Ok(Msg::CrossMerge {
                shard: u32::decode(r)?,
                epoch: u64::decode(r)?,
                edges: decode_edges(r)?,
            }),
            TAG_SHARD_DONE => Ok(Msg::ShardDone {
                shard: u32::decode(r)?,
                report: ShardReport::decode(r)?,
            }),
            t => Err(WireError(format!("unknown Msg tag {t:#04x}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(i: u32) -> CandidatePair {
        CandidatePair {
            s1: StrId(2 * i),
            s2: StrId(2 * i + 3),
            off1: 7 * i,
            off2: 11 * i,
            mcs_len: 20 + i,
        }
    }

    fn sample_msgs() -> Vec<Msg> {
        vec![
            Msg::Report {
                seq: 3,
                results: vec![
                    PairOutcome {
                        pair: pair(1),
                        accepted: true,
                        score_ratio: 0.91,
                    },
                    PairOutcome {
                        pair: pair(2),
                        accepted: false,
                        score_ratio: 0.11,
                    },
                ],
                pairs: vec![pair(3), pair(4), pair(5)],
                exhausted: false,
            },
            Msg::Report {
                seq: 0,
                results: vec![],
                pairs: vec![],
                exhausted: true,
            },
            Msg::Work {
                seq: 9,
                pairs: vec![pair(6)],
                request: 60,
            },
            Msg::Shutdown,
            Msg::Summary(WorkerSummary {
                gen_nodes_processed: 1,
                gen_raw_pairs: 2,
                gen_discarded_self: 3,
                gen_discarded_mirror: 4,
                gen_emitted: 5,
                node_sorting: 0.25,
                alignment: 1.5,
                partitioning: 0.125,
                gst_construction: 2.0,
                unconsumed: 6,
                prefiltered: 7,
                ws_reuses: 8,
                injected_drops: 9,
                injected_delays: 10,
                injected_stalls: 11,
                gen_by_owner: vec![12, 0, 13],
                unconsumed_by_owner: vec![1, 0, 2],
            }),
            Msg::CrossMerge {
                shard: 2,
                epoch: 7,
                edges: vec![(3, 41), (5, 38)],
            },
            Msg::CrossMerge {
                shard: 0,
                epoch: 0,
                edges: vec![],
            },
            Msg::ShardDone {
                shard: 1,
                report: ShardReport {
                    records: vec![
                        MergeRecord {
                            est_a: 4,
                            est_b: 17,
                            mcs_len: 23,
                            score_ratio: 0.97,
                        },
                        MergeRecord {
                            est_a: 9,
                            est_b: 40,
                            mcs_len: 31,
                            score_ratio: 1.0,
                        },
                    ],
                    pairs_received: 12,
                    pairs_processed: 11,
                    pairs_accepted: 5,
                    pairs_skipped: 1,
                    merges: 2,
                    cross_edges: 1,
                    epochs: 3,
                    retries: 1,
                    duplicate_reports: 2,
                    dead_slaves: 0,
                    reassigned_pairs: 0,
                    abandoned_pairs: 0,
                    injected_drops: 3,
                    injected_delays: 1,
                    injected_stalls: 0,
                    busy_frac: 0.5,
                },
            },
            Msg::ShardDone {
                shard: 0,
                report: ShardReport::default(),
            },
        ]
    }

    #[test]
    fn all_message_kinds_roundtrip() {
        for msg in sample_msgs() {
            let bytes = msg.to_bytes();
            let back = Msg::from_bytes(&bytes).expect("decode");
            // Msg is not PartialEq (it carries f64 scores); compare the
            // re-encoding, which is canonical.
            assert_eq!(bytes, back.to_bytes(), "roundtrip changed {}", msg.kind());
        }
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        for msg in sample_msgs() {
            let bytes = msg.to_bytes();
            for cut in 0..bytes.len() {
                assert!(
                    Msg::from_bytes(&bytes[..cut]).is_err(),
                    "{} decoded from a {cut}-byte prefix of {} bytes",
                    msg.kind(),
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        for msg in sample_msgs() {
            let mut bytes = msg.to_bytes();
            bytes.push(0);
            assert!(Msg::from_bytes(&bytes).is_err(), "{}", msg.kind());
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(Msg::from_bytes(&[9]).is_err());
    }
}
