//! Parallel driver: the full master–slave protocol over `p` ranks.
//!
//! Rank 0 is the master; ranks `1..p` are slaves. The phases mirror the
//! paper's system: (1) each slave counts its share of the suffixes per
//! bucket and the counts are combined with the parallel-summation
//! collective; (2) buckets are assigned deterministically and each slave
//! builds the subtrees it owns; (3) the clustering protocol runs until
//! the master issues shutdowns. Phase timers are per-rank and reported as
//! the cross-rank maxima (critical-path times, as in Table 3).
//!
//! Instrumentation mirrors the sequential driver: every phase is timed
//! with a `pace-obs` span (per-rank series in the registry, critical
//! path in the legacy `PhaseTimers`), communication counters are
//! absorbed from `pace-mpisim`, the master emits periodic heartbeats
//! (its busy fraction is the paper's "< 2%" claim) and a `merge` event
//! for every union it performs.

use crate::config::ClusterConfig;
use crate::driver_seq::{cluster_sequential_obs, record_cluster_counters, record_gst_stats};
use crate::master::FaultNote;
use crate::master::Master;
use crate::messages::{Msg, WorkerSummary};
use crate::slave::{run_slave_obs, SlaveReportSummary};
use crate::stats::{ClusterResult, ClusterStats, PhaseTimers};
use crate::trace::MergeTrace;
use pace_gst::{assign_buckets, build_forest_for_rank, count_buckets_stride, num_buckets};
use pace_mpisim::{run_world_obs, FaultPlan, FaultSnapshot, Rank, WorldStats};
use pace_obs::trace::{flow_id, T_DISPATCH, T_HANDLE_REPORT};
use pace_obs::{metric, Event, Obs, Timer, TraceKind};
use pace_seq::{PackedText, SequenceStore};
use std::time::{Duration, Instant};

/// Emit a master heartbeat every this many handled reports.
const HEARTBEAT_EVERY: u64 = 32;

/// Copies of each `Shutdown` sent when a fault plan is active. Shutdown
/// has no acknowledgement, so bounded redundancy (three distinct
/// transport sequence numbers) is what guarantees delivery past the
/// bounded per-channel drop rules of seeded plans
/// (`pace_mpisim::MAX_SEEDED_DROPS_PER_CHANNEL`).
const SHUTDOWN_REDUNDANCY: usize = 3;

/// Per-rank results collected when the world joins (thread backend) or
/// received as [`Msg::Summary`] messages (socket backend).
// One value per rank, moved exactly once at world teardown — the
// Master/Slave size gap never sits in a hot collection.
#[allow(clippy::large_enum_variant)]
enum RankOutput {
    Master {
        labels: Vec<usize>,
        num_clusters: usize,
        stats: ClusterStats,
        trace: MergeTrace,
        busy_frac: f64,
        comm: WorldStats,
        injected: FaultSnapshot,
        partitioning: f64,
        /// Which slaves the master declared dead — the fold and the
        /// summary-collection window must not wait on these.
        dead: Vec<bool>,
        /// Worker summaries that arrived while shutdowns were still
        /// being dispatched (socket backend only; empty on threads).
        early_summaries: Vec<(usize, WorkerSummary)>,
    },
    Slave {
        summary: WorkerSummary,
    },
}

/// Lift a slave's join-time report into the wire-shape summary so the
/// fold has one input shape for both backends. Injected-fault counters
/// stay zero here: in the thread world they are world-shared and the
/// master's snapshot already covers every rank.
pub(crate) fn worker_summary(
    s: &SlaveReportSummary,
    partitioning: f64,
    gst_construction: f64,
) -> WorkerSummary {
    WorkerSummary {
        gen_nodes_processed: s.gen.nodes_processed,
        gen_raw_pairs: s.gen.raw_pairs,
        gen_discarded_self: s.gen.discarded_self,
        gen_discarded_mirror: s.gen.discarded_mirror,
        gen_emitted: s.gen.emitted,
        node_sorting: s.timers.node_sorting,
        alignment: s.timers.alignment,
        partitioning,
        gst_construction,
        unconsumed: s.unconsumed,
        prefiltered: s.prefiltered,
        ws_reuses: s.ws_reuses,
        injected_drops: 0,
        injected_delays: 0,
        injected_stalls: 0,
        gen_by_owner: s.gen_by_owner.clone(),
        unconsumed_by_owner: s.unconsumed_by_owner.clone(),
    }
}

/// Cluster with `p` ranks (1 master + `p − 1` slaves). `p ≤ 1` falls back
/// to the sequential driver.
pub fn cluster_parallel(store: &SequenceStore, cfg: &ClusterConfig, p: usize) -> ClusterResult {
    cluster_parallel_obs(store, cfg, p, &Obs::noop()).0
}

/// Like [`cluster_parallel`], additionally returning the master's
/// [`MergeTrace`] — replaying it reproduces the returned labels.
pub fn cluster_parallel_traced(
    store: &SequenceStore,
    cfg: &ClusterConfig,
    p: usize,
) -> (ClusterResult, MergeTrace) {
    cluster_parallel_obs(store, cfg, p, &Obs::noop())
}

/// Fully instrumented parallel run. All ranks share `obs`: phase spans
/// land in its per-rank series, communication and pair counters in its
/// registry, heartbeats and merges in its event sink.
pub fn cluster_parallel_obs(
    store: &SequenceStore,
    cfg: &ClusterConfig,
    p: usize,
    obs: &Obs,
) -> (ClusterResult, MergeTrace) {
    cluster_parallel_faults(store, cfg, p, &FaultPlan::none(), obs)
}

/// [`cluster_parallel_obs`] under a deterministic
/// [`FaultPlan`](pace_mpisim::FaultPlan): messages between ranks may be
/// dropped, delayed, or silenced by an injected crash, and the master's
/// timeout/retry/reassignment machinery recovers. With an empty plan
/// this *is* `cluster_parallel_obs`.
pub fn cluster_parallel_faults(
    store: &SequenceStore,
    cfg: &ClusterConfig,
    p: usize,
    plan: &FaultPlan,
    obs: &Obs,
) -> (ClusterResult, MergeTrace) {
    cfg.validate().expect("invalid cluster config");
    if p <= 1 {
        return cluster_sequential_obs(store, cfg, obs);
    }
    let num_slaves = p - 1;
    let total_span = obs.span(metric::PHASE_TOTAL);

    // Pack once, share read-only across every slave's alignment context.
    let packed = cfg.packed_alignment.then(|| PackedText::from_store(store));
    let packed_ref = packed.as_ref();

    let under_faults = !plan.is_empty();
    let outputs = run_world_obs(p, plan, obs, |rank| {
        if rank.rank() == 0 {
            master_rank(&rank, store, cfg, num_slaves, under_faults, obs)
        } else {
            slave_rank(&rank, store, packed_ref, cfg, num_slaves, obs)
        }
    });

    fold_outputs(outputs, obs, total_span.finish())
}

/// Fold per-rank outputs into one result. Shared by the thread backend
/// (outputs from the world join) and the socket backend (the master's
/// own output plus received [`Msg::Summary`] messages).
fn fold_outputs(outputs: Vec<RankOutput>, obs: &Obs, total: f64) -> (ClusterResult, MergeTrace) {
    let mut labels = Vec::new();
    let mut num_clusters = 0;
    let mut stats = ClusterStats::default();
    let mut trace = MergeTrace::new();
    let mut timers = PhaseTimers::default();
    let mut generated_total = 0u64;
    let mut unconsumed_total = 0u64;
    let mut prefiltered_total = 0u64;
    let mut ws_reuses_total = 0u64;
    let mut worker_injected = FaultSnapshot::default();
    for out in outputs {
        match out {
            RankOutput::Master {
                labels: l,
                num_clusters: k,
                stats: s,
                trace: t,
                busy_frac,
                comm,
                injected,
                partitioning,
                dead: _,
                early_summaries,
            } => {
                labels = l;
                num_clusters = k;
                trace = t;
                // Master-side `pairs_generated` counts pairs *received*
                // in reports; the slave generator totals replace it
                // below, with the shortfall becoming `faults.lost_pairs`.
                stats.pairs_processed = s.pairs_processed;
                stats.pairs_accepted = s.pairs_accepted;
                stats.pairs_skipped = s.pairs_skipped;
                stats.merges = s.merges;
                stats.faults = s.faults;
                stats.master_busy_frac = busy_frac;
                stats.messages = comm.messages;
                let reg = obs.registry();
                reg.add(metric::COMM_MESSAGES, comm.messages);
                reg.add(metric::COMM_BYTES, comm.bytes);
                reg.add(metric::COMM_BARRIERS, comm.barriers);
                reg.add(metric::COMM_REDUCTIONS, comm.reductions);
                reg.add(metric::FAULTS_INJECTED_DROPS, injected.dropped);
                reg.add(metric::FAULTS_INJECTED_DELAYS, injected.delayed);
                reg.add(metric::FAULTS_INJECTED_CRASHES, injected.crashes);
                reg.add(metric::FAULTS_INJECTED_STALLS, injected.stalls);
                timers.max_with(&PhaseTimers {
                    partitioning,
                    ..PhaseTimers::default()
                });
                debug_assert!(
                    early_summaries.is_empty(),
                    "early summaries must be folded into RankOutput::Slave by the caller"
                );
            }
            RankOutput::Slave { summary } => {
                generated_total += summary.gen_emitted;
                unconsumed_total += summary.unconsumed;
                prefiltered_total += summary.prefiltered;
                ws_reuses_total += summary.ws_reuses;
                worker_injected.dropped += summary.injected_drops;
                worker_injected.delayed += summary.injected_delays;
                worker_injected.stalls += summary.injected_stalls;
                timers.max_with(&PhaseTimers {
                    partitioning: summary.partitioning,
                    gst_construction: summary.gst_construction,
                    node_sorting: summary.node_sorting,
                    alignment: summary.alignment,
                    ..PhaseTimers::default()
                });
            }
        }
    }
    // Pairs the generators emitted that were neither resolved by the
    // master (processed or skipped) nor still buffered on a slave were
    // lost to injected faults: dropped in flight, or held by a slave
    // that died. Folding them into `pairs_unconsumed` keeps `generated
    // == processed + skipped + unconsumed` exact under every schedule.
    // Fault-free runs — and drop/delay-only plans, whose every report
    // is eventually delivered via resend — have `lost == 0`, which the
    // tests assert as the non-tautological form of conservation.
    //
    // On the socket backend a crashed worker's summary never arrives,
    // so `generated_total` can undercount what the master actually
    // received; the max() restores conservation by crediting the
    // missing generator with exactly the pairs the master saw from it.
    let generated_total =
        generated_total.max(stats.pairs_processed + stats.pairs_skipped + unconsumed_total);
    let lost = generated_total
        .saturating_sub(stats.pairs_processed + stats.pairs_skipped + unconsumed_total);
    stats.faults.lost_pairs = lost;
    stats.pairs_generated = generated_total;
    stats.pairs_unconsumed = unconsumed_total + lost;
    stats.pairs_prefiltered = prefiltered_total;
    timers.total = total;
    stats.timers = timers;
    // Per-process injector counters shipped in worker summaries (zero on
    // the thread backend, whose counters are world-shared).
    let reg = obs.registry();
    reg.add(metric::FAULTS_INJECTED_DROPS, worker_injected.dropped);
    reg.add(metric::FAULTS_INJECTED_DELAYS, worker_injected.delayed);
    reg.add(metric::FAULTS_INJECTED_STALLS, worker_injected.stalls);
    // Every result the master folded in came off a slave's long-lived
    // workspace, so this equals `pairs.processed` by construction.
    reg.add(metric::ALIGN_WS_REUSES, ws_reuses_total);
    record_cluster_counters(obs, &stats);
    obs.flush();

    (
        ClusterResult {
            labels,
            num_clusters,
            stats,
        },
        trace,
    )
}

/// Copies of a worker's final [`Msg::Summary`] sent when a fault plan is
/// active — like `Shutdown`, the summary has no acknowledgement, so
/// bounded redundancy carries it past bounded per-channel drop rules.
const SUMMARY_REDUNDANCY: usize = 3;

/// Run rank 0 of the protocol over a caller-supplied transport-backed
/// [`Rank`] — the multi-process entry point. The caller (the launcher)
/// builds the world: a [`pace_mpisim::UdsHub`] wrapped by `rank`, with
/// one [`cluster_worker_transport`] process per remaining rank.
///
/// After the protocol completes, worker summaries are collected as
/// [`Msg::Summary`] messages within a bounded window (crashed workers
/// never send one); the fold tolerates missing summaries by crediting
/// the absent generator with exactly the pairs the master received from
/// it, keeping flow conservation exact.
pub fn cluster_master_transport(
    store: &SequenceStore,
    cfg: &ClusterConfig,
    rank: &Rank<Msg>,
    under_faults: bool,
    obs: &Obs,
) -> (ClusterResult, MergeTrace) {
    cfg.validate().expect("invalid cluster config");
    assert_eq!(rank.rank(), 0, "the master must run on rank 0");
    let num_slaves = rank.size() - 1;
    let total_span = obs.span(metric::PHASE_TOTAL);

    let mut out = master_rank(rank, store, cfg, num_slaves, under_faults, obs);
    let RankOutput::Master {
        dead,
        early_summaries,
        ..
    } = &mut out
    else {
        unreachable!()
    };
    let dead = std::mem::take(dead);
    let mut summaries: Vec<Option<WorkerSummary>> = vec![None; num_slaves];
    let mut received = 0usize;
    for (slave, s) in early_summaries.drain(..) {
        if slave < num_slaves && summaries[slave].is_none() {
            summaries[slave] = Some(s);
            received += 1;
        }
    }

    // Collect the remaining summaries. Only slaves the master did not
    // declare dead are expected; the deadline bounds the wait if one of
    // them dies between its Shutdown and its summary.
    let expected = dead.iter().filter(|d| !**d).count();
    let window = (cfg.slave_timeout * (f64::from(cfg.max_retries) + 1.0)).clamp(1.0, 10.0);
    let deadline = Instant::now() + Duration::from_secs_f64(window);
    while received < expected {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let poll = (deadline - now).min(Duration::from_millis(50));
        match rank.recv_timeout(poll) {
            Ok(Some((from, Msg::Summary(s)))) if from >= 1 => {
                let slave = from - 1;
                if slave < num_slaves && summaries[slave].is_none() {
                    summaries[slave] = Some(s);
                    received += 1;
                }
            }
            // Stray duplicate reports from resend redundancy: ignore.
            Ok(Some(_)) | Ok(None) => {}
            Err(_) => break,
        }
    }

    let mut outputs = vec![out];
    outputs.extend(
        summaries
            .into_iter()
            .flatten()
            .map(|summary| RankOutput::Slave { summary }),
    );
    fold_outputs(outputs, obs, total_span.finish())
}

/// Run one worker rank of the protocol over a caller-supplied
/// transport-backed [`Rank`]: partitioning collectives, forest build,
/// the slave loop, then the final [`Msg::Summary`] (skipped when an
/// injected crash severed the connection — the master's fold tolerates
/// the gap). Returns whether this rank crashed, which the worker
/// process turns into its [`pace_mpisim::INJECTED_CRASH_EXIT`] status.
pub fn cluster_worker_transport(
    store: &SequenceStore,
    cfg: &ClusterConfig,
    rank: &Rank<Msg>,
    under_faults: bool,
    obs: &Obs,
) -> bool {
    cfg.validate().expect("invalid cluster config");
    assert!(rank.rank() >= 1, "workers run on ranks 1..size");
    let num_slaves = rank.size() - 1;
    let packed = cfg.packed_alignment.then(|| PackedText::from_store(store));
    let out = slave_rank(rank, store, packed.as_ref(), cfg, num_slaves, obs);
    let RankOutput::Slave { mut summary } = out else {
        unreachable!()
    };
    let injected = rank.fault_stats();
    summary.injected_drops = injected.dropped;
    summary.injected_delays = injected.delayed;
    summary.injected_stalls = injected.stalls;
    if !rank.crashed() {
        let copies = if under_faults { SUMMARY_REDUNDANCY } else { 1 };
        for _ in 0..copies {
            rank.send(0, Msg::Summary(summary.clone()));
        }
    }
    obs.flush();
    rank.crashed()
}

fn master_rank(
    rank: &pace_mpisim::Rank<Msg>,
    store: &SequenceStore,
    cfg: &ClusterConfig,
    num_slaves: usize,
    under_faults: bool,
    obs: &Obs,
) -> RankOutput {
    // Participate in the partitioning collectives with a zero
    // contribution (the master holds no input share).
    let span = obs.span_on(metric::PHASE_PARTITIONING, 0);
    let zeros = vec![0u64; num_buckets(cfg.window_w)];
    let _global_counts = rank.allreduce_sum(&zeros);
    let partitioning = span.finish();
    rank.barrier(); // slaves finish building their forests

    let mut master = Master::new(store.num_ests(), num_slaves, cfg.clone());
    master.begin(obs.now());
    // Wake at a quarter of the slave timeout so overdue batches are
    // noticed promptly without busy-spinning.
    let poll = Duration::from_secs_f64((cfg.slave_timeout / 4.0).clamp(0.001, 0.05));
    let send_replies = |replies: Vec<(usize, Msg)>| {
        for (slave, reply) in replies {
            // A dispatched batch opens a causal flow keyed on (slave,
            // seq); the slave's report closes it. Resends re-open the
            // same id, so the arrow tracks the delivery that worked.
            if let Msg::Work { seq, pairs, .. } = &reply {
                obs.trace_with(|tracer| {
                    let t = obs.now_us();
                    let id = flow_id(slave, *seq);
                    tracer.flow(TraceKind::FlowStart, 0, t, id);
                    tracer.instant(0, T_DISPATCH, t, id, pairs.len() as u64);
                });
            }
            // Shutdown has no ack; under a fault plan, bounded
            // redundancy carries it past the bounded drop rules.
            let copies = match (&reply, under_faults) {
                (Msg::Shutdown, true) => SHUTDOWN_REDUNDANCY,
                _ => 1,
            };
            for _ in 1..copies {
                rank.send(slave + 1, reply.clone());
            }
            rank.send(slave + 1, reply);
        }
    };
    let loop_t0 = obs.now();
    let mut busy = Timer::new();
    let mut reports = 0u64;
    let mut merges_emitted = 0usize;
    let mut hb_last_t = loop_t0;
    let mut hb_last_processed = 0u64;
    // Socket backend: a worker that got its Shutdown can send its final
    // summary while we are still shutting the others down.
    let mut early_summaries: Vec<(usize, WorkerSummary)> = Vec::new();
    while !master.is_done() {
        let mut got_report = false;
        match rank.recv_timeout(poll) {
            Ok(Some((from, msg))) => {
                busy.start();
                match msg {
                    Msg::Report {
                        seq,
                        results,
                        pairs,
                        exhausted,
                    } => {
                        debug_assert!(from >= 1);
                        got_report = true;
                        let t0_us = obs.trace_enabled().then(|| obs.now_us());
                        send_replies(master.handle_report(
                            from - 1,
                            seq,
                            results,
                            pairs,
                            exhausted,
                            obs.now(),
                        ));
                        if let Some(t0) = t0_us {
                            obs.trace_with(|tracer| {
                                let end = obs.now_us();
                                // The span covers both folding the report
                                // in and dispatching its successor, so the
                                // flow end and the next flow start land
                                // inside it.
                                tracer.span(
                                    0,
                                    T_HANDLE_REPORT,
                                    t0,
                                    end.saturating_sub(t0),
                                    flow_id(from - 1, seq),
                                    seq,
                                );
                                tracer.flow(TraceKind::FlowEnd, 0, t0, flow_id(from - 1, seq));
                            });
                        }
                    }
                    Msg::Summary(s) => {
                        debug_assert!(from >= 1);
                        early_summaries.push((from - 1, s));
                    }
                    other => unreachable!("master received {}", other.kind()),
                }
                busy.stop();
            }
            Ok(None) => {}
            Err(_) => {
                // The world is tearing down: every slave is gone (a
                // crashed run, or an external abort). Settle the books
                // and stop instead of waiting on messages that can
                // never arrive.
                master.handle_world_down();
            }
        }
        if !master.is_done() {
            busy.start();
            send_replies(master.tick(obs.now()));
            busy.stop();
        }

        if obs.events_enabled() || obs.trace_enabled() {
            for note in master.drain_fault_notes() {
                // Structural attribution: the slave the note is about and,
                // where the note concerns a specific batch, its protocol
                // sequence number.
                let (kind, seq, detail) = match note {
                    FaultNote::Resend { slave, seq, retry } => (
                        "resend",
                        Some(seq),
                        format!("slave {slave} seq {seq} retry {retry}"),
                    ),
                    FaultNote::DeadSlave { slave, reassigned } => (
                        "dead_slave",
                        None,
                        format!("slave {slave}, {reassigned} pairs reassigned"),
                    ),
                    FaultNote::DuplicateReport { slave, seq } => (
                        "duplicate_report",
                        Some(seq),
                        format!("slave {slave} seq {seq}"),
                    ),
                    FaultNote::Abandoned { pairs } => {
                        ("abandoned", None, format!("{pairs} pairs, no live slaves"))
                    }
                };
                obs.trace_with(|tracer| {
                    tracer.instant(0, tracer.intern(kind), obs.now_us(), seq.unwrap_or(0), 0);
                });
                obs.emit_with(|| Event::Fault {
                    t: obs.now(),
                    rank: 0,
                    kind: kind.to_string(),
                    seq,
                    detail: detail.clone(),
                });
            }
        }
        if obs.events_enabled() {
            for r in &master.trace.records()[merges_emitted..] {
                obs.emit(Event::Merge {
                    t: obs.now(),
                    est_a: r.est_a,
                    est_b: r.est_b,
                    mcs_len: r.mcs_len,
                    score_ratio: r.score_ratio,
                });
            }
            merges_emitted = master.trace.len();

            reports += u64::from(got_report);
            if got_report && reports.is_multiple_of(HEARTBEAT_EVERY) {
                let now = obs.now();
                let elapsed = (now - loop_t0).max(f64::EPSILON);
                let processed = master.stats.pairs_processed;
                let dt = (now - hb_last_t).max(f64::EPSILON);
                obs.emit(Event::Heartbeat {
                    rank: 0,
                    t: now,
                    busy_frac: busy.secs() / elapsed,
                    pairs_per_sec: (processed - hb_last_processed) as f64 / dt,
                    processed,
                });
                hb_last_t = now;
                hb_last_processed = processed;
            }
        }
    }
    let loop_total = (obs.now() - loop_t0).max(f64::EPSILON);

    let stats = master.stats;
    let trace = master.trace.clone();
    let dead = (0..num_slaves).map(|s| master.is_dead(s)).collect();
    let mut clusters = master.into_clusters();
    let labels = clusters.labels();
    RankOutput::Master {
        num_clusters: clusters.num_sets(),
        labels,
        stats,
        trace,
        busy_frac: busy.secs() / loop_total,
        comm: rank.stats(),
        injected: rank.fault_stats(),
        partitioning,
        dead,
        early_summaries,
    }
}

fn slave_rank(
    rank: &pace_mpisim::Rank<Msg>,
    store: &SequenceStore,
    packed: Option<&PackedText>,
    cfg: &ClusterConfig,
    num_slaves: usize,
    obs: &Obs,
) -> RankOutput {
    let slave_id = rank.rank() - 1;

    // Phase 1: partitioning — count my share, combine, assign.
    let span = obs.span_on(metric::PHASE_PARTITIONING, rank.rank());
    let local = count_buckets_stride(store, cfg.window_w, slave_id, num_slaves);
    let global = rank.allreduce_sum(&local);
    let partition = assign_buckets(&global, num_slaves);
    let partitioning = span.finish();

    // Phase 2: build my buckets' subtrees.
    let span = obs.span_on(metric::PHASE_GST_CONSTRUCTION, rank.rank());
    let forest = build_forest_for_rank(store, &partition, slave_id);
    let gst_construction = span.finish();
    record_gst_stats(obs, &partition, &forest);
    rank.barrier();

    // Phases 3–4: the slave protocol (node sorting happens inside).
    let summary = run_slave_obs(rank, 0, store, packed, &forest, cfg, obs);
    RankOutput::Slave {
        summary: worker_summary(&summary, partitioning, gst_construction),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver_seq::cluster_sequential;
    use pace_simulate::{generate, SimConfig};

    fn small_cfg() -> ClusterConfig {
        let mut c = ClusterConfig::small();
        c.psi = 16;
        c.overlap.min_overlap_len = 40;
        c.batchsize = 8;
        c
    }

    fn dataset(n: usize, seed: u64) -> pace_simulate::EstDataset {
        generate(&SimConfig {
            num_genes: (n / 12).max(2),
            num_ests: n,
            est_len_mean: 220.0,
            est_len_sd: 25.0,
            est_len_min: 120,
            exon_len: (220, 400),
            exons_per_gene: (1, 2),
            seed,
            ..SimConfig::default()
        })
    }

    #[test]
    fn parallel_matches_sequential_partition_on_clean_data() {
        let ds = {
            let mut cfg = SimConfig {
                num_genes: 10,
                num_ests: 100,
                est_len_mean: 220.0,
                est_len_sd: 25.0,
                est_len_min: 120,
                exon_len: (220, 400),
                exons_per_gene: (1, 2),
                seed: 21,
                ..SimConfig::default()
            };
            cfg.error_rate = 0.0;
            generate(&cfg)
        };
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let seq = cluster_sequential(&store, &small_cfg());
        for p in [2, 3, 5] {
            let par = cluster_parallel(&store, &small_cfg(), p);
            let agreement = pace_quality::assess(&par.labels, &seq.labels);
            assert!(
                agreement.oq > 0.99,
                "p={p}: parallel partition diverged: {agreement}"
            );
            assert_eq!(par.labels.len(), ds.ests.len());
        }
    }

    #[test]
    fn parallel_quality_against_truth() {
        let ds = dataset(120, 22);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let par = cluster_parallel(&store, &small_cfg(), 4);
        let m = pace_quality::assess(&par.labels, &ds.truth);
        assert!(m.oq > 0.75, "parallel OQ too low: {m}");
        assert!(m.cc > 0.80, "parallel CC too low: {m}");
    }

    #[test]
    fn p1_falls_back_to_sequential() {
        let ds = dataset(40, 23);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let a = cluster_parallel(&store, &small_cfg(), 1);
        let b = cluster_sequential(&store, &small_cfg());
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn two_ranks_single_slave_terminates() {
        let ds = dataset(60, 24);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let r = cluster_parallel(&store, &small_cfg(), 2);
        assert_eq!(r.labels.len(), 60);
        assert!(r.stats.pairs_processed > 0);
        assert!(r.stats.master_busy_frac >= 0.0 && r.stats.master_busy_frac <= 1.0);
        assert!(r.stats.messages > 0);
    }

    #[test]
    fn more_slaves_than_work_terminates() {
        // 6 ESTs, 7 ranks: most slaves own nothing and exhaust instantly.
        let ds = dataset(6, 25);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let r = cluster_parallel(&store, &small_cfg(), 7);
        assert_eq!(r.labels.len(), 6);
    }

    #[test]
    fn stats_aggregate_sensibly() {
        let ds = dataset(80, 26);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let r = cluster_parallel(&store, &small_cfg(), 3);
        let s = &r.stats;
        // Exact flow conservation: every generated pair is processed,
        // skipped, or still sitting in a slave's PAIRBUF at shutdown.
        assert_eq!(
            s.pairs_generated,
            s.pairs_processed + s.pairs_skipped + s.pairs_unconsumed
        );
        assert!(s.pairs_accepted <= s.pairs_processed);
        assert!(s.merges <= s.pairs_accepted);
        assert!(s.timers.total > 0.0);
        assert!(s.timers.gst_construction > 0.0);
    }

    #[test]
    fn trace_replay_matches_parallel_labels() {
        let ds = dataset(80, 27);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let (r, trace) = cluster_parallel_traced(&store, &small_cfg(), 3);
        assert_eq!(trace.len() as u64, r.stats.merges);
        let replayed = trace.replay(80);
        let agreement = pace_quality::assess(&replayed, &r.labels);
        assert_eq!(
            agreement.counts.fp + agreement.counts.fn_,
            0,
            "trace replay diverges from the parallel partition"
        );
    }

    #[test]
    fn registry_absorbs_comm_and_phase_series() {
        let ds = dataset(60, 28);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let obs = Obs::noop();
        let (r, _) = cluster_parallel_obs(&store, &small_cfg(), 4, &obs);
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counters[metric::COMM_MESSAGES], r.stats.messages);
        assert!(snap.counters[metric::COMM_BARRIERS] >= 1);
        assert!(snap.counters[metric::COMM_REDUCTIONS] >= 1);
        assert_eq!(
            snap.counters[metric::PAIRS_GENERATED],
            r.stats.pairs_generated
        );
        // Every rank recorded a partitioning span; the 3 slaves recorded
        // gst/sort/align spans.
        assert_eq!(snap.phases[metric::PHASE_PARTITIONING].count, 4);
        assert_eq!(snap.phases[metric::PHASE_GST_CONSTRUCTION].count, 3);
        assert_eq!(snap.phases[metric::PHASE_ALIGNMENT].count, 3);
        // The legacy critical-path timers equal the cross-rank maxima.
        assert!(
            (snap.phases[metric::PHASE_GST_CONSTRUCTION].max - r.stats.timers.gst_construction)
                .abs()
                < 1e-9
        );
        assert!((snap.phases[metric::PHASE_ALIGNMENT].max - r.stats.timers.alignment).abs() < 1e-9);
        assert_eq!(
            snap.gauges[metric::MASTER_BUSY_FRAC],
            r.stats.master_busy_frac
        );
        // The generators' MCS histogram covers every generated pair.
        assert_eq!(
            snap.histograms[metric::PAIRS_MCS_LEN].count(),
            r.stats.pairs_generated
        );
    }

    #[test]
    fn trace_records_flows_and_satisfies_invariants() {
        let ds = dataset(100, 30);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let obs = Obs::with_tracer();
        let (r, _) = cluster_parallel_obs(&store, &small_cfg(), 3, &obs);
        assert!(r.stats.pairs_processed > 0);
        let tracer = obs.tracer().unwrap();
        assert!(tracer.recorded() > 0);

        let doc = pace_obs::TraceDoc::from_tracer(tracer);
        let analysis = pace_obs::trace::analyze(&doc);
        let problems = analysis.check_invariants();
        assert!(
            problems.is_empty(),
            "trace invariants violated: {problems:?}"
        );

        // Fault-free: every dispatched batch's flow closes at the master
        // (the non-tautological trace form of pair-flow conservation).
        assert!(analysis.flows_total > 0, "no flows recorded");
        assert_eq!(
            analysis.flows_unresolved, 0,
            "unclosed flows without faults"
        );
        assert_eq!(analysis.flows_orphan_ends, 0);
        assert_eq!(analysis.ranks.len(), 3, "one breakdown per rank");
        assert!(analysis.critical_path_secs <= analysis.wall_secs + 1e-9);
        assert!(
            analysis
                .quantiles
                .contains_key(pace_obs::trace::T_HANDLE_REPORT),
            "master handle_report spans missing from quantiles"
        );
        assert!(analysis
            .quantiles
            .contains_key(pace_obs::trace::T_REPORT_SEND));

        // The Chrome export round-trips through our own parser.
        let json = tracer.to_chrome_json();
        let reparsed = pace_obs::TraceDoc::from_chrome_json(&json).expect("reparse");
        assert_eq!(reparsed.spans.len(), doc.spans.len());
        assert_eq!(reparsed.flows.len(), doc.flows.len());
    }

    #[test]
    fn events_stream_heartbeats_and_merges() {
        let ds = dataset(100, 29);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let sink = pace_obs::VecSink::shared();
        let obs = Obs::with_sink(Box::new(sink.clone()));
        let (r, trace) = cluster_parallel_obs(&store, &small_cfg(), 3, &obs);
        let events = sink.snapshot();
        let merges: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Merge { est_a, est_b, .. } => Some((*est_a, *est_b)),
                _ => None,
            })
            .collect();
        assert_eq!(merges.len() as u64, r.stats.merges);
        let traced: Vec<_> = trace.records().iter().map(|m| (m.est_a, m.est_b)).collect();
        assert_eq!(merges, traced, "merge events must mirror the trace order");
        // Phase spans from every rank are present and well-formed.
        let starts = events
            .iter()
            .filter(|e| matches!(e, Event::PhaseStart { .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e, Event::PhaseEnd { .. }))
            .count();
        assert_eq!(starts, ends);
        assert!(starts >= 4, "expected at least one span per rank");
        for e in &events {
            if let Event::Heartbeat { busy_frac, .. } = e {
                assert!((0.0..=1.0).contains(busy_frac));
            }
        }
    }
}
