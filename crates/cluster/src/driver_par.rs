//! Parallel driver: the full master–slave protocol over `p` ranks.
//!
//! Rank 0 is the master; ranks `1..p` are slaves. The phases mirror the
//! paper's system: (1) each slave counts its share of the suffixes per
//! bucket and the counts are combined with the parallel-summation
//! collective; (2) buckets are assigned deterministically and each slave
//! builds the subtrees it owns; (3) the clustering protocol runs until
//! the master issues shutdowns. Phase timers are per-rank and reported as
//! the cross-rank maxima (critical-path times, as in Table 3).

use crate::config::ClusterConfig;
use crate::driver_seq::cluster_sequential;
use crate::master::Master;
use crate::messages::Msg;
use crate::slave::{run_slave, SlaveReportSummary};
use crate::stats::{ClusterResult, ClusterStats, PhaseTimers};
use pace_gst::{assign_buckets, build_forest_for_rank, count_buckets_stride, num_buckets};
use pace_mpisim::run_world;
use pace_seq::SequenceStore;
use std::time::Instant;

/// Per-rank results collected when the world joins.
enum RankOutput {
    Master {
        labels: Vec<usize>,
        num_clusters: usize,
        stats: ClusterStats,
        busy_frac: f64,
        messages: u64,
        partitioning: f64,
    },
    Slave {
        summary: SlaveReportSummary,
        partitioning: f64,
        gst_construction: f64,
    },
}

/// Cluster with `p` ranks (1 master + `p − 1` slaves). `p ≤ 1` falls back
/// to the sequential driver.
pub fn cluster_parallel(store: &SequenceStore, cfg: &ClusterConfig, p: usize) -> ClusterResult {
    cfg.validate().expect("invalid cluster config");
    if p <= 1 {
        return cluster_sequential(store, cfg);
    }
    let num_slaves = p - 1;
    let total_started = Instant::now();

    let outputs = run_world(p, |rank| {
        if rank.rank() == 0 {
            master_rank(&rank, store, cfg, num_slaves)
        } else {
            slave_rank(&rank, store, cfg, num_slaves)
        }
    });

    // Fold the per-rank outputs into one result.
    let mut labels = Vec::new();
    let mut num_clusters = 0;
    let mut stats = ClusterStats::default();
    let mut timers = PhaseTimers::default();
    let mut generated_total = 0u64;
    for out in outputs {
        match out {
            RankOutput::Master {
                labels: l,
                num_clusters: k,
                stats: s,
                busy_frac,
                messages,
                partitioning,
            } => {
                labels = l;
                num_clusters = k;
                stats.pairs_processed = s.pairs_processed;
                stats.pairs_accepted = s.pairs_accepted;
                stats.pairs_skipped = s.pairs_skipped;
                stats.merges = s.merges;
                stats.master_busy_frac = busy_frac;
                stats.messages = messages;
                timers.max_with(&PhaseTimers {
                    partitioning,
                    ..PhaseTimers::default()
                });
            }
            RankOutput::Slave {
                summary,
                partitioning,
                gst_construction,
            } => {
                generated_total += summary.gen.emitted;
                timers.max_with(&PhaseTimers {
                    partitioning,
                    gst_construction,
                    node_sorting: summary.timers.node_sorting,
                    alignment: summary.timers.alignment,
                    ..PhaseTimers::default()
                });
            }
        }
    }
    stats.pairs_generated = generated_total;
    timers.total = total_started.elapsed().as_secs_f64();
    stats.timers = timers;

    ClusterResult {
        labels,
        num_clusters,
        stats,
    }
}

fn master_rank(
    rank: &pace_mpisim::Rank<Msg>,
    store: &SequenceStore,
    cfg: &ClusterConfig,
    num_slaves: usize,
) -> RankOutput {
    // Participate in the partitioning collectives with a zero
    // contribution (the master holds no input share).
    let started = Instant::now();
    let zeros = vec![0u64; num_buckets(cfg.window_w)];
    let _global_counts = rank.allreduce_sum(&zeros);
    let partitioning = started.elapsed().as_secs_f64();
    rank.barrier(); // slaves finish building their forests

    let mut master = Master::new(store.num_ests(), num_slaves, cfg.clone());
    let loop_started = Instant::now();
    let mut busy = 0.0f64;
    while !master.is_done() {
        let (from, msg) = rank
            .recv()
            .expect("slaves must not terminate before shutdown");
        let handle_started = Instant::now();
        match msg {
            Msg::Report {
                results,
                pairs,
                exhausted,
            } => {
                debug_assert!(from >= 1);
                for (slave, reply) in master.handle_report(from - 1, results, pairs, exhausted) {
                    rank.send(slave + 1, reply);
                }
            }
            other => unreachable!("master received {}", other.kind()),
        }
        busy += handle_started.elapsed().as_secs_f64();
    }
    let loop_total = loop_started.elapsed().as_secs_f64().max(f64::EPSILON);

    let stats = master.stats;
    let mut clusters = master.into_clusters();
    let labels = clusters.labels();
    RankOutput::Master {
        num_clusters: clusters.num_sets(),
        labels,
        stats,
        busy_frac: busy / loop_total,
        messages: rank.stats().messages,
        partitioning,
    }
}

fn slave_rank(
    rank: &pace_mpisim::Rank<Msg>,
    store: &SequenceStore,
    cfg: &ClusterConfig,
    num_slaves: usize,
) -> RankOutput {
    let slave_id = rank.rank() - 1;

    // Phase 1: partitioning — count my share, combine, assign.
    let started = Instant::now();
    let local = count_buckets_stride(store, cfg.window_w, slave_id, num_slaves);
    let global = rank.allreduce_sum(&local);
    let partition = assign_buckets(&global, num_slaves);
    let partitioning = started.elapsed().as_secs_f64();

    // Phase 2: build my buckets' subtrees.
    let started = Instant::now();
    let forest = build_forest_for_rank(store, &partition, slave_id);
    let gst_construction = started.elapsed().as_secs_f64();
    rank.barrier();

    // Phases 3–4: the slave protocol (node sorting happens inside).
    let summary = run_slave(rank, 0, store, &forest, cfg);
    RankOutput::Slave {
        summary,
        partitioning,
        gst_construction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_simulate::{generate, SimConfig};

    fn small_cfg() -> ClusterConfig {
        let mut c = ClusterConfig::small();
        c.psi = 16;
        c.overlap.min_overlap_len = 40;
        c.batchsize = 8;
        c
    }

    fn dataset(n: usize, seed: u64) -> pace_simulate::EstDataset {
        generate(&SimConfig {
            num_genes: (n / 12).max(2),
            num_ests: n,
            est_len_mean: 220.0,
            est_len_sd: 25.0,
            est_len_min: 120,
            exon_len: (220, 400),
            exons_per_gene: (1, 2),
            seed,
            ..SimConfig::default()
        })
    }

    #[test]
    fn parallel_matches_sequential_partition_on_clean_data() {
        let ds = {
            let mut cfg = SimConfig {
                num_genes: 10,
                num_ests: 100,
                est_len_mean: 220.0,
                est_len_sd: 25.0,
                est_len_min: 120,
                exon_len: (220, 400),
                exons_per_gene: (1, 2),
                seed: 21,
                ..SimConfig::default()
            };
            cfg.error_rate = 0.0;
            generate(&cfg)
        };
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let seq = cluster_sequential(&store, &small_cfg());
        for p in [2, 3, 5] {
            let par = cluster_parallel(&store, &small_cfg(), p);
            let agreement = pace_quality::assess(&par.labels, &seq.labels);
            assert!(
                agreement.oq > 0.99,
                "p={p}: parallel partition diverged: {agreement}"
            );
            assert_eq!(par.labels.len(), ds.ests.len());
        }
    }

    #[test]
    fn parallel_quality_against_truth() {
        let ds = dataset(120, 22);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let par = cluster_parallel(&store, &small_cfg(), 4);
        let m = pace_quality::assess(&par.labels, &ds.truth);
        assert!(m.oq > 0.75, "parallel OQ too low: {m}");
        assert!(m.cc > 0.80, "parallel CC too low: {m}");
    }

    #[test]
    fn p1_falls_back_to_sequential() {
        let ds = dataset(40, 23);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let a = cluster_parallel(&store, &small_cfg(), 1);
        let b = cluster_sequential(&store, &small_cfg());
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn two_ranks_single_slave_terminates() {
        let ds = dataset(60, 24);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let r = cluster_parallel(&store, &small_cfg(), 2);
        assert_eq!(r.labels.len(), 60);
        assert!(r.stats.pairs_processed > 0);
        assert!(r.stats.master_busy_frac >= 0.0 && r.stats.master_busy_frac <= 1.0);
        assert!(r.stats.messages > 0);
    }

    #[test]
    fn more_slaves_than_work_terminates() {
        // 6 ESTs, 7 ranks: most slaves own nothing and exhaust instantly.
        let ds = dataset(6, 25);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let r = cluster_parallel(&store, &small_cfg(), 7);
        assert_eq!(r.labels.len(), 6);
    }

    #[test]
    fn stats_aggregate_sensibly() {
        let ds = dataset(80, 26);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let r = cluster_parallel(&store, &small_cfg(), 3);
        let s = &r.stats;
        // Some pairs may remain in slave PAIRBUFs at shutdown, so
        // generated ≥ processed + skipped is the invariant here.
        assert!(s.pairs_generated >= s.pairs_processed + s.pairs_skipped);
        assert!(s.merges <= s.pairs_accepted);
        assert!(s.timers.total > 0.0);
        assert!(s.timers.gst_construction > 0.0);
    }
}
