//! The PaCE clustering engine (paper §3.3).
//!
//! Every EST starts as its own cluster; clusters merge when a promising
//! pair — one EST from each — shows a strong overlap alignment. The
//! structure is master–slave:
//!
//! * the **master** ([`master`]) owns `WORKBUF` (pairs awaiting alignment)
//!   and `CLUSTERS` (union–find). It discards pairs whose ESTs already
//!   share a cluster — the single most important work-saving rule, which
//!   the decreasing-MCS pair order makes effective — merges clusters on
//!   accepted alignments, and regulates pair flow with the paper's
//!   `E = min(α·δ·batchsize, nfree/p)` demand formula;
//! * **slaves** ([`slave`]) generate promising pairs from their local
//!   portion of the suffix-tree forest and run anchored banded alignments,
//!   overlapping communication with computation (three-portion startup,
//!   `NEXTWORK` double buffering, generation while waiting).
//!
//! Two drivers expose the engine: [`driver_seq`] runs master logic inline
//! with one in-process generator (the reference implementation), and
//! [`driver_par`] runs the full message protocol over `p` ranks of the
//! thread-backed MPI substitute. The same protocol also runs over any
//! [`pace_mpisim::Transport`]: [`driver_par::cluster_master_transport`] /
//! [`driver_par::cluster_worker_transport`] drive one rank each over a
//! caller-supplied `Rank<Msg>` (the multi-process socket path), with
//! [`wire_msg`] providing the `Msg` wire codec.

pub mod align_task;
pub mod config;
pub mod driver_par;
pub mod driver_seq;
pub mod driver_sharded;
pub mod master;
pub mod messages;
pub mod slave;
pub mod slave_sharded;
pub mod stats;
pub mod trace;
pub mod wire_msg;

pub use align_task::{align_pair, AlignContext, PairOutcome};
pub use config::{ClusterConfig, ShardRole, ShardTopology};
pub use driver_par::{
    cluster_master_transport, cluster_parallel, cluster_parallel_faults, cluster_parallel_obs,
    cluster_parallel_traced, cluster_worker_transport,
};
pub use driver_seq::{
    cluster_sequential, cluster_sequential_obs, cluster_sequential_traced, record_cluster_counters,
    record_gst_stats,
};
pub use driver_sharded::{
    cluster_sharded_faults, cluster_sharded_master_transport, cluster_sharded_obs,
    cluster_sharded_worker_transport,
};
pub use master::{ClusterSets, FaultNote};
pub use messages::{Msg, ShardReport, WorkerSummary};
pub use stats::{ClusterResult, ClusterStats, FaultStats, PhaseTimers};
pub use trace::{MergeRecord, MergeTrace};
