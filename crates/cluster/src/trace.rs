//! Merge tracing: an audit log of how the clustering was assembled.
//!
//! The master's decisions are normally summarized by counters; for
//! debugging, ablation analysis and the examples, a [`MergeTrace`]
//! records each accepted merge with its evidence (which pair, which
//! maximal-common-substring length, what score ratio). The trace can
//! replay itself onto a fresh union–find, which gives tests a strong
//! end-to-end invariant: replaying the trace reproduces the partition
//! exactly.

use crate::align_task::PairOutcome;
use pace_dsu::DisjointSets;

/// One accepted merge, in the order the master performed them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeRecord {
    /// Smaller EST index of the merging pair.
    pub est_a: usize,
    /// Larger EST index.
    pub est_b: usize,
    /// Maximal-common-substring length that promoted the pair.
    pub mcs_len: u32,
    /// Alignment score ratio (achieved / ideal).
    pub score_ratio: f64,
}

/// An ordered log of the merges of one clustering run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MergeTrace {
    records: Vec<MergeRecord>,
}

impl MergeTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassemble a trace from records in merge order (the persistence
    /// layer's decode path).
    pub fn from_records(records: Vec<MergeRecord>) -> Self {
        MergeTrace { records }
    }

    /// Record an accepted outcome that actually merged two clusters.
    pub fn record(&mut self, outcome: &PairOutcome) {
        let (a, b) = outcome.pair.est_indices();
        self.records.push(MergeRecord {
            est_a: a,
            est_b: b,
            mcs_len: outcome.pair.mcs_len,
            score_ratio: outcome.score_ratio,
        });
    }

    /// Number of merges recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no merges were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in merge order.
    pub fn records(&self) -> &[MergeRecord] {
        &self.records
    }

    /// Replay the trace onto `n` fresh singletons, returning the
    /// resulting partition labels.
    pub fn replay(&self, n: usize) -> Vec<usize> {
        let mut dsu = DisjointSets::new(n);
        for r in &self.records {
            dsu.union(r.est_a, r.est_b);
        }
        dsu.labels()
    }

    /// Evidence-strength histogram: how many merges were promoted by an
    /// MCS in each length bucket of `bucket_width` bases. Useful for
    /// choosing ψ: the left tail shows how close to the threshold the
    /// productive pairs sit.
    pub fn mcs_histogram(&self, bucket_width: u32) -> Vec<(u32, usize)> {
        assert!(bucket_width > 0);
        let mut hist: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
        for r in &self.records {
            let bucket = r.mcs_len / bucket_width * bucket_width;
            *hist.entry(bucket).or_insert(0) += 1;
        }
        hist.into_iter().collect()
    }

    /// Render as a TSV (`est_a  est_b  mcs_len  score_ratio` per line).
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("est_a\test_b\tmcs_len\tscore_ratio\n");
        for r in &self.records {
            out.push_str(&format!(
                "{}\t{}\t{}\t{:.4}\n",
                r.est_a, r.est_b, r.mcs_len, r.score_ratio
            ));
        }
        out
    }

    /// Render as JSONL: one merge object per line, same field names as
    /// the TSV columns. Machine-friendly counterpart of [`Self::to_tsv`],
    /// and the same shape `--events-out` uses for its `merge` events.
    pub fn to_jsonl(&self) -> String {
        use pace_obs::Json;
        let mut out = String::new();
        for r in &self.records {
            let line = Json::obj([
                ("est_a", Json::Num(r.est_a as f64)),
                ("est_b", Json::Num(r.est_b as f64)),
                ("mcs_len", Json::Num(r.mcs_len as f64)),
                ("score_ratio", Json::Num(r.score_ratio)),
            ]);
            out.push_str(&line.to_string());
            out.push('\n');
        }
        out
    }

    /// Parse a trace previously rendered by [`Self::to_jsonl`]. Returns
    /// `None` on any malformed line or missing field.
    pub fn from_jsonl(text: &str) -> Option<Self> {
        let mut records = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let doc = pace_obs::json::parse(line).ok()?;
            records.push(MergeRecord {
                est_a: doc.get("est_a")?.as_u64()? as usize,
                est_b: doc.get("est_b")?.as_u64()? as usize,
                mcs_len: doc.get("mcs_len")?.as_u64()? as u32,
                score_ratio: doc.get("score_ratio")?.as_f64()?,
            });
        }
        Some(MergeTrace { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_pairgen::CandidatePair;
    use pace_seq::{EstId, Strand};

    fn outcome(a: u32, b: u32, mcs: u32, ratio: f64) -> PairOutcome {
        PairOutcome {
            pair: CandidatePair {
                s1: EstId(a).str_id(Strand::Forward),
                s2: EstId(b).str_id(Strand::Forward),
                off1: 0,
                off2: 0,
                mcs_len: mcs,
            },
            accepted: true,
            score_ratio: ratio,
        }
    }

    #[test]
    fn replay_reconstructs_partition() {
        let mut trace = MergeTrace::new();
        trace.record(&outcome(0, 1, 30, 0.95));
        trace.record(&outcome(2, 3, 25, 0.9));
        trace.record(&outcome(1, 2, 22, 0.85));
        let labels = trace.replay(6);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[4]);
        assert_ne!(labels[4], labels[5]);
        assert_eq!(trace.len(), 3);
    }

    #[test]
    fn histogram_buckets_by_width() {
        let mut trace = MergeTrace::new();
        for (mcs, _) in [(20u32, 0), (24, 0), (25, 0), (41, 0)] {
            trace.record(&outcome(0, 1, mcs, 0.9));
        }
        assert_eq!(trace.mcs_histogram(10), vec![(20, 3), (40, 1)]);
        assert_eq!(trace.mcs_histogram(5), vec![(20, 2), (25, 1), (40, 1)]);
    }

    #[test]
    fn tsv_rendering() {
        let mut trace = MergeTrace::new();
        trace.record(&outcome(7, 9, 33, 0.875));
        let tsv = trace.to_tsv();
        assert!(tsv.starts_with("est_a\t"));
        assert!(tsv.contains("7\t9\t33\t0.8750"));
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut trace = MergeTrace::new();
        trace.record(&outcome(0, 1, 30, 0.95));
        trace.record(&outcome(7, 9, 33, 0.875));
        trace.record(&outcome(1, 9, 21, 1.0));
        let text = trace.to_jsonl();
        assert_eq!(text.lines().count(), 3);
        let back = MergeTrace::from_jsonl(&text).unwrap();
        assert_eq!(back, trace);
        // Malformed input is rejected, not silently truncated.
        assert!(MergeTrace::from_jsonl("{\"est_a\": 1}\n").is_none());
        assert!(MergeTrace::from_jsonl("not json\n").is_none());
    }

    #[test]
    fn empty_trace() {
        let trace = MergeTrace::new();
        assert!(trace.is_empty());
        assert_eq!(trace.replay(4), vec![0, 1, 2, 3]);
        assert!(trace.mcs_histogram(10).is_empty());
    }
}
