//! The master–slave message protocol.

use crate::align_task::PairOutcome;
use crate::trace::MergeRecord;
use pace_pairgen::CandidatePair;

/// A worker's end-of-run accounting, shipped to the master as a
/// [`Msg::Summary`] in multi-process runs. The channel backend returns
/// the same numbers through the thread join instead, so this message
/// only appears on the socket transport.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkerSummary {
    /// Generator: forest nodes of depth ≥ ψ processed.
    pub gen_nodes_processed: u64,
    /// Generator: raw pairs before filtering.
    pub gen_raw_pairs: u64,
    /// Generator: same-EST pairs discarded.
    pub gen_discarded_self: u64,
    /// Generator: mirror-image pairs discarded.
    pub gen_discarded_mirror: u64,
    /// Generator: promising pairs emitted.
    pub gen_emitted: u64,
    /// Seconds in generator setup (node collection + sort).
    pub node_sorting: f64,
    /// Seconds inside the alignment kernel.
    pub alignment: f64,
    /// Seconds in the partitioning phase.
    pub partitioning: f64,
    /// Seconds building this worker's subtrees.
    pub gst_construction: f64,
    /// Pairs still buffered in `PAIRBUF` at shutdown.
    pub unconsumed: u64,
    /// Pairs rejected by the cheap pre-alignment filters.
    pub prefiltered: u64,
    /// Pairs served through the reused alignment workspace.
    pub ws_reuses: u64,
    /// Fault-injector counters observed by this worker's process
    /// (meaningful on the socket transport, where counters are
    /// per-process rather than world-shared).
    pub injected_drops: u64,
    /// See `injected_drops`.
    pub injected_delays: u64,
    /// See `injected_drops`.
    pub injected_stalls: u64,
    /// Sharded runs: pairs this worker's generator emitted, indexed by
    /// owning shard. Empty on single-master runs. Summed across workers
    /// this is each shard's `generated` side of the per-shard flow
    /// conservation law.
    pub gen_by_owner: Vec<u64>,
    /// Sharded runs: pairs still buffered for each shard at shutdown
    /// (the per-shard split of `unconsumed`). Empty on single-master
    /// runs.
    pub unconsumed_by_owner: Vec<u64>,
}

/// A sub-master's end-of-run accounting, shipped to the reconciler in a
/// [`Msg::ShardDone`] together with the shard's merge records. The
/// records are authoritative: the reconciler rebuilds the global
/// partition by replaying them, so a lost incremental
/// [`Msg::CrossMerge`] can never change the result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardReport {
    /// Every merge this shard performed (local and cross-shard), in
    /// order. Replayed by the reconciler to build the final partition.
    pub records: Vec<MergeRecord>,
    /// Pairs received in reports (this shard's `pairs_generated`).
    pub pairs_received: u64,
    /// Pairs aligned (result outcomes folded).
    pub pairs_processed: u64,
    /// Accepted alignments.
    pub pairs_accepted: u64,
    /// Pairs skipped as already-clustered (plus abandoned ones).
    pub pairs_skipped: u64,
    /// Merges counted by this shard (local unions + distinct cross edges).
    pub merges: u64,
    /// Distinct cross-shard edges logged.
    pub cross_edges: u64,
    /// Epoch barriers at which cross edges were flushed.
    pub epochs: u64,
    /// Fault counters, mirrored from this shard's `FaultStats`.
    pub retries: u64,
    /// See `retries`.
    pub duplicate_reports: u64,
    /// See `retries`.
    pub dead_slaves: u64,
    /// See `retries`.
    pub reassigned_pairs: u64,
    /// See `retries`.
    pub abandoned_pairs: u64,
    /// Messages this sub-master's own sends dropped under an injected
    /// fault plan (its rank is a sender too — without these the global
    /// `faults.injected.*` ledger undercounts).
    pub injected_drops: u64,
    /// See `injected_drops`.
    pub injected_delays: u64,
    /// See `injected_drops`.
    pub injected_stalls: u64,
    /// Fraction of wall time this sub-master spent handling reports.
    pub busy_frac: f64,
}

/// Messages flowing in either direction (the mpisim channel is typed with
/// this single enum).
///
/// `Work` and `Report` carry a per-slave batch sequence number so the
/// protocol survives loss and duplication: the master only sends a new
/// sequence once the previous one's report has arrived, re-sends an
/// unanswered `Work` under the *same* sequence number, and a slave
/// answers a duplicate `Work` by re-sending its cached report instead of
/// aligning anything twice. The slave's unsolicited startup report is
/// sequence 0; fresh master batches count from 1.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Slave → master: alignment results plus freshly generated pairs.
    Report {
        /// Sequence number of the `Work` this answers (0 = startup).
        seq: u64,
        /// Outcomes of the most recent batch of alignments (`R`).
        results: Vec<PairOutcome>,
        /// Promising pairs generated on demand (`P`).
        pairs: Vec<CandidatePair>,
        /// The slave's generator (and `PAIRBUF`) is empty — it cannot
        /// supply more pairs, ever.
        exhausted: bool,
    },
    /// Master → slave: work to align plus the next pair request size.
    Work {
        /// Per-slave batch sequence number (0 = probe for a lost
        /// startup report; re-sent batches reuse their original value).
        seq: u64,
        /// Pairs to align (`W ≤ batchsize`).
        pairs: Vec<CandidatePair>,
        /// How many pairs to include in the next report (`E`).
        request: usize,
    },
    /// Master → slave: everything is done, terminate.
    Shutdown,
    /// Slave → master, after `Shutdown`: final accounting for the fold
    /// (multi-process runs only; thread worlds join instead).
    Summary(WorkerSummary),
    /// Sub-master → reconciler: cross-shard merge edges flushed at an
    /// epoch barrier. Incremental and advisory — the reconciler folds
    /// them into its running global DSU for observability, but the
    /// final partition comes from [`Msg::ShardDone`] records, so a
    /// dropped `CrossMerge` is harmless.
    CrossMerge {
        /// Originating shard index.
        shard: u32,
        /// This shard's epoch counter at the flush.
        epoch: u64,
        /// Normalized `(min, max)` EST-id edges, deduplicated per shard.
        edges: Vec<(u32, u32)>,
    },
    /// Sub-master → reconciler: this shard finished; its merge records
    /// and accounting (sent with redundancy under faults, deduplicated
    /// by shard index at the reconciler).
    ShardDone {
        /// Originating shard index.
        shard: u32,
        /// The shard's authoritative record of what happened.
        report: ShardReport,
    },
}

impl Msg {
    /// Debug label for traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Report { .. } => "Report",
            Msg::Work { .. } => "Work",
            Msg::Shutdown => "Shutdown",
            Msg::Summary(_) => "Summary",
            Msg::CrossMerge { .. } => "CrossMerge",
            Msg::ShardDone { .. } => "ShardDone",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        assert_eq!(
            Msg::Report {
                seq: 0,
                results: vec![],
                pairs: vec![],
                exhausted: false
            }
            .kind(),
            "Report"
        );
        assert_eq!(
            Msg::Work {
                seq: 1,
                pairs: vec![],
                request: 0
            }
            .kind(),
            "Work"
        );
        assert_eq!(Msg::Shutdown.kind(), "Shutdown");
        assert_eq!(
            Msg::CrossMerge {
                shard: 0,
                epoch: 0,
                edges: vec![]
            }
            .kind(),
            "CrossMerge"
        );
        assert_eq!(
            Msg::ShardDone {
                shard: 0,
                report: ShardReport::default()
            }
            .kind(),
            "ShardDone"
        );
    }
}
