//! The master–slave message protocol.

use crate::align_task::PairOutcome;
use pace_pairgen::CandidatePair;

/// Messages flowing in either direction (the mpisim channel is typed with
/// this single enum).
///
/// `Work` and `Report` carry a per-slave batch sequence number so the
/// protocol survives loss and duplication: the master only sends a new
/// sequence once the previous one's report has arrived, re-sends an
/// unanswered `Work` under the *same* sequence number, and a slave
/// answers a duplicate `Work` by re-sending its cached report instead of
/// aligning anything twice. The slave's unsolicited startup report is
/// sequence 0; fresh master batches count from 1.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Slave → master: alignment results plus freshly generated pairs.
    Report {
        /// Sequence number of the `Work` this answers (0 = startup).
        seq: u64,
        /// Outcomes of the most recent batch of alignments (`R`).
        results: Vec<PairOutcome>,
        /// Promising pairs generated on demand (`P`).
        pairs: Vec<CandidatePair>,
        /// The slave's generator (and `PAIRBUF`) is empty — it cannot
        /// supply more pairs, ever.
        exhausted: bool,
    },
    /// Master → slave: work to align plus the next pair request size.
    Work {
        /// Per-slave batch sequence number (0 = probe for a lost
        /// startup report; re-sent batches reuse their original value).
        seq: u64,
        /// Pairs to align (`W ≤ batchsize`).
        pairs: Vec<CandidatePair>,
        /// How many pairs to include in the next report (`E`).
        request: usize,
    },
    /// Master → slave: everything is done, terminate.
    Shutdown,
}

impl Msg {
    /// Debug label for traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Report { .. } => "Report",
            Msg::Work { .. } => "Work",
            Msg::Shutdown => "Shutdown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        assert_eq!(
            Msg::Report {
                seq: 0,
                results: vec![],
                pairs: vec![],
                exhausted: false
            }
            .kind(),
            "Report"
        );
        assert_eq!(
            Msg::Work {
                seq: 1,
                pairs: vec![],
                request: 0
            }
            .kind(),
            "Work"
        );
        assert_eq!(Msg::Shutdown.kind(), "Shutdown");
    }
}
