//! The master–slave message protocol.

use crate::align_task::PairOutcome;
use pace_pairgen::CandidatePair;

/// Messages flowing in either direction (the mpisim channel is typed with
/// this single enum).
#[derive(Debug, Clone)]
pub enum Msg {
    /// Slave → master: alignment results plus freshly generated pairs.
    Report {
        /// Outcomes of the most recent batch of alignments (`R`).
        results: Vec<PairOutcome>,
        /// Promising pairs generated on demand (`P`).
        pairs: Vec<CandidatePair>,
        /// The slave's generator (and `PAIRBUF`) is empty — it cannot
        /// supply more pairs, ever.
        exhausted: bool,
    },
    /// Master → slave: work to align plus the next pair request size.
    Work {
        /// Pairs to align (`W ≤ batchsize`).
        pairs: Vec<CandidatePair>,
        /// How many pairs to include in the next report (`E`).
        request: usize,
    },
    /// Master → slave: everything is done, terminate.
    Shutdown,
}

impl Msg {
    /// Debug label for traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Report { .. } => "Report",
            Msg::Work { .. } => "Work",
            Msg::Shutdown => "Shutdown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        assert_eq!(
            Msg::Report {
                results: vec![],
                pairs: vec![],
                exhausted: false
            }
            .kind(),
            "Report"
        );
        assert_eq!(
            Msg::Work {
                pairs: vec![],
                request: 0
            }
            .kind(),
            "Work"
        );
        assert_eq!(Msg::Shutdown.kind(), "Shutdown");
    }
}
