//! Direct tests of the slave loop against a *scripted* master.
//!
//! The unit tests of `master.rs` verify the master state machine in
//! isolation; here the real `run_slave` is driven over the real
//! message-passing runtime by a hand-written master script, pinning down
//! the wire protocol itself: the three-portion startup, the R/P piggyback
//! pattern, PAIRBUF top-up to `E`, the exhausted flag, and shutdown.

use pace_cluster::messages::Msg;
use pace_cluster::slave::run_slave;
use pace_cluster::ClusterConfig;
use pace_gst::{assign_buckets, build_forest_for_rank, count_buckets};
use pace_mpisim::run_world;
use pace_seq::SequenceStore;
use pace_simulate::{generate, SimConfig};

fn workload(n: usize, seed: u64) -> SequenceStore {
    let ds = generate(&SimConfig {
        num_genes: (n / 10).max(2),
        num_ests: n,
        est_len_mean: 220.0,
        est_len_sd: 25.0,
        est_len_min: 120,
        exon_len: (220, 400),
        exons_per_gene: (1, 2),
        seed,
        ..SimConfig::default()
    });
    SequenceStore::from_ests(&ds.ests).unwrap()
}

fn cfg() -> ClusterConfig {
    let mut c = ClusterConfig::small();
    c.psi = 16;
    c.overlap.min_overlap_len = 40;
    c.batchsize = 10;
    c
}

/// Run `script` as rank 0 against one real slave on rank 1.
fn with_slave<R: Send>(
    store: &SequenceStore,
    cfg: &ClusterConfig,
    script: impl Fn(&pace_mpisim::Rank<Msg>) -> R + Sync,
) -> Vec<Option<R>> {
    let counts = count_buckets(store, cfg.window_w);
    let partition = assign_buckets(&counts, 1);
    let forest = build_forest_for_rank(store, &partition, 0);
    run_world(2, |rank| {
        if rank.rank() == 0 {
            Some(script(&rank))
        } else {
            run_slave(&rank, 0, store, &forest, cfg);
            None
        }
    })
}

/// Receive the next Report, failing on anything else.
fn recv_report(
    rank: &pace_mpisim::Rank<Msg>,
) -> (
    Vec<pace_cluster::PairOutcome>,
    Vec<pace_pairgen::CandidatePair>,
    bool,
) {
    match rank.recv().expect("slave alive") {
        (
            1,
            Msg::Report {
                seq: _,
                results,
                pairs,
                exhausted,
            },
        ) => (results, pairs, exhausted),
        (from, other) => panic!("expected Report from 1, got {} from {from}", other.kind()),
    }
}

#[test]
fn startup_report_carries_portion1_results_and_portion3_pairs() {
    let store = workload(60, 71);
    let cfg = cfg();
    let out = with_slave(&store, &cfg, |rank| {
        let (results, pairs, exhausted) = recv_report(rank);
        // Portion 1 was aligned (batchsize results) and portion 3 shipped.
        assert_eq!(results.len(), cfg.batchsize, "portion-1 results");
        assert_eq!(pairs.len(), cfg.batchsize, "portion-3 pairs");
        assert!(!exhausted, "workload has plenty of pairs");
        rank.send(1, Msg::Shutdown);
        true
    });
    assert_eq!(out[0], Some(true));
}

#[test]
fn work_reply_returns_results_and_tops_up_to_e() {
    let store = workload(60, 72);
    let cfg = cfg();
    let out = with_slave(&store, &cfg, |rank| {
        let (_r0, _p0, _) = recv_report(rank);
        // Ask for E = 25 pairs and send no work: the next report must
        // carry the portion-2 results (batchsize) and exactly 25 pairs.
        rank.send(
            1,
            Msg::Work {
                seq: 1,
                pairs: vec![],
                request: 25,
            },
        );
        let (results, pairs, _) = recv_report(rank);
        assert_eq!(results.len(), cfg.batchsize, "portion-2 results");
        assert_eq!(pairs.len(), 25, "PAIRBUF topped up to E");
        rank.send(1, Msg::Shutdown);
        true
    });
    assert_eq!(out[0], Some(true));
}

#[test]
fn dispatched_work_results_come_back_on_next_interaction() {
    let store = workload(60, 73);
    let cfg = cfg();
    let out = with_slave(&store, &cfg, |rank| {
        let (_r0, p0, _) = recv_report(rank);
        // Hand portion 3 back to the slave as work.
        let sent = p0.len();
        rank.send(
            1,
            Msg::Work {
                seq: 1,
                pairs: p0,
                request: 0,
            },
        );
        // Next report: portion-2 results, no pairs (E was 0).
        let (r1, p1, _) = recv_report(rank);
        assert_eq!(r1.len(), cfg.batchsize);
        assert!(p1.is_empty(), "E = 0 must return no pairs");
        // Flush: the results of the dispatched work arrive now.
        rank.send(
            1,
            Msg::Work {
                seq: 2,
                pairs: vec![],
                request: 0,
            },
        );
        let (r2, _, _) = recv_report(rank);
        assert_eq!(r2.len(), sent, "results of the dispatched batch");
        rank.send(1, Msg::Shutdown);
        true
    });
    assert_eq!(out[0], Some(true));
}

#[test]
fn slave_reports_exhausted_when_drained() {
    let store = workload(12, 74); // tiny: few promising pairs
    let cfg = cfg();
    let out = with_slave(&store, &cfg, |rank| {
        let (_, _, mut exhausted) = recv_report(rank);
        let mut rounds = 0u64;
        while !exhausted {
            rank.send(
                1,
                Msg::Work {
                    seq: rounds + 1,
                    pairs: vec![],
                    request: 1000,
                },
            );
            let (_, pairs, ex) = recv_report(rank);
            exhausted = ex;
            rounds += 1;
            assert!(rounds < 100, "slave never exhausts");
            if ex {
                // Final report may carry the last pairs; afterwards the
                // generator is dry.
                let _ = pairs;
            }
        }
        rank.send(1, Msg::Shutdown);
        rounds
    });
    assert!(out[0].unwrap() < 100);
}

#[test]
fn protocol_traffic_is_counted_by_comm_stats() {
    let store = workload(60, 75);
    let cfg = cfg();
    let out = with_slave(&store, &cfg, |rank| {
        let (_r0, _p0, _) = recv_report(rank);
        rank.send(
            1,
            Msg::Work {
                seq: 1,
                pairs: vec![],
                request: 5,
            },
        );
        let (_r1, _p1, _) = recv_report(rank);
        rank.send(1, Msg::Shutdown);
        rank.stats()
    });
    let comm = out[0].unwrap();
    // Two reports from the slave plus two sends from the script — the
    // world-level counter must see all of them.
    assert!(comm.messages >= 4, "messages = {}", comm.messages);
}

#[test]
fn empty_forest_slave_exhausts_immediately() {
    // A store whose suffixes are all shorter than the window: the forest
    // is empty and the slave must report exhausted at startup.
    let store = SequenceStore::from_ests(&[&b"ACG"[..], b"TGA"]).unwrap();
    let mut c = ClusterConfig::small();
    c.window_w = 4;
    c.psi = 8;
    let out = with_slave(&store, &c, |rank| {
        let (results, pairs, exhausted) = recv_report(rank);
        assert!(results.is_empty());
        assert!(pairs.is_empty());
        assert!(exhausted);
        rank.send(1, Msg::Shutdown);
        true
    });
    assert_eq!(out[0], Some(true));
}
