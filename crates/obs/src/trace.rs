//! Causal distributed tracing: per-rank spans, instants, and flow
//! (causal) edges, with Chrome/Perfetto JSON export and offline
//! analysis.
//!
//! The registry aggregates *how much*; a trace records *when and
//! because of what*. Every span carries the rank it ran on and
//! microseconds since the run's [`crate::Obs`] epoch (one monotonic
//! clock per process, presented as per-rank tracks); *flow* events link
//! causally related points across ranks, keyed by the clustering
//! protocol's per-slave sequence numbers (`flow id = (slave, seq)`), so
//! a timeline viewer draws an arrow from the master's dispatch of a
//! batch to the report that answers it.
//!
//! Recording is allocation-light by construction: [`TraceEvent`] is
//! `Copy` (names are interned `&'static str`s), each rank appends to
//! its own mutex-striped [`TraceBuffer`] lane, and with no tracer
//! attached the [`crate::Obs::trace_with`] closure is never invoked —
//! the same zero-cost discipline as `emit_with` with a `NullSink`.
//!
//! # Trace schema (versioned)
//!
//! The exporter writes the Chrome trace-event JSON format (loadable in
//! Perfetto or `about://tracing`): `{"traceEvents": [...], "otherData":
//! {"schema_version": N}}` with one `pid` and one `tid` per rank.
//! Event phases used: `X` (complete span, `ts`/`dur` in µs), `i`
//! (instant), `s`/`t`/`f` (flow start/step/end, `cat` = `"flow"`,
//! bound to the enclosing slice). Span/instant `args` carry the
//! event's `id`/`arg` attributes (sequence numbers, batch sizes, fault
//! millis). [`TRACE_SCHEMA_VERSION`] follows the same rule as the run
//! report's schema version (DESIGN.md §9): bump on breaking shape
//! changes, and consumers must check it before reading further.

use crate::json::Json;
use crate::quantile::LogQuantile;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Version of the exported trace layout. Bump on breaking changes.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

// -- canonical trace point names ------------------------------------

/// Span: master folding one report (and dispatching its successor).
pub const T_HANDLE_REPORT: &str = "handle_report";
/// Instant: master handing a `Work` batch to a slave.
pub const T_DISPATCH: &str = "dispatch";
/// Span: slave shipping a report to the master.
pub const T_REPORT_SEND: &str = "report_send";
/// Span: a rank blocked waiting for a message.
pub const T_RECV_WAIT: &str = "recv_wait";
/// Instant: one point-to-point send (`arg` = destination rank).
pub const T_SEND: &str = "send";
/// Span: an injected straggler sleep (`arg` = milliseconds).
pub const T_STALL: &str = "stall";
/// Instant: an injected message drop (`arg` = destination rank).
pub const T_FAULT_DROP: &str = "fault.drop";
/// Instant: an injected message delay (`arg` = destination rank).
pub const T_FAULT_DELAY: &str = "fault.delay";
/// Instant: an injected rank crash (`arg` = sends completed).
pub const T_FAULT_CRASH: &str = "fault.crash";
/// Instant: a master recovery action (resend/dead slave/…); the
/// specific action is the event's `arg`-free name, see `driver_par`.
pub const T_FLOW_NAME: &str = "batch";

/// Span names that represent *waiting*, not work — excluded from
/// per-rank busy time and utilization.
pub const IDLE_SPAN_NAMES: [&str; 2] = [T_RECV_WAIT, T_STALL];

/// The flow id for slave `slave`'s protocol sequence number `seq`.
/// Resends reuse the sequence number and therefore the id, so a retried
/// batch is one flow with several start points — exactly the causality
/// the master's recovery machinery implements.
pub fn flow_id(slave: usize, seq: u64) -> u64 {
    ((slave as u64 + 1) << 44) | (seq & 0xFFF_FFFF_FFFF)
}

/// What one [`TraceEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A completed span: `[t_us, t_us + dur_us)` on `rank`.
    Span,
    /// A point event.
    Instant,
    /// A flow's producer point (Chrome phase `s`).
    FlowStart,
    /// An intermediate flow point (Chrome phase `t`).
    FlowStep,
    /// A flow's consumer point (Chrome phase `f`).
    FlowEnd,
}

/// One trace record. `Copy`, no heap: names are interned static strings
/// and attributes are two bare `u64`s (`id` is the flow id for flow
/// events and a free attribute otherwise; `arg` is event-specific —
/// sequence number, batch size, destination rank, milliseconds).
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    pub rank: u32,
    pub kind: TraceKind,
    pub name: &'static str,
    /// Microseconds since the owning `Obs` epoch.
    pub t_us: u64,
    /// Span duration in microseconds (0 for non-spans).
    pub dur_us: u64,
    pub id: u64,
    pub arg: u64,
}

/// One rank's append-only event lane.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

/// Mutex stripes: ranks map onto lanes by `rank % LANES`, so concurrent
/// ranks almost never contend while the handle stays fixed-size.
const LANES: usize = 32;

/// The shared trace recorder: one per traced run, owned by
/// [`crate::Obs`]. All methods take `&self`; ranks record concurrently.
pub struct Tracer {
    lanes: Vec<Mutex<TraceBuffer>>,
    recorded: std::sync::atomic::AtomicU64,
    /// Intern table for dynamic span names (phase names arrive as
    /// `&str`). Bounded by the number of distinct names in a run.
    names: Mutex<BTreeMap<String, &'static str>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    pub fn new() -> Self {
        Tracer {
            lanes: (0..LANES)
                .map(|_| Mutex::new(TraceBuffer::default()))
                .collect(),
            recorded: std::sync::atomic::AtomicU64::new(0),
            names: Mutex::new(BTreeMap::new()),
        }
    }

    /// Total events recorded so far — the structural counterpart of the
    /// export: `snapshot().len() == recorded()` always, so nothing is
    /// silently dropped between recording and analysis.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Intern a dynamic name. Leaks one allocation per *distinct* name
    /// (phase names number in the dozens); recording itself then stays
    /// allocation-free.
    pub fn intern(&self, name: &str) -> &'static str {
        // Fast path for the canonical constants.
        for known in [
            T_HANDLE_REPORT,
            T_DISPATCH,
            T_REPORT_SEND,
            T_RECV_WAIT,
            T_SEND,
            T_STALL,
            T_FAULT_DROP,
            T_FAULT_DELAY,
            T_FAULT_CRASH,
        ] {
            if name == known {
                return known;
            }
        }
        let mut names = self.names.lock();
        if let Some(&s) = names.get(name) {
            return s;
        }
        let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
        names.insert(name.to_string(), leaked);
        leaked
    }

    fn record(&self, ev: TraceEvent) {
        self.recorded
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.lanes[ev.rank as usize % LANES].lock().record(ev);
    }

    /// Record a completed span `[t0_us, t0_us + dur_us)`.
    pub fn span(
        &self,
        rank: usize,
        name: &'static str,
        t0_us: u64,
        dur_us: u64,
        id: u64,
        arg: u64,
    ) {
        self.record(TraceEvent {
            rank: rank as u32,
            kind: TraceKind::Span,
            name,
            t_us: t0_us,
            dur_us,
            id,
            arg,
        });
    }

    /// Record an instant event.
    pub fn instant(&self, rank: usize, name: &'static str, t_us: u64, id: u64, arg: u64) {
        self.record(TraceEvent {
            rank: rank as u32,
            kind: TraceKind::Instant,
            name,
            t_us,
            dur_us: 0,
            id,
            arg,
        });
    }

    /// Record a flow point (`kind` must be one of the three flow kinds).
    pub fn flow(&self, kind: TraceKind, rank: usize, t_us: u64, id: u64) {
        debug_assert!(matches!(
            kind,
            TraceKind::FlowStart | TraceKind::FlowStep | TraceKind::FlowEnd
        ));
        self.record(TraceEvent {
            rank: rank as u32,
            kind,
            name: T_FLOW_NAME,
            t_us,
            dur_us: 0,
            id,
            arg: 0,
        });
    }

    /// A stable copy of every recorded event, sorted by time then rank.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::with_capacity(self.recorded() as usize);
        for lane in &self.lanes {
            all.extend(lane.lock().events.iter().copied());
        }
        all.sort_by_key(|e| (e.t_us, e.rank, e.dur_us));
        all
    }

    /// Export as a Chrome trace-event JSON document (Perfetto-loadable).
    pub fn to_chrome_json(&self) -> Json {
        events_to_chrome_json(&self.snapshot())
    }

    /// Write the Chrome JSON export to a file.
    pub fn write_chrome_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json().to_string())
    }

    /// [`Tracer::to_chrome_json`] with every timestamp shifted by
    /// `offset_us` — clock stitching for multi-process runs: each worker
    /// records on its own monotonic clock and shifts into the hub's
    /// epoch at export, so the merged timeline is causally ordered.
    pub fn to_chrome_json_offset(&self, offset_us: i64) -> Json {
        let mut events = self.snapshot();
        for e in &mut events {
            e.t_us = e.t_us.saturating_add_signed(offset_us);
        }
        events_to_chrome_json(&events)
    }

    /// Write the offset-shifted Chrome JSON export to a file.
    pub fn write_chrome_file_offset(
        &self,
        path: &std::path::Path,
        offset_us: i64,
    ) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json_offset(offset_us).to_string())
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("recorded", &self.recorded())
            .finish()
    }
}

/// Render events as the Chrome trace-event JSON format.
pub fn events_to_chrome_json(events: &[TraceEvent]) -> Json {
    let mut out: Vec<Json> = Vec::with_capacity(events.len() + 8);
    let ranks: BTreeSet<u32> = events.iter().map(|e| e.rank).collect();
    out.push(Json::obj([
        ("ph", Json::Str("M".into())),
        ("name", Json::Str("process_name".into())),
        ("pid", Json::Num(1.0)),
        ("args", Json::obj([("name", Json::Str("pace".into()))])),
    ]));
    for &r in &ranks {
        let label = if r == 0 {
            format!("rank {r} (master)")
        } else {
            format!("rank {r}")
        };
        out.push(Json::obj([
            ("ph", Json::Str("M".into())),
            ("name", Json::Str("thread_name".into())),
            ("pid", Json::Num(1.0)),
            ("tid", Json::Num(r as f64)),
            ("args", Json::obj([("name", Json::Str(label))])),
        ]));
    }
    for e in events {
        let mut entries: Vec<(String, Json)> = vec![
            ("name".into(), Json::Str(e.name.to_string())),
            ("pid".into(), Json::Num(1.0)),
            ("tid".into(), Json::Num(e.rank as f64)),
            ("ts".into(), Json::Num(e.t_us as f64)),
        ];
        match e.kind {
            TraceKind::Span => {
                entries.push(("ph".into(), Json::Str("X".into())));
                // Perfetto hides slices of zero duration; clamp to 1 µs.
                entries.push(("dur".into(), Json::Num(e.dur_us.max(1) as f64)));
                entries.push((
                    "args".into(),
                    Json::obj([
                        ("id", Json::Num(e.id as f64)),
                        ("arg", Json::Num(e.arg as f64)),
                    ]),
                ));
            }
            TraceKind::Instant => {
                entries.push(("ph".into(), Json::Str("i".into())));
                entries.push(("s".into(), Json::Str("t".into())));
                entries.push((
                    "args".into(),
                    Json::obj([
                        ("id", Json::Num(e.id as f64)),
                        ("arg", Json::Num(e.arg as f64)),
                    ]),
                ));
            }
            TraceKind::FlowStart | TraceKind::FlowStep | TraceKind::FlowEnd => {
                let ph = match e.kind {
                    TraceKind::FlowStart => "s",
                    TraceKind::FlowStep => "t",
                    _ => "f",
                };
                entries.push(("ph".into(), Json::Str(ph.into())));
                entries.push(("cat".into(), Json::Str("flow".into())));
                entries.push(("id".into(), Json::Num(e.id as f64)));
                if matches!(e.kind, TraceKind::FlowEnd) {
                    // Bind to the enclosing slice, not the next one.
                    entries.push(("bp".into(), Json::Str("e".into())));
                }
            }
        }
        out.push(Json::Obj(entries));
    }
    Json::obj([
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::Str("ms".into())),
        (
            "otherData",
            Json::obj([
                ("schema_version", Json::Num(TRACE_SCHEMA_VERSION as f64)),
                ("generator", Json::Str("pace-obs".into())),
            ]),
        ),
    ])
}

// -- offline analysis ------------------------------------------------

/// One span as the analyzer sees it.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRec {
    pub rank: u32,
    pub name: String,
    pub t0_us: u64,
    pub dur_us: u64,
}

impl SpanRec {
    fn end_us(&self) -> u64 {
        self.t0_us + self.dur_us
    }
}

/// Where one flow id was observed.
#[derive(Clone, Debug, Default)]
pub struct FlowRec {
    /// Producer points (resends re-emit the start with the same id).
    pub starts: Vec<(u32, u64)>,
    pub steps: Vec<(u32, u64)>,
    /// Consumer points.
    pub ends: Vec<(u32, u64)>,
}

/// A parsed trace, decoupled from how it was produced (in-process
/// [`Tracer`] or a Chrome JSON file round-trip).
#[derive(Clone, Debug, Default)]
pub struct TraceDoc {
    pub spans: Vec<SpanRec>,
    /// `(rank, name, t_us, arg)` instants.
    pub instants: Vec<(u32, String, u64, u64)>,
    pub flows: BTreeMap<u64, FlowRec>,
    pub schema_version: u64,
}

impl TraceDoc {
    /// Build directly from an in-process tracer.
    pub fn from_tracer(tracer: &Tracer) -> TraceDoc {
        let events = tracer.snapshot();
        let mut doc = TraceDoc {
            schema_version: TRACE_SCHEMA_VERSION,
            ..TraceDoc::default()
        };
        for e in &events {
            match e.kind {
                TraceKind::Span => doc.spans.push(SpanRec {
                    rank: e.rank,
                    name: e.name.to_string(),
                    t0_us: e.t_us,
                    dur_us: e.dur_us,
                }),
                TraceKind::Instant => {
                    doc.instants
                        .push((e.rank, e.name.to_string(), e.t_us, e.arg))
                }
                TraceKind::FlowStart => doc
                    .flows
                    .entry(e.id)
                    .or_default()
                    .starts
                    .push((e.rank, e.t_us)),
                TraceKind::FlowStep => doc
                    .flows
                    .entry(e.id)
                    .or_default()
                    .steps
                    .push((e.rank, e.t_us)),
                TraceKind::FlowEnd => doc
                    .flows
                    .entry(e.id)
                    .or_default()
                    .ends
                    .push((e.rank, e.t_us)),
            }
        }
        doc
    }

    /// Parse a Chrome trace-event JSON document (the exporter's output).
    /// Validates the schema: the version must be recognized, and every
    /// event must carry the fields its phase requires.
    pub fn from_chrome_json(doc: &Json) -> Result<TraceDoc, String> {
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or("missing traceEvents array")?;
        let schema_version = doc
            .get("otherData")
            .and_then(|o| o.get("schema_version"))
            .and_then(Json::as_u64)
            .ok_or("missing otherData.schema_version")?;
        if schema_version > TRACE_SCHEMA_VERSION {
            return Err(format!(
                "trace schema_version {schema_version} is newer than supported {TRACE_SCHEMA_VERSION}"
            ));
        }
        let mut out = TraceDoc {
            schema_version,
            ..TraceDoc::default()
        };
        for (i, e) in events.iter().enumerate() {
            let ph = e
                .get("ph")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i}: missing ph"))?;
            if ph == "M" {
                continue; // metadata
            }
            let need = |k: &str| -> Result<f64, String> {
                e.get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i} (ph {ph}): missing {k}"))
            };
            let rank = need("tid")? as u32;
            let ts = need("ts")? as u64;
            let name = e
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i}: missing name"))?
                .to_string();
            match ph {
                "X" => out.spans.push(SpanRec {
                    rank,
                    name,
                    t0_us: ts,
                    dur_us: need("dur")? as u64,
                }),
                "i" => {
                    let arg = e
                        .get("args")
                        .and_then(|a| a.get("arg"))
                        .and_then(Json::as_u64)
                        .unwrap_or(0);
                    out.instants.push((rank, name, ts, arg));
                }
                "s" | "t" | "f" => {
                    let id = need("id")? as u64;
                    let rec = out.flows.entry(id).or_default();
                    match ph {
                        "s" => rec.starts.push((rank, ts)),
                        "t" => rec.steps.push((rank, ts)),
                        _ => rec.ends.push((rank, ts)),
                    }
                }
                other => return Err(format!("event {i}: unknown phase {other:?}")),
            }
        }
        Ok(out)
    }

    /// Absorb another document (a per-process trace from a multi-process
    /// run, already shifted into the shared epoch at export time): spans
    /// and instants are appended, flow observations with the same id are
    /// combined — which is exactly what lets a master-side `FlowStart`
    /// find its worker-side `FlowStep`s across files. Schema versions
    /// must match; mixing export generations is a hard error.
    pub fn merge(&mut self, other: TraceDoc) -> Result<(), String> {
        if self.schema_version != other.schema_version {
            return Err(format!(
                "cannot merge trace schema_version {} with {}",
                other.schema_version, self.schema_version
            ));
        }
        self.spans.extend(other.spans);
        self.instants.extend(other.instants);
        for (id, rec) in other.flows {
            let mine = self.flows.entry(id).or_default();
            mine.starts.extend(rec.starts);
            mine.steps.extend(rec.steps);
            mine.ends.extend(rec.ends);
        }
        Ok(())
    }
}

/// Per-rank time breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct RankBreakdown {
    pub rank: u32,
    /// Union of non-idle span time (nested spans counted once).
    pub busy_secs: f64,
    /// Wall clock minus busy time.
    pub idle_secs: f64,
    /// Injected stall sleep time (from `stall` spans).
    pub stall_secs: f64,
    /// `busy / wall`, guaranteed ∈ [0, 1].
    pub utilization: f64,
    /// Largest busy-to-busy gap inside the rank's active window.
    pub max_gap_secs: f64,
    pub spans: usize,
}

impl RankBreakdown {
    /// Straggler score: injected stall time plus the longest dead gap —
    /// high for the rank everyone else ends up waiting on.
    pub fn straggler_score(&self) -> f64 {
        self.stall_secs + self.max_gap_secs
    }
}

/// One step of the critical path.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalStep {
    pub rank: u32,
    pub name: String,
    pub t0_secs: f64,
    pub dur_secs: f64,
}

/// Quantile summary for one span name.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanQuantiles {
    pub count: u64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub max: f64,
}

/// The full offline analysis of one trace.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    pub wall_secs: f64,
    pub ranks: Vec<RankBreakdown>,
    /// Longest chain of causally ordered spans (same-rank program order
    /// plus flow edges), by total span duration. Pairwise
    /// non-overlapping by construction, so the total is ≤ wall clock.
    pub critical_path_secs: f64,
    pub critical_path: Vec<CriticalStep>,
    pub flows_total: usize,
    /// Flows with at least one consumer point.
    pub flows_resolved: usize,
    /// Flows with producer points but no consumer — batches that never
    /// came back (a crashed slave's in-flight work).
    pub flows_unresolved: usize,
    /// Flows with a consumer but no producer — a malformed trace.
    pub flows_orphan_ends: usize,
    /// Per-span-name duration quantiles (log-bucket estimates).
    pub quantiles: BTreeMap<String, SpanQuantiles>,
    /// Ranks that coordinated work (owned at least one `handle_report`
    /// span): the single master's rank 0, or — under sharded masters —
    /// every sub-master rank. Computed from the trace, not assumed from
    /// the protocol's conventional layout.
    pub coordinators: BTreeSet<u32>,
}

impl Analysis {
    /// Ranks ordered most-straggling first. Coordinator ranks (those
    /// with `handle_report` spans) are excluded when worker ranks
    /// exist: the master idles by design (the paper's "< 2% busy"
    /// claim), which is the opposite of straggling.
    pub fn straggler_ranking(&self) -> Vec<&RankBreakdown> {
        let mut workers: Vec<&RankBreakdown> = self
            .ranks
            .iter()
            .filter(|r| !self.coordinators.contains(&r.rank))
            .collect();
        if workers.is_empty() {
            workers = self.ranks.iter().collect();
        }
        workers.sort_by(|a, b| {
            b.straggler_score()
                .total_cmp(&a.straggler_score())
                .then(b.busy_secs.total_cmp(&a.busy_secs))
        });
        workers
    }

    /// The structural invariants the trace smoke check gates on.
    /// Returns a list of violated invariant descriptions (empty = ok).
    pub fn check_invariants(&self) -> Vec<String> {
        let mut bad = Vec::new();
        if self.flows_unresolved > 0 {
            bad.push(format!(
                "{} of {} flow edges never resolved",
                self.flows_unresolved, self.flows_total
            ));
        }
        if self.flows_orphan_ends > 0 {
            bad.push(format!(
                "{} flow ends have no matching start",
                self.flows_orphan_ends
            ));
        }
        for r in &self.ranks {
            if !(0.0..=1.0).contains(&r.utilization) {
                bad.push(format!(
                    "rank {} utilization {} outside [0,1]",
                    r.rank, r.utilization
                ));
            }
        }
        if self.critical_path_secs > self.wall_secs * (1.0 + 1e-9) + 1e-9 {
            bad.push(format!(
                "critical path {:.6}s exceeds wall clock {:.6}s",
                self.critical_path_secs, self.wall_secs
            ));
        }
        bad
    }
}

/// Merge `[start, end)` intervals and return total covered length (µs).
fn union_len_us(mut iv: Vec<(u64, u64)>) -> u64 {
    iv.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in iv {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Largest gap between merged busy intervals within the rank's window.
fn max_gap_us(mut iv: Vec<(u64, u64)>) -> u64 {
    iv.sort_unstable();
    let mut gap = 0u64;
    let mut prev_end: Option<u64> = None;
    for (s, e) in iv {
        if let Some(pe) = prev_end {
            if s > pe {
                gap = gap.max(s - pe);
            }
        }
        prev_end = Some(prev_end.map_or(e, |pe| pe.max(e)));
    }
    gap
}

/// Analyze a trace: wall clock, per-rank utilization, flow resolution,
/// duration quantiles, and the critical path.
pub fn analyze(doc: &TraceDoc) -> Analysis {
    let mut analysis = Analysis::default();

    // The `total` span covers the whole run on rank 0; it is scaffolding
    // for wall clock, not work.
    let work_spans: Vec<&SpanRec> = doc
        .spans
        .iter()
        .filter(|s| s.name != crate::metric::PHASE_TOTAL)
        .collect();

    // Wall clock: extent of everything recorded.
    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    for s in &doc.spans {
        t_min = t_min.min(s.t0_us);
        t_max = t_max.max(s.end_us());
    }
    for &(_, _, t, _) in &doc.instants {
        t_min = t_min.min(t);
        t_max = t_max.max(t);
    }
    for f in doc.flows.values() {
        for &(_, t) in f.starts.iter().chain(&f.steps).chain(&f.ends) {
            t_min = t_min.min(t);
            t_max = t_max.max(t);
        }
    }
    if t_min == u64::MAX {
        return analysis; // empty trace
    }
    let wall_us = t_max - t_min;
    analysis.wall_secs = wall_us as f64 / 1e6;

    // Coordinator ranks own `handle_report` spans: rank 0 for the single
    // master, ranks 1..=K for sharded sub-masters. The straggler ranking
    // excludes them — a coordinator idles by design (the paper's "< 2%
    // busy" claim), the opposite of straggling.
    analysis.coordinators = doc
        .spans
        .iter()
        .filter(|s| s.name == T_HANDLE_REPORT)
        .map(|s| s.rank)
        .collect();

    // Per-rank breakdowns.
    let ranks: BTreeSet<u32> = doc
        .spans
        .iter()
        .map(|s| s.rank)
        .chain(doc.instants.iter().map(|i| i.0))
        .collect();
    for &rank in &ranks {
        let busy_iv: Vec<(u64, u64)> = work_spans
            .iter()
            .filter(|s| s.rank == rank && !IDLE_SPAN_NAMES.contains(&s.name.as_str()))
            .map(|s| (s.t0_us, s.end_us()))
            .collect();
        let stall_us: u64 = doc
            .spans
            .iter()
            .filter(|s| s.rank == rank && s.name == T_STALL)
            .map(|s| s.dur_us)
            .sum();
        let spans = doc.spans.iter().filter(|s| s.rank == rank).count();
        let busy_us = union_len_us(busy_iv.clone()).min(wall_us);
        let busy_secs = busy_us as f64 / 1e6;
        analysis.ranks.push(RankBreakdown {
            rank,
            busy_secs,
            idle_secs: (wall_us - busy_us) as f64 / 1e6,
            stall_secs: stall_us as f64 / 1e6,
            utilization: if wall_us == 0 {
                0.0
            } else {
                (busy_us as f64 / wall_us as f64).clamp(0.0, 1.0)
            },
            max_gap_secs: max_gap_us(busy_iv) as f64 / 1e6,
            spans,
        });
    }

    // Flow resolution.
    analysis.flows_total = doc.flows.len();
    for f in doc.flows.values() {
        let has_producer = !f.starts.is_empty() || !f.steps.is_empty();
        if !f.ends.is_empty() {
            if has_producer {
                analysis.flows_resolved += 1;
            } else {
                analysis.flows_orphan_ends += 1;
            }
        } else {
            analysis.flows_unresolved += 1;
        }
    }

    // Duration quantiles per span name.
    let mut by_name: BTreeMap<&str, LogQuantile> = BTreeMap::new();
    let mut max_by_name: BTreeMap<&str, f64> = BTreeMap::new();
    for s in &work_spans {
        let secs = s.dur_us as f64 / 1e6;
        by_name.entry(&s.name).or_default().observe(secs);
        let slot = max_by_name.entry(&s.name).or_insert(0.0);
        if secs > *slot {
            *slot = secs;
        }
    }
    for (name, lq) in by_name {
        let (p50, p90, p99) = lq.p50_p90_p99();
        analysis.quantiles.insert(
            name.to_string(),
            SpanQuantiles {
                count: lq.count(),
                p50,
                p90,
                p99,
                max: max_by_name[name],
            },
        );
    }

    // Critical path: longest chain of pairwise non-overlapping *work*
    // spans (waiting doesn't belong on a work chain; injected stalls
    // show up as straggler score instead) connected by same-rank program
    // order or flow edges, weighted by span duration. Because every edge
    // requires the successor to start at or after the predecessor's end,
    // any chain's total duration fits inside [t_min, t_max] — the
    // ≤ wall-clock guarantee.
    let mut spans: Vec<&SpanRec> = work_spans
        .iter()
        .filter(|s| !IDLE_SPAN_NAMES.contains(&s.name.as_str()))
        .copied()
        .collect();
    spans.sort_by_key(|s| (s.t0_us, s.end_us()));
    let n = spans.len();
    // Flow-derived edges between span indices: map each flow point to
    // the innermost span containing it on its rank.
    let locate = |rank: u32, t: u64| -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, s) in spans.iter().enumerate() {
            if s.rank == rank && s.t0_us <= t && t < s.end_us().max(s.t0_us + 1) {
                best = match best {
                    Some(b) if spans[b].dur_us <= s.dur_us => Some(b),
                    _ => Some(i),
                };
            }
        }
        best
    };
    let mut flow_edges: HashSet<(usize, usize)> = HashSet::new();
    for f in doc.flows.values() {
        let mut chain: Vec<(u32, u64)> = Vec::new();
        chain.extend(f.starts.iter().copied());
        chain.extend(f.steps.iter().copied());
        chain.extend(f.ends.iter().copied());
        chain.sort_by_key(|&(_, t)| t);
        for w in chain.windows(2) {
            if let (Some(a), Some(b)) = (locate(w[0].0, w[0].1), locate(w[1].0, w[1].1)) {
                if spans[b].t0_us >= spans[a].end_us() {
                    flow_edges.insert((a, b));
                }
            }
        }
    }
    // O(n²) DP is fine at the trace sizes the engine produces (smoke
    // runs are a few thousand spans); cap the quadratic work for very
    // large traces by considering only same-rank immediate context.
    let dense_limit = 20_000;
    let mut best_us: Vec<u64> = spans.iter().map(|s| s.dur_us).collect();
    let mut pred: Vec<Option<usize>> = vec![None; n];
    if n <= dense_limit {
        for i in 0..n {
            for j in 0..i {
                let causal = spans[j].end_us() <= spans[i].t0_us
                    && (spans[j].rank == spans[i].rank || flow_edges.contains(&(j, i)));
                if causal && best_us[j] + spans[i].dur_us > best_us[i] {
                    best_us[i] = best_us[j] + spans[i].dur_us;
                    pred[i] = Some(j);
                }
            }
        }
    } else {
        // Per-rank running best among finished spans + explicit flow edges.
        let mut rank_best: BTreeMap<u32, Vec<(u64, u64, usize)>> = BTreeMap::new(); // (end, best, idx)
        for i in 0..n {
            if let Some(cands) = rank_best.get(&spans[i].rank) {
                for &(end, b, j) in cands.iter().rev() {
                    if end <= spans[i].t0_us {
                        if b + spans[i].dur_us > best_us[i] {
                            best_us[i] = b + spans[i].dur_us;
                            pred[i] = Some(j);
                        }
                        break;
                    }
                }
            }
            for &(j, k) in &flow_edges {
                if k == i
                    && spans[j].end_us() <= spans[i].t0_us
                    && best_us[j] + spans[i].dur_us > best_us[i]
                {
                    best_us[i] = best_us[j] + spans[i].dur_us;
                    pred[i] = Some(j);
                }
            }
            rank_best
                .entry(spans[i].rank)
                .or_default()
                .push((spans[i].end_us(), best_us[i], i));
        }
    }
    if let Some(tail) = (0..n).max_by_key(|&i| best_us[i]) {
        analysis.critical_path_secs = best_us[tail] as f64 / 1e6;
        let mut chain = Vec::new();
        let mut cur = Some(tail);
        while let Some(i) = cur {
            chain.push(CriticalStep {
                rank: spans[i].rank,
                name: spans[i].name.clone(),
                t0_secs: (spans[i].t0_us - t_min) as f64 / 1e6,
                dur_secs: spans[i].dur_us as f64 / 1e6,
            });
            cur = pred[i];
        }
        chain.reverse();
        analysis.critical_path = chain;
    }

    analysis
}

/// Render an analysis as a JSON document (the `pace-trace --json`
/// output, and the source of the run report's utilization fields).
pub fn analysis_to_json(a: &Analysis) -> Json {
    let ranks = Json::Arr(
        a.ranks
            .iter()
            .map(|r| {
                Json::obj([
                    ("rank", Json::Num(r.rank as f64)),
                    ("busy_secs", Json::Num(r.busy_secs)),
                    ("idle_secs", Json::Num(r.idle_secs)),
                    ("stall_secs", Json::Num(r.stall_secs)),
                    ("utilization", Json::Num(r.utilization)),
                    ("max_gap_secs", Json::Num(r.max_gap_secs)),
                    ("spans", Json::Num(r.spans as f64)),
                    ("coordinator", Json::Bool(a.coordinators.contains(&r.rank))),
                ])
            })
            .collect(),
    );
    let stragglers = Json::Arr(
        a.straggler_ranking()
            .iter()
            .map(|r| {
                Json::obj([
                    ("rank", Json::Num(r.rank as f64)),
                    ("score_secs", Json::Num(r.straggler_score())),
                    ("stall_secs", Json::Num(r.stall_secs)),
                    ("max_gap_secs", Json::Num(r.max_gap_secs)),
                ])
            })
            .collect(),
    );
    let critical_path = Json::Arr(
        a.critical_path
            .iter()
            .map(|s| {
                Json::obj([
                    ("rank", Json::Num(s.rank as f64)),
                    ("name", Json::Str(s.name.clone())),
                    ("t0_secs", Json::Num(s.t0_secs)),
                    ("dur_secs", Json::Num(s.dur_secs)),
                ])
            })
            .collect(),
    );
    let quantiles = Json::Obj(
        a.quantiles
            .iter()
            .map(|(name, q)| {
                (
                    name.clone(),
                    Json::obj([
                        ("count", Json::Num(q.count as f64)),
                        ("p50", Json::Num(q.p50)),
                        ("p90", Json::Num(q.p90)),
                        ("p99", Json::Num(q.p99)),
                        ("max", Json::Num(q.max)),
                    ]),
                )
            })
            .collect(),
    );
    let violations = a.check_invariants();
    Json::obj([
        ("schema_version", Json::Num(TRACE_SCHEMA_VERSION as f64)),
        ("wall_secs", Json::Num(a.wall_secs)),
        ("critical_path_secs", Json::Num(a.critical_path_secs)),
        ("flows_total", Json::Num(a.flows_total as f64)),
        ("flows_resolved", Json::Num(a.flows_resolved as f64)),
        ("flows_unresolved", Json::Num(a.flows_unresolved as f64)),
        ("ranks", ranks),
        ("stragglers", stragglers),
        ("critical_path", critical_path),
        ("quantiles", quantiles),
        ("invariants_ok", Json::Bool(violations.is_empty())),
        (
            "violations",
            Json::Arr(violations.into_iter().map(Json::Str).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tracer() -> Tracer {
        let tr = Tracer::new();
        // Master (rank 0) dispatches two batches to slave rank 1; one
        // report comes back, one never does.
        tr.span(0, T_HANDLE_REPORT, 100, 50, flow_id(0, 1), 1);
        tr.flow(TraceKind::FlowStart, 0, 110, flow_id(0, 1));
        tr.instant(0, T_DISPATCH, 110, flow_id(0, 1), 8);
        tr.span(1, "align_batch", 200, 300, 0, 8);
        tr.span(1, T_REPORT_SEND, 510, 5, flow_id(0, 1), 1);
        tr.flow(TraceKind::FlowStep, 1, 511, flow_id(0, 1));
        tr.span(0, T_HANDLE_REPORT, 600, 40, flow_id(0, 1), 1);
        tr.flow(TraceKind::FlowEnd, 0, 601, flow_id(0, 1));
        tr.flow(TraceKind::FlowStart, 0, 620, flow_id(0, 2));
        tr.span(1, T_STALL, 700, 100, 0, 1);
        tr
    }

    #[test]
    fn recorded_equals_snapshot_len() {
        let tr = sample_tracer();
        assert_eq!(tr.recorded() as usize, tr.snapshot().len());
    }

    #[test]
    fn snapshot_is_time_sorted() {
        let tr = sample_tracer();
        let snap = tr.snapshot();
        assert!(snap.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }

    #[test]
    fn chrome_export_parses_back() {
        let tr = sample_tracer();
        let json = tr.to_chrome_json();
        let text = json.to_string();
        let back = crate::json::parse(&text).unwrap();
        let doc = TraceDoc::from_chrome_json(&back).unwrap();
        assert_eq!(doc.schema_version, TRACE_SCHEMA_VERSION);
        assert_eq!(doc.spans.len(), 5);
        assert_eq!(doc.flows.len(), 2);
        // The direct path sees the same structure.
        let direct = TraceDoc::from_tracer(&tr);
        assert_eq!(direct.spans.len(), doc.spans.len());
        assert_eq!(direct.flows.len(), doc.flows.len());
    }

    #[test]
    fn from_chrome_json_rejects_malformed() {
        let missing_schema = crate::json::parse(r#"{"traceEvents":[]}"#).unwrap();
        assert!(TraceDoc::from_chrome_json(&missing_schema).is_err());
        let bad_event = crate::json::parse(
            r#"{"traceEvents":[{"ph":"X","name":"x","tid":0}],
                "otherData":{"schema_version":1}}"#,
        )
        .unwrap();
        assert!(TraceDoc::from_chrome_json(&bad_event).is_err());
    }

    #[test]
    fn analysis_flows_and_utilization() {
        let doc = TraceDoc::from_tracer(&sample_tracer());
        let a = analyze(&doc);
        assert_eq!(a.flows_total, 2);
        assert_eq!(a.flows_resolved, 1);
        assert_eq!(a.flows_unresolved, 1);
        for r in &a.ranks {
            assert!((0.0..=1.0).contains(&r.utilization), "{r:?}");
        }
        // Rank 1's stall span counts as idle, not busy.
        let r1 = a.ranks.iter().find(|r| r.rank == 1).unwrap();
        assert!(r1.stall_secs > 0.0);
        assert!(a.wall_secs > 0.0);
    }

    #[test]
    fn critical_path_crosses_ranks_and_fits_wall() {
        let doc = TraceDoc::from_tracer(&sample_tracer());
        let a = analyze(&doc);
        assert!(a.critical_path_secs > 0.0);
        assert!(a.critical_path_secs <= a.wall_secs + 1e-12);
        // Longest chain: handle_report(0) → align_batch(1) → report_send
        // (flow/rank order) → handle_report(0) — it must span both ranks.
        let ranks: BTreeSet<u32> = a.critical_path.iter().map(|s| s.rank).collect();
        assert!(ranks.len() >= 2, "critical path stuck on one rank: {a:?}");
    }

    #[test]
    fn straggler_ranking_puts_stalled_rank_first() {
        let tr = sample_tracer();
        // A clean second worker for contrast.
        tr.span(2, "align_batch", 150, 100, 0, 4);
        let a = analyze(&TraceDoc::from_tracer(&tr));
        let ranking = a.straggler_ranking();
        assert_eq!(ranking[0].rank, 1, "stalled rank must rank first");
        // Coordinator (rank 0) is excluded from the ranking.
        assert!(ranking.iter().all(|r| r.rank != 0));
    }

    #[test]
    fn straggler_ranking_excludes_sharded_submasters() {
        // Sharded layout: reconciler at 0 (no handle_report), sub-masters
        // at 1 and 2, slaves at 3 and 4. Coordinator status must come
        // from the spans, not the rank-0 convention.
        let tr = Tracer::new();
        tr.span(1, T_HANDLE_REPORT, 100, 50, 1, 1);
        tr.span(2, T_HANDLE_REPORT, 120, 40, 2, 1);
        tr.span(3, "align_batch", 100, 400, 0, 8);
        tr.span(4, "align_batch", 100, 900, 0, 8);
        let a = analyze(&TraceDoc::from_tracer(&tr));
        assert_eq!(
            a.coordinators,
            [1u32, 2].into_iter().collect::<BTreeSet<u32>>()
        );
        let ranking = a.straggler_ranking();
        assert!(ranking.iter().all(|r| r.rank != 1 && r.rank != 2));
        assert_eq!(ranking[0].rank, 4, "slowest slave must rank first");
    }

    #[test]
    fn interning_is_stable() {
        let tr = Tracer::new();
        let a = tr.intern("custom_phase");
        let b = tr.intern("custom_phase");
        assert!(std::ptr::eq(a, b));
        // Canonical names take the fast path (no table entry needed);
        // `const` promotion does not guarantee a unique address, so
        // assert content, not identity.
        assert_eq!(tr.intern(T_STALL), T_STALL);
        assert!(tr.names.lock().is_empty() || !tr.names.lock().contains_key(T_STALL));
    }

    #[test]
    fn invariant_check_reports_unresolved() {
        let tr = Tracer::new();
        tr.flow(TraceKind::FlowStart, 0, 10, 1);
        tr.span(0, "x", 0, 100, 0, 0);
        let a = analyze(&TraceDoc::from_tracer(&tr));
        assert!(!a.check_invariants().is_empty());
    }
}
