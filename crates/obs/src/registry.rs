//! Thread-safe metric registry: named counters, gauges, log-bucketed
//! histograms, and per-rank phase series.
//!
//! Counters are lock-free after first lookup (callers hold a
//! [`Counter`] handle wrapping an `Arc<AtomicU64>`); gauges, histograms
//! and phase series take a short mutex. All maps are `BTreeMap` so
//! snapshots and reports iterate in stable, diff-friendly order.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A handle to one named counter; cloning shares the underlying cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over power-of-two buckets: bucket `i` counts values `v`
/// with `floor(log2(v)) == i - 1` (bucket 0 holds `v == 0`). This keeps
/// e.g. "pairs per maximal-common-substring length" compact regardless
/// of range.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    counts: BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    fn bucket_of(value: u64) -> u32 {
        u64::BITS - value.leading_zeros()
    }

    /// The inclusive lower bound of a bucket index.
    pub fn bucket_lo(bucket: u32) -> u64 {
        if bucket == 0 {
            0
        } else {
            1u64 << (bucket - 1)
        }
    }

    /// Record one observation of `value`.
    pub fn observe(&mut self, value: u64) {
        self.observe_n(value, 1);
    }

    /// Record `n` observations of `value` at once (used when absorbing
    /// pre-aggregated stats like pairgen's per-MCS-length counts).
    pub fn observe_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(Self::bucket_of(value)).or_insert(0) += n;
        self.count += n;
        self.sum += value.saturating_mul(n);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Non-empty buckets as `(bucket_lower_bound, count)` in ascending
    /// order.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .map(|(&b, &c)| (Self::bucket_lo(b), c))
            .collect()
    }
}

/// Aggregate of one phase's per-rank durations.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseAgg {
    /// Number of recorded durations (usually = participating ranks).
    pub count: u64,
    pub min: f64,
    pub mean: f64,
    /// The slowest rank — the phase's critical path in a barrier-
    /// synchronized run, and what Table 3 reports.
    pub max: f64,
    pub sum: f64,
    /// Median duration — log-bucket estimate, within
    /// [`crate::quantile::relative_error_bound`] of exact.
    pub p50: f64,
    /// 90th-percentile duration (log-bucket estimate).
    pub p90: f64,
    /// 99th-percentile duration (log-bucket estimate). For fine-grained
    /// series like `align_batch` this is the tail the serving roadmap
    /// item gates on; for per-rank phase totals with few samples it
    /// degenerates toward `max`, which is the right answer there too.
    pub p99: f64,
}

/// A stable, lock-free copy of the registry for reporting and tests.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
    pub phases: BTreeMap<String, PhaseAgg>,
    /// Raw `(rank, secs)` series behind each phase aggregate.
    pub phase_series: BTreeMap<String, Vec<(usize, f64)>>,
}

#[derive(Default)]
struct Tables {
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    phases: BTreeMap<String, Vec<(usize, f64)>>,
}

/// The thread-safe metric registry. One per [`crate::Obs`].
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    tables: Mutex<Tables>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get (or create) a counter handle. Hold the handle across a hot
    /// loop; lookup takes a lock but updates are atomic.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.counters.lock();
        match counters.get(name) {
            Some(cell) => Counter(Arc::clone(cell)),
            None => {
                let cell = Arc::new(AtomicU64::new(0));
                counters.insert(name.to_string(), Arc::clone(&cell));
                Counter(cell)
            }
        }
    }

    /// Add to a named counter without keeping a handle.
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    /// Set a gauge to an instantaneous value (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.tables.lock().gauges.insert(name.to_string(), value);
    }

    /// Raise a gauge to `value` if it is higher than the current value
    /// (used for cross-rank maxima like the deepest GST node).
    pub fn set_gauge_max(&self, name: &str, value: f64) {
        let mut tables = self.tables.lock();
        let slot = tables.gauges.entry(name.to_string()).or_insert(value);
        if value > *slot {
            *slot = value;
        }
    }

    /// Record one observation into a named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        self.observe_n(name, value, 1);
    }

    /// Record `n` observations of `value` into a named histogram.
    pub fn observe_n(&self, name: &str, value: u64, n: u64) {
        self.tables
            .lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe_n(value, n);
    }

    /// Append one duration to a phase's per-rank series.
    pub fn record_phase(&self, phase: &str, rank: usize, secs: f64) {
        self.tables
            .lock()
            .phases
            .entry(phase.to_string())
            .or_default()
            .push((rank, secs));
    }

    /// Take a consistent copy of everything for reporting.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let tables = self.tables.lock();
        let phases = tables
            .phases
            .iter()
            .map(|(k, series)| (k.clone(), aggregate(series)))
            .collect();
        RegistrySnapshot {
            counters,
            gauges: tables.gauges.clone(),
            histograms: tables.histograms.clone(),
            phases,
            phase_series: tables.phases.clone(),
        }
    }
}

fn aggregate(series: &[(usize, f64)]) -> PhaseAgg {
    if series.is_empty() {
        return PhaseAgg::default();
    }
    let mut agg = PhaseAgg {
        count: series.len() as u64,
        min: f64::INFINITY,
        mean: 0.0,
        max: f64::NEG_INFINITY,
        sum: 0.0,
        p50: 0.0,
        p90: 0.0,
        p99: 0.0,
    };
    let mut lq = crate::quantile::LogQuantile::new();
    for &(_, secs) in series {
        agg.min = agg.min.min(secs);
        agg.max = agg.max.max(secs);
        agg.sum += secs;
        lq.observe(secs);
    }
    agg.mean = agg.sum / series.len() as f64;
    (agg.p50, agg.p90, agg.p99) = lq.p50_p90_p99();
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_atomic_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("hits");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counters["hits"], 8000);
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe_n(16, 5);
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 86); // 0 + 1 + 2 + 3 + 5·16
                                 // buckets: [0,0]=1, [1,1]=1, [2,3]=2, [16,31]=5
        assert_eq!(h.buckets(), vec![(0, 1), (1, 1), (2, 2), (16, 5)]);
    }

    #[test]
    fn phase_aggregates_min_mean_max() {
        let reg = Registry::new();
        reg.record_phase("alignment", 1, 1.0);
        reg.record_phase("alignment", 2, 3.0);
        reg.record_phase("alignment", 3, 2.0);
        let agg = reg.snapshot().phases["alignment"];
        assert_eq!(agg.count, 3);
        assert_eq!(agg.min, 1.0);
        assert_eq!(agg.max, 3.0);
        assert!((agg.mean - 2.0).abs() < 1e-12);
        assert!((agg.sum - 6.0).abs() < 1e-12);
        // Quantile estimates track the exact order statistics within
        // the log-bucket error bound.
        let bound = crate::quantile::relative_error_bound() * (1.0 + 1e-9);
        assert!(
            agg.p50 <= 2.0 * bound && agg.p50 >= 2.0 / bound,
            "{}",
            agg.p50
        );
        assert!(
            agg.p99 <= 3.0 * bound && agg.p99 >= 3.0 / bound,
            "{}",
            agg.p99
        );
    }

    #[test]
    fn gauge_max_keeps_the_peak() {
        let reg = Registry::new();
        reg.set_gauge_max("depth", 10.0);
        reg.set_gauge_max("depth", 4.0);
        reg.set_gauge_max("depth", 12.0);
        assert_eq!(reg.snapshot().gauges["depth"], 12.0);
    }

    #[test]
    fn snapshot_is_stable_ordered() {
        let reg = Registry::new();
        reg.add("b", 2);
        reg.add("a", 1);
        reg.set_gauge("z", 0.5);
        let snap = reg.snapshot();
        let keys: Vec<_> = snap.counters.keys().cloned().collect();
        assert_eq!(keys, vec!["a", "b"]);
        assert_eq!(snap.gauges["z"], 0.5);
    }
}
