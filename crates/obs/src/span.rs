//! RAII phase spans and accumulating timers.
//!
//! [`Span`] times one phase on one rank: it emits a `PhaseStart` event
//! when opened and, on [`Span::finish`] (or drop), records the elapsed
//! seconds into the registry's per-rank phase series and emits
//! `PhaseEnd`. `finish()` also *returns* the seconds so call sites can
//! keep populating the legacy `PhaseTimers` struct.
//!
//! [`Timer`] is a stopwatch for inner loops that run many short bursts
//! of the same phase (e.g. per-batch alignment in a slave): start/stop
//! accumulates, and the total is recorded once at the end.

use crate::sink::Event;
use crate::Obs;
use std::time::{Duration, Instant};

/// An open phase span. Created by [`Obs::span`] / [`Obs::span_on`].
#[must_use = "a span times the region until finish() or drop"]
pub struct Span<'a> {
    obs: &'a Obs,
    phase: &'a str,
    rank: usize,
    start: Instant,
    finished: bool,
}

impl<'a> Span<'a> {
    pub(crate) fn begin(obs: &'a Obs, phase: &'a str, rank: usize) -> Self {
        obs.emit_with(|| Event::PhaseStart {
            phase: phase.to_string(),
            rank,
            t: obs.now(),
        });
        Span {
            obs,
            phase,
            rank,
            start: Instant::now(),
            finished: false,
        }
    }

    /// Seconds elapsed so far, without closing the span.
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Close the span, record it, and return the elapsed seconds.
    pub fn finish(mut self) -> f64 {
        self.close()
    }

    fn close(&mut self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        self.finished = true;
        self.obs
            .registry()
            .record_phase(self.phase, self.rank, secs);
        self.obs.emit_with(|| Event::PhaseEnd {
            phase: self.phase.to_string(),
            rank: self.rank,
            t: self.obs.now(),
            secs,
        });
        self.obs.trace_with(|tracer| {
            let dur_us = (secs * 1e6) as u64;
            let end_us = self.obs.now_us();
            tracer.span(
                self.rank,
                tracer.intern(self.phase),
                end_us.saturating_sub(dur_us),
                dur_us,
                0,
                0,
            );
        });
        secs
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.close();
        }
    }
}

/// An accumulating stopwatch. Unlike [`Span`] it is detached from any
/// `Obs`: it only measures, and the caller records the total (via
/// [`crate::Registry::record_phase`] or a legacy timer field) when the
/// loop is done.
#[derive(Debug, Default)]
pub struct Timer {
    acc: Duration,
    running: Option<Instant>,
}

impl Timer {
    /// A stopped timer with zero accumulated time.
    pub fn new() -> Self {
        Timer::default()
    }

    /// Start (or restart) the stopwatch. Starting a running timer is a
    /// no-op.
    pub fn start(&mut self) {
        if self.running.is_none() {
            self.running = Some(Instant::now());
        }
    }

    /// Stop the stopwatch and return the seconds of the lap just ended.
    /// Stopping a stopped timer returns 0.
    pub fn stop(&mut self) -> f64 {
        match self.running.take() {
            Some(started) => {
                let lap = started.elapsed();
                self.acc += lap;
                lap.as_secs_f64()
            }
            None => 0.0,
        }
    }

    /// Time one closure, accumulating its duration.
    pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        self.start();
        let out = f();
        self.stop();
        out
    }

    /// Total accumulated seconds (excluding any still-running lap).
    pub fn secs(&self) -> f64 {
        self.acc.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Obs, VecSink};

    #[test]
    fn span_records_on_drop() {
        let obs = Obs::noop();
        {
            let _span = obs.span("gst_construction");
        }
        let snap = obs.registry().snapshot();
        assert_eq!(snap.phases["gst_construction"].count, 1);
    }

    #[test]
    fn finish_returns_elapsed_and_records_once() {
        let obs = Obs::noop();
        let span = obs.span_on("node_sorting", 2);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let secs = span.finish();
        assert!(secs >= 0.002);
        let agg = &obs.registry().snapshot().phases["node_sorting"];
        assert_eq!(agg.count, 1);
        assert!((agg.max - secs).abs() < 1e-9);
    }

    #[test]
    fn span_event_order_and_timestamps() {
        let sink = VecSink::shared();
        let obs = Obs::with_sink(Box::new(sink.clone()));
        obs.span("partitioning").finish();
        let ev = sink.snapshot();
        let (t0, t1) = match (&ev[0], &ev[1]) {
            (Event::PhaseStart { t: a, .. }, Event::PhaseEnd { t: b, .. }) => (*a, *b),
            other => panic!("unexpected events: {other:?}"),
        };
        assert!(t0 <= t1);
    }

    #[test]
    fn timer_accumulates_laps() {
        let mut t = Timer::new();
        t.start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let lap = t.stop();
        assert!(lap > 0.0);
        let out = t.time(|| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            7
        });
        assert_eq!(out, 7);
        assert!(t.secs() >= lap);
        assert_eq!(t.stop(), 0.0, "stopping a stopped timer is a no-op");
    }
}
