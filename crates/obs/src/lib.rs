//! `pace-obs` — the unified observability layer for the PaCE
//! reproduction.
//!
//! The paper's evaluation is an observability story: Table 3 is a
//! per-phase timing breakdown, Figure 7 tracks pairs
//! generated/processed/accepted over time, Figure 8 counts
//! communication volume, and the central efficiency claim is "the
//! master is busy < 2% of the time". This crate gives every layer of
//! the pipeline one substrate to record those numbers through:
//!
//! - [`Span`] / [`Timer`] — RAII phase timing that feeds the registry
//!   (and still backs the legacy `PhaseTimers` struct in
//!   `pace-cluster`).
//! - [`Registry`] — thread-safe named counters, gauges, log-bucketed
//!   histograms, and per-rank phase series with min/mean/max
//!   aggregates.
//! - [`EventSink`] — pluggable structured-event stream:
//!   [`NullSink`] (zero-overhead default), [`VecSink`] (test capture),
//!   [`JsonlSink`] (line-delimited JSON file).
//! - [`report`] — a schema-versioned JSON run report assembled from a
//!   registry snapshot, shared by the CLI (`--metrics-out`) and the
//!   bench binaries.
//!
//! Everything is std-only (plus the workspace's vendored `parking_lot`
//! shim); the crate pulls in no external dependencies.
//!
//! # Metric naming conventions
//!
//! Dotted lowercase names, grouped by subsystem:
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `pairs.generated` … `pairs.unconsumed` | counter | pair life cycle |
//! | `merges` | counter | accepted union-find merges |
//! | `comm.messages` / `comm.barriers` / `comm.reductions` | counter | mpisim traffic |
//! | `gst.buckets` / `gst.nodes` / `gst.subtrees` | counter | GST build size |
//! | `gst.max_depth` | gauge | deepest GST node (string depth) |
//! | `master.busy_frac` | gauge | fraction of wall time the master worked |
//! | `pairs.mcs_len` | histogram | generated pairs by maximal-common-substring length |
//! | `partitioning`, `gst_construction`, `node_sorting`, `alignment`, `total` | phase | per-rank phase timings |

pub mod json;
pub mod metric;
pub mod quantile;
pub mod registry;
pub mod report;
pub mod sink;
pub mod span;
pub mod trace;

pub use json::Json;
pub use quantile::LogQuantile;
pub use registry::{Counter, Histogram, PhaseAgg, Registry, RegistrySnapshot};
pub use report::SCHEMA_VERSION;
pub use sink::{Event, EventSink, JsonlSink, NullSink, VecSink};
pub use span::{Span, Timer};
pub use trace::{TraceDoc, TraceEvent, TraceKind, Tracer, TRACE_SCHEMA_VERSION};

use std::sync::Arc;
use std::time::Instant;

struct Inner {
    registry: Registry,
    sink: Box<dyn EventSink>,
    /// `true` unless the sink is a `NullSink`; lets hot paths skip
    /// building `Event` values entirely.
    events_enabled: bool,
    /// Present only when `--trace-out` (or a test) asked for a trace;
    /// hot paths gate on [`Obs::trace_enabled`] / [`Obs::trace_with`]
    /// so tracing off costs one branch and zero allocations.
    tracer: Option<Arc<Tracer>>,
    epoch: Instant,
}

/// Cheaply clonable handle to one run's observability state: a metric
/// registry plus an event sink. `Obs` is `Send + Sync`; every rank of
/// the parallel driver shares one handle.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<Inner>,
}

impl Obs {
    /// An `Obs` that aggregates metrics but drops events ([`NullSink`]).
    /// This is the default for library callers; the registry still
    /// fills so reports can always be produced.
    pub fn noop() -> Self {
        Obs::with_sink(Box::new(NullSink))
    }

    /// An `Obs` emitting events into the given sink.
    pub fn with_sink(sink: Box<dyn EventSink>) -> Self {
        Obs::build(sink, None)
    }

    /// An `Obs` with a trace recorder attached (and a `NullSink` for
    /// events). Spans then also record [`trace::TraceEvent`]s.
    pub fn with_tracer() -> Self {
        Obs::build(Box::new(NullSink), Some(Arc::new(Tracer::new())))
    }

    /// An `Obs` with both an event sink and a trace recorder.
    pub fn with_sink_and_tracer(sink: Box<dyn EventSink>) -> Self {
        Obs::build(sink, Some(Arc::new(Tracer::new())))
    }

    fn build(sink: Box<dyn EventSink>, tracer: Option<Arc<Tracer>>) -> Self {
        let events_enabled = !sink.is_null();
        Obs {
            inner: Arc::new(Inner {
                registry: Registry::new(),
                sink,
                events_enabled,
                tracer,
                epoch: Instant::now(),
            }),
        }
    }

    /// The metric registry shared by all clones of this handle.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Seconds since this `Obs` was created (the run's time origin).
    pub fn now(&self) -> f64 {
        self.inner.epoch.elapsed().as_secs_f64()
    }

    /// Microseconds since this `Obs` was created — the trace clock. All
    /// ranks share one process, so one monotonic epoch gives globally
    /// comparable per-rank timelines.
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// The trace recorder, if one is attached.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.inner.tracer.as_deref()
    }

    /// Whether a trace recorder is attached. Hot paths gate on this (or
    /// use [`Obs::trace_with`]) so tracing off costs one branch.
    pub fn trace_enabled(&self) -> bool {
        self.inner.tracer.is_some()
    }

    /// Record trace events lazily: the closure runs only when a tracer
    /// is attached — the tracing analogue of [`Obs::emit_with`].
    pub fn trace_with(&self, record: impl FnOnce(&Tracer)) {
        if let Some(tracer) = &self.inner.tracer {
            record(tracer);
        }
    }

    /// Whether events are observable (i.e. the sink is not `NullSink`).
    /// Hot paths should gate event construction on this, or use
    /// [`Obs::emit_with`].
    pub fn events_enabled(&self) -> bool {
        self.inner.events_enabled
    }

    /// Emit one event to the sink.
    pub fn emit(&self, event: Event) {
        if self.inner.events_enabled {
            self.inner.sink.emit(&event);
        }
    }

    /// Emit lazily: the event is only built if a real sink is attached.
    pub fn emit_with(&self, make: impl FnOnce() -> Event) {
        if self.inner.events_enabled {
            self.inner.sink.emit(&make());
        }
    }

    /// Flush the sink (e.g. the JSONL writer's buffer).
    pub fn flush(&self) {
        self.inner.sink.flush();
    }

    /// Open an RAII span for `phase` on rank 0.
    pub fn span<'a>(&'a self, phase: &'a str) -> Span<'a> {
        self.span_on(phase, 0)
    }

    /// Open an RAII span for `phase` on the given rank. Emits
    /// `PhaseStart` now and, at [`Span::finish`] (or drop),
    /// records the duration into the registry's phase series and emits
    /// `PhaseEnd`.
    pub fn span_on<'a>(&'a self, phase: &'a str, rank: usize) -> Span<'a> {
        Span::begin(self, phase, rank)
    }

    /// Convenience: a counter handle (see [`Registry::counter`]).
    pub fn counter(&self, name: &str) -> Counter {
        self.inner.registry.counter(name)
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("events_enabled", &self.inner.events_enabled)
            .finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::noop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_is_send_sync_and_cheap_to_clone() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Obs>();
        let obs = Obs::noop();
        let clones: Vec<Obs> = (0..8).map(|_| obs.clone()).collect();
        std::thread::scope(|s| {
            for (i, o) in clones.iter().enumerate() {
                s.spawn(move || o.counter("shared").add(i as u64 + 1));
            }
        });
        assert_eq!(obs.registry().snapshot().counters["shared"], 36);
    }

    #[test]
    fn null_sink_disables_events() {
        let obs = Obs::noop();
        assert!(!obs.events_enabled());
        let mut built = false;
        obs.emit_with(|| {
            built = true;
            Event::Message {
                t: 0.0,
                text: "never".into(),
            }
        });
        assert!(!built, "NullSink must not build events");
    }

    #[test]
    fn no_tracer_never_invokes_trace_closures() {
        let obs = Obs::noop();
        assert!(!obs.trace_enabled());
        let mut invoked = false;
        obs.trace_with(|_| invoked = true);
        assert!(!invoked, "trace_with must be free when tracing is off");
        // Spans record phases but produce no trace events.
        obs.span_on("alignment", 1).finish();
        assert!(obs.tracer().is_none());
    }

    #[test]
    fn tracer_records_span_close() {
        let obs = Obs::with_tracer();
        assert!(obs.trace_enabled());
        obs.span_on("alignment", 2).finish();
        let tracer = obs.tracer().unwrap();
        assert_eq!(tracer.recorded(), 1);
        let snap = tracer.snapshot();
        assert_eq!(snap[0].rank, 2);
        assert_eq!(snap[0].name, "alignment");
        assert!(matches!(snap[0].kind, TraceKind::Span));
    }

    #[test]
    fn vec_sink_captures_span_events() {
        let sink = VecSink::shared();
        let obs = Obs::with_sink(Box::new(sink.clone()));
        let span = obs.span_on("alignment", 3);
        let secs = span.finish();
        assert!(secs >= 0.0);
        let events = sink.snapshot();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[0],
            Event::PhaseStart { phase, rank: 3, .. } if phase == "alignment"
        ));
        assert!(matches!(
            &events[1],
            Event::PhaseEnd { phase, rank: 3, secs, .. }
                if phase == "alignment" && *secs >= 0.0
        ));
        let agg = &obs.registry().snapshot().phases["alignment"];
        assert_eq!(agg.count, 1);
    }
}
