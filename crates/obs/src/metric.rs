//! Canonical metric and phase names.
//!
//! Every producer (both drivers, the GST builder, the pair generators,
//! the communication layer) records through these constants, so a
//! report's keys are stable across the sequential and parallel paths
//! and consumers never match on ad-hoc strings. See the crate-level
//! table for meanings.

/// Counter: promising pairs emitted by the generators.
pub const PAIRS_GENERATED: &str = "pairs.generated";
/// Counter: pairs the alignment kernel actually ran on.
pub const PAIRS_PROCESSED: &str = "pairs.processed";
/// Counter: alignments accepted as merge evidence.
pub const PAIRS_ACCEPTED: &str = "pairs.accepted";
/// Counter: pairs discarded because their ESTs already shared a cluster.
pub const PAIRS_SKIPPED: &str = "pairs.skipped";
/// Counter: pairs generated but still buffered at shutdown.
pub const PAIRS_UNCONSUMED: &str = "pairs.unconsumed";
/// Counter: accepted alignments that actually merged two clusters.
pub const MERGES: &str = "merges";
/// Counter: pairs rejected by the cheap pre-alignment filter (anchor
/// geometry bound or diagonal identity) before any DP cell was filled.
pub const PAIRS_PREFILTERED: &str = "pairs.prefiltered";

/// Counter: pairs served by a reused per-rank alignment workspace — the
/// allocation-free hot path. Equal to `pairs.processed` when every
/// alignment went through a long-lived [`AlignContext`]-style context
/// rather than allocating fresh DP scratch per pair.
pub const ALIGN_WS_REUSES: &str = "align.ws_reuses";

/// Counter: point-to-point messages delivered.
pub const COMM_MESSAGES: &str = "comm.messages";
/// Counter: serialized frame bytes moved by the transport (headers
/// included). Zero on the in-process channel backend, which moves owned
/// values instead of bytes.
pub const COMM_BYTES: &str = "comm.bytes";
/// Counter: barrier episodes completed.
pub const COMM_BARRIERS: &str = "comm.barriers";
/// Counter: reduction collectives completed.
pub const COMM_REDUCTIONS: &str = "comm.reductions";

/// Counter: distinct GST buckets built.
pub const GST_BUCKETS: &str = "gst.buckets";
/// Counter: total GST nodes across all subtrees.
pub const GST_NODES: &str = "gst.nodes";
/// Counter: subtrees (one per non-empty bucket).
pub const GST_SUBTREES: &str = "gst.subtrees";
/// Gauge: deepest node (string depth) in any subtree.
pub const GST_MAX_DEPTH: &str = "gst.max_depth";

/// Gauge: fraction of wall time the master spent busy.
pub const MASTER_BUSY_FRAC: &str = "master.busy_frac";

/// Gauge: sub-master shard count of a sharded run (absent or 0 on
/// single-master runs).
pub const SHARD_COUNT: &str = "shard.count";
/// Counter: distinct cross-shard merge edges the reconciler folded.
pub const SHARD_CROSS_EDGES: &str = "shard.cross_edges";
/// Counter: `CrossMerge` epoch flushes the reconciler received.
pub const SHARD_EPOCHS: &str = "shard.epochs";
/// Counter: sub-master shards that failed to deliver a final report
/// (crashed or timed out); their pairs surface in `faults.lost_pairs`.
pub const SHARD_FAILED: &str = "shard.failed";
/// Gauge: seconds the reconciler spent folding cross edges and
/// replaying shard merge traces into the global partition.
pub const SHARD_RECONCILE_SECS: &str = "shard.reconcile_secs";

/// Per-shard gauge family: `shard.<k>.<field>` where `<field>` is one
/// of `generated`, `received`, `processed`, `skipped`, `unconsumed`,
/// `merges`, `cross_edges`. The identity harness reads these to check
/// per-shard flow conservation
/// (`generated == processed + skipped + unconsumed`).
pub fn shard_gauge_name(shard: usize, field: &str) -> String {
    format!("shard.{shard}.{field}")
}

/// Gauge: critical-path seconds from the trace analyzer (the longest
/// chain of causally ordered spans). Present only on traced runs.
pub const TRACE_CRITICAL_PATH_SECS: &str = "trace.critical_path_secs";
/// Gauge: lowest per-rank utilization from the trace analyzer.
pub const TRACE_UTILIZATION_MIN: &str = "trace.rank_utilization.min";
/// Gauge: mean per-rank utilization from the trace analyzer.
pub const TRACE_UTILIZATION_MEAN: &str = "trace.rank_utilization.mean";

/// Counter: `Work` batches the master re-sent after a slave missed its
/// reply deadline.
pub const FAULTS_RETRIES: &str = "faults.retries";
/// Counter: reports the master ignored as duplicates or stale (wrong
/// sequence number, or from a slave already declared dead).
pub const FAULTS_DUPLICATE_REPORTS: &str = "faults.duplicate_reports";
/// Counter: slaves declared dead after exhausting their retry budget.
pub const FAULTS_DEAD_SLAVES: &str = "faults.dead_slaves";
/// Counter: outstanding pairs of dead slaves put back on the work queue.
pub const FAULTS_REASSIGNED_PAIRS: &str = "faults.reassigned_pairs";
/// Counter: queued pairs discarded because every slave died before they
/// could be dispatched (counted into `pairs.skipped` as well, keeping
/// flow conservation exact).
pub const FAULTS_ABANDONED_PAIRS: &str = "faults.abandoned_pairs";
/// Counter: pairs slaves shipped that never reached the master (dropped
/// in flight or held by a slave that died); folded into
/// `pairs.unconsumed` so flow conservation stays exact under faults.
pub const FAULTS_LOST_PAIRS: &str = "faults.lost_pairs";
/// Counter: messages the fault layer discarded (injected).
pub const FAULTS_INJECTED_DROPS: &str = "faults.injected.drops";
/// Counter: messages the fault layer delayed (injected).
pub const FAULTS_INJECTED_DELAYS: &str = "faults.injected.delays";
/// Counter: ranks the fault layer crashed (injected).
pub const FAULTS_INJECTED_CRASHES: &str = "faults.injected.crashes";
/// Counter: stall sleeps the fault layer performed (injected).
pub const FAULTS_INJECTED_STALLS: &str = "faults.injected.stalls";

/// Counter: bytes written to out-of-core spill files.
pub const IO_SPILL_BYTES: &str = "io.spill_bytes";
/// Counter: spill files written.
pub const IO_SPILL_FILES: &str = "io.spill_files";
/// Counter: bytes read back from spill files during pair generation.
pub const IO_READ_BACK_BYTES: &str = "io.read_back_bytes";
/// Counter: memory-budgeted bucket batches planned for this run.
pub const IO_SPILL_BATCHES: &str = "io.spill_batches";
/// Counter: buckets whose individual footprint estimate exceeded the
/// memory budget and were given a batch of their own.
pub const IO_OVERSIZED_BUCKETS: &str = "io.oversized_buckets";
/// Gauge: largest estimated in-memory batch footprint (bytes) under the
/// spill planner's load model — the effective peak the budget bought.
pub const IO_PEAK_BATCH_BYTES: &str = "io.peak_batch_bytes";

/// Counter: checkpoint artifacts (manifests + snapshots) written.
pub const CKPT_WRITES: &str = "ckpt.writes";
/// Counter: bytes written to checkpoint artifacts.
pub const CKPT_BYTES: &str = "ckpt.bytes";
/// Counter: phases restored from checkpoints instead of recomputed
/// (nonzero only on `--resume` runs).
pub const CKPT_PHASES_RESUMED: &str = "ckpt.phases_resumed";
/// Counter: merge records replayed from the checkpointed trace on
/// resume (reconstructing the master's union–find frontier).
pub const CKPT_REPLAYED_MERGES: &str = "ckpt.replayed_merges";

/// Histogram: generated pairs by maximal-common-substring length.
pub const PAIRS_MCS_LEN: &str = "pairs.mcs_len";

/// Phase: bucket counting, global summation and bucket assignment.
pub const PHASE_PARTITIONING: &str = "partitioning";
/// Phase: per-bucket subtree construction.
pub const PHASE_GST_CONSTRUCTION: &str = "gst_construction";
/// Phase: node collection + string-depth sorting (generator setup).
pub const PHASE_NODE_SORTING: &str = "node_sorting";
/// Phase: pairwise (anchored banded) alignment.
pub const PHASE_ALIGNMENT: &str = "alignment";
/// Phase: one slave work batch through the alignment kernel. Finer
/// grained than [`PHASE_ALIGNMENT`] (which is recorded once per rank as
/// the kernel-time total): one span per non-empty batch, so the series
/// exposes batch-size effects and stragglers.
pub const PHASE_ALIGN_BATCH: &str = "align_batch";
/// Phase: streaming FASTA ingest into the sequence store.
pub const PHASE_INGEST: &str = "ingest";
/// Phase: writing spilled bucket batches to disk.
pub const PHASE_SPILL_WRITE: &str = "spill_write";
/// Phase: streaming spilled batches back for pair generation.
pub const PHASE_SPILL_READ: &str = "spill_read";
/// Phase: writing checkpoint snapshots and manifests.
pub const PHASE_CHECKPOINT: &str = "checkpoint";
/// Phase: end-to-end wall clock.
pub const PHASE_TOTAL: &str = "total";

/// Counter: client connections the serving daemon accepted.
pub const SERVE_CONNECTIONS: &str = "serve.connections";
/// Counter: queries (member/cluster/rep/stats/ping) answered.
pub const SERVE_QUERIES: &str = "serve.queries";
/// Counter: ingest batches folded into the live index.
pub const SERVE_INGEST_BATCHES: &str = "serve.ingest.batches";
/// Counter: ESTs accepted across all ingest batches.
pub const SERVE_INGEST_ESTS: &str = "serve.ingest.ests";
/// Counter: requests answered with a protocol-level error.
pub const SERVE_ERRORS: &str = "serve.errors";
/// Counter: checkpoints the daemon published while serving.
pub const SERVE_CHECKPOINTS: &str = "serve.checkpoints";
/// Gauge family: query latency quantiles in microseconds, estimated by
/// the log-bucket sketch (`serve.query.p50_us`, `.p90_us`, `.p99_us`).
pub const SERVE_QUERY_P50_US: &str = "serve.query.p50_us";
/// See [`SERVE_QUERY_P50_US`].
pub const SERVE_QUERY_P90_US: &str = "serve.query.p90_us";
/// See [`SERVE_QUERY_P50_US`].
pub const SERVE_QUERY_P99_US: &str = "serve.query.p99_us";
/// Gauge family: ingest fold latency quantiles in microseconds.
pub const SERVE_INGEST_P50_US: &str = "serve.ingest.p50_us";
/// See [`SERVE_INGEST_P50_US`].
pub const SERVE_INGEST_P90_US: &str = "serve.ingest.p90_us";
/// See [`SERVE_INGEST_P50_US`].
pub const SERVE_INGEST_P99_US: &str = "serve.ingest.p99_us";
