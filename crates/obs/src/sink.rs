//! Structured run events and pluggable sinks.
//!
//! Events are the *stream* side of observability (the registry is the
//! *aggregate* side): phase boundaries, periodic rank heartbeats, and
//! accepted merges. Sinks decide what happens to them:
//! [`NullSink`] drops everything (and lets [`crate::Obs`] skip building
//! events at all), [`VecSink`] captures them for tests, and
//! [`JsonlSink`] writes one JSON object per line for offline analysis.

use crate::json::Json;
use parking_lot::Mutex;
use std::io::Write;
use std::sync::Arc;

/// One structured event. `t` is seconds since the run's [`crate::Obs`]
/// was created.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A phase span opened on a rank.
    PhaseStart { phase: String, rank: usize, t: f64 },
    /// A phase span closed; `secs` is its duration.
    PhaseEnd {
        phase: String,
        rank: usize,
        t: f64,
        secs: f64,
    },
    /// Periodic progress from a rank (the master emits these with its
    /// busy fraction; slaves with their alignment throughput).
    Heartbeat {
        rank: usize,
        t: f64,
        /// Fraction of wall time spent doing work (not waiting).
        busy_frac: f64,
        /// Pairs aligned per second since the previous heartbeat.
        pairs_per_sec: f64,
        /// Cumulative pairs processed by this rank.
        processed: u64,
    },
    /// An accepted merge of two ESTs' clusters.
    Merge {
        t: f64,
        est_a: usize,
        est_b: usize,
        mcs_len: u32,
        score_ratio: f64,
    },
    /// A recovery action taken (or an injected fault observed) during a
    /// run: a resend, a slave declared dead, a duplicate report ignored,
    /// pairs abandoned, an injected drop/delay/crash/stall. `rank` is
    /// the rank that acted (the master for recovery events; the sending
    /// rank for injected channel faults).
    Fault {
        t: f64,
        rank: usize,
        /// Short machine-readable action name, e.g. `resend`/`dead_slave`
        /// or `injected.drop`/`injected.delay`.
        kind: String,
        /// The protocol/transport sequence number of the affected
        /// message, when the fault concerns one — this is what makes
        /// injected drops/delays distinguishable per channel.
        seq: Option<u64>,
        /// Human-readable specifics.
        detail: String,
    },
    /// Free-form annotation.
    Message { t: f64, text: String },
}

impl Event {
    /// The event's wire name (the JSONL `"ev"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::PhaseStart { .. } => "phase_start",
            Event::PhaseEnd { .. } => "phase_end",
            Event::Heartbeat { .. } => "heartbeat",
            Event::Merge { .. } => "merge",
            Event::Fault { .. } => "fault",
            Event::Message { .. } => "message",
        }
    }

    /// The rank this event is attributed to, if any (merges and
    /// free-form messages are rank-less). Used by [`JsonlSink`] to pick
    /// a per-rank buffer lane.
    pub fn rank(&self) -> Option<usize> {
        match self {
            Event::PhaseStart { rank, .. }
            | Event::PhaseEnd { rank, .. }
            | Event::Heartbeat { rank, .. }
            | Event::Fault { rank, .. } => Some(*rank),
            Event::Merge { .. } | Event::Message { .. } => None,
        }
    }

    /// Encode as a single JSON object.
    pub fn to_json(&self) -> Json {
        let mut entries: Vec<(String, Json)> =
            vec![("ev".to_string(), Json::Str(self.kind().to_string()))];
        match self {
            Event::PhaseStart { phase, rank, t } => {
                entries.push(("phase".into(), Json::Str(phase.clone())));
                entries.push(("rank".into(), Json::Num(*rank as f64)));
                entries.push(("t".into(), Json::Num(*t)));
            }
            Event::PhaseEnd {
                phase,
                rank,
                t,
                secs,
            } => {
                entries.push(("phase".into(), Json::Str(phase.clone())));
                entries.push(("rank".into(), Json::Num(*rank as f64)));
                entries.push(("t".into(), Json::Num(*t)));
                entries.push(("secs".into(), Json::Num(*secs)));
            }
            Event::Heartbeat {
                rank,
                t,
                busy_frac,
                pairs_per_sec,
                processed,
            } => {
                entries.push(("rank".into(), Json::Num(*rank as f64)));
                entries.push(("t".into(), Json::Num(*t)));
                entries.push(("busy_frac".into(), Json::Num(*busy_frac)));
                entries.push(("pairs_per_sec".into(), Json::Num(*pairs_per_sec)));
                entries.push(("processed".into(), Json::Num(*processed as f64)));
            }
            Event::Merge {
                t,
                est_a,
                est_b,
                mcs_len,
                score_ratio,
            } => {
                entries.push(("t".into(), Json::Num(*t)));
                entries.push(("est_a".into(), Json::Num(*est_a as f64)));
                entries.push(("est_b".into(), Json::Num(*est_b as f64)));
                entries.push(("mcs_len".into(), Json::Num(*mcs_len as f64)));
                entries.push(("score_ratio".into(), Json::Num(*score_ratio)));
            }
            Event::Fault {
                t,
                rank,
                kind,
                seq,
                detail,
            } => {
                entries.push(("t".into(), Json::Num(*t)));
                entries.push(("rank".into(), Json::Num(*rank as f64)));
                entries.push(("kind".into(), Json::Str(kind.clone())));
                if let Some(seq) = seq {
                    entries.push(("seq".into(), Json::Num(*seq as f64)));
                }
                entries.push(("detail".into(), Json::Str(detail.clone())));
            }
            Event::Message { t, text } => {
                entries.push(("t".into(), Json::Num(*t)));
                entries.push(("text".into(), Json::Str(text.clone())));
            }
        }
        Json::Obj(entries)
    }
}

/// Where events go. Implementations must be thread-safe: every rank of
/// the parallel driver emits through the same sink.
pub trait EventSink: Send + Sync {
    fn emit(&self, event: &Event);

    /// Flush any buffering; called at the end of a run.
    fn flush(&self) {}

    /// `true` only for [`NullSink`]; lets `Obs` skip event
    /// construction entirely.
    fn is_null(&self) -> bool {
        false
    }
}

/// Drops every event. The zero-overhead default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}

    fn is_null(&self) -> bool {
        true
    }
}

/// Captures events in memory; clone the handle to inspect from a test
/// while an `Obs` owns the other clone.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl VecSink {
    /// A new shared capture buffer.
    pub fn shared() -> Self {
        VecSink::default()
    }

    /// Copy of everything captured so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for VecSink {
    fn emit(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

/// How many bytes a rank lane may hold before it is drained to the
/// writer. Small enough that events land on disk promptly, large enough
/// to amortize the writer lock across bursts.
const LANE_FLUSH_BYTES: usize = 8 * 1024;

/// Number of per-rank buffer lanes (ranks map in by `rank % LANES`).
const JSONL_LANES: usize = 16;

/// Writes one JSON object per event, newline-delimited, to any writer
/// (usually a file opened by the CLI for `--events-out`).
///
/// Concurrency contract: every rank of the parallel driver emits
/// through one shared sink, so lines from different ranks may be
/// ordered arbitrarily — but each written line is always one *complete*
/// serialized event. Events are serialized into a per-rank lane under
/// that lane's lock, and lanes are drained to the writer only at
/// newline boundaries, so concurrent writers can never interleave
/// fragments of two events into one torn line. Lanes are drained on
/// [`EventSink::flush`] and on drop, so no buffered event is lost when
/// the run (or a test) finishes without an explicit flush.
pub struct JsonlSink {
    lanes: Vec<Mutex<String>>,
    writer: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            lanes: (0..JSONL_LANES)
                .map(|_| Mutex::new(String::new()))
                .collect(),
            writer: Mutex::new(writer),
        }
    }

    /// Open (create/truncate) a JSONL file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(file))))
    }

    /// Write one lane's complete lines to the writer and clear it.
    fn drain_lane(&self, lane: &mut String) {
        if lane.is_empty() {
            return;
        }
        let mut w = self.writer.lock();
        // Serialization can't fail; I/O errors are deliberately ignored
        // rather than crashing a compute run over a full disk.
        let _ = w.write_all(lane.as_bytes());
        lane.clear();
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        use std::fmt::Write as _;
        let lane_idx = event.rank().unwrap_or(0) % JSONL_LANES;
        let mut lane = self.lanes[lane_idx].lock();
        let _ = writeln!(lane, "{}", event.to_json());
        if lane.len() >= LANE_FLUSH_BYTES {
            self.drain_lane(&mut lane);
        }
    }

    fn flush(&self) {
        for lane in &self.lanes {
            self.drain_lane(&mut lane.lock());
        }
        let _ = self.writer.lock().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn event_json_has_kind_and_fields() {
        let e = Event::Merge {
            t: 1.5,
            est_a: 3,
            est_b: 9,
            mcs_len: 21,
            score_ratio: 0.97,
        };
        let j = e.to_json();
        assert_eq!(j.get("ev").unwrap().as_str(), Some("merge"));
        assert_eq!(j.get("est_b").unwrap().as_u64(), Some(9));
        assert_eq!(j.get("score_ratio").unwrap().as_f64(), Some(0.97));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));

        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let sink = JsonlSink::new(Box::new(SharedBuf(Arc::clone(&buf))));
        sink.emit(&Event::PhaseStart {
            phase: "gst_construction".into(),
            rank: 0,
            t: 0.0,
        });
        sink.emit(&Event::Heartbeat {
            rank: 2,
            t: 0.5,
            busy_frac: 0.013,
            pairs_per_sec: 812.0,
            processed: 406,
        });
        sink.flush();

        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let hb = json::parse(lines[1]).unwrap();
        assert_eq!(hb.get("ev").unwrap().as_str(), Some("heartbeat"));
        assert_eq!(hb.get("processed").unwrap().as_u64(), Some(406));
    }

    #[test]
    fn null_sink_reports_null() {
        assert!(NullSink.is_null());
        assert!(!VecSink::shared().is_null());
    }

    #[test]
    fn fault_event_carries_optional_seq() {
        let with_seq = Event::Fault {
            t: 0.25,
            rank: 3,
            kind: "injected.drop".into(),
            seq: Some(7),
            detail: "to=0".into(),
        };
        let j = with_seq.to_json();
        assert_eq!(j.get("seq").unwrap().as_u64(), Some(7));
        assert_eq!(with_seq.rank(), Some(3));

        let without = Event::Fault {
            t: 0.5,
            rank: 0,
            kind: "dead_slave".into(),
            seq: None,
            detail: "slave=2".into(),
        };
        assert!(without.to_json().get("seq").is_none());
        assert_eq!(
            Event::Message {
                t: 0.0,
                text: "x".into()
            }
            .rank(),
            None
        );
    }

    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            // Deliver one byte at a time: any code path issuing more
            // than one `write` call per line would tear under
            // concurrency; `write_all` loops here, so completeness of
            // each line depends only on whole-line locking.
            let n = data.len().min(1);
            self.0.lock().extend_from_slice(&data[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_never_tears_lines_under_concurrency() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        let sink = Arc::new(JsonlSink::new(Box::new(SharedBuf(Arc::clone(&buf)))));
        let ranks = 8;
        let per_rank = 200;
        std::thread::scope(|s| {
            for rank in 0..ranks {
                let sink = Arc::clone(&sink);
                s.spawn(move || {
                    for i in 0..per_rank {
                        sink.emit(&Event::Heartbeat {
                            rank,
                            t: i as f64,
                            busy_frac: 0.5,
                            pairs_per_sec: 100.0,
                            processed: i as u64,
                        });
                    }
                    sink.flush();
                });
            }
        });
        sink.flush();
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let mut seen = vec![0usize; ranks];
        let mut lines = 0;
        for line in text.lines() {
            lines += 1;
            let v =
                json::parse(line).unwrap_or_else(|e| panic!("torn/interleaved line {line:?}: {e}"));
            assert_eq!(v.get("ev").unwrap().as_str(), Some("heartbeat"));
            let rank = v.get("rank").unwrap().as_u64().unwrap() as usize;
            // Per-rank order must be preserved even though cross-rank
            // order is unspecified.
            let t = v.get("t").unwrap().as_f64().unwrap() as usize;
            assert_eq!(t, seen[rank], "rank {rank} events out of order");
            seen[rank] += 1;
        }
        assert_eq!(lines, ranks * per_rank, "missing events after flush");
    }

    #[test]
    fn jsonl_sink_flushes_buffered_lines_on_drop() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct PlainBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for PlainBuf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        {
            let sink = JsonlSink::new(Box::new(PlainBuf(Arc::clone(&buf))));
            sink.emit(&Event::Message {
                t: 0.0,
                text: "buffered".into(),
            });
            // No explicit flush: the event is below the lane threshold.
            assert!(buf.lock().is_empty(), "event should still be buffered");
        }
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        assert_eq!(text.lines().count(), 1, "drop must drain buffered lines");
    }
}
