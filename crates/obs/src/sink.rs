//! Structured run events and pluggable sinks.
//!
//! Events are the *stream* side of observability (the registry is the
//! *aggregate* side): phase boundaries, periodic rank heartbeats, and
//! accepted merges. Sinks decide what happens to them:
//! [`NullSink`] drops everything (and lets [`crate::Obs`] skip building
//! events at all), [`VecSink`] captures them for tests, and
//! [`JsonlSink`] writes one JSON object per line for offline analysis.

use crate::json::Json;
use parking_lot::Mutex;
use std::io::Write;
use std::sync::Arc;

/// One structured event. `t` is seconds since the run's [`crate::Obs`]
/// was created.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A phase span opened on a rank.
    PhaseStart { phase: String, rank: usize, t: f64 },
    /// A phase span closed; `secs` is its duration.
    PhaseEnd {
        phase: String,
        rank: usize,
        t: f64,
        secs: f64,
    },
    /// Periodic progress from a rank (the master emits these with its
    /// busy fraction; slaves with their alignment throughput).
    Heartbeat {
        rank: usize,
        t: f64,
        /// Fraction of wall time spent doing work (not waiting).
        busy_frac: f64,
        /// Pairs aligned per second since the previous heartbeat.
        pairs_per_sec: f64,
        /// Cumulative pairs processed by this rank.
        processed: u64,
    },
    /// An accepted merge of two ESTs' clusters.
    Merge {
        t: f64,
        est_a: usize,
        est_b: usize,
        mcs_len: u32,
        score_ratio: f64,
    },
    /// A recovery action taken (or an injected fault observed) during a
    /// run: a resend, a slave declared dead, a duplicate report ignored,
    /// pairs abandoned. `rank` is the rank that acted (the master for
    /// recovery events).
    Fault {
        t: f64,
        rank: usize,
        /// Short machine-readable action name, e.g. `resend`/`dead_slave`.
        kind: String,
        /// Human-readable specifics.
        detail: String,
    },
    /// Free-form annotation.
    Message { t: f64, text: String },
}

impl Event {
    /// The event's wire name (the JSONL `"ev"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::PhaseStart { .. } => "phase_start",
            Event::PhaseEnd { .. } => "phase_end",
            Event::Heartbeat { .. } => "heartbeat",
            Event::Merge { .. } => "merge",
            Event::Fault { .. } => "fault",
            Event::Message { .. } => "message",
        }
    }

    /// Encode as a single JSON object.
    pub fn to_json(&self) -> Json {
        let mut entries: Vec<(String, Json)> =
            vec![("ev".to_string(), Json::Str(self.kind().to_string()))];
        match self {
            Event::PhaseStart { phase, rank, t } => {
                entries.push(("phase".into(), Json::Str(phase.clone())));
                entries.push(("rank".into(), Json::Num(*rank as f64)));
                entries.push(("t".into(), Json::Num(*t)));
            }
            Event::PhaseEnd {
                phase,
                rank,
                t,
                secs,
            } => {
                entries.push(("phase".into(), Json::Str(phase.clone())));
                entries.push(("rank".into(), Json::Num(*rank as f64)));
                entries.push(("t".into(), Json::Num(*t)));
                entries.push(("secs".into(), Json::Num(*secs)));
            }
            Event::Heartbeat {
                rank,
                t,
                busy_frac,
                pairs_per_sec,
                processed,
            } => {
                entries.push(("rank".into(), Json::Num(*rank as f64)));
                entries.push(("t".into(), Json::Num(*t)));
                entries.push(("busy_frac".into(), Json::Num(*busy_frac)));
                entries.push(("pairs_per_sec".into(), Json::Num(*pairs_per_sec)));
                entries.push(("processed".into(), Json::Num(*processed as f64)));
            }
            Event::Merge {
                t,
                est_a,
                est_b,
                mcs_len,
                score_ratio,
            } => {
                entries.push(("t".into(), Json::Num(*t)));
                entries.push(("est_a".into(), Json::Num(*est_a as f64)));
                entries.push(("est_b".into(), Json::Num(*est_b as f64)));
                entries.push(("mcs_len".into(), Json::Num(*mcs_len as f64)));
                entries.push(("score_ratio".into(), Json::Num(*score_ratio)));
            }
            Event::Fault {
                t,
                rank,
                kind,
                detail,
            } => {
                entries.push(("t".into(), Json::Num(*t)));
                entries.push(("rank".into(), Json::Num(*rank as f64)));
                entries.push(("kind".into(), Json::Str(kind.clone())));
                entries.push(("detail".into(), Json::Str(detail.clone())));
            }
            Event::Message { t, text } => {
                entries.push(("t".into(), Json::Num(*t)));
                entries.push(("text".into(), Json::Str(text.clone())));
            }
        }
        Json::Obj(entries)
    }
}

/// Where events go. Implementations must be thread-safe: every rank of
/// the parallel driver emits through the same sink.
pub trait EventSink: Send + Sync {
    fn emit(&self, event: &Event);

    /// Flush any buffering; called at the end of a run.
    fn flush(&self) {}

    /// `true` only for [`NullSink`]; lets `Obs` skip event
    /// construction entirely.
    fn is_null(&self) -> bool {
        false
    }
}

/// Drops every event. The zero-overhead default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}

    fn is_null(&self) -> bool {
        true
    }
}

/// Captures events in memory; clone the handle to inspect from a test
/// while an `Obs` owns the other clone.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl VecSink {
    /// A new shared capture buffer.
    pub fn shared() -> Self {
        VecSink::default()
    }

    /// Copy of everything captured so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for VecSink {
    fn emit(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

/// Writes one JSON object per event, newline-delimited, to any writer
/// (usually a file opened by the CLI for `--events-out`).
pub struct JsonlSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Open (create/truncate) a JSONL file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(file))))
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut w = self.writer.lock();
        // Serialization can't fail; I/O errors are deliberately ignored
        // rather than crashing a compute run over a full disk.
        let _ = writeln!(w, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn event_json_has_kind_and_fields() {
        let e = Event::Merge {
            t: 1.5,
            est_a: 3,
            est_b: 9,
            mcs_len: 21,
            score_ratio: 0.97,
        };
        let j = e.to_json();
        assert_eq!(j.get("ev").unwrap().as_str(), Some("merge"));
        assert_eq!(j.get("est_b").unwrap().as_u64(), Some(9));
        assert_eq!(j.get("score_ratio").unwrap().as_f64(), Some(0.97));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));

        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let sink = JsonlSink::new(Box::new(SharedBuf(Arc::clone(&buf))));
        sink.emit(&Event::PhaseStart {
            phase: "gst_construction".into(),
            rank: 0,
            t: 0.0,
        });
        sink.emit(&Event::Heartbeat {
            rank: 2,
            t: 0.5,
            busy_frac: 0.013,
            pairs_per_sec: 812.0,
            processed: 406,
        });
        sink.flush();

        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let hb = json::parse(lines[1]).unwrap();
        assert_eq!(hb.get("ev").unwrap().as_str(), Some("heartbeat"));
        assert_eq!(hb.get("processed").unwrap().as_u64(), Some(406));
    }

    #[test]
    fn null_sink_reports_null() {
        assert!(NullSink.is_null());
        assert!(!VecSink::shared().is_null());
    }
}
