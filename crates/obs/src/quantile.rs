//! Fixed-precision log-bucket quantile estimation.
//!
//! [`LogQuantile`] buckets positive values on a logarithmic grid with
//! [`SUBBUCKETS_PER_OCTAVE`] buckets per power of two, so any quantile
//! it reports is within a fixed *relative* error of the exact order
//! statistic regardless of the value range — the right trade for
//! latencies, which span microseconds to minutes in one run. This is
//! what upgrades the registry's min/mean/max-only phase aggregates to
//! p50/p90/p99 (see [`crate::registry::PhaseAgg`]) and what `pace-trace`
//! uses for per-span-name summaries.
//!
//! Memory is O(occupied buckets) — a `BTreeMap` keyed by bucket index —
//! and the full `f64` range down to ~2⁻⁶⁴ is representable, so there is
//! no configuration to get wrong.

use std::collections::BTreeMap;

/// Log-grid resolution: buckets per power of two. 16 sub-buckets give a
/// bucket width ratio of 2^(1/16) ≈ 1.0443, i.e. a worst-case relative
/// quantile error of 2^(1/32) − 1 ≈ 2.2% (the representative value is
/// the bucket's geometric midpoint).
pub const SUBBUCKETS_PER_OCTAVE: i32 = 16;

/// The guaranteed error bound: any reported quantile `est` satisfies
/// `exact / RELATIVE_ERROR_BOUND ≤ est ≤ exact * RELATIVE_ERROR_BOUND`
/// where `exact` is the order statistic at the same rank.
pub fn relative_error_bound() -> f64 {
    2f64.powf(0.5 / SUBBUCKETS_PER_OCTAVE as f64)
}

/// Bucket index reserved for values ≤ 0 (they carry no log-scale
/// information; they are reported as exactly 0).
const ZERO_BUCKET: i32 = i32::MIN;

/// A streaming quantile estimator over fixed-precision log buckets.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LogQuantile {
    counts: BTreeMap<i32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl LogQuantile {
    pub fn new() -> Self {
        LogQuantile::default()
    }

    fn bucket_of(value: f64) -> i32 {
        if value <= 0.0 || !value.is_finite() {
            return ZERO_BUCKET;
        }
        (value.log2() * SUBBUCKETS_PER_OCTAVE as f64).floor() as i32
    }

    /// The geometric midpoint of a bucket — the value reported for any
    /// quantile that lands in it.
    fn representative(bucket: i32) -> f64 {
        if bucket == ZERO_BUCKET {
            return 0.0;
        }
        2f64.powf((bucket as f64 + 0.5) / SUBBUCKETS_PER_OCTAVE as f64)
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        self.observe_n(value, 1);
    }

    /// Record `n` observations of `value` at once.
    pub fn observe_n(&mut self, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        let value = if value.is_finite() { value } else { 0.0 };
        *self.counts.entry(Self::bucket_of(value)).or_insert(0) += n;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += n;
        self.sum += value * n as f64;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`). Returns the
    /// representative value of the bucket containing the order statistic
    /// at rank `⌈q·n⌉` (1-based; q = 0 means the minimum's bucket), so
    /// the estimate is within [`relative_error_bound`] of the exact
    /// quantile. Returns 0 when nothing was observed.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (&bucket, &n) in &self.counts {
            cum += n;
            if cum >= rank {
                // Clamp to the observed extremes so p0/p100 never report
                // a bucket midpoint outside the data.
                return Self::representative(bucket).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience: `(p50, p90, p99)`.
    pub fn p50_p90_p99(&self) -> (f64, f64, f64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    #[test]
    fn empty_reports_zero() {
        let lq = LogQuantile::new();
        assert_eq!(lq.quantile(0.5), 0.0);
        assert_eq!(lq.count(), 0);
    }

    #[test]
    fn single_value_is_its_own_quantile() {
        let mut lq = LogQuantile::new();
        lq.observe(3.7);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = lq.quantile(q);
            assert!(
                (est / 3.7 - 1.0).abs() < relative_error_bound() - 1.0 + 1e-9,
                "q={q}: {est}"
            );
        }
    }

    #[test]
    fn zeros_are_reported_exactly() {
        let mut lq = LogQuantile::new();
        lq.observe_n(0.0, 10);
        lq.observe(8.0);
        assert_eq!(lq.quantile(0.5), 0.0);
        assert!(lq.quantile(1.0) > 0.0);
        assert_eq!(lq.count(), 11);
    }

    #[test]
    fn wide_range_keeps_relative_error() {
        // Microseconds to minutes in one estimator.
        let values = [1e-6, 5e-6, 1e-3, 0.02, 0.5, 3.0, 60.0, 120.0];
        let mut lq = LogQuantile::new();
        let mut sorted: Vec<f64> = values.to_vec();
        for &v in &values {
            lq.observe(v);
        }
        sorted.sort_by(f64::total_cmp);
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let est = lq.quantile(q);
            let exact = exact_quantile(&sorted, q);
            let bound = relative_error_bound() * (1.0 + 1e-9);
            assert!(
                est <= exact * bound && est >= exact / bound,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The acceptance-criteria property: against exact order
        /// statistics, every reported quantile is within the fixed
        /// bucket error bound, for arbitrary positive inputs.
        #[test]
        fn estimates_match_exact_quantiles_within_bucket_error(
            raw in proptest::collection::vec(1u64..1_000_000_000, 1..400),
            qs in proptest::collection::vec(0.0f64..1.0, 1..8),
        ) {
            // Spread the integer draws across ~9 decades.
            let values: Vec<f64> = raw.iter().map(|&v| v as f64 * 1e-6).collect();
            let mut lq = LogQuantile::new();
            for &v in &values {
                lq.observe(v);
            }
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            let bound = relative_error_bound() * (1.0 + 1e-9);
            for &q in &qs {
                let est = lq.quantile(q);
                let exact = exact_quantile(&sorted, q);
                prop_assert!(
                    est <= exact * bound && est >= exact / bound,
                    "q={}: est {} vs exact {} (n={})", q, est, exact, sorted.len()
                );
            }
            prop_assert_eq!(lq.count(), values.len() as u64);
        }
    }
}
