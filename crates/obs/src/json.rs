//! A minimal JSON value type with a writer and parser.
//!
//! The workspace has no serde (no network access to crates.io), and the
//! observability layer needs both directions: the run report and event
//! sinks *write* JSON, and tests plus `MergeTrace::from_jsonl` *read*
//! it back. This module covers RFC 8259 JSON with two deliberate
//! simplifications: numbers are `f64` (exact for integers up to 2^53 —
//! far beyond any counter here), and `\uXXXX` escapes outside the BMP
//! must be paired surrogates.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object entries in insertion order (stable output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(entries: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an object from a string-keyed map.
    pub fn from_map(map: &BTreeMap<String, f64>) -> Json {
        Json::Obj(
            map.iter()
                .map(|(k, &v)| (k.clone(), Json::Num(v)))
                .collect(),
        )
    }

    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize compactly (single line, no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_string()
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        write!(f, "{}", *n as i64)
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    // JSON has no Inf/NaN; null is the conventional stand-in.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Error from [`parse`], with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX continuation.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + lo.checked_sub(0xDC00)
                                            .ok_or_else(|| self.err("bad low surrogate"))?;
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::obj([
            ("schema_version", Json::Num(1.0)),
            ("name", Json::Str("run \"42\"\nnewline".into())),
            (
                "timers",
                Json::obj([("alignment", Json::Num(1.25)), ("total", Json::Num(3.0))]),
            ),
            (
                "list",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(-7.5)]),
            ),
        ]);
        let text = doc.to_line();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("schema_version").unwrap().as_u64(), Some(1));
        assert_eq!(
            back.get("timers").unwrap().get("total").unwrap().as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(12345.0).to_line(), "12345");
        assert_eq!(Json::Num(0.5).to_line(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_line(), "null");
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = parse(" { \"k\" : [ 1 , 2.5e1 , \"\\u00e9\\ud83d\\ude00\" ] } ").unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_f64(), Some(25.0));
        assert_eq!(arr[2].as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
