//! The schema-versioned JSON run report.
//!
//! One document per run, assembled from a [`RegistrySnapshot`] plus
//! caller-supplied metadata. Both drivers, the CLI (`--metrics-out`)
//! and the bench binaries produce this same shape, so every number in
//! EXPERIMENTS.md traces back to the registry the production path
//! filled.
//!
//! Layout (all sections present, possibly empty):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "meta":     { "num_ests": 500, "num_processors": 4, ... },
//!   "timers":   { "alignment": {"min":…,"mean":…,"max":…,"sum":…,"count":…,"p50":…,"p90":…,"p99":…}, … },
//!   "counters": { "pairs.generated": 1234, … },
//!   "gauges":   { "master.busy_frac": 0.013, … },
//!   "histograms": { "pairs.mcs_len": {"count":…,"sum":…,"buckets":[[lo,count],…]}, … }
//! }
//! ```
//!
//! `timers.<phase>.max` is the critical path (slowest rank) — the
//! number a Table 3 row reports; `min`/`mean` expose imbalance.

use crate::json::Json;
use crate::registry::{PhaseAgg, RegistrySnapshot};

/// Version of the report layout. Bump on breaking shape changes;
/// consumers must check it before reading further.
pub const SCHEMA_VERSION: u64 = 1;

fn agg_to_json(agg: &PhaseAgg) -> Json {
    Json::obj([
        ("min", Json::Num(agg.min)),
        ("mean", Json::Num(agg.mean)),
        ("max", Json::Num(agg.max)),
        ("sum", Json::Num(agg.sum)),
        ("count", Json::Num(agg.count as f64)),
        ("p50", Json::Num(agg.p50)),
        ("p90", Json::Num(agg.p90)),
        ("p99", Json::Num(agg.p99)),
    ])
}

/// Render a snapshot (plus metadata entries) as a report document.
pub fn to_json(snapshot: &RegistrySnapshot, meta: Vec<(String, Json)>) -> Json {
    let timers = Json::Obj(
        snapshot
            .phases
            .iter()
            .map(|(name, agg)| (name.clone(), agg_to_json(agg)))
            .collect(),
    );
    let counters = Json::Obj(
        snapshot
            .counters
            .iter()
            .map(|(name, &v)| (name.clone(), Json::Num(v as f64)))
            .collect(),
    );
    let gauges = Json::Obj(
        snapshot
            .gauges
            .iter()
            .map(|(name, &v)| (name.clone(), Json::Num(v)))
            .collect(),
    );
    let histograms = Json::Obj(
        snapshot
            .histograms
            .iter()
            .map(|(name, h)| {
                let buckets = Json::Arr(
                    h.buckets()
                        .into_iter()
                        .map(|(lo, count)| {
                            Json::Arr(vec![Json::Num(lo as f64), Json::Num(count as f64)])
                        })
                        .collect(),
                );
                (
                    name.clone(),
                    Json::obj([
                        ("count", Json::Num(h.count() as f64)),
                        ("sum", Json::Num(h.sum() as f64)),
                        ("buckets", buckets),
                    ]),
                )
            })
            .collect(),
    );
    Json::obj([
        ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
        ("meta", Json::Obj(meta)),
        ("timers", timers),
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
    ])
}

/// Pretty-print a report with one top-level section per line block —
/// still valid JSON, but humane to `less` and diff.
pub fn to_pretty_string(report: &Json) -> String {
    fn indent(out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    fn write(value: &Json, out: &mut String, depth: usize) {
        match value {
            Json::Obj(entries) if !entries.is_empty() && depth < 2 => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    indent(out, depth + 1);
                    out.push_str(&Json::Str(k.clone()).to_string());
                    out.push_str(": ");
                    write(v, out, depth + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
    let mut out = String::new();
    write(report, &mut out, 0);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.add("pairs.generated", 120);
        reg.add("pairs.processed", 100);
        reg.set_gauge("master.busy_frac", 0.015);
        reg.observe_n("pairs.mcs_len", 20, 90);
        reg.observe_n("pairs.mcs_len", 40, 30);
        for rank in 1..4 {
            reg.record_phase("alignment", rank, rank as f64);
        }
        reg
    }

    #[test]
    fn report_is_schema_versioned_and_parseable() {
        let reg = sample_registry();
        let doc = to_json(
            &reg.snapshot(),
            vec![("num_ests".to_string(), Json::Num(500.0))],
        );
        let text = doc.to_string();
        let back = json::parse(&text).unwrap();
        assert_eq!(
            back.get("schema_version").unwrap().as_u64(),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(
            back.get("meta").unwrap().get("num_ests").unwrap().as_u64(),
            Some(500)
        );
        assert_eq!(
            back.get("counters")
                .unwrap()
                .get("pairs.generated")
                .unwrap()
                .as_u64(),
            Some(120)
        );
        let align = back.get("timers").unwrap().get("alignment").unwrap();
        assert_eq!(align.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(align.get("max").unwrap().as_f64(), Some(3.0));
        assert_eq!(align.get("min").unwrap().as_f64(), Some(1.0));
        let hist = back
            .get("histograms")
            .unwrap()
            .get("pairs.mcs_len")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(120));
    }

    #[test]
    fn pretty_output_is_still_valid_json() {
        let reg = sample_registry();
        let doc = to_json(&reg.snapshot(), vec![]);
        let pretty = to_pretty_string(&doc);
        assert!(pretty.lines().count() > 5, "should be multi-line");
        assert_eq!(json::parse(&pretty).unwrap(), doc);
    }
}
