//! Generic read-only sequence views for the DP kernels.
//!
//! Every alignment kernel in this crate is generic over [`SeqView`], so
//! the same monomorphized code runs over plain ASCII slices *and* over
//! the 2-bit packed representation of `pace-seq` ([`PackedSlice`]) with
//! no unpack-to-ASCII copies. The scoring scheme only compares symbols
//! for equality, so any self-consistent encoding produces identical
//! scores — the packed-vs-ASCII equivalence property test pins this down.
//!
//! [`Rev`] adapts any view to read back-to-front in O(1), which lets the
//! anchored kernel extend leftwards from an anchor without materializing
//! reversed prefix copies per pair.

use pace_seq::PackedSlice;

/// Read-only random access to a sequence of symbols.
///
/// Implementations must be cheap to copy (they are taken by value) and
/// `at`/`slice` must be O(1). The symbol type is `u8` but its meaning is
/// representation-defined (ASCII bytes or 2-bit codes) — kernels only
/// ever compare symbols from the *same* representation for equality.
pub trait SeqView: Copy {
    /// Number of symbols.
    fn len(&self) -> usize;

    /// The symbol at position `i` (`i < len()`).
    fn at(&self, i: usize) -> u8;

    /// Sub-view over the half-open range `[start, end)`.
    fn slice(self, start: usize, end: usize) -> Self;

    /// Whether the view is empty.
    #[inline]
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SeqView for &[u8] {
    #[inline]
    fn len(&self) -> usize {
        <[u8]>::len(self)
    }

    #[inline]
    fn at(&self, i: usize) -> u8 {
        self[i]
    }

    #[inline]
    fn slice(self, start: usize, end: usize) -> Self {
        &self[start..end]
    }
}

impl SeqView for PackedSlice<'_> {
    #[inline]
    fn len(&self) -> usize {
        PackedSlice::len(self)
    }

    #[inline]
    fn at(&self, i: usize) -> u8 {
        self.code_at(i)
    }

    #[inline]
    fn slice(self, start: usize, end: usize) -> Self {
        PackedSlice::slice(self, start, end)
    }
}

/// A reversed adapter: `Rev(v).at(i) == v.at(v.len() - 1 - i)`.
///
/// Sub-slicing maps back onto the underlying view, so every operation
/// stays O(1) and allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rev<V: SeqView>(pub V);

impl<V: SeqView> SeqView for Rev<V> {
    #[inline]
    fn len(&self) -> usize {
        self.0.len()
    }

    #[inline]
    fn at(&self, i: usize) -> u8 {
        self.0.at(self.0.len() - 1 - i)
    }

    #[inline]
    fn slice(self, start: usize, end: usize) -> Self {
        let n = self.0.len();
        Rev(self.0.slice(n - end, n - start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_seq::PackedDna;

    fn collect<V: SeqView>(v: V) -> Vec<u8> {
        (0..v.len()).map(|i| v.at(i)).collect()
    }

    #[test]
    fn ascii_view_matches_slice() {
        let s = b"ACGTACGT";
        let v: &[u8] = s;
        assert_eq!(collect(v), s);
        assert_eq!(collect(SeqView::slice(v, 2, 6)), &s[2..6]);
        assert!(SeqView::slice(v, 3, 3).is_empty());
    }

    #[test]
    fn packed_view_yields_codes() {
        let packed = PackedDna::from_ascii(b"ACGT").unwrap();
        assert_eq!(collect(packed.as_slice()), vec![0, 1, 2, 3]);
    }

    #[test]
    fn rev_reads_backwards() {
        let s: &[u8] = b"ACGT";
        assert_eq!(collect(Rev(s)), b"TGCA");
        // Rev of Rev is the identity.
        assert_eq!(collect(Rev(Rev(s))), b"ACGT");
    }

    #[test]
    fn rev_slice_maps_onto_base_view() {
        let s: &[u8] = b"ACGTGG";
        let r = Rev(s); // GGTGCA
        assert_eq!(collect(r), b"GGTGCA");
        assert_eq!(collect(r.slice(1, 4)), b"GTG");
        assert_eq!(collect(r.slice(0, 0)), b"");
        assert_eq!(collect(r.slice(6, 6)), b"");
    }

    #[test]
    fn rev_packed_agrees_with_rev_ascii() {
        let ascii = b"ACGTACGTGGAT";
        let packed = PackedDna::from_ascii(ascii).unwrap();
        let rev_codes = collect(Rev(packed.as_slice()));
        let rev_ascii = collect(Rev(&ascii[..]));
        let decoded: Vec<u8> = rev_ascii
            .iter()
            .map(|&b| pace_seq::Base::from_ascii(b).unwrap().code())
            .collect();
        assert_eq!(rev_codes, decoded);
    }
}
