//! Full-matrix global alignment (Needleman–Wunsch, affine gaps via Gotoh).
//!
//! These are the reference kernels: the baseline clusterer uses them
//! directly (that is exactly the "expensive to run for all pairs" cost the
//! paper is engineered to avoid), and the banded/anchored fast paths are
//! property-tested against them.

use crate::scoring::Scoring;
use crate::view::SeqView;
use crate::workspace::AlignWorkspace;

/// Effectively −∞ for DP cells, far from i32 overflow when added to.
pub(crate) const NEG_INF: i32 = i32::MIN / 4;

/// One column of an explicit alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// Identical bases aligned.
    Match,
    /// Differing bases aligned (substitution).
    Sub,
    /// Base of `a` aligned to a gap in `b` (deletion w.r.t. `b`).
    Del,
    /// Base of `b` aligned to a gap in `a` (insertion w.r.t. `b`).
    Ins,
}

/// A fully traced global alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Total score under the scheme used.
    pub score: i32,
    /// Alignment columns from left to right.
    pub ops: Vec<AlignOp>,
}

impl Alignment {
    /// Number of `Match` columns.
    pub fn matches(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, AlignOp::Match))
            .count()
    }

    /// Number of `Sub` columns.
    pub fn substitutions(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, AlignOp::Sub))
            .count()
    }

    /// Number of gap columns (`Ins` + `Del`).
    pub fn gap_columns(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, AlignOp::Ins | AlignOp::Del))
            .count()
    }

    /// Fraction of columns that are matches, in `[0, 1]`.
    pub fn identity(&self) -> f64 {
        if self.ops.is_empty() {
            1.0
        } else {
            self.matches() as f64 / self.ops.len() as f64
        }
    }
}

/// Global alignment score of `a` vs `b` (no traceback, rolling rows).
///
/// Affine gaps: a run of `k` gap columns costs `gap_open + (k-1)·gap_extend`.
///
/// Convenience wrapper that allocates a fresh workspace; hot paths use
/// [`global_score_with`].
pub fn global_score(a: &[u8], b: &[u8], scoring: &Scoring) -> i32 {
    global_score_with(a, b, scoring, &mut AlignWorkspace::new())
}

/// [`global_score`] over any [`SeqView`], reusing `ws` scratch.
pub fn global_score_with<V: SeqView>(
    a: V,
    b: V,
    scoring: &Scoring,
    ws: &mut AlignWorkspace,
) -> i32 {
    let (la, lb) = (a.len(), b.len());
    // m = ends in pair, x = ends in gap consuming `a`, y = gap consuming `b`.
    ws.reset_rows(lb + 1, NEG_INF);
    let AlignWorkspace {
        m_prev,
        x_prev,
        y_prev,
        m_cur,
        x_cur,
        y_cur,
        ..
    } = ws;
    m_prev[0] = 0;
    for (j, y) in y_prev.iter_mut().enumerate().skip(1) {
        *y = scoring.gap_open + (j as i32 - 1) * scoring.gap_extend;
    }

    for i in 1..=la {
        m_cur[0] = NEG_INF;
        y_cur[0] = NEG_INF;
        x_cur[0] = scoring.gap_open + (i as i32 - 1) * scoring.gap_extend;
        for j in 1..=lb {
            let diag = m_prev[j - 1].max(x_prev[j - 1]).max(y_prev[j - 1]);
            m_cur[j] = diag.saturating_add(scoring.pair(a.at(i - 1), b.at(j - 1)));
            x_cur[j] = (m_prev[j] + scoring.gap_open)
                .max(x_prev[j] + scoring.gap_extend)
                .max(y_prev[j] + scoring.gap_open);
            y_cur[j] = (m_cur[j - 1] + scoring.gap_open)
                .max(y_cur[j - 1] + scoring.gap_extend)
                .max(x_cur[j - 1] + scoring.gap_open);
        }
        std::mem::swap(m_prev, m_cur);
        std::mem::swap(x_prev, x_cur);
        std::mem::swap(y_prev, y_cur);
    }
    m_prev[lb].max(x_prev[lb]).max(y_prev[lb])
}

/// Global alignment with full traceback.
///
/// Keeps the three Gotoh matrices in memory: O(|a|·|b|) space, intended for
/// EST-length inputs (hundreds of bases), tests and examples — the
/// production path is [`crate::anchored`].
pub fn global_align(a: &[u8], b: &[u8], scoring: &Scoring) -> Alignment {
    let (la, lb) = (a.len(), b.len());
    let w = lb + 1;
    let idx = |i: usize, j: usize| i * w + j;

    let mut m = vec![NEG_INF; (la + 1) * w];
    let mut x = vec![NEG_INF; (la + 1) * w];
    let mut y = vec![NEG_INF; (la + 1) * w];
    m[idx(0, 0)] = 0;
    for j in 1..=lb {
        y[idx(0, j)] = scoring.gap_open + (j as i32 - 1) * scoring.gap_extend;
    }
    for i in 1..=la {
        x[idx(i, 0)] = scoring.gap_open + (i as i32 - 1) * scoring.gap_extend;
    }

    for i in 1..=la {
        for j in 1..=lb {
            let diag = m[idx(i - 1, j - 1)]
                .max(x[idx(i - 1, j - 1)])
                .max(y[idx(i - 1, j - 1)]);
            m[idx(i, j)] = diag.saturating_add(scoring.pair(a[i - 1], b[j - 1]));
            x[idx(i, j)] = (m[idx(i - 1, j)] + scoring.gap_open)
                .max(x[idx(i - 1, j)] + scoring.gap_extend)
                .max(y[idx(i - 1, j)] + scoring.gap_open);
            y[idx(i, j)] = (m[idx(i, j - 1)] + scoring.gap_open)
                .max(y[idx(i, j - 1)] + scoring.gap_extend)
                .max(x[idx(i, j - 1)] + scoring.gap_open);
        }
    }

    // Traceback: follow which matrix holds the optimum at each step.
    #[derive(Clone, Copy, PartialEq)]
    enum Mat {
        M,
        X,
        Y,
    }
    let (mut i, mut j) = (la, lb);
    let score = m[idx(i, j)].max(x[idx(i, j)]).max(y[idx(i, j)]);
    let mut state = if score == m[idx(i, j)] {
        Mat::M
    } else if score == x[idx(i, j)] {
        Mat::X
    } else {
        Mat::Y
    };

    let mut ops = Vec::with_capacity(la + lb);
    while i > 0 || j > 0 {
        match state {
            Mat::M => {
                debug_assert!(i > 0 && j > 0);
                ops.push(if a[i - 1] == b[j - 1] {
                    AlignOp::Match
                } else {
                    AlignOp::Sub
                });
                let target = m[idx(i, j)] - scoring.pair(a[i - 1], b[j - 1]);
                i -= 1;
                j -= 1;
                state = if (i == 0 && j == 0 && target == 0) || target == m[idx(i, j)] {
                    Mat::M
                } else if target == x[idx(i, j)] {
                    Mat::X
                } else {
                    Mat::Y
                };
            }
            Mat::X => {
                debug_assert!(i > 0);
                ops.push(AlignOp::Del);
                let cur = x[idx(i, j)];
                i -= 1;
                state = if cur == x[idx(i, j)] + scoring.gap_extend {
                    Mat::X
                } else if cur == m[idx(i, j)] + scoring.gap_open {
                    Mat::M
                } else {
                    Mat::Y
                };
            }
            Mat::Y => {
                debug_assert!(j > 0);
                ops.push(AlignOp::Ins);
                let cur = y[idx(i, j)];
                j -= 1;
                state = if cur == y[idx(i, j)] + scoring.gap_extend {
                    Mat::Y
                } else if cur == m[idx(i, j)] + scoring.gap_open {
                    Mat::M
                } else {
                    Mat::X
                };
            }
        }
    }
    ops.reverse();
    Alignment { score, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit() -> Scoring {
        Scoring::unit()
    }

    #[test]
    fn identical_strings_score_full_matches() {
        let s = unit();
        assert_eq!(global_score(b"ACGT", b"ACGT", &s), 4);
        let aln = global_align(b"ACGT", b"ACGT", &s);
        assert_eq!(aln.score, 4);
        assert_eq!(aln.matches(), 4);
        assert_eq!(aln.identity(), 1.0);
    }

    #[test]
    fn empty_inputs() {
        let s = unit();
        assert_eq!(global_score(b"", b"", &s), 0);
        assert_eq!(global_align(b"", b"", &s).ops.len(), 0);
        // Aligning against empty = one gap run.
        let est = Scoring::default_est();
        assert_eq!(
            global_score(b"ACG", b"", &est),
            est.gap_open + 2 * est.gap_extend
        );
        assert_eq!(global_align(b"", b"AC", &est).gap_columns(), 2);
    }

    #[test]
    fn single_substitution() {
        let s = unit();
        assert_eq!(global_score(b"ACGT", b"AGGT", &s), 2); // 3 matches - 1 sub
        let aln = global_align(b"ACGT", b"AGGT", &s);
        assert_eq!(aln.substitutions(), 1);
        assert_eq!(aln.matches(), 3);
    }

    #[test]
    fn affine_prefers_one_long_gap() {
        // With affine costs, deleting "CC" as one run beats two separate
        // gaps: ACGT vs ACCCGT.
        let s = Scoring::default_est(); // open -4, extend -2
        let aln = global_align(b"ACGT", b"ACCCGT", &s);
        assert_eq!(aln.score, 4 * 2 - 4 - 2); // 4 matches, gap run of 2
        assert_eq!(aln.gap_columns(), 2);
        assert_eq!(aln.matches(), 4);
    }

    #[test]
    fn score_matches_align_score() {
        let s = Scoring::default_est();
        for (a, b) in [
            (&b"GATTACA"[..], &b"GCATGCT"[..]),
            (b"AAAA", b"TTTT"),
            (b"ACGTACGT", b"ACG"),
            (b"A", b"ACGTACGTACGT"),
        ] {
            assert_eq!(global_score(a, b, &s), global_align(a, b, &s).score);
        }
    }

    #[test]
    fn traceback_ops_reconstruct_inputs() {
        let s = Scoring::default_est();
        let (a, b) = (&b"GATTACA"[..], &b"GATCACA"[..]);
        let aln = global_align(a, b, &s);
        let mut ra = Vec::new();
        let mut rb = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        for op in &aln.ops {
            match op {
                AlignOp::Match | AlignOp::Sub => {
                    ra.push(a[i]);
                    rb.push(b[j]);
                    i += 1;
                    j += 1;
                }
                AlignOp::Del => {
                    ra.push(a[i]);
                    i += 1;
                }
                AlignOp::Ins => {
                    rb.push(b[j]);
                    j += 1;
                }
            }
        }
        assert_eq!(ra, a);
        assert_eq!(rb, b);
    }

    fn dna(max: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(
            proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
            0..max,
        )
    }

    /// Independent O(n·m) reference with linear gaps for cross-checking.
    fn naive_linear(a: &[u8], b: &[u8], s: &Scoring) -> i32 {
        let gap = s.gap_open; // linear: open == extend
        let mut prev: Vec<i32> = (0..=b.len() as i32).map(|j| j * gap).collect();
        for i in 1..=a.len() {
            let mut cur = vec![0; b.len() + 1];
            cur[0] = i as i32 * gap;
            for j in 1..=b.len() {
                cur[j] = (prev[j - 1] + s.pair(a[i - 1], b[j - 1]))
                    .max(prev[j] + gap)
                    .max(cur[j - 1] + gap);
            }
            prev = cur;
        }
        prev[b.len()]
    }

    proptest! {
        /// With linear gap costs the Gotoh recurrence must equal plain NW.
        #[test]
        fn gotoh_equals_nw_for_linear_gaps(a in dna(40), b in dna(40)) {
            let s = Scoring::linear(2, -3, -2);
            prop_assert_eq!(global_score(&a, &b, &s), naive_linear(&a, &b, &s));
        }

        /// Score function is symmetric in its arguments.
        #[test]
        fn score_is_symmetric(a in dna(30), b in dna(30)) {
            let s = Scoring::default_est();
            prop_assert_eq!(global_score(&a, &b, &s), global_score(&b, &a, &s));
        }

        /// Traceback score always equals the score-only kernel.
        #[test]
        fn traceback_score_consistent(a in dna(30), b in dna(30)) {
            let s = Scoring::default_est();
            let aln = global_align(&a, &b, &s);
            prop_assert_eq!(aln.score, global_score(&a, &b, &s));
            // Recompute the score from the ops.
            let mut score = 0i32;
            let mut prev_gap: Option<AlignOp> = None;
            let (mut i, mut j) = (0usize, 0usize);
            for &op in &aln.ops {
                match op {
                    AlignOp::Match | AlignOp::Sub => {
                        score += s.pair(a[i], b[j]);
                        i += 1; j += 1;
                        prev_gap = None;
                    }
                    AlignOp::Del | AlignOp::Ins => {
                        score += if prev_gap == Some(op) { s.gap_extend } else { s.gap_open };
                        if op == AlignOp::Del { i += 1 } else { j += 1 };
                        prev_gap = Some(op);
                    }
                }
            }
            prop_assert_eq!(score, aln.score);
        }

        /// Self-alignment is all matches with the ideal score.
        #[test]
        fn self_alignment_is_ideal(a in dna(50)) {
            let s = Scoring::default_est();
            let aln = global_align(&a, &a, &s);
            prop_assert_eq!(aln.score, s.ideal(a.len()));
            prop_assert_eq!(aln.matches(), a.len());
        }
    }
}
