//! Myers bit-parallel banded alignment kernel.
//!
//! The scalar banded kernel ([`crate::banded`]) touches `O(L·radius)`
//! cells and spends a handful of instructions on each. Myers' bit-vector
//! technique (Myers 1999, with Hyyrö's block recurrence) collapses an
//! entire anti-diagonal band row into two machine words: instead of
//! storing cell *values*, it stores the ±1 *differences* between adjacent
//! cells as bitmasks (`pv` for +1, `mv` for −1) and advances a whole row
//! with ~15 bit operations, independent of the band width.
//!
//! This implementation runs the band diagonally: row `i`'s window covers
//! columns `j ∈ [i − radius, i + radius]` (band offset `o = j − i +
//! radius`, width `w = 2·radius + 1 ≤ 63` bits). Advancing from row `i`
//! to `i + 1` shifts the window one column right, which in delta-space is
//! a 1-bit right shift of `pv`/`mv` before the standard Hyyrö update:
//!
//! * the cell entering on the right (column `i + radius + 1` of row `i`)
//!   is outside the band; giving it a `+1` delta makes it the value of
//!   its left neighbour plus one, which can never win the minimization;
//! * the carry-in is always `+1`: the cell left of the window in row
//!   `i + 1` is also out-of-band and is one worse than the cell above it;
//! * the scalar `c0` tracks the window's leftmost value and follows the
//!   output's bit-0 delta.
//!
//! Cell values are recovered in O(1) by prefix popcounts over `pv`/`mv`.
//!
//! Bit-parallelism computes unit-cost edit *distance*, not an arbitrary
//! Gotoh *score* — the kernel therefore only engages for scoring schemes
//! where the two are exact affine transforms of one another
//! ([`Scoring::edit_unit_cost`]); for those it is **score-identical** to
//! the scalar banded kernel on every input, a property the
//! `myers_equivalence` test suite pins down. The per-symbol match masks
//! (`PEq`) are built from [`SeqView`] symbols, so the kernel runs over
//! plain ASCII and the 2-bit packed representation alike, straight from
//! `PackedSlice` codes.

use crate::anchored::{Anchor, AnchoredAlignment};
use crate::banded::ExtensionResult;
use crate::nw::NEG_INF;
use crate::overlap::classify_overlap;
use crate::scoring::Scoring;
use crate::view::SeqView;
use crate::workspace::AlignWorkspace;

/// Largest band half-width the single-word kernel supports: the band
/// width `2·radius + 1` must fit in 63 bits (one spare bit keeps every
/// shift in range). Larger radii fall back to the scalar kernel.
pub const MYERS_MAX_RADIUS: usize = 31;

/// One band row of the bit-parallel DP: delta bitmasks plus the scalar
/// value of the window's leftmost cell.
struct Band {
    /// Band width in bits, `2·radius + 1`.
    w: u32,
    /// Low `w` bits set.
    mask: u64,
    /// Bit `o` set ⇒ `cell(o) − cell(o−1) == +1`.
    pv: u64,
    /// Bit `o` set ⇒ `cell(o) − cell(o−1) == −1`.
    mv: u64,
    /// Value of the cell at band offset 0 (column `i − radius`,
    /// virtual when that column is negative).
    c0: i32,
}

impl Band {
    /// Row 0: the cell at offset `o` is column `o − radius`, whose
    /// edit-distance value is `|o − radius|` (virtual columns left of 0
    /// mirror the real boundary).
    fn init(radius: usize) -> Band {
        let w = (2 * radius + 1) as u32;
        let mask = (1u64 << w) - 1;
        let low = (1u64 << (radius + 1)) - 1; // bits 0..=radius
        Band {
            w,
            mask,
            pv: mask & !low,
            mv: low,
            c0: radius as i32,
        }
    }

    /// Value of the cell at band offset `o` (`o < w`): prefix popcount
    /// of the deltas over bits `1..=o` on top of `c0`.
    #[inline]
    fn value_at(&self, o: u32) -> i32 {
        debug_assert!(o < self.w);
        let m = ((1u64 << o) - 1) << 1;
        self.c0 + (self.pv & m).count_ones() as i32 - (self.mv & m).count_ones() as i32
    }

    /// Advance one row: shift the window right, then run the Hyyrö block
    /// update with carry-in +1. `eq` bit `p` must hold the match of the
    /// consumed `a` symbol against `b[i + p − radius]` (0 out of range).
    #[inline]
    fn advance(&mut self, eq: u64) {
        // Window shift: delta between old offsets o+1 and o becomes the
        // input delta at bit o; the virtual cell entering at the top bit
        // is one worse than its neighbour (+1).
        let pv = (self.pv >> 1) | (1u64 << (self.w - 1));
        let mv = self.mv >> 1;
        // Hyyrö's AdvanceBlock with hin = +1. Carries in the addition
        // only propagate low→high, so garbage above bit w−1 never
        // corrupts the band bits.
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let ph = mv | !(xh | pv);
        let mh = pv & xh;
        let ph = (ph << 1) | 1; // hin = +1 enters at bit 0
        let mh = mh << 1;
        self.pv = (mh | !(xv | ph)) & self.mask;
        self.mv = (ph & xv) & self.mask;
        // The left band edge moves diagonally down-right: one worse than
        // the previous row's edge, corrected by the output bit-0 delta.
        self.c0 += 1;
        if self.mv & 1 != 0 {
            self.c0 -= 1;
        } else if self.pv & 1 != 0 {
            self.c0 += 1;
        }
    }
}

/// Build the per-symbol match masks for `b` in the workspace scratch and
/// return the per-symbol word stride. Bit `j` of symbol `s`'s mask is set
/// iff `b.at(j) == s`; one zero padding word lets the window extraction
/// read one word past the end unconditionally.
fn build_peq<V: SeqView>(b: V, ws: &mut AlignWorkspace) -> usize {
    let lb = b.len();
    let words = lb / 64 + 2;
    ws.reset_myers();
    for j in 0..lb {
        let sym = b.at(j) as usize;
        let mut slot = ws.myers_slots[sym] as usize;
        if slot == u16::MAX as usize {
            slot = ws.myers_peq.len() / words;
            ws.myers_slots[sym] = slot as u16;
            ws.myers_peq.resize(ws.myers_peq.len() + words, 0);
        }
        ws.myers_peq[slot * words + j / 64] |= 1u64 << (j % 64);
    }
    words
}

/// Extract the `eq` window for the row consuming symbol `sym`: bit `p`
/// holds the `peq` bit for `b` position `s + p` (0 when out of range).
#[inline]
fn eq_window(ws: &AlignWorkspace, words: usize, lb: usize, sym: u8, s: isize) -> u64 {
    let slot = ws.myers_slots[sym as usize] as usize;
    if slot == u16::MAX as usize {
        return 0;
    }
    let peq = &ws.myers_peq[slot * words..(slot + 1) * words];
    if s >= 0 {
        let s = s as usize;
        if s >= lb {
            return 0;
        }
        let (word, bit) = (s / 64, (s % 64) as u32);
        let mut x = peq[word] >> bit;
        if bit != 0 {
            x |= peq[word + 1] << (64 - bit);
        }
        x
    } else {
        // Window starts left of b: only bits p ≥ −s are real. −s ≤
        // radius < 64 and the band width is < 64 bits, so one word holds
        // every real bit.
        peq[0] << (-s) as u32
    }
}

/// Banded unit-cost edit distance via the bit-parallel kernel: the
/// minimum number of edits over alignment paths confined to
/// `|i − j| ≤ radius`. Returns `None` when the band cannot connect the
/// corners (`|a.len() − b.len()| > radius`) or exceeds
/// [`MYERS_MAX_RADIUS`]. With `radius ≥ max(len)` (and ≤ the cap) this
/// is the classic Levenshtein distance.
pub fn myers_banded_distance(a: &[u8], b: &[u8], radius: usize) -> Option<usize> {
    myers_banded_distance_with(a, b, radius, &mut AlignWorkspace::new())
}

/// [`myers_banded_distance`] over any [`SeqView`], reusing `ws` scratch.
pub fn myers_banded_distance_with<V: SeqView>(
    a: V,
    b: V,
    radius: usize,
    ws: &mut AlignWorkspace,
) -> Option<usize> {
    if radius > MYERS_MAX_RADIUS {
        return None;
    }
    let (la, lb) = (a.len(), b.len());
    if la.abs_diff(lb) > radius {
        return None;
    }
    if la == 0 || lb == 0 {
        return Some(la.max(lb));
    }
    let words = build_peq(b, ws);
    let mut band = Band::init(radius);
    for i in 0..la {
        let eq = eq_window(ws, words, lb, a.at(i), i as isize - radius as isize);
        band.advance(eq);
    }
    // |la − lb| ≤ radius puts cell (la, lb) inside the final window.
    Some(band.value_at((lb + radius - la) as u32) as usize)
}

/// Tie-break identical to the scalar kernel's: highest score, then most
/// total bases consumed, then most bases of `a`.
#[inline]
fn consider(best: &mut ExtensionResult, score: i32, i: usize, j: usize) {
    let better = score > best.score
        || (score == best.score
            && (i + j > best.a_consumed + best.b_consumed
                || (i + j == best.a_consumed + best.b_consumed && i > best.a_consumed)));
    if better {
        *best = ExtensionResult {
            score,
            a_consumed: i,
            b_consumed: j,
        };
    }
}

/// Bit-parallel twin of [`crate::banded::banded_extension`]: same
/// semantics, same tie-breaking, same scores — provided the scoring
/// scheme is edit-convertible. Returns `None` (caller falls back to the
/// scalar kernel) when [`Scoring::edit_unit_cost`] is `None` or the
/// radius exceeds [`MYERS_MAX_RADIUS`].
pub fn myers_banded_extension(
    a: &[u8],
    b: &[u8],
    scoring: &Scoring,
    radius: usize,
) -> Option<ExtensionResult> {
    myers_banded_extension_with(a, b, scoring, radius, &mut AlignWorkspace::new())
}

/// [`myers_banded_extension`] over any [`SeqView`], reusing `ws` scratch.
pub fn myers_banded_extension_with<V: SeqView>(
    a: V,
    b: V,
    scoring: &Scoring,
    radius: usize,
    ws: &mut AlignWorkspace,
) -> Option<ExtensionResult> {
    let c = scoring.edit_unit_cost()?;
    if radius > MYERS_MAX_RADIUS {
        return None;
    }
    let (la, lb) = (a.len(), b.len());
    if la == 0 || lb == 0 {
        // Same short-circuit as the scalar kernel: nothing to extend.
        return Some(ExtensionResult {
            score: 0,
            a_consumed: 0,
            b_consumed: 0,
        });
    }
    let words = build_peq(b, ws);
    let mut band = Band::init(radius);
    let m = scoring.match_score;
    // score(i, j) = (m·(i + j) − 2·c·dist) / 2, exact for every cell a
    // band path reaches (the numerator is even there by construction).
    let convert = |i: usize, j: usize, dist: i32| -> i32 {
        let num = m as i64 * (i + j) as i64 - 2 * c as i64 * dist as i64;
        debug_assert_eq!(num & 1, 0, "non-integral converted score");
        (num >> 1) as i32
    };

    let mut best = ExtensionResult {
        score: NEG_INF,
        a_consumed: 0,
        b_consumed: 0,
    };
    // Far edge of b (j == lb): visit each row's window as it streams by.
    for i in 0..=la {
        if i > 0 {
            let i0 = i - 1;
            let eq = eq_window(ws, words, lb, a.at(i0), i0 as isize - radius as isize);
            band.advance(eq);
        }
        if lb <= i + radius && i <= lb + radius {
            let dist = band.value_at((lb + radius - i) as u32);
            consider(&mut best, convert(i, lb, dist), i, lb);
        }
    }
    // Far edge of a (i == la): the final window covers the whole row.
    let lo = la.saturating_sub(radius);
    let hi = (la + radius).min(lb);
    for j in lo..=hi {
        let dist = band.value_at((j + radius - la) as u32);
        consider(&mut best, convert(la, j, dist), la, j);
    }
    if best.score <= NEG_INF {
        best = ExtensionResult {
            score: 0,
            a_consumed: 0,
            b_consumed: 0,
        };
    }
    Some(best)
}

/// Bit-parallel twin of [`crate::anchored::align_anchored_with`]: extends
/// the anchor both ways with [`myers_banded_extension_with`] and
/// classifies the overlap exactly like the scalar path. Returns `None`
/// when the kernel is ineligible (non-convertible scoring or radius
/// above [`MYERS_MAX_RADIUS`]) so callers can fall back.
pub fn align_anchored_myers_with<V: SeqView>(
    a: V,
    b: V,
    anchor: Anchor,
    scoring: &Scoring,
    radius: usize,
    ws: &mut AlignWorkspace,
) -> Option<AnchoredAlignment> {
    debug_assert!(anchor.verify_on(a, b), "anchor does not match sequences");
    if scoring.edit_unit_cost().is_none() || radius > MYERS_MAX_RADIUS {
        return None;
    }

    // Left: extend the reversed prefixes (see align_anchored_with).
    let (mut rev_a, mut rev_b) = ws.take_rev();
    rev_a.extend((0..anchor.a_pos).rev().map(|i| a.at(i)));
    rev_b.extend((0..anchor.b_pos).rev().map(|i| b.at(i)));
    let left = myers_banded_extension_with(&rev_a[..], &rev_b[..], scoring, radius, ws);
    ws.put_rev(rev_a, rev_b);
    let left = left?;

    // Right: extend the suffixes after the match.
    let a_right = a.slice(anchor.a_pos + anchor.len, a.len());
    let b_right = b.slice(anchor.b_pos + anchor.len, b.len());
    let right = myers_banded_extension_with(a_right, b_right, scoring, radius, ws)?;

    let a_start = anchor.a_pos - left.a_consumed;
    let b_start = anchor.b_pos - left.b_consumed;
    let a_end = anchor.a_pos + anchor.len + right.a_consumed;
    let b_end = anchor.b_pos + anchor.len + right.b_consumed;
    let score = left.score + scoring.ideal(anchor.len) + right.score;
    let kind = classify_overlap(a.len(), b.len(), a_start..a_end, b_start..b_end);

    Some(AnchoredAlignment {
        score,
        a_start,
        a_end,
        b_start,
        b_end,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banded::{banded_extension, banded_global_score};

    /// Brute-force banded edit distance for reference.
    fn scalar_banded_distance(a: &[u8], b: &[u8], radius: usize) -> Option<usize> {
        let (la, lb) = (a.len(), b.len());
        if la.abs_diff(lb) > radius {
            return None;
        }
        const BIG: usize = usize::MAX / 4;
        let mut prev = vec![BIG; lb + 1];
        let mut cur = vec![BIG; lb + 1];
        for (j, v) in prev.iter_mut().enumerate().take(radius + 1) {
            *v = j;
        }
        for i in 1..=la {
            cur.fill(BIG);
            let lo = i.saturating_sub(radius);
            let hi = (i + radius).min(lb);
            for j in lo..=hi {
                let mut v = BIG;
                if j == 0 {
                    v = i;
                } else {
                    let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
                    v = v.min(sub);
                    if prev[j] < BIG {
                        v = v.min(prev[j] + 1);
                    }
                    if cur[j - 1] < BIG {
                        v = v.min(cur[j - 1] + 1);
                    }
                }
                cur[j] = v;
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        Some(prev[lb])
    }

    #[test]
    fn distance_basics() {
        assert_eq!(myers_banded_distance(b"", b"", 0), Some(0));
        assert_eq!(myers_banded_distance(b"A", b"A", 1), Some(0));
        assert_eq!(myers_banded_distance(b"A", b"C", 1), Some(1));
        assert_eq!(myers_banded_distance(b"ACGT", b"ACGT", 2), Some(0));
        assert_eq!(myers_banded_distance(b"ACGT", b"AGGT", 2), Some(1));
        assert_eq!(myers_banded_distance(b"ACGT", b"ACGGT", 2), Some(1));
        assert_eq!(myers_banded_distance(b"ACGT", b"AC", 1), None);
        assert_eq!(myers_banded_distance(b"GATTACA", b"", 7), Some(7));
        assert_eq!(myers_banded_distance(b"ACGT", b"ACGT", 32), None);
    }

    #[test]
    fn distance_matches_scalar_banded() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"GATTACA", b"GATCACA"),
            (b"ACGTACGTAACC", b"ACGACGTTAACC"),
            (b"AAAA", b"TTTT"),
            (b"ACGT", b"TGCA"),
            (b"ACACACACAC", b"CACACACACA"),
        ];
        for &(a, b) in cases {
            for radius in 0..8 {
                assert_eq!(
                    myers_banded_distance(a, b, radius),
                    scalar_banded_distance(a, b, radius),
                    "a={:?} b={:?} r={radius}",
                    std::str::from_utf8(a),
                    std::str::from_utf8(b),
                );
            }
        }
    }

    #[test]
    fn distance_converts_to_banded_global_score() {
        // With the canonical convertible scheme, score = (la+lb) − 2·dist.
        let s = Scoring::edit_linear();
        let (a, b) = (&b"ACGTACGTAACC"[..], &b"ACGACGTTAACC"[..]);
        for radius in 0..12 {
            let dist = myers_banded_distance(a, b, radius);
            let score = banded_global_score(a, b, &s, radius);
            match (dist, score) {
                (Some(d), Some(v)) => {
                    assert_eq!(v, (a.len() + b.len()) as i32 - 2 * d as i32, "r={radius}")
                }
                (None, None) => {}
                other => panic!("eligibility mismatch at r={radius}: {other:?}"),
            }
        }
    }

    #[test]
    fn extension_matches_scalar_on_presets() {
        let s = Scoring::edit_linear();
        let cases: &[(&[u8], &[u8])] = &[
            (b"ACGT", b"ACGTTTTT"),
            (b"ACGTACGT", b"ACGAACGT"),
            (b"ACGTACGT", b"ACGTTACGT"),
            (b"ACGTACGT", b"ACG"),
            (b"", b"ACGT"),
            (b"ACGT", b""),
        ];
        for &(a, b) in cases {
            for radius in 0..6 {
                let fast = myers_banded_extension(a, b, &s, radius).unwrap();
                let slow = banded_extension(a, b, &s, radius);
                assert_eq!(
                    fast,
                    slow,
                    "a={:?} b={:?} r={radius}",
                    std::str::from_utf8(a),
                    std::str::from_utf8(b),
                );
            }
        }
    }

    #[test]
    fn ineligible_inputs_fall_back() {
        assert_eq!(
            myers_banded_extension(b"ACGT", b"ACGT", &Scoring::default_est(), 2),
            None
        );
        assert_eq!(
            myers_banded_extension(b"ACGT", b"ACGT", &Scoring::unit(), 2),
            None
        );
        assert_eq!(
            myers_banded_extension(b"ACGT", b"ACGT", &Scoring::edit_linear(), 32),
            None
        );
    }

    #[test]
    fn max_radius_band_still_fits_one_word() {
        // radius 31 → width 63 bits: the widest supported band.
        let a = vec![b'A'; 200];
        let mut b = a.clone();
        b[100] = b'C';
        assert_eq!(myers_banded_distance(&a, &b, 31), Some(1));
        assert_eq!(
            myers_banded_distance(&a, &b[..170], 31),
            scalar_banded_distance(&a, &b[..170], 31)
        );
    }

    #[test]
    fn anchored_myers_matches_scalar() {
        use crate::anchored::align_anchored_with;
        let s = Scoring::edit_linear();
        let a = &b"AAAACCCCGGGG"[..];
        let b = &b"CCCCGGGGTTTT"[..];
        let anchor = Anchor {
            a_pos: 4,
            b_pos: 0,
            len: 8,
        };
        let mut ws = AlignWorkspace::new();
        for radius in 0..5 {
            let fast = align_anchored_myers_with(a, b, anchor, &s, radius, &mut ws).unwrap();
            let slow = align_anchored_with(a, b, anchor, &s, radius, &mut ws);
            assert_eq!(fast, slow, "r={radius}");
        }
    }
}
