//! Overlap pattern classification and the accept decision.
//!
//! Figure 5b of the paper shows the four alignment patterns accepted as
//! evidence to merge clusters: the two suffix–prefix overlaps (one string's
//! tail aligns the other's head) and the two containments. An alignment of
//! any other shape — e.g. a strong match strictly internal to both
//! sequences — is *not* merge evidence for ESTs, because reads from the
//! same transcript must be collinear fragments of it.

use crate::scoring::Scoring;
use std::ops::Range;

/// The four accepted overlap patterns (Figure 5b), from the perspective of
/// the pair `(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverlapKind {
    /// A suffix of `a` aligns a prefix of `b` (`a` extends left of `b`).
    SuffixAPrefixB,
    /// A prefix of `a` aligns a suffix of `b` (`b` extends left of `a`).
    PrefixASuffixB,
    /// `b` is contained within `a`.
    ContainsB,
    /// `a` is contained within `b`.
    ContainedInB,
    /// The overlap region does not reach the required sequence ends; not
    /// merge evidence.
    None,
}

impl OverlapKind {
    /// Whether this pattern is one of the four accepted by the paper.
    pub fn is_accepted_pattern(self) -> bool {
        !matches!(self, OverlapKind::None)
    }
}

/// Classify an overlap given the aligned regions of both sequences.
///
/// `a_region`/`b_region` are the half-open ranges of each sequence covered
/// by the alignment; `a_len`/`b_len` the full sequence lengths. Containment
/// takes priority over the dovetail patterns (a containment also touches
/// three ends, but is the stronger statement).
pub fn classify_overlap(
    a_len: usize,
    b_len: usize,
    a_region: Range<usize>,
    b_region: Range<usize>,
) -> OverlapKind {
    let a_head = a_region.start == 0;
    let a_tail = a_region.end == a_len;
    let b_head = b_region.start == 0;
    let b_tail = b_region.end == b_len;

    if a_head && a_tail {
        OverlapKind::ContainedInB
    } else if b_head && b_tail {
        OverlapKind::ContainsB
    } else if a_tail && b_head {
        OverlapKind::SuffixAPrefixB
    } else if a_head && b_tail {
        OverlapKind::PrefixASuffixB
    } else {
        OverlapKind::None
    }
}

/// Thresholds controlling which alignments count as merge evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapParams {
    /// Minimum ratio of achieved score to the ideal (all-match) score of
    /// the overlap region, in `[0, 1]`. The paper's "ratio of score
    /// obtained to the ideal score consisting of all matches".
    pub min_score_ratio: f64,
    /// Minimum overlap length in bases; very short overlaps are noise.
    pub min_overlap_len: usize,
}

impl Default for OverlapParams {
    fn default() -> Self {
        OverlapParams {
            // Chosen like the paper: the threshold "experimentally found to
            // result in the least number of false positives and negatives".
            min_score_ratio: 0.80,
            min_overlap_len: 40,
        }
    }
}

/// The verdict on one candidate overlap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptDecision {
    /// The pattern the alignment formed.
    pub kind: OverlapKind,
    /// Achieved alignment score.
    pub score: i32,
    /// Ideal score of the overlap region.
    pub ideal: i32,
    /// `score / ideal`, clamped to 0 when ideal is 0.
    pub ratio: f64,
    /// Whether this alignment is evidence to merge the two clusters.
    pub accepted: bool,
}

/// Apply the accept criterion to an overlap candidate.
pub fn decide(
    kind: OverlapKind,
    score: i32,
    overlap_len: usize,
    scoring: &Scoring,
    params: &OverlapParams,
) -> AcceptDecision {
    let ideal = scoring.ideal(overlap_len);
    let ratio = if ideal > 0 {
        (score as f64 / ideal as f64).max(0.0)
    } else {
        0.0
    };
    let accepted = kind.is_accepted_pattern()
        && overlap_len >= params.min_overlap_len
        && ratio >= params.min_score_ratio;
    AcceptDecision {
        kind,
        score,
        ideal,
        ratio,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_the_four_patterns() {
        // a: 0..10, b: 0..10
        assert_eq!(
            classify_overlap(10, 10, 4..10, 0..6),
            OverlapKind::SuffixAPrefixB
        );
        assert_eq!(
            classify_overlap(10, 10, 0..6, 4..10),
            OverlapKind::PrefixASuffixB
        );
        assert_eq!(classify_overlap(20, 8, 5..13, 0..8), OverlapKind::ContainsB);
        assert_eq!(
            classify_overlap(8, 20, 0..8, 5..13),
            OverlapKind::ContainedInB
        );
    }

    #[test]
    fn internal_overlap_is_rejected() {
        assert_eq!(classify_overlap(20, 20, 5..15, 5..15), OverlapKind::None);
        assert!(!OverlapKind::None.is_accepted_pattern());
    }

    #[test]
    fn full_mutual_overlap_is_containment() {
        // Identical sequences: both regions span fully; ContainedInB wins
        // by the documented priority order.
        assert_eq!(
            classify_overlap(10, 10, 0..10, 0..10),
            OverlapKind::ContainedInB
        );
    }

    #[test]
    fn one_sided_touch_is_not_enough() {
        // Touches a's tail but lands strictly inside b: rejected.
        assert_eq!(classify_overlap(10, 30, 4..10, 5..11), OverlapKind::None);
        // Touches b's head but starts strictly inside a... also tail of a
        // must be involved; starting inside a and inside b tail-less fails.
        assert_eq!(classify_overlap(10, 30, 2..9, 0..7), OverlapKind::None);
    }

    #[test]
    fn decide_accepts_good_dovetail() {
        let s = Scoring::default_est();
        let p = OverlapParams::default();
        // 100-base overlap, 95 matches + 5 mismatches.
        let score = 95 * s.match_score + 5 * s.mismatch;
        let d = decide(OverlapKind::SuffixAPrefixB, score, 100, &s, &p);
        assert!(d.accepted);
        assert!((d.ratio - 0.875).abs() < 1e-9);
        assert_eq!(d.ideal, s.ideal(100));
    }

    #[test]
    fn decide_rejects_short_overlap() {
        let s = Scoring::default_est();
        let p = OverlapParams::default();
        let d = decide(OverlapKind::SuffixAPrefixB, s.ideal(10), 10, &s, &p);
        assert!(!d.accepted, "10 bases < min_overlap_len");
        assert!((d.ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decide_rejects_low_identity() {
        let s = Scoring::default_est();
        let p = OverlapParams::default();
        // Half mismatches: ratio far below threshold.
        let score = 50 * s.match_score + 50 * s.mismatch;
        let d = decide(OverlapKind::ContainsB, score, 100, &s, &p);
        assert!(!d.accepted);
    }

    #[test]
    fn decide_rejects_non_pattern() {
        let s = Scoring::default_est();
        let p = OverlapParams::default();
        let d = decide(OverlapKind::None, s.ideal(200), 200, &s, &p);
        assert!(!d.accepted, "perfect score cannot rescue a non-pattern");
    }

    #[test]
    fn decide_zero_length_overlap() {
        let s = Scoring::default_est();
        let p = OverlapParams::default();
        let d = decide(OverlapKind::SuffixAPrefixB, 0, 0, &s, &p);
        assert!(!d.accepted);
        assert_eq!(d.ratio, 0.0);
    }

    #[test]
    fn negative_score_clamps_ratio() {
        let s = Scoring::default_est();
        let p = OverlapParams::default();
        let d = decide(OverlapKind::SuffixAPrefixB, -50, 100, &s, &p);
        assert_eq!(d.ratio, 0.0);
        assert!(!d.accepted);
    }
}
