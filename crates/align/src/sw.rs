//! Local alignment score (Smith–Waterman, affine gaps).
//!
//! Used by the quality tooling and tests as an upper bound: any overlap
//! alignment score is at most the best local alignment score.

use crate::nw::NEG_INF;
use crate::scoring::Scoring;
use crate::view::SeqView;
use crate::workspace::AlignWorkspace;

/// Best local alignment score between `a` and `b` (never negative).
///
/// Convenience wrapper that allocates a fresh workspace; hot paths use
/// [`local_score_with`].
pub fn local_score(a: &[u8], b: &[u8], scoring: &Scoring) -> i32 {
    local_score_with(a, b, scoring, &mut AlignWorkspace::new())
}

/// [`local_score`] over any [`SeqView`], reusing `ws` scratch.
pub fn local_score_with<V: SeqView>(a: V, b: V, scoring: &Scoring, ws: &mut AlignWorkspace) -> i32 {
    let lb = b.len();
    ws.reset_rows(lb + 1, NEG_INF);
    let AlignWorkspace {
        m_prev,
        x_prev,
        y_prev,
        m_cur,
        x_cur,
        y_cur,
        ..
    } = ws;
    for m in m_prev.iter_mut() {
        *m = 0;
    }
    let mut best = 0i32;

    for i in 1..=a.len() {
        m_cur[0] = 0;
        x_cur[0] = NEG_INF;
        y_cur[0] = NEG_INF;
        for j in 1..=lb {
            let diag = m_prev[j - 1].max(x_prev[j - 1]).max(y_prev[j - 1]).max(0);
            m_cur[j] = diag + scoring.pair(a.at(i - 1), b.at(j - 1));
            x_cur[j] = (m_prev[j] + scoring.gap_open).max(x_prev[j] + scoring.gap_extend);
            y_cur[j] = (m_cur[j - 1] + scoring.gap_open).max(y_cur[j - 1] + scoring.gap_extend);
            best = best.max(m_cur[j]).max(x_cur[j]).max(y_cur[j]);
        }
        std::mem::swap(m_prev, m_cur);
        std::mem::swap(x_prev, x_cur);
        std::mem::swap(y_prev, y_cur);
    }
    best
}

/// Length of the longest exact common substring of `a` and `b`.
///
/// O(|a|·|b|) reference used in tests to validate the suffix-tree pair
/// generator's "maximal common substring" bookkeeping on small inputs.
pub fn longest_common_substring(a: &[u8], b: &[u8]) -> usize {
    let mut prev = vec![0usize; b.len() + 1];
    let mut best = 0;
    for i in 1..=a.len() {
        let mut cur = vec![0usize; b.len() + 1];
        for j in 1..=b.len() {
            if a[i - 1] == b[j - 1] {
                cur[j] = prev[j - 1] + 1;
                best = best.max(cur[j]);
            }
        }
        prev = cur;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn local_finds_embedded_match() {
        let s = Scoring::unit();
        // "ACGT" is embedded in both despite hostile flanks.
        assert_eq!(local_score(b"TTTTACGTTTTT", b"GGGGACGTGGGG", &s), 4);
    }

    #[test]
    fn local_never_negative() {
        let s = Scoring::unit();
        assert_eq!(local_score(b"AAAA", b"TTTT", &s), 0);
        assert_eq!(local_score(b"", b"ACGT", &s), 0);
        assert_eq!(local_score(b"", b"", &s), 0);
    }

    #[test]
    fn lcs_basic() {
        assert_eq!(longest_common_substring(b"ACGT", b"ACGT"), 4);
        assert_eq!(longest_common_substring(b"AACGTT", b"GGACGG"), 3); // "ACG"
        assert_eq!(longest_common_substring(b"AAAA", b"TTTT"), 0);
        assert_eq!(longest_common_substring(b"", b"ACGT"), 0);
    }

    fn dna(max: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(
            proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
            0..max,
        )
    }

    proptest! {
        /// Local score dominates global score and is never negative.
        #[test]
        fn local_dominates_global(a in dna(30), b in dna(30)) {
            let s = Scoring::default_est();
            let local = local_score(&a, &b, &s);
            prop_assert!(local >= 0);
            // Local dominates global: any global path restricted to its
            // best-scoring sub-path is a valid local alignment.
            let global = crate::nw::global_score(&a, &b, &s);
            prop_assert!(local >= global);
        }

        /// LCS length is symmetric and bounded by both lengths; a shared
        /// planted substring is always found.
        #[test]
        fn lcs_properties(a in dna(25), b in dna(25), planted in dna(10)) {
            prop_assert_eq!(
                longest_common_substring(&a, &b),
                longest_common_substring(&b, &a)
            );
            let mut ax = a.clone(); ax.extend_from_slice(&planted);
            let mut bx = planted.clone(); bx.extend_from_slice(&b);
            prop_assert!(longest_common_substring(&ax, &bx) >= planted.len());
            prop_assert!(longest_common_substring(&a, &b) <= a.len().min(b.len()));
        }

        /// The local score of a string against itself is the ideal score.
        #[test]
        fn local_self_is_ideal(a in dna(30)) {
            let s = Scoring::default_est();
            prop_assert_eq!(local_score(&a, &a, &s), s.ideal(a.len()));
        }
    }
}
