//! Pairwise sequence alignment for EST overlap detection.
//!
//! The clustering engine never aligns whole strings blindly. As the paper
//! describes (Figure 5a), a promising pair arrives with an already-known
//! *maximal common substring* match; [`anchored`] merely **extends that
//! match at both ends** with gaps and mismatches, using **banded** dynamic
//! programming ([`banded`]) so the work is proportional to the overlap
//! length times the band width rather than the product of the string
//! lengths. The result is classified against the four accepted overlap
//! patterns of Figure 5b ([`overlap`]); only those, with score above a
//! threshold, count as evidence to merge clusters.
//!
//! Full-matrix [`nw`] (global, Needleman–Wunsch) and [`sw`] (local,
//! Smith–Waterman) implementations are also provided: the traditional
//! baseline clusterer uses them, and the banded/anchored kernels are
//! property-tested against them.
//!
//! ```
//! use pace_align::{align_anchored, decide_outcome, Anchor, OverlapParams, Scoring};
//!
//! // Two reads overlapping dovetail-style on "CCCCGGGG".
//! let a = b"AAAACCCCGGGG";
//! let b = b"CCCCGGGGTTTT";
//! let anchor = Anchor { a_pos: 4, b_pos: 0, len: 8 };
//! let scoring = Scoring::default_est();
//!
//! let aln = align_anchored(a, b, anchor, &scoring, 4);
//! assert_eq!(aln.score, scoring.ideal(8));
//!
//! let params = OverlapParams { min_score_ratio: 0.8, min_overlap_len: 8 };
//! assert!(decide_outcome(&aln, &scoring, &params).accepted);
//! ```

pub mod anchored;
pub mod banded;
pub mod myers;
pub mod nw;
pub mod overlap;
pub mod scoring;
pub mod semiglobal;
pub mod sw;
pub mod view;
pub mod workspace;

pub use anchored::{
    align_anchored, align_anchored_with, decide_outcome, diagonal_identity, Anchor,
    AnchoredAlignment,
};
pub use banded::{banded_extension, banded_extension_with, banded_global_score};
pub use banded::{banded_global_score_with, ExtensionResult};
pub use myers::{
    align_anchored_myers_with, myers_banded_distance, myers_banded_distance_with,
    myers_banded_extension, myers_banded_extension_with, MYERS_MAX_RADIUS,
};
pub use nw::{global_align, global_score, global_score_with, AlignOp, Alignment};
pub use overlap::{classify_overlap, AcceptDecision, OverlapKind, OverlapParams};
pub use scoring::Scoring;
pub use semiglobal::{semiglobal_align, semiglobal_align_with, SemiglobalAlignment};
pub use sw::{local_score, local_score_with};
pub use view::{Rev, SeqView};
pub use workspace::AlignWorkspace;
