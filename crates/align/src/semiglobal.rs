//! Semiglobal ("overlap") alignment: free end gaps on both sequences.
//!
//! The classic formulation of assembler overlap detection: the alignment
//! may begin at any prefix boundary and end at any suffix boundary of
//! either sequence, with the unaligned overhangs free of charge. This is
//! what a traditional tool computes when it has *no anchor* — the
//! anchored extension of [`crate::anchored`] reaches the same kind of
//! overlap at a fraction of the cost, which the property tests here
//! exploit: with a full-width band and a true anchor, the two agree.

use crate::overlap::{classify_overlap, OverlapKind};
use crate::scoring::Scoring;
use crate::view::SeqView;
use crate::workspace::AlignWorkspace;

/// A scored overlap alignment with its coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SemiglobalAlignment {
    /// Best overlap score (0 for the empty overlap).
    pub score: i32,
    /// Half-open aligned range in `a`.
    pub a_start: usize,
    /// End of the aligned range in `a`.
    pub a_end: usize,
    /// Half-open aligned range in `b`.
    pub b_start: usize,
    /// End of the aligned range in `b`.
    pub b_end: usize,
    /// Overlap pattern of the aligned region.
    pub kind: OverlapKind,
}

impl SemiglobalAlignment {
    /// Length of the overlap, measured on the longer side.
    pub fn overlap_len(&self) -> usize {
        (self.a_end - self.a_start).max(self.b_end - self.b_start)
    }
}

/// Compute the best overlap alignment of `a` and `b`.
///
/// O(|a|·|b|) time, O(|b|) rolling rows; linear gap costs (uses
/// `gap_extend` per gap base — end-free overlap alignment with affine
/// interior gaps adds little here and the baseline does not need it).
/// Origin coordinates are threaded through the DP so no traceback matrix
/// is materialized.
///
/// Convenience wrapper that allocates a fresh workspace; hot paths use
/// [`semiglobal_align_with`].
pub fn semiglobal_align(a: &[u8], b: &[u8], scoring: &Scoring) -> SemiglobalAlignment {
    semiglobal_align_with(a, b, scoring, &mut AlignWorkspace::new())
}

/// [`semiglobal_align`] over any [`SeqView`], reusing `ws` scratch.
pub fn semiglobal_align_with<V: SeqView>(
    a: V,
    b: V,
    scoring: &Scoring,
    ws: &mut AlignWorkspace,
) -> SemiglobalAlignment {
    let (la, lb) = (a.len(), b.len());
    let gap = scoring.gap_extend;

    // score[j], origin[j] for the current row; origin = (a_start, b_start).
    ws.reset_semi(lb + 1);
    let AlignWorkspace {
        semi_score: score,
        semi_origin: origin,
        ..
    } = ws;

    let mut best = SemiglobalAlignment {
        score: 0,
        a_start: 0,
        a_end: 0,
        b_start: lb,
        b_end: lb,
        kind: OverlapKind::None,
    };
    let mut consider = |s: i32, oi: u32, oj: u32, i: usize, j: usize| {
        if s > best.score
            || (s == best.score
                && (i - oi as usize) + (j - oj as usize)
                    > (best.a_end - best.a_start) + (best.b_end - best.b_start))
        {
            best = SemiglobalAlignment {
                score: s,
                a_start: oi as usize,
                a_end: i,
                b_start: oj as usize,
                b_end: j,
                kind: OverlapKind::None,
            };
        }
    };
    // Row 0 cells are all candidates (empty overlap is the identity).
    for i in 1..=la {
        let mut prev_diag_score = score[0];
        let mut prev_diag_origin = origin[0];
        // Column 0: free leading gap in `b`.
        score[0] = 0;
        origin[0] = (i as u32, 0);
        for j in 1..=lb {
            let diag = prev_diag_score + scoring.pair(a.at(i - 1), b.at(j - 1));
            let up = score[j] + gap; // consumes a[i-1]
            let left = score[j - 1] + gap; // consumes b[j-1]
            prev_diag_score = score[j];
            let diag_origin = prev_diag_origin;
            prev_diag_origin = origin[j];
            if diag >= up && diag >= left {
                score[j] = diag;
                origin[j] = diag_origin;
            } else if up >= left {
                score[j] = up;
                // origin[j] unchanged (comes from the row above, same j)
            } else {
                score[j] = left;
                origin[j] = origin[j - 1];
            }
        }
        // Last column is an end boundary of `b`.
        consider(score[lb], origin[lb].0, origin[lb].1, i, lb);
    }
    // Last row: every cell is an end boundary of `a`.
    for j in 0..=lb {
        consider(score[j], origin[j].0, origin[j].1, la, j);
    }

    best.kind = classify_overlap(la, lb, best.a_start..best.a_end, best.b_start..best.b_end);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn est() -> Scoring {
        Scoring::default_est()
    }

    #[test]
    fn perfect_dovetail() {
        //   AAAACCCCGGGG
        //       CCCCGGGGTTTT
        let a = b"AAAACCCCGGGG";
        let b = b"CCCCGGGGTTTT";
        let aln = semiglobal_align(a, b, &est());
        assert_eq!(aln.score, est().ideal(8));
        assert_eq!((aln.a_start, aln.a_end), (4, 12));
        assert_eq!((aln.b_start, aln.b_end), (0, 8));
        assert_eq!(aln.kind, OverlapKind::SuffixAPrefixB);
        assert_eq!(aln.overlap_len(), 8);
    }

    #[test]
    fn mirror_dovetail() {
        let a = b"CCCCGGGGTTTT";
        let b = b"AAAACCCCGGGG";
        let aln = semiglobal_align(a, b, &est());
        assert_eq!(aln.kind, OverlapKind::PrefixASuffixB);
        assert_eq!(aln.score, est().ideal(8));
    }

    #[test]
    fn containment() {
        let a = b"AAAATTTCGCGATCGTTTTT";
        let b = b"TTCGCGATCG";
        let aln = semiglobal_align(a, b, &est());
        assert_eq!(aln.kind, OverlapKind::ContainsB);
        assert_eq!(aln.score, est().ideal(b.len()));
        assert_eq!((aln.b_start, aln.b_end), (0, b.len()));
    }

    #[test]
    fn unrelated_strings_score_low() {
        let aln = semiglobal_align(b"AAAAAAAAAA", b"TTTTTTTTTT", &est());
        assert!(aln.score <= 0, "score {}", aln.score);
    }

    #[test]
    fn empty_inputs() {
        let aln = semiglobal_align(b"", b"ACGT", &est());
        assert_eq!(aln.score, 0);
        let aln = semiglobal_align(b"", b"", &est());
        assert_eq!(aln.score, 0);
    }

    #[test]
    fn tolerates_interior_errors() {
        // 20-base overlap with one substitution.
        let a = b"CCCCCCCCACGTACGTACGTTACG";
        let b = b"ACGTACGTACGTTACGGGGGGGG"; // note the same 16-suffix/prefix
        let aln = semiglobal_align(a, b, &est());
        assert!(aln.score >= est().ideal(16) - 6);
        assert_eq!(aln.kind, OverlapKind::SuffixAPrefixB);
    }

    fn dna(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(
            proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
            min..max,
        )
    }

    proptest! {
        /// Score is symmetric up to pattern mirroring, never negative,
        /// and bounded by the ideal score of the overlap.
        #[test]
        fn basic_invariants(a in dna(0, 40), b in dna(0, 40)) {
            let s = est();
            let fwd = semiglobal_align(&a, &b, &s);
            let rev = semiglobal_align(&b, &a, &s);
            prop_assert_eq!(fwd.score, rev.score);
            prop_assert!(fwd.score >= 0);
            prop_assert!(fwd.score <= s.ideal(fwd.overlap_len().max(1)));
            prop_assert!(fwd.a_end <= a.len() && fwd.b_end <= b.len());
            prop_assert!(fwd.a_start <= fwd.a_end && fwd.b_start <= fwd.b_end);
        }

        /// On constructed overlaps, the semiglobal score at least matches
        /// what the anchored extension finds (the anchor restricts the
        /// search, semiglobal does not).
        #[test]
        fn dominates_anchored(template in dna(30, 60), cut in 5usize..20) {
            prop_assume!(template.len() > 2 * cut + 10);
            let a = &template[..template.len() - cut];
            let b = &template[cut..];
            // Exact anchor: the known template overlap.
            let overlap = template.len() - 2 * cut;
            let anchor = crate::anchored::Anchor {
                a_pos: cut,
                b_pos: 0,
                len: overlap,
            };
            prop_assume!(anchor.verify(a, b));
            let s = est();
            let anchored = crate::anchored::align_anchored(a, b, anchor, &s, 4);
            let semi = semiglobal_align(a, b, &s);
            prop_assert!(
                semi.score >= anchored.score,
                "semiglobal {} < anchored {}",
                semi.score,
                anchored.score
            );
            // Both must find at least the clean overlap.
            prop_assert!(semi.score >= s.ideal(overlap));
        }

        /// The best overlap of a string with itself is full containment
        /// at the ideal score.
        #[test]
        fn self_overlap_is_ideal(a in dna(1, 40)) {
            let s = est();
            let aln = semiglobal_align(&a, &a, &s);
            prop_assert_eq!(aln.score, s.ideal(a.len()));
            prop_assert!(matches!(
                aln.kind,
                OverlapKind::ContainsB | OverlapKind::ContainedInB
            ));
        }
    }
}
