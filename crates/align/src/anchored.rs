//! Anchored alignment: extend a known maximal-common-substring match.
//!
//! This is the paper's Figure 5a. A promising pair arrives from the suffix
//! tree together with the coordinates of a shared substring (the anchor).
//! "Instead of aligning entire strings, we reduce work by merely extending
//! the already computed maximal substring match at both ends using gaps and
//! mismatches." Each side is extended with banded DP until one of the two
//! sequences is exhausted, so the result always spans to sequence ends and
//! classifies as one of the four accepted overlap patterns of Figure 5b.

use crate::banded::banded_extension;
use crate::overlap::{classify_overlap, decide, AcceptDecision, OverlapKind, OverlapParams};
use crate::scoring::Scoring;

/// A shared exact substring: `a[a_pos..a_pos+len] == b[b_pos..b_pos+len]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anchor {
    /// Start of the match in `a`.
    pub a_pos: usize,
    /// Start of the match in `b`.
    pub b_pos: usize,
    /// Length of the exact match.
    pub len: usize,
}

impl Anchor {
    /// Check the anchor against the actual sequences (debug aid).
    pub fn verify(&self, a: &[u8], b: &[u8]) -> bool {
        self.a_pos + self.len <= a.len()
            && self.b_pos + self.len <= b.len()
            && a[self.a_pos..self.a_pos + self.len] == b[self.b_pos..self.b_pos + self.len]
    }
}

/// The outcome of extending an anchor across both sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnchoredAlignment {
    /// Total score: left extension + anchor (all matches) + right extension.
    pub score: i32,
    /// Half-open overlap range in `a`.
    pub a_start: usize,
    /// End of the overlap range in `a`.
    pub a_end: usize,
    /// Half-open overlap range in `b`.
    pub b_start: usize,
    /// End of the overlap range in `b`.
    pub b_end: usize,
    /// Which of the four accepted patterns the overlap forms.
    pub kind: OverlapKind,
}

impl AnchoredAlignment {
    /// Length of the overlap region, measured on the longer side.
    pub fn overlap_len(&self) -> usize {
        (self.a_end - self.a_start).max(self.b_end - self.b_start)
    }
}

/// Extend `anchor` in both directions (Figure 5a).
///
/// `radius` is the DP band half-width: the number of insertions/deletions
/// tolerated between the two sequences on each side of the anchor.
pub fn align_anchored(
    a: &[u8],
    b: &[u8],
    anchor: Anchor,
    scoring: &Scoring,
    radius: usize,
) -> AnchoredAlignment {
    debug_assert!(anchor.verify(a, b), "anchor does not match sequences");

    // Left: align the reversed prefixes so the path is anchored at the
    // match start and runs toward the string starts.
    let a_left: Vec<u8> = a[..anchor.a_pos].iter().rev().copied().collect();
    let b_left: Vec<u8> = b[..anchor.b_pos].iter().rev().copied().collect();
    let left = banded_extension(&a_left, &b_left, scoring, radius);

    // Right: align the suffixes after the match.
    let a_right = &a[anchor.a_pos + anchor.len..];
    let b_right = &b[anchor.b_pos + anchor.len..];
    let right = banded_extension(a_right, b_right, scoring, radius);

    let a_start = anchor.a_pos - left.a_consumed;
    let b_start = anchor.b_pos - left.b_consumed;
    let a_end = anchor.a_pos + anchor.len + right.a_consumed;
    let b_end = anchor.b_pos + anchor.len + right.b_consumed;
    let score = left.score + scoring.ideal(anchor.len) + right.score;

    let kind = classify_overlap(a.len(), b.len(), a_start..a_end, b_start..b_end);

    AnchoredAlignment {
        score,
        a_start,
        a_end,
        b_start,
        b_end,
        kind,
    }
}

/// Apply the accept criterion ([`crate::overlap::decide`]) to an anchored
/// alignment result.
pub fn decide_outcome(
    aln: &AnchoredAlignment,
    scoring: &Scoring,
    params: &OverlapParams,
) -> AcceptDecision {
    decide(aln.kind, aln.score, aln.overlap_len(), scoring, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn anchor_of(a: &[u8], b: &[u8]) -> Anchor {
        // Find some maximal exact match by brute force for test setup.
        let mut best = Anchor {
            a_pos: 0,
            b_pos: 0,
            len: 0,
        };
        for i in 0..a.len() {
            for j in 0..b.len() {
                let mut k = 0;
                while i + k < a.len() && j + k < b.len() && a[i + k] == b[j + k] {
                    k += 1;
                }
                if k > best.len {
                    best = Anchor {
                        a_pos: i,
                        b_pos: j,
                        len: k,
                    };
                }
            }
        }
        best
    }

    #[test]
    fn perfect_suffix_prefix_overlap() {
        //      AAAACCCCGGGG
        //          CCCCGGGGTTTT
        let a = b"AAAACCCCGGGG";
        let b = b"CCCCGGGGTTTT";
        let anchor = anchor_of(a, b);
        assert_eq!(anchor.len, 8);
        let s = Scoring::default_est();
        let aln = align_anchored(a, b, anchor, &s, 3);
        assert_eq!(aln.score, s.ideal(8));
        assert_eq!((aln.a_start, aln.a_end), (4, 12));
        assert_eq!((aln.b_start, aln.b_end), (0, 8));
        assert_eq!(aln.kind, OverlapKind::SuffixAPrefixB);
        assert_eq!(aln.overlap_len(), 8);
    }

    #[test]
    fn containment_is_detected() {
        let a = b"ACGTACGTACGTACGT";
        let b = b"TACGTACG"; // substring of a
        let anchor = anchor_of(a, b);
        assert_eq!(anchor.len, 8);
        let s = Scoring::default_est();
        let aln = align_anchored(a, b, anchor, &s, 2);
        assert_eq!(aln.kind, OverlapKind::ContainsB);
        assert_eq!(aln.score, s.ideal(8));
        assert_eq!(aln.b_start, 0);
        assert_eq!(aln.b_end, b.len());
    }

    #[test]
    fn extension_absorbs_errors() {
        // Same overlap as the perfect case but with a substitution and an
        // indel in the non-anchor part of the overlap.
        let a = b"AAATACCCCGGGG"; // 'T' substitution inside left flank
        let b = b"CCCCGGGGTTTT";
        let anchor = anchor_of(a, b); // CCCCGGGG
        let s = Scoring::default_est();
        let aln = align_anchored(a, b, anchor, &s, 3);
        // Anchor alone scores ideal(8); flanks contribute nothing here
        // because b starts exactly at the anchor.
        assert_eq!(aln.kind, OverlapKind::SuffixAPrefixB);
        assert!(aln.score >= s.ideal(8));
    }

    #[test]
    fn identical_strings_full_overlap() {
        let a = b"GATTACAGATTACA";
        let anchor = Anchor {
            a_pos: 0,
            b_pos: 0,
            len: a.len(),
        };
        let s = Scoring::default_est();
        let aln = align_anchored(a, a, anchor, &s, 2);
        assert_eq!(aln.score, s.ideal(a.len()));
        // Full mutual containment classifies as one of the containment kinds.
        assert!(matches!(
            aln.kind,
            OverlapKind::ContainsB | OverlapKind::ContainedInB
        ));
    }

    #[test]
    fn anchor_verify_rejects_bogus() {
        assert!(!Anchor {
            a_pos: 0,
            b_pos: 0,
            len: 3
        }
        .verify(b"AAA", b"TTT"));
        assert!(Anchor {
            a_pos: 1,
            b_pos: 0,
            len: 2
        }
        .verify(b"TAA", b"AA"));
    }

    fn dna(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(
            proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
            min..max,
        )
    }

    proptest! {
        /// Construct overlapping reads from a common template; the anchored
        /// alignment must recover an overlap spanning to the sequence ends
        /// and never exceed the ideal score of the longer overlap side.
        #[test]
        fn anchored_overlap_well_formed(
            template in dna(30, 60),
            cut in 5usize..25,
        ) {
            let a = &template[..template.len() - cut];
            let b = &template[cut.min(template.len())..];
            let anchor = anchor_of(a, b);
            prop_assume!(anchor.len >= 5);
            let s = Scoring::default_est();
            let aln = align_anchored(a, b, anchor, &s, 3);
            prop_assert!(aln.a_start <= aln.a_end && aln.a_end <= a.len());
            prop_assert!(aln.b_start <= aln.b_end && aln.b_end <= b.len());
            prop_assert!(aln.score <= s.ideal(aln.overlap_len()));
            // The anchor itself always contributes its ideal score; the
            // flank extensions can only add or subtract bounded amounts.
            prop_assert!(aln.a_start <= anchor.a_pos && anchor.a_pos + anchor.len <= aln.a_end);
            prop_assert!(aln.b_start <= anchor.b_pos && anchor.b_pos + anchor.len <= aln.b_end);
            // The overlap must touch one start and one end.
            prop_assert!(aln.a_start == 0 || aln.b_start == 0);
            prop_assert!(aln.a_end == a.len() || aln.b_end == b.len());
        }
    }
}
