//! Anchored alignment: extend a known maximal-common-substring match.
//!
//! This is the paper's Figure 5a. A promising pair arrives from the suffix
//! tree together with the coordinates of a shared substring (the anchor).
//! "Instead of aligning entire strings, we reduce work by merely extending
//! the already computed maximal substring match at both ends using gaps and
//! mismatches." Each side is extended with banded DP until one of the two
//! sequences is exhausted, so the result always spans to sequence ends and
//! classifies as one of the four accepted overlap patterns of Figure 5b.

use crate::banded::banded_extension_with;
use crate::overlap::{classify_overlap, decide, AcceptDecision, OverlapKind, OverlapParams};
use crate::scoring::Scoring;
use crate::view::SeqView;
use crate::workspace::AlignWorkspace;

/// A shared exact substring: `a[a_pos..a_pos+len] == b[b_pos..b_pos+len]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anchor {
    /// Start of the match in `a`.
    pub a_pos: usize,
    /// Start of the match in `b`.
    pub b_pos: usize,
    /// Length of the exact match.
    pub len: usize,
}

impl Anchor {
    /// Check the anchor against the actual sequences (debug aid).
    pub fn verify(&self, a: &[u8], b: &[u8]) -> bool {
        self.verify_on(a, b)
    }

    /// [`Anchor::verify`] over any [`SeqView`].
    pub fn verify_on<V: SeqView>(&self, a: V, b: V) -> bool {
        self.a_pos + self.len <= a.len()
            && self.b_pos + self.len <= b.len()
            && (0..self.len).all(|k| a.at(self.a_pos + k) == b.at(self.b_pos + k))
    }

    /// Upper bound on the overlap length reachable by extending this
    /// anchor with a band of half-width `radius`, measured on the longer
    /// side (the convention of [`AnchoredAlignment::overlap_len`]).
    ///
    /// Each extension can consume at most the remaining bases of one
    /// string, and the other string can run at most `radius` further
    /// (the band constraint). Since no alignment produced by
    /// [`align_anchored`] can exceed this bound, comparing it against
    /// the minimum-overlap accept threshold yields an *exactly lossless*
    /// prefilter: pairs rejected here could never have been accepted.
    pub fn max_overlap_reach(&self, a_len: usize, b_len: usize, radius: usize) -> usize {
        debug_assert!(self.a_pos + self.len <= a_len && self.b_pos + self.len <= b_len);
        // Left of the anchor: consumable prefix on each side.
        let left_a = self.a_pos.min(self.b_pos + radius);
        let left_b = self.b_pos.min(self.a_pos + radius);
        // Right of the anchor: consumable suffix on each side.
        let a_rem = a_len - self.a_pos - self.len;
        let b_rem = b_len - self.b_pos - self.len;
        let right_a = a_rem.min(b_rem + radius);
        let right_b = b_rem.min(a_rem + radius);
        self.len + left_a.max(left_b) + right_a.max(right_b)
    }
}

/// The outcome of extending an anchor across both sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnchoredAlignment {
    /// Total score: left extension + anchor (all matches) + right extension.
    pub score: i32,
    /// Half-open overlap range in `a`.
    pub a_start: usize,
    /// End of the overlap range in `a`.
    pub a_end: usize,
    /// Half-open overlap range in `b`.
    pub b_start: usize,
    /// End of the overlap range in `b`.
    pub b_end: usize,
    /// Which of the four accepted patterns the overlap forms.
    pub kind: OverlapKind,
}

impl AnchoredAlignment {
    /// Length of the overlap region, measured on the longer side.
    pub fn overlap_len(&self) -> usize {
        (self.a_end - self.a_start).max(self.b_end - self.b_start)
    }
}

/// Extend `anchor` in both directions (Figure 5a).
///
/// `radius` is the DP band half-width: the number of insertions/deletions
/// tolerated between the two sequences on each side of the anchor.
///
/// Convenience wrapper that allocates a fresh workspace; hot paths use
/// [`align_anchored_with`].
pub fn align_anchored(
    a: &[u8],
    b: &[u8],
    anchor: Anchor,
    scoring: &Scoring,
    radius: usize,
) -> AnchoredAlignment {
    align_anchored_with(a, b, anchor, scoring, radius, &mut AlignWorkspace::new())
}

/// [`align_anchored`] over any [`SeqView`], reusing `ws` scratch.
///
/// The reversed anchor prefixes for the left extension are copied into
/// workspace-owned buffers so the DP scans contiguous forward slices
/// (a reversed-index adapter in the inner loop costs ~10% end to end) —
/// with a warm workspace the whole call still performs zero heap
/// allocations.
pub fn align_anchored_with<V: SeqView>(
    a: V,
    b: V,
    anchor: Anchor,
    scoring: &Scoring,
    radius: usize,
    ws: &mut AlignWorkspace,
) -> AnchoredAlignment {
    debug_assert!(anchor.verify_on(a, b), "anchor does not match sequences");

    // Left: align the reversed prefixes so the path is anchored at the
    // match start and runs toward the string starts. Taking the buffers
    // out of the workspace frees it for the extension call below.
    let (mut rev_a, mut rev_b) = ws.take_rev();
    rev_a.extend((0..anchor.a_pos).rev().map(|i| a.at(i)));
    rev_b.extend((0..anchor.b_pos).rev().map(|i| b.at(i)));
    let left = banded_extension_with(&rev_a[..], &rev_b[..], scoring, radius, ws);
    ws.put_rev(rev_a, rev_b);

    // Right: align the suffixes after the match.
    let a_right = a.slice(anchor.a_pos + anchor.len, a.len());
    let b_right = b.slice(anchor.b_pos + anchor.len, b.len());
    let right = banded_extension_with(a_right, b_right, scoring, radius, ws);

    let a_start = anchor.a_pos - left.a_consumed;
    let b_start = anchor.b_pos - left.b_consumed;
    let a_end = anchor.a_pos + anchor.len + right.a_consumed;
    let b_end = anchor.b_pos + anchor.len + right.b_consumed;
    let score = left.score + scoring.ideal(anchor.len) + right.score;

    let kind = classify_overlap(a.len(), b.len(), a_start..a_end, b_start..b_end);

    AnchoredAlignment {
        score,
        a_start,
        a_end,
        b_start,
        b_end,
        kind,
    }
}

/// Exact-match identity along the anchor's diagonal, over the maximal
/// no-indel overlap the anchor admits (anchor bases count as matches).
///
/// A cheap O(overlap) probe used as an *optional, lossy* prefilter: a
/// pair whose diagonal identity is far below the accept threshold will
/// rarely be rescued by the few indels the band allows, so skipping its
/// DP trades a small amount of sensitivity for throughput (the CD-HIT
/// family of clusterers is built on exactly this kind of short-circuit
/// filter). Disabled by default in the clustering engine.
pub fn diagonal_identity<V: SeqView>(a: V, b: V, anchor: Anchor) -> f64 {
    debug_assert!(anchor.verify_on(a, b), "anchor does not match sequences");
    let left = anchor.a_pos.min(anchor.b_pos);
    let a_rem = a.len() - anchor.a_pos - anchor.len;
    let b_rem = b.len() - anchor.b_pos - anchor.len;
    let right = a_rem.min(b_rem);
    let total = left + anchor.len + right;
    if total == 0 {
        return 1.0;
    }
    let mut matches = anchor.len;
    for k in 1..=left {
        if a.at(anchor.a_pos - k) == b.at(anchor.b_pos - k) {
            matches += 1;
        }
    }
    for k in 0..right {
        if a.at(anchor.a_pos + anchor.len + k) == b.at(anchor.b_pos + anchor.len + k) {
            matches += 1;
        }
    }
    matches as f64 / total as f64
}

/// Apply the accept criterion ([`crate::overlap::decide`]) to an anchored
/// alignment result.
pub fn decide_outcome(
    aln: &AnchoredAlignment,
    scoring: &Scoring,
    params: &OverlapParams,
) -> AcceptDecision {
    decide(aln.kind, aln.score, aln.overlap_len(), scoring, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn anchor_of(a: &[u8], b: &[u8]) -> Anchor {
        // Find some maximal exact match by brute force for test setup.
        let mut best = Anchor {
            a_pos: 0,
            b_pos: 0,
            len: 0,
        };
        for i in 0..a.len() {
            for j in 0..b.len() {
                let mut k = 0;
                while i + k < a.len() && j + k < b.len() && a[i + k] == b[j + k] {
                    k += 1;
                }
                if k > best.len {
                    best = Anchor {
                        a_pos: i,
                        b_pos: j,
                        len: k,
                    };
                }
            }
        }
        best
    }

    #[test]
    fn perfect_suffix_prefix_overlap() {
        //      AAAACCCCGGGG
        //          CCCCGGGGTTTT
        let a = b"AAAACCCCGGGG";
        let b = b"CCCCGGGGTTTT";
        let anchor = anchor_of(a, b);
        assert_eq!(anchor.len, 8);
        let s = Scoring::default_est();
        let aln = align_anchored(a, b, anchor, &s, 3);
        assert_eq!(aln.score, s.ideal(8));
        assert_eq!((aln.a_start, aln.a_end), (4, 12));
        assert_eq!((aln.b_start, aln.b_end), (0, 8));
        assert_eq!(aln.kind, OverlapKind::SuffixAPrefixB);
        assert_eq!(aln.overlap_len(), 8);
    }

    #[test]
    fn containment_is_detected() {
        let a = b"ACGTACGTACGTACGT";
        let b = b"TACGTACG"; // substring of a
        let anchor = anchor_of(a, b);
        assert_eq!(anchor.len, 8);
        let s = Scoring::default_est();
        let aln = align_anchored(a, b, anchor, &s, 2);
        assert_eq!(aln.kind, OverlapKind::ContainsB);
        assert_eq!(aln.score, s.ideal(8));
        assert_eq!(aln.b_start, 0);
        assert_eq!(aln.b_end, b.len());
    }

    #[test]
    fn extension_absorbs_errors() {
        // Same overlap as the perfect case but with a substitution and an
        // indel in the non-anchor part of the overlap.
        let a = b"AAATACCCCGGGG"; // 'T' substitution inside left flank
        let b = b"CCCCGGGGTTTT";
        let anchor = anchor_of(a, b); // CCCCGGGG
        let s = Scoring::default_est();
        let aln = align_anchored(a, b, anchor, &s, 3);
        // Anchor alone scores ideal(8); flanks contribute nothing here
        // because b starts exactly at the anchor.
        assert_eq!(aln.kind, OverlapKind::SuffixAPrefixB);
        assert!(aln.score >= s.ideal(8));
    }

    #[test]
    fn identical_strings_full_overlap() {
        let a = b"GATTACAGATTACA";
        let anchor = Anchor {
            a_pos: 0,
            b_pos: 0,
            len: a.len(),
        };
        let s = Scoring::default_est();
        let aln = align_anchored(a, a, anchor, &s, 2);
        assert_eq!(aln.score, s.ideal(a.len()));
        // Full mutual containment classifies as one of the containment kinds.
        assert!(matches!(
            aln.kind,
            OverlapKind::ContainsB | OverlapKind::ContainedInB
        ));
    }

    #[test]
    fn anchor_verify_rejects_bogus() {
        assert!(!Anchor {
            a_pos: 0,
            b_pos: 0,
            len: 3
        }
        .verify(b"AAA", b"TTT"));
        assert!(Anchor {
            a_pos: 1,
            b_pos: 0,
            len: 2
        }
        .verify(b"TAA", b"AA"));
    }

    #[test]
    fn diagonal_identity_basics() {
        let a = b"AAAACCCCGGGG";
        let b = b"CCCCGGGGTTTT";
        let anchor = anchor_of(a, b);
        // The anchor spans the whole diagonal overlap: identity 1.
        assert_eq!(diagonal_identity(&a[..], &b[..], anchor), 1.0);
        // A mismatching left flank on the diagonal dilutes it: the AAAA
        // and TTTT prefixes sit on the anchor diagonal and never match.
        let a2 = b"AAAACCCCGGGG";
        let b2 = b"TTTTCCCCGGGGAA";
        let anchor2 = anchor_of(a2, b2); // CCCCGGGG at a_pos 4 / b_pos 4
        assert_eq!(anchor2.len, 8);
        let id = diagonal_identity(&a2[..], &b2[..], anchor2);
        assert!((id - 8.0 / 12.0).abs() < 1e-12, "id = {id}");
    }

    #[test]
    fn max_reach_bounds_simple_cases() {
        // Dovetail: anchor at the junction, radius 0.
        let anchor = Anchor {
            a_pos: 4,
            b_pos: 0,
            len: 8,
        };
        // At radius 0 nothing can run past the partner string: b has no
        // prefix left of the anchor and a no suffix right of it.
        assert_eq!(anchor.max_overlap_reach(12, 12, 0), 8);
        // With a band, each side can run `radius` bases past the other.
        assert_eq!(anchor.max_overlap_reach(12, 12, 3), 8 + 3 + 3);
        // An anchor spanning both full strings reaches exactly their length.
        let full = Anchor {
            a_pos: 0,
            b_pos: 0,
            len: 12,
        };
        assert_eq!(full.max_overlap_reach(12, 12, 5), 12);
    }

    fn dna(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(
            proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
            min..max,
        )
    }

    proptest! {
        /// Construct overlapping reads from a common template; the anchored
        /// alignment must recover an overlap spanning to the sequence ends
        /// and never exceed the ideal score of the longer overlap side.
        #[test]
        fn anchored_overlap_well_formed(
            template in dna(30, 60),
            cut in 5usize..25,
        ) {
            let a = &template[..template.len() - cut];
            let b = &template[cut.min(template.len())..];
            let anchor = anchor_of(a, b);
            prop_assume!(anchor.len >= 5);
            let s = Scoring::default_est();
            let aln = align_anchored(a, b, anchor, &s, 3);
            prop_assert!(aln.a_start <= aln.a_end && aln.a_end <= a.len());
            prop_assert!(aln.b_start <= aln.b_end && aln.b_end <= b.len());
            prop_assert!(aln.score <= s.ideal(aln.overlap_len()));
            // The anchor itself always contributes its ideal score; the
            // flank extensions can only add or subtract bounded amounts.
            prop_assert!(aln.a_start <= anchor.a_pos && anchor.a_pos + anchor.len <= aln.a_end);
            prop_assert!(aln.b_start <= anchor.b_pos && anchor.b_pos + anchor.len <= aln.b_end);
            // The overlap must touch one start and one end.
            prop_assert!(aln.a_start == 0 || aln.b_start == 0);
            prop_assert!(aln.a_end == a.len() || aln.b_end == b.len());
        }

        /// The geometric reach bound is never exceeded by the actual
        /// alignment — the losslessness guarantee of the prefilter.
        #[test]
        fn max_reach_dominates_actual_overlap(
            a in dna(10, 50),
            b in dna(10, 50),
            radius in 0usize..5,
        ) {
            let anchor = anchor_of(&a, &b);
            prop_assume!(anchor.len >= 1);
            let s = Scoring::default_est();
            let aln = align_anchored(&a, &b, anchor, &s, radius);
            let bound = anchor.max_overlap_reach(a.len(), b.len(), radius);
            prop_assert!(
                aln.overlap_len() <= bound,
                "overlap {} exceeds reach bound {}",
                aln.overlap_len(),
                bound
            );
        }

        /// Diagonal identity is a true fraction and hits 1 exactly on
        /// identical strings.
        #[test]
        fn diagonal_identity_is_fraction(a in dna(5, 40), cut in 0usize..10) {
            let anchor = anchor_of(&a, &a);
            let id = diagonal_identity(&a[..], &a[..], anchor);
            prop_assert_eq!(id, 1.0);
            let b = &a[cut.min(a.len() - 1)..];
            let anchor = anchor_of(&a, b);
            prop_assume!(anchor.len >= 1);
            let id = diagonal_identity(&a[..], b, anchor);
            prop_assert!((0.0..=1.0).contains(&id));
        }
    }
}
