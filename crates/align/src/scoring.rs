//! Alignment scoring parameters.
//!
//! Quality is controlled "by the usual set of parameters, such as match and
//! mismatch scores, gap opening and gap continuation penalties, and the
//! ratio of score obtained to the ideal score consisting of all matches"
//! (paper, §3.3). All kernels in this crate share this struct.

/// Match/mismatch/gap scoring scheme with affine gaps.
///
/// Scores are signed: `match_score` should be positive, the penalties
/// negative. With `gap_open == gap_extend` the scheme degenerates to linear
/// gap costs, which is what the banded extension kernel assumes (the paper
/// bounds errors, not gap structure, so linear costs are faithful there).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scoring {
    /// Score added for an identical base pair.
    pub match_score: i32,
    /// Score added for a substituted base pair (negative).
    pub mismatch: i32,
    /// Cost of the first residue of a gap (negative).
    pub gap_open: i32,
    /// Cost of each subsequent gap residue (negative).
    pub gap_extend: i32,
}

impl Scoring {
    /// The scheme used throughout the reproduction: +2 match, −3 mismatch,
    /// −4 open, −2 extend — ordinary EST-assembly-style values.
    pub const fn default_est() -> Self {
        Scoring {
            match_score: 2,
            mismatch: -3,
            gap_open: -4,
            gap_extend: -2,
        }
    }

    /// A linear-gap scheme (open == extend), used by the banded kernel.
    pub const fn linear(match_score: i32, mismatch: i32, gap: i32) -> Self {
        Scoring {
            match_score,
            mismatch,
            gap_open: gap,
            gap_extend: gap,
        }
    }

    /// Unit-cost scheme handy in tests (+1 match, −1 everything else).
    pub const fn unit() -> Self {
        Scoring::linear(1, -1, -1)
    }

    /// Score of aligning bases `a` and `b`.
    #[inline]
    pub fn pair(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.match_score
        } else {
            self.mismatch
        }
    }

    /// Whether the gap costs are linear (open == extend).
    #[inline]
    pub fn is_linear(&self) -> bool {
        self.gap_open == self.gap_extend
    }

    /// The "ideal score" of a segment of length `len`: all matches.
    /// The accept criterion compares achieved score against this.
    #[inline]
    pub fn ideal(&self, len: usize) -> i32 {
        self.match_score * len as i32
    }

    /// If this scheme is an exact affine transform of unit-cost edit
    /// distance, return the transform's unit cost `c`.
    ///
    /// For a linear-gap scheme (`open == extend == g`), every alignment
    /// path consuming `i` bases of one string and `j` of the other
    /// satisfies `score = (match·(i+j) − 2·c·dist) / 2` with
    /// `c = match − mismatch`, **iff** `2·(match − mismatch) == match − 2g`.
    /// Under that condition maximizing the Gotoh score is identical to
    /// minimizing Levenshtein distance, which is what lets the Myers
    /// bit-parallel kernel ([`crate::myers`]) stand in for the scalar
    /// banded DP with bit-for-bit equal scores. Returns `None` for
    /// schemes outside the family (e.g. [`Scoring::default_est`]).
    #[inline]
    pub fn edit_unit_cost(&self) -> Option<i32> {
        let c = self.match_score - self.mismatch;
        if self.is_linear() && c > 0 && 2 * c == self.match_score - 2 * self.gap_open {
            Some(c)
        } else {
            None
        }
    }

    /// The canonical edit-convertible scheme (+2 match, 0 mismatch, −1
    /// gap): `score = (i + j) − 2·dist`. Use this (or any other scheme
    /// for which [`Scoring::edit_unit_cost`] is `Some`) to enable the
    /// Myers bit-parallel kernel.
    pub const fn edit_linear() -> Self {
        Scoring::linear(2, 0, -1)
    }

    /// Basic sanity check: match positive, penalties non-positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.match_score <= 0 {
            return Err(format!(
                "match_score must be positive, got {}",
                self.match_score
            ));
        }
        for (name, v) in [
            ("mismatch", self.mismatch),
            ("gap_open", self.gap_open),
            ("gap_extend", self.gap_extend),
        ] {
            if v > 0 {
                return Err(format!("{name} must be non-positive, got {v}"));
            }
        }
        Ok(())
    }
}

impl Default for Scoring {
    fn default() -> Self {
        Scoring::default_est()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        Scoring::default().validate().unwrap();
        Scoring::unit().validate().unwrap();
    }

    #[test]
    fn pair_scores() {
        let s = Scoring::default_est();
        assert_eq!(s.pair(b'A', b'A'), 2);
        assert_eq!(s.pair(b'A', b'C'), -3);
    }

    #[test]
    fn ideal_scales_with_length() {
        let s = Scoring::unit();
        assert_eq!(s.ideal(0), 0);
        assert_eq!(s.ideal(10), 10);
    }

    #[test]
    fn linear_detection() {
        assert!(Scoring::unit().is_linear());
        assert!(!Scoring::default_est().is_linear());
    }

    #[test]
    fn edit_unit_cost_detects_the_convertible_family() {
        // (2, 0, −1): c = 2, 2·2 == 2 − 2·(−1). The canonical preset.
        assert_eq!(Scoring::edit_linear().edit_unit_cost(), Some(2));
        // (4, −1, −3): c = 5, 2·5 == 4 − 2·(−3).
        assert_eq!(Scoring::linear(4, -1, -3).edit_unit_cost(), Some(5));
        // Unit costs are NOT convertible (2·2 != 1 − 2·(−1)).
        assert_eq!(Scoring::unit().edit_unit_cost(), None);
        // Affine gaps never qualify.
        assert_eq!(Scoring::default_est().edit_unit_cost(), None);
    }

    #[test]
    fn validate_rejects_bad_schemes() {
        assert!(Scoring::linear(0, -1, -1).validate().is_err());
        assert!(Scoring::linear(1, 1, -1).validate().is_err());
        assert!(Scoring {
            match_score: 1,
            mismatch: -1,
            gap_open: 2,
            gap_extend: -1
        }
        .validate()
        .is_err());
    }
}
