//! Banded dynamic programming.
//!
//! "To further limit work, we use banded dynamic programming, where the
//! band size is determined by the number of errors tolerated" (§3.3).
//! Cells with `|i − j| > radius` are never touched, so aligning two
//! segments of length `L` costs `O(L·radius)` instead of `O(L²)`.

use crate::nw::NEG_INF;
use crate::scoring::Scoring;
use crate::view::SeqView;
use crate::workspace::AlignWorkspace;

/// Result of a banded extension from an anchor corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtensionResult {
    /// Best score of the extension (0 when nothing extends).
    pub score: i32,
    /// Bases of `a` consumed by the chosen extension path.
    pub a_consumed: usize,
    /// Bases of `b` consumed by the chosen extension path.
    pub b_consumed: usize,
}

/// Banded *global* alignment score (both ends pinned).
///
/// Returns `None` when the band cannot connect the two corners, i.e. when
/// `|a.len() − b.len()| > radius`. With `radius ≥ max(len)` this equals
/// [`crate::nw::global_score`] — the property the tests pin down.
///
/// Convenience wrapper that allocates a fresh workspace; hot paths use
/// [`banded_global_score_with`].
pub fn banded_global_score(a: &[u8], b: &[u8], scoring: &Scoring, radius: usize) -> Option<i32> {
    banded_global_score_with(a, b, scoring, radius, &mut AlignWorkspace::new())
}

/// [`banded_global_score`] over any [`SeqView`], reusing `ws` scratch.
pub fn banded_global_score_with<V: SeqView>(
    a: V,
    b: V,
    scoring: &Scoring,
    radius: usize,
    ws: &mut AlignWorkspace,
) -> Option<i32> {
    let (la, lb) = (a.len(), b.len());
    if la.abs_diff(lb) > radius {
        return None;
    }
    banded_fill(a, b, scoring, radius, ws);
    let w = 2 * radius + 1;
    // Cell (la, lb) lives at band offset lb - la + radius.
    let off = (lb + radius) - la; // in range because |la-lb| <= radius
    let idx = band_idx(la, off, w);
    Some(ws.band_m[idx].max(ws.band_x[idx]).max(ws.band_y[idx]))
}

/// Banded extension: the path starts pinned at `(0, 0)` (the anchor edge)
/// and ends wherever it reaches the *far edge of either string* within the
/// band — i.e. the overlap continues until one of the two sequences is
/// exhausted, which is exactly how the paper's Figure 5a extension works.
///
/// Tie-breaking is deterministic: highest score, then most total bases
/// consumed, then most bases of `a`.
///
/// Convenience wrapper that allocates a fresh workspace; hot paths use
/// [`banded_extension_with`].
pub fn banded_extension(a: &[u8], b: &[u8], scoring: &Scoring, radius: usize) -> ExtensionResult {
    banded_extension_with(a, b, scoring, radius, &mut AlignWorkspace::new())
}

/// [`banded_extension`] over any [`SeqView`], reusing `ws` scratch.
pub fn banded_extension_with<V: SeqView>(
    a: V,
    b: V,
    scoring: &Scoring,
    radius: usize,
    ws: &mut AlignWorkspace,
) -> ExtensionResult {
    let (la, lb) = (a.len(), b.len());
    if la == 0 || lb == 0 {
        // One side has nothing left: the anchor already touches its end
        // (containment / flush overlap). Nothing to extend, score 0.
        return ExtensionResult {
            score: 0,
            a_consumed: 0,
            b_consumed: 0,
        };
    }
    banded_fill(a, b, scoring, radius, ws);
    let (m, x, y) = (&ws.band_m, &ws.band_x, &ws.band_y);
    let w = 2 * radius + 1;

    let mut best = ExtensionResult {
        score: NEG_INF,
        a_consumed: 0,
        b_consumed: 0,
    };
    let mut consider = |i: usize, j: usize| {
        if i > la || j > lb {
            return;
        }
        let (lo, hi) = band_bounds(i, lb, radius);
        if j < lo || j > hi {
            return;
        }
        let off = j + radius - i;
        let idx = band_idx(i, off, w);
        let v = m[idx].max(x[idx]).max(y[idx]);
        if v <= NEG_INF {
            return;
        }
        let cand = ExtensionResult {
            score: v,
            a_consumed: i,
            b_consumed: j,
        };
        let better = cand.score > best.score
            || (cand.score == best.score
                && (cand.a_consumed + cand.b_consumed > best.a_consumed + best.b_consumed
                    || (cand.a_consumed + cand.b_consumed == best.a_consumed + best.b_consumed
                        && cand.a_consumed > best.a_consumed)));
        if better {
            best = cand;
        }
    };
    // Far edge of `a` (i == la) and far edge of `b` (j == lb).
    for j in 0..=lb {
        consider(la, j);
    }
    for i in 0..=la {
        consider(i, lb);
    }
    if best.score <= NEG_INF {
        // The band reached neither far edge (can happen only for radius 0
        // pathologies); fall back to "no extension".
        best = ExtensionResult {
            score: 0,
            a_consumed: 0,
            b_consumed: 0,
        };
    }
    best
}

#[inline]
fn band_idx(i: usize, off: usize, w: usize) -> usize {
    i * w + off
}

/// Valid `j` range (inclusive) for row `i` under the band constraint.
/// The `saturating_sub` here is on band *geometry* (usize column
/// indices clamped at 0), not on scores — it cannot interact with the
/// `NEG_INF` sentinel.
#[inline]
fn band_bounds(i: usize, lb: usize, radius: usize) -> (usize, usize) {
    let lo = i.saturating_sub(radius);
    let hi = (i + radius).min(lb);
    (lo, hi)
}

/// Sentinel-aware score propagation: an unreachable predecessor
/// (`NEG_INF`) must stay exactly `NEG_INF`, never `NEG_INF + delta`.
/// Adding a positive match bonus to the sentinel would manufacture a
/// "phantom" cell that passes the `v > NEG_INF` reachability checks;
/// adding penalties would drift the sentinel downward toward genuine
/// i32 overflow over long gap runs.
#[inline]
fn sentinel_add(v: i32, delta: i32) -> i32 {
    if v <= NEG_INF {
        NEG_INF
    } else {
        v + delta
    }
}

/// Fill the workspace's three Gotoh matrices over the band. Matrices are
/// stored row-major with `2·radius + 1` offsets per row; offset `o` in
/// row `i` holds column `j = i + o − radius`. Allocation-free once the
/// workspace has grown to the input size.
fn banded_fill<V: SeqView>(a: V, b: V, scoring: &Scoring, radius: usize, ws: &mut AlignWorkspace) {
    let (la, lb) = (a.len(), b.len());
    let w = 2 * radius + 1;
    let size = (la + 1) * w;
    ws.reset_band(size, NEG_INF);
    let AlignWorkspace {
        band_m: m,
        band_x: x,
        band_y: y,
        ..
    } = ws;

    // Row 0: j in [0, radius].
    m[band_idx(0, radius, w)] = 0;
    for j in 1..=radius.min(lb) {
        y[band_idx(0, j + radius, w)] = scoring.gap_open + (j as i32 - 1) * scoring.gap_extend;
    }

    for i in 1..=la {
        let (lo, hi) = band_bounds(i, lb, radius);
        for j in lo..=hi {
            let off = j + radius - i;
            let idx = band_idx(i, off, w);
            if j == 0 {
                // First column: only a vertical gap run can reach it.
                x[idx] = scoring.gap_open + (i as i32 - 1) * scoring.gap_extend;
                continue;
            }
            // Diagonal predecessor (i-1, j-1) keeps the same offset.
            let pidx = band_idx(i - 1, off, w);
            let diag = m[pidx].max(x[pidx]).max(y[pidx]);
            m[idx] = sentinel_add(diag, scoring.pair(a.at(i - 1), b.at(j - 1)));
            // Vertical predecessor (i-1, j) sits one offset to the right.
            if off + 1 < w {
                let vidx = band_idx(i - 1, off + 1, w);
                x[idx] = sentinel_add(m[vidx], scoring.gap_open)
                    .max(sentinel_add(x[vidx], scoring.gap_extend))
                    .max(sentinel_add(y[vidx], scoring.gap_open));
            }
            // Horizontal predecessor (i, j-1) sits one offset to the left.
            if off >= 1 {
                let hidx = band_idx(i, off - 1, w);
                y[idx] = sentinel_add(m[hidx], scoring.gap_open)
                    .max(sentinel_add(y[hidx], scoring.gap_extend))
                    .max(sentinel_add(x[hidx], scoring.gap_open));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nw::global_score;
    use proptest::prelude::*;

    #[test]
    fn wide_band_equals_global() {
        let s = Scoring::default_est();
        for (a, b) in [
            (&b"GATTACA"[..], &b"GATCACA"[..]),
            (b"ACGT", b"ACCCGT"),
            (b"AAAA", b"TTTT"),
        ] {
            let banded = banded_global_score(a, b, &s, a.len().max(b.len())).unwrap();
            assert_eq!(banded, global_score(a, b, &s));
        }
    }

    #[test]
    fn band_too_narrow_returns_none() {
        let s = Scoring::unit();
        assert_eq!(banded_global_score(b"ACGTACGT", b"AC", &s, 2), None);
    }

    #[test]
    fn zero_radius_is_hamming_like() {
        // radius 0 allows only the main diagonal: pure match/mismatch.
        let s = Scoring::unit();
        assert_eq!(banded_global_score(b"ACGT", b"AGGT", &s, 0), Some(2));
        assert_eq!(banded_global_score(b"ACGT", b"ACGT", &s, 0), Some(4));
    }

    #[test]
    fn narrow_band_never_beats_global() {
        let s = Scoring::default_est();
        let (a, b) = (&b"ACGTACGTAACC"[..], &b"ACGACGTTAACC"[..]);
        let full = global_score(a, b, &s);
        for r in 1..6 {
            if let Some(banded) = banded_global_score(a, b, &s, r) {
                assert!(banded <= full, "radius {r}: banded {banded} > full {full}");
            }
        }
    }

    #[test]
    fn sentinel_add_never_leaves_the_sentinel() {
        // The regression for the old `saturating_add` on sentinel cells:
        // a positive match bonus must not lift NEG_INF into the
        // reachable range, and penalties must not drift it downward.
        assert_eq!(sentinel_add(NEG_INF, 2), NEG_INF);
        assert_eq!(sentinel_add(NEG_INF, -4), NEG_INF);
        assert_eq!(sentinel_add(NEG_INF, 0), NEG_INF);
        // Real values still propagate arithmetically.
        assert_eq!(sentinel_add(10, -3), 7);
        assert_eq!(sentinel_add(NEG_INF + 1, 2), NEG_INF + 3);
        // The old expression really did manufacture phantom cells.
        assert!(NEG_INF.saturating_add(2) > NEG_INF);
    }

    #[test]
    fn extension_consumes_matching_prefixes() {
        let s = Scoring::unit();
        // a fully matches a prefix of b: path should run to a's far edge.
        let r = banded_extension(b"ACGT", b"ACGTTTTT", &s, 3);
        assert_eq!(r.score, 4);
        assert_eq!(r.a_consumed, 4);
        assert_eq!(r.b_consumed, 4);
    }

    #[test]
    fn extension_with_empty_side_is_zero() {
        let s = Scoring::unit();
        let r = banded_extension(b"", b"ACGT", &s, 3);
        assert_eq!(
            r,
            ExtensionResult {
                score: 0,
                a_consumed: 0,
                b_consumed: 0
            }
        );
        let r = banded_extension(b"ACGT", b"", &s, 3);
        assert_eq!(r.score, 0);
    }

    #[test]
    fn extension_tolerates_one_error() {
        let s = Scoring::default_est();
        // One substitution mid-way; extension should still span everything.
        let r = banded_extension(b"ACGTACGT", b"ACGAACGT", &s, 2);
        assert_eq!(r.a_consumed, 8);
        assert_eq!(r.b_consumed, 8);
        assert_eq!(r.score, 7 * 2 - 3);
    }

    #[test]
    fn extension_handles_indel_within_band() {
        let s = Scoring::default_est();
        // b has one extra base; needs radius >= 1.
        let r = banded_extension(b"ACGTACGT", b"ACGTTACGT", &s, 1);
        assert_eq!(r.a_consumed, 8);
        assert_eq!(r.b_consumed, 9);
        assert_eq!(r.score, 8 * 2 - 4);
    }

    #[test]
    fn extension_stops_at_shorter_string_end() {
        let s = Scoring::unit();
        // b is a short prefix match; the path must end at j == lb.
        let r = banded_extension(b"ACGTACGT", b"ACG", &s, 2);
        assert_eq!(r.b_consumed, 3);
        assert!(r.a_consumed <= 5);
        assert_eq!(r.score, 3);
    }

    fn dna(max: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(
            proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
            0..max,
        )
    }

    proptest! {
        /// A band at least as wide as both strings is exact.
        #[test]
        fn full_width_band_is_exact(a in dna(30), b in dna(30)) {
            let s = Scoring::default_est();
            let r = a.len().max(b.len());
            prop_assert_eq!(
                banded_global_score(&a, &b, &s, r).unwrap(),
                global_score(&a, &b, &s)
            );
        }

        /// Any radius that covers the whole matrix is exact, for every
        /// scoring scheme — including length-skewed pairs whose band
        /// edges are dominated by sentinel cells.
        #[test]
        fn covering_band_is_exact_for_all_scorings(
            a in dna(40),
            b in dna(12),
            extra in 0usize..5,
        ) {
            for s in [Scoring::default_est(), Scoring::unit(), Scoring::edit_linear()] {
                let r = a.len().max(b.len()) + extra;
                prop_assert_eq!(
                    banded_global_score(&a, &b, &s, r).unwrap(),
                    global_score(&a, &b, &s)
                );
            }
        }

        /// Every filled band cell is either exactly the NEG_INF sentinel
        /// or a genuine path score: nothing in the phantom zone between
        /// them (what `saturating_add` over a sentinel used to produce).
        #[test]
        fn band_cells_are_sentinel_or_genuine(
            a in dna(30),
            b in dna(30),
            radius in 0usize..6,
        ) {
            let s = Scoring::default_est();
            let mut ws = crate::workspace::AlignWorkspace::new();
            let _ = banded_extension_with(&a[..], &b[..], &s, radius, &mut ws);
            // Any legitimate path score is bounded below by the worst
            // per-step penalty times the longest possible path.
            let worst = s.mismatch.min(s.gap_open).min(s.gap_extend);
            let floor = worst * (a.len() + b.len()) as i32;
            for band in [&ws.band_m, &ws.band_x, &ws.band_y] {
                for &v in band.iter() {
                    prop_assert!(
                        v == NEG_INF || v >= floor,
                        "phantom cell value {} (floor {}, NEG_INF {})",
                        v, floor, NEG_INF
                    );
                }
            }
        }

        /// Widening the band never lowers the score.
        #[test]
        fn band_monotonic_in_radius(a in dna(25), b in dna(25)) {
            let s = Scoring::default_est();
            let mut prev = None;
            for r in 0..=a.len().max(b.len()) {
                let cur = banded_global_score(&a, &b, &s, r);
                if let (Some(p), Some(c)) = (prev, cur) {
                    prop_assert!(c >= p, "radius {} score {} < previous {}", r, c, p);
                }
                if cur.is_some() {
                    prev = cur;
                }
            }
        }

        /// The extension score is never negative-infinite, and consumed
        /// lengths stay within bounds and the band constraint.
        #[test]
        fn extension_result_well_formed(a in dna(25), b in dna(25), radius in 0usize..6) {
            let s = Scoring::default_est();
            let r = banded_extension(&a, &b, &s, radius);
            prop_assert!(r.a_consumed <= a.len());
            prop_assert!(r.b_consumed <= b.len());
            if !(a.is_empty() || b.is_empty()) {
                prop_assert!(r.a_consumed == a.len() || r.b_consumed == b.len()
                    || (r.a_consumed == 0 && r.b_consumed == 0));
            }
            prop_assert!(r.a_consumed.abs_diff(r.b_consumed) <= radius);
        }

        /// Extending identical strings consumes both fully at ideal score.
        #[test]
        fn extension_of_identical(a in dna(25)) {
            let s = Scoring::default_est();
            let r = banded_extension(&a, &a, &s, 2);
            prop_assert_eq!(r.a_consumed, a.len());
            prop_assert_eq!(r.b_consumed, a.len());
            prop_assert_eq!(r.score, s.ideal(a.len()));
        }
    }
}
