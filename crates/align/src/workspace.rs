//! Reusable DP scratch memory.
//!
//! The paper bounds GST construction so that pairwise alignment becomes
//! the throughput-limiting phase; rebuilding the DP row vectors on every
//! call is pure overhead there. An [`AlignWorkspace`] owns every scratch
//! buffer the kernels in this crate need — the banded M/X/Y band rows,
//! the six rolling Gotoh rows, and the semiglobal score/origin rows — so
//! a slave allocates **once per rank** and every subsequent pair reuses
//! the same capacity (`clear` + `resize` never shrink a `Vec`).

/// Scratch buffers shared by all alignment kernels.
///
/// Create one per worker (rank/thread) and pass it to the `*_with`
/// kernel variants. Buffers grow to the high-water mark of the inputs
/// seen and are reused thereafter; the struct is cheap to create but
/// each fresh instance costs the allocations the reuse is meant to
/// avoid.
#[derive(Debug, Default)]
pub struct AlignWorkspace {
    /// Banded Gotoh matrices, row-major `(la + 1) × (2·radius + 1)`.
    pub(crate) band_m: Vec<i32>,
    pub(crate) band_x: Vec<i32>,
    pub(crate) band_y: Vec<i32>,
    /// Rolling Gotoh rows (previous / current) for the full-matrix
    /// score kernels (`nw`, `sw`).
    pub(crate) m_prev: Vec<i32>,
    pub(crate) x_prev: Vec<i32>,
    pub(crate) y_prev: Vec<i32>,
    pub(crate) m_cur: Vec<i32>,
    pub(crate) x_cur: Vec<i32>,
    pub(crate) y_cur: Vec<i32>,
    /// Semiglobal rolling row: scores and alignment-start origins.
    pub(crate) semi_score: Vec<i32>,
    pub(crate) semi_origin: Vec<(u32, u32)>,
    /// Reversed anchor prefixes for the anchored kernel's left extension,
    /// so the DP scans contiguous forward slices.
    pub(crate) rev_a: Vec<u8>,
    pub(crate) rev_b: Vec<u8>,
    /// Per-symbol match bitmasks for the Myers bit-parallel kernel,
    /// `distinct symbols × word count` words, plus the symbol→slot map.
    pub(crate) myers_peq: Vec<u64>,
    pub(crate) myers_slots: Vec<u16>,
    /// Number of kernel invocations served (diagnostics/tests).
    uses: u64,
}

impl AlignWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        AlignWorkspace::default()
    }

    /// Number of kernel calls this workspace has served.
    #[inline]
    pub fn uses(&self) -> u64 {
        self.uses
    }

    /// Total scratch capacity currently held, in bytes (diagnostics).
    pub fn capacity_bytes(&self) -> usize {
        let i32s = self.band_m.capacity()
            + self.band_x.capacity()
            + self.band_y.capacity()
            + self.m_prev.capacity()
            + self.x_prev.capacity()
            + self.y_prev.capacity()
            + self.m_cur.capacity()
            + self.x_cur.capacity()
            + self.y_cur.capacity()
            + self.semi_score.capacity();
        i32s * std::mem::size_of::<i32>()
            + self.semi_origin.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.rev_a.capacity()
            + self.rev_b.capacity()
            + self.myers_peq.capacity() * std::mem::size_of::<u64>()
            + self.myers_slots.capacity() * std::mem::size_of::<u16>()
    }

    /// Take the reversed-prefix buffers out (cleared), freeing `self`
    /// for a nested kernel call; return them with [`put_rev`](Self::put_rev).
    #[inline]
    pub(crate) fn take_rev(&mut self) -> (Vec<u8>, Vec<u8>) {
        let mut a = std::mem::take(&mut self.rev_a);
        let mut b = std::mem::take(&mut self.rev_b);
        a.clear();
        b.clear();
        (a, b)
    }

    /// Return the buffers taken by [`take_rev`](Self::take_rev) so their
    /// capacity is reused by the next call.
    #[inline]
    pub(crate) fn put_rev(&mut self, a: Vec<u8>, b: Vec<u8>) {
        self.rev_a = a;
        self.rev_b = b;
    }

    /// Reset the three band matrices to `fill` at `size` cells each.
    #[inline]
    pub(crate) fn reset_band(&mut self, size: usize, fill: i32) {
        self.uses += 1;
        for band in [&mut self.band_m, &mut self.band_x, &mut self.band_y] {
            band.clear();
            band.resize(size, fill);
        }
    }

    /// Reset the six rolling rows to `fill` at `len` cells each.
    #[inline]
    pub(crate) fn reset_rows(&mut self, len: usize, fill: i32) {
        self.uses += 1;
        for row in [
            &mut self.m_prev,
            &mut self.x_prev,
            &mut self.y_prev,
            &mut self.m_cur,
            &mut self.x_cur,
            &mut self.y_cur,
        ] {
            row.clear();
            row.resize(len, fill);
        }
    }

    /// Reset the Myers match-mask scratch: clears the per-symbol bitmask
    /// pool and the symbol→slot map (capacity is kept).
    #[inline]
    pub(crate) fn reset_myers(&mut self) {
        self.uses += 1;
        self.myers_peq.clear();
        if self.myers_slots.len() != 256 {
            self.myers_slots.clear();
            self.myers_slots.resize(256, u16::MAX);
        } else {
            self.myers_slots.fill(u16::MAX);
        }
    }

    /// Reset the semiglobal rows for `lb + 1` columns.
    #[inline]
    pub(crate) fn reset_semi(&mut self, len: usize) {
        self.uses += 1;
        self.semi_score.clear();
        self.semi_score.resize(len, 0);
        self.semi_origin.clear();
        self.semi_origin.extend((0..len as u32).map(|j| (0u32, j)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_keep_capacity_across_resets() {
        let mut ws = AlignWorkspace::new();
        ws.reset_band(1024, -1);
        let cap = ws.band_m.capacity();
        assert!(cap >= 1024);
        ws.reset_band(16, 0);
        assert_eq!(ws.band_m.len(), 16);
        assert_eq!(ws.band_m.capacity(), cap, "shrank instead of reusing");
        assert!(ws.band_m.iter().all(|&v| v == 0));
        assert_eq!(ws.uses(), 2);
    }

    #[test]
    fn reset_rows_fills_fresh_values() {
        let mut ws = AlignWorkspace::new();
        ws.reset_rows(8, 7);
        ws.m_prev[3] = 99;
        ws.reset_rows(8, 7);
        assert!(ws.m_prev.iter().all(|&v| v == 7), "stale state leaked");
    }

    #[test]
    fn reset_semi_rebuilds_origins() {
        let mut ws = AlignWorkspace::new();
        ws.reset_semi(5);
        assert_eq!(ws.semi_origin, vec![(0, 0), (0, 1), (0, 2), (0, 3), (0, 4)]);
        ws.semi_origin[2] = (9, 9);
        ws.reset_semi(3);
        assert_eq!(ws.semi_origin, vec![(0, 0), (0, 1), (0, 2)]);
    }

    #[test]
    fn capacity_accounting_grows() {
        let mut ws = AlignWorkspace::new();
        assert_eq!(ws.capacity_bytes(), 0);
        ws.reset_band(100, 0);
        ws.reset_rows(50, 0);
        ws.reset_semi(50);
        assert!(ws.capacity_bytes() >= (300 + 300) * 4);
    }
}
