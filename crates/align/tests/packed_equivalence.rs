//! Packed-vs-ASCII equivalence: every alignment kernel must produce
//! *identical* results whether it reads plain ASCII bytes or the 2-bit
//! packed codes of `pace-seq`, across random EST pairs, band radii and
//! anchors — and reusing one `AlignWorkspace` across many calls must
//! never change any answer. This is the correctness keel for running
//! the clustering hot path directly over packed sequences.

use pace_align::{
    align_anchored_with, banded_extension_with, banded_global_score_with, diagonal_identity,
    global_score_with, local_score_with, semiglobal_align_with, AlignWorkspace, Anchor, Scoring,
};
use pace_seq::PackedDna;
use proptest::prelude::*;

fn dna(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
        min..max,
    )
}

/// Longest exact common substring by brute force (test-side anchor).
fn anchor_of(a: &[u8], b: &[u8]) -> Anchor {
    let mut best = Anchor {
        a_pos: 0,
        b_pos: 0,
        len: 0,
    };
    for i in 0..a.len() {
        for j in 0..b.len() {
            let mut k = 0;
            while i + k < a.len() && j + k < b.len() && a[i + k] == b[j + k] {
                k += 1;
            }
            if k > best.len {
                best = Anchor {
                    a_pos: i,
                    b_pos: j,
                    len: k,
                };
            }
        }
    }
    best
}

/// Overlapping read pair from a shared template with some noise, so the
/// generator exercises realistic EST geometry, not just random strings.
fn overlapping_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (dna(30, 80), 3usize..20, any::<u64>()).prop_map(|(template, cut, noise)| {
        let cut = cut.min(template.len() / 3);
        let mut a = template[..template.len() - cut].to_vec();
        let b = template[cut..].to_vec();
        // One deterministic substitution inside `a`.
        if !a.is_empty() {
            let pos = (noise as usize) % a.len();
            a[pos] = match a[pos] {
                b'A' => b'C',
                b'C' => b'G',
                b'G' => b'T',
                _ => b'A',
            };
        }
        (a, b)
    })
}

proptest! {
    /// Banded global + extension: packed equals ASCII cell for cell.
    #[test]
    fn banded_kernels_agree(a in dna(0, 60), b in dna(0, 60), radius in 0usize..9) {
        let s = Scoring::default_est();
        let pa = PackedDna::from_ascii(&a).unwrap();
        let pb = PackedDna::from_ascii(&b).unwrap();
        let mut ws_ascii = AlignWorkspace::new();
        let mut ws_packed = AlignWorkspace::new();

        prop_assert_eq!(
            banded_global_score_with(&a[..], &b[..], &s, radius, &mut ws_ascii),
            banded_global_score_with(pa.as_slice(), pb.as_slice(), &s, radius, &mut ws_packed)
        );
        prop_assert_eq!(
            banded_extension_with(&a[..], &b[..], &s, radius, &mut ws_ascii),
            banded_extension_with(pa.as_slice(), pb.as_slice(), &s, radius, &mut ws_packed)
        );
    }

    /// Full-matrix kernels (global, local, semiglobal) agree on both
    /// representations, sharing one workspace per representation.
    #[test]
    fn full_matrix_kernels_agree(a in dna(0, 50), b in dna(0, 50)) {
        let s = Scoring::default_est();
        let pa = PackedDna::from_ascii(&a).unwrap();
        let pb = PackedDna::from_ascii(&b).unwrap();
        let mut ws_ascii = AlignWorkspace::new();
        let mut ws_packed = AlignWorkspace::new();

        prop_assert_eq!(
            global_score_with(&a[..], &b[..], &s, &mut ws_ascii),
            global_score_with(pa.as_slice(), pb.as_slice(), &s, &mut ws_packed)
        );
        prop_assert_eq!(
            local_score_with(&a[..], &b[..], &s, &mut ws_ascii),
            local_score_with(pa.as_slice(), pb.as_slice(), &s, &mut ws_packed)
        );
        prop_assert_eq!(
            semiglobal_align_with(&a[..], &b[..], &s, &mut ws_ascii),
            semiglobal_align_with(pa.as_slice(), pb.as_slice(), &s, &mut ws_packed)
        );
    }

    /// The production kernel: anchored extension over realistic
    /// overlapping pairs, all band radii — identical scores, coordinates,
    /// overlap kinds, and diagonal identities on both representations.
    #[test]
    fn anchored_alignment_agrees(
        pair in overlapping_pair(),
        radius in 0usize..7,
    ) {
        let (a, b) = pair;
        let anchor = anchor_of(&a, &b);
        prop_assume!(anchor.len >= 3);
        let s = Scoring::default_est();
        let pa = PackedDna::from_ascii(&a).unwrap();
        let pb = PackedDna::from_ascii(&b).unwrap();
        let mut ws_ascii = AlignWorkspace::new();
        let mut ws_packed = AlignWorkspace::new();

        let aln_ascii = align_anchored_with(&a[..], &b[..], anchor, &s, radius, &mut ws_ascii);
        let aln_packed =
            align_anchored_with(pa.as_slice(), pb.as_slice(), anchor, &s, radius, &mut ws_packed);
        prop_assert_eq!(aln_ascii, aln_packed);

        let id_ascii = diagonal_identity(&a[..], &b[..], anchor);
        let id_packed = diagonal_identity(pa.as_slice(), pb.as_slice(), anchor);
        prop_assert!((id_ascii - id_packed).abs() < 1e-15);
    }

    /// Workspace reuse never changes an answer: a single workspace
    /// serving a whole batch of pairs produces exactly what fresh
    /// workspaces produce pair by pair.
    #[test]
    fn workspace_reuse_is_stateless(
        pairs in proptest::collection::vec((dna(0, 40), dna(0, 40)), 1..12),
        radius in 0usize..6,
    ) {
        let s = Scoring::default_est();
        let mut shared = AlignWorkspace::new();
        for (a, b) in &pairs {
            let with_shared =
                banded_global_score_with(&a[..], &b[..], &s, radius, &mut shared);
            let with_fresh =
                banded_global_score_with(&a[..], &b[..], &s, radius, &mut AlignWorkspace::new());
            prop_assert_eq!(with_shared, with_fresh);

            let ext_shared = banded_extension_with(&a[..], &b[..], &s, radius, &mut shared);
            let ext_fresh =
                banded_extension_with(&a[..], &b[..], &s, radius, &mut AlignWorkspace::new());
            prop_assert_eq!(ext_shared, ext_fresh);

            let g_shared = global_score_with(&a[..], &b[..], &s, &mut shared);
            let g_fresh = global_score_with(&a[..], &b[..], &s, &mut AlignWorkspace::new());
            prop_assert_eq!(g_shared, g_fresh);

            let l_shared = local_score_with(&a[..], &b[..], &s, &mut shared);
            let l_fresh = local_score_with(&a[..], &b[..], &s, &mut AlignWorkspace::new());
            prop_assert_eq!(l_shared, l_fresh);

            let sg_shared = semiglobal_align_with(&a[..], &b[..], &s, &mut shared);
            let sg_fresh = semiglobal_align_with(&a[..], &b[..], &s, &mut AlignWorkspace::new());
            prop_assert_eq!(sg_shared, sg_fresh);
        }
        // The full-matrix kernels always reset the workspace; the banded
        // ones may bail out early (band too narrow, empty side), so at
        // least three resets per pair are guaranteed.
        prop_assert!(shared.uses() >= pairs.len() as u64 * 3);
    }
}
