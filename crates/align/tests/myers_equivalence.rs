//! Myers-vs-scalar equivalence: for every edit-convertible scoring
//! scheme, the bit-parallel banded kernel must be *score-identical* to
//! the scalar banded kernel — same extension scores, same consumed
//! lengths, same tie-breaks, same anchored alignments — across random
//! sequences, band radii, and both the ASCII and 2-bit packed
//! representations. This is the correctness keel that lets the
//! clustering engine swap kernels based on a config flag alone.

use pace_align::{
    align_anchored_myers_with, align_anchored_with, banded_extension_with,
    banded_global_score_with, myers_banded_distance_with, myers_banded_extension_with,
    AlignWorkspace, Anchor, Scoring, MYERS_MAX_RADIUS,
};
use pace_seq::PackedDna;
use proptest::prelude::*;

fn dna(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
        min..max,
    )
}

/// The edit-convertible schemes the engine may run the Myers kernel
/// under; every test property must hold for all of them.
fn convertible_scorings() -> impl Strategy<Value = Scoring> {
    proptest::sample::select(vec![
        Scoring::edit_linear(),       // c = 2
        Scoring::linear(4, -1, -3),   // c = 5
        Scoring::linear(6, -3, -6),   // c = 9
        Scoring::linear(10, -2, -7),  // c = 12
    ])
}

/// Longest exact common substring by brute force (test-side anchor).
fn anchor_of(a: &[u8], b: &[u8]) -> Anchor {
    let mut best = Anchor {
        a_pos: 0,
        b_pos: 0,
        len: 0,
    };
    for i in 0..a.len() {
        for j in 0..b.len() {
            let mut k = 0;
            while i + k < a.len() && j + k < b.len() && a[i + k] == b[j + k] {
                k += 1;
            }
            if k > best.len {
                best = Anchor {
                    a_pos: i,
                    b_pos: j,
                    len: k,
                };
            }
        }
    }
    best
}

/// Overlapping read pair from a shared template with one substitution,
/// mirroring the generator in `packed_equivalence.rs`.
fn overlapping_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (dna(30, 80), 3usize..20, any::<u64>()).prop_map(|(template, cut, noise)| {
        let cut = cut.min(template.len() / 3);
        let mut a = template[..template.len() - cut].to_vec();
        let b = template[cut..].to_vec();
        if !a.is_empty() {
            let pos = (noise as usize) % a.len();
            a[pos] = match a[pos] {
                b'A' => b'C',
                b'C' => b'G',
                b'G' => b'T',
                _ => b'A',
            };
        }
        (a, b)
    })
}

proptest! {
    /// The core identity: the bit-parallel extension equals the scalar
    /// banded extension on every input — score, consumed lengths, and
    /// tie-breaking — for every convertible scoring scheme.
    #[test]
    fn extension_is_score_identical(
        a in dna(0, 60),
        b in dna(0, 60),
        radius in 0usize..9,
        s in convertible_scorings(),
    ) {
        let mut ws_fast = AlignWorkspace::new();
        let mut ws_slow = AlignWorkspace::new();
        let fast = myers_banded_extension_with(&a[..], &b[..], &s, radius, &mut ws_fast)
            .expect("convertible scoring within the radius cap must engage");
        let slow = banded_extension_with(&a[..], &b[..], &s, radius, &mut ws_slow);
        prop_assert_eq!(fast, slow);
    }

    /// Banded global score through the distance lens: converting the
    /// bit-parallel banded distance must reproduce the scalar banded
    /// global score cell (la, lb) exactly, including the None band gap.
    #[test]
    fn distance_converts_to_global_score(
        a in dna(0, 60),
        b in dna(0, 60),
        radius in 0usize..9,
        s in convertible_scorings(),
    ) {
        let c = s.edit_unit_cost().unwrap();
        let mut ws = AlignWorkspace::new();
        let dist = myers_banded_distance_with(&a[..], &b[..], radius, &mut ws);
        let score = banded_global_score_with(&a[..], &b[..], &s, radius, &mut ws);
        match (dist, score) {
            (Some(d), Some(v)) => {
                let total = (a.len() + b.len()) as i64;
                prop_assert_eq!(
                    v as i64,
                    (s.match_score as i64 * total - 2 * c as i64 * d as i64) / 2
                );
            }
            (None, None) => {}
            other => prop_assert!(false, "eligibility mismatch: {:?}", other),
        }
    }

    /// Packed and ASCII views agree bit for bit through the Myers kernel,
    /// and both agree with the scalar kernel.
    #[test]
    fn packed_and_ascii_views_agree(
        a in dna(0, 60),
        b in dna(0, 60),
        radius in 0usize..9,
        s in convertible_scorings(),
    ) {
        let pa = PackedDna::from_ascii(&a).unwrap();
        let pb = PackedDna::from_ascii(&b).unwrap();
        let mut ws_ascii = AlignWorkspace::new();
        let mut ws_packed = AlignWorkspace::new();

        let ext_ascii = myers_banded_extension_with(&a[..], &b[..], &s, radius, &mut ws_ascii);
        let ext_packed =
            myers_banded_extension_with(pa.as_slice(), pb.as_slice(), &s, radius, &mut ws_packed);
        prop_assert_eq!(ext_ascii, ext_packed);
        prop_assert_eq!(
            ext_ascii.unwrap(),
            banded_extension_with(&a[..], &b[..], &s, radius, &mut ws_ascii)
        );

        prop_assert_eq!(
            myers_banded_distance_with(&a[..], &b[..], radius, &mut ws_ascii),
            myers_banded_distance_with(pa.as_slice(), pb.as_slice(), radius, &mut ws_packed)
        );
    }

    /// The production path: anchored alignment over realistic
    /// overlapping pairs — the Myers twin reproduces the scalar result
    /// exactly (score, coordinates, overlap kind) on both views.
    #[test]
    fn anchored_myers_is_identical(
        pair in overlapping_pair(),
        radius in 0usize..7,
        s in convertible_scorings(),
    ) {
        let (a, b) = pair;
        let anchor = anchor_of(&a, &b);
        prop_assume!(anchor.len >= 3);
        let pa = PackedDna::from_ascii(&a).unwrap();
        let pb = PackedDna::from_ascii(&b).unwrap();
        let mut ws = AlignWorkspace::new();

        let scalar = align_anchored_with(&a[..], &b[..], anchor, &s, radius, &mut ws);
        let fast = align_anchored_myers_with(&a[..], &b[..], anchor, &s, radius, &mut ws)
            .expect("convertible scoring must engage");
        prop_assert_eq!(fast, scalar);

        let fast_packed =
            align_anchored_myers_with(pa.as_slice(), pb.as_slice(), anchor, &s, radius, &mut ws)
                .expect("packed view must engage identically");
        prop_assert_eq!(fast_packed, scalar);
    }

    /// Workspace reuse never changes an answer, and interleaving Myers
    /// calls with scalar banded calls on one workspace is harmless.
    #[test]
    fn workspace_reuse_is_stateless(
        pairs in proptest::collection::vec((dna(0, 40), dna(0, 40)), 1..10),
        radius in 0usize..6,
    ) {
        let s = Scoring::edit_linear();
        let mut shared = AlignWorkspace::new();
        for (a, b) in &pairs {
            let with_shared =
                myers_banded_extension_with(&a[..], &b[..], &s, radius, &mut shared);
            // Interleave a scalar call to dirty the band scratch.
            let _ = banded_extension_with(&a[..], &b[..], &s, radius, &mut shared);
            let with_fresh =
                myers_banded_extension_with(&a[..], &b[..], &s, radius, &mut AlignWorkspace::new());
            prop_assert_eq!(with_shared, with_fresh);
        }
    }

    /// Ineligible configurations always decline instead of guessing:
    /// non-convertible scorings and over-cap radii return None.
    #[test]
    fn ineligible_configs_decline(a in dna(1, 30), b in dna(1, 30)) {
        let mut ws = AlignWorkspace::new();
        prop_assert_eq!(
            myers_banded_extension_with(&a[..], &b[..], &Scoring::default_est(), 3, &mut ws),
            None
        );
        prop_assert_eq!(
            myers_banded_extension_with(
                &a[..], &b[..], &Scoring::edit_linear(), MYERS_MAX_RADIUS + 1, &mut ws),
            None
        );
    }
}
