//! Critical-path scaling model for single-CPU hosts.
//!
//! The paper's Figure 6a and Table 3 need a machine where every rank has
//! its own processor; this benchmark host has **one** hardware thread,
//! so wall-clock time cannot shrink with `p` no matter how faithful the
//! message-passing runtime is. Following the repository's substitution
//! policy (DESIGN.md §3), the scaling experiments therefore report a
//! *modeled critical path* built from measured quantities only:
//!
//! * the per-phase serial work is **measured** by running the sequential
//!   driver on the actual workload;
//! * the per-rank share of suffix-tree work is **computed exactly** from
//!   the real bucket partition (`max load / total load` over the LPT
//!   assignment for `p − 1` slaves) — this is where load imbalance, the
//!   dominant deviation from ideal speedup, enters;
//! * embarrassingly divisible phases (bucket counting, alignment, which
//!   the master spreads over slaves in batches) are divided by the slave
//!   count.
//!
//! The model is deliberately simple and fully reproducible; it contains
//! no fitted constants. On a multi-core host the harness prints measured
//! wall clock next to the model.

use pace_cluster::{cluster_sequential, ClusterConfig, ClusterResult, PhaseTimers};
use pace_gst::{assign_buckets, count_buckets};
use pace_seq::SequenceStore;

/// Serial phase measurements plus the data needed to re-partition.
pub struct ScalingModel {
    /// Measured sequential phase times.
    pub serial: PhaseTimers,
    /// Global per-bucket suffix counts (for the per-p LPT partition).
    counts: Vec<u64>,
}

impl ScalingModel {
    /// Run the sequential driver once on `store` and capture everything
    /// the model needs. Returns the model and the sequential result (so
    /// callers don't pay for the run twice).
    pub fn fit(store: &SequenceStore, cfg: &ClusterConfig) -> (Self, ClusterResult) {
        let result = cluster_sequential(store, cfg);
        let counts = count_buckets(store, cfg.window_w);
        (
            ScalingModel {
                serial: result.stats.timers,
                counts,
            },
            result,
        )
    }

    /// The maximum-to-total load share of the busiest slave when the
    /// buckets are LPT-assigned to `slaves` ranks.
    pub fn load_share(&self, slaves: usize) -> f64 {
        let partition = assign_buckets(&self.counts, slaves);
        let loads = partition.load_per_rank();
        let max = *loads.iter().max().unwrap_or(&0) as f64;
        let total: u64 = loads.iter().sum();
        if total == 0 {
            0.0
        } else {
            max / total as f64
        }
    }

    /// Modeled critical-path phase times for `p` ranks (1 master +
    /// `p − 1` slaves). `p == 1` returns the measured serial times.
    pub fn predict(&self, p: usize) -> PhaseTimers {
        if p <= 1 {
            return self.serial;
        }
        let slaves = p - 1;
        let share = self.load_share(slaves);
        let t = &self.serial;
        let partitioning = t.partitioning / slaves as f64;
        let gst_construction = t.gst_construction * share;
        let node_sorting = t.node_sorting * share;
        let alignment = t.alignment / slaves as f64;
        let accounted = t.partitioning + t.gst_construction + t.node_sorting + t.alignment;
        // Whatever the sequential driver spent outside the four phases
        // (pair generation, cluster bookkeeping) is suffix-tree-shaped
        // work on the slaves: scale it by the load share too.
        let residue = (t.total - accounted).max(0.0) * share;
        PhaseTimers {
            partitioning,
            gst_construction,
            node_sorting,
            alignment,
            total: partitioning + gst_construction + node_sorting + alignment + residue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset;

    fn model() -> ScalingModel {
        let ds = dataset(150, 9901);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let (model, result) = ScalingModel::fit(&store, &crate::paper_cfg());
        assert!(result.stats.timers.total > 0.0);
        model
    }

    #[test]
    fn prediction_is_monotone_in_p() {
        let m = model();
        let mut last = f64::INFINITY;
        for p in [1usize, 2, 3, 5, 9, 17] {
            let t = m.predict(p).total;
            assert!(t > 0.0);
            assert!(
                t <= last * 1.0001,
                "modeled time rose from {last} to {t} at p={p}"
            );
            last = t;
        }
    }

    #[test]
    fn p1_is_the_measurement() {
        let m = model();
        assert_eq!(m.predict(1), m.serial);
    }

    #[test]
    fn load_share_bounds() {
        let m = model();
        for slaves in [1usize, 2, 4, 8] {
            let s = m.load_share(slaves);
            assert!(s <= 1.0 + 1e-12);
            assert!(s >= 1.0 / slaves as f64 - 1e-12);
        }
        assert!((m.load_share(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phases_shrink_with_p() {
        let m = model();
        let t2 = m.predict(2);
        let t8 = m.predict(8);
        assert!(t8.alignment < t2.alignment + 1e-12);
        assert!(t8.gst_construction <= t2.gst_construction + 1e-12);
    }
}
