//! Shared workloads and formatting for the benchmark harness.
//!
//! Every table and figure of the paper has a binary in `src/bin` that
//! regenerates it (`table1`–`table3`, `fig6a`–`fig8`, `ablations`), and
//! the criterion benches in `benches/` time the underlying kernels.
//!
//! ## Scaling
//!
//! The paper's runs use up to 81,414 ESTs of ~500–600 bases on a 128-CPU
//! IBM SP. The harness reproduces the *shape* of each experiment at a
//! configurable fraction of that size: every binary divides the paper's
//! EST counts by the scale factor `σ` (default 20, environment variable
//! `PACE_SCALE`), keeping read length, error rate and coverage per gene
//! realistic so the pair statistics behave like the original.

pub mod model;

use pace_cluster::ClusterConfig;
use pace_obs::{Json, Obs};
use pace_simulate::{EstDataset, SimConfig};

/// The paper's benchmark data set sizes (Arabidopsis subsets).
pub const PAPER_SIZES: [usize; 4] = [10_051, 30_000, 60_018, 81_414];

/// The scale divisor σ: paper sizes are divided by this.
pub fn scale() -> usize {
    std::env::var("PACE_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(20)
}

/// A paper size divided by the current scale (at least 60 ESTs).
pub fn scaled(n_paper: usize) -> usize {
    (n_paper / scale()).max(60)
}

/// Threads available for the `p` sweeps.
pub fn max_ranks() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Generate the benchmark data set for `n` ESTs: full-length reads
/// (~550 bases), 2% sequencing error, both strands, genomic repeats and
/// a trickle of chimeric reads — the library artifacts that give real
/// EST clustering its over-prediction floor (the paper's non-zero OV
/// column). Expression is a flattened Zipf, modeling the *normalized*
/// cDNA libraries EST projects sequenced (normalization suppresses the
/// head transcripts precisely so coverage spreads — and it also bounds
/// the damage any single chimera can do, which is what keeps real OV in
/// the single digits).
pub fn dataset(n: usize, seed: u64) -> EstDataset {
    let cfg = SimConfig {
        chimera_prob: 0.002,
        expression: pace_simulate::Expression::Zipf(0.6),
        ..SimConfig::sized(n, seed)
    };
    pace_simulate::generate(&cfg)
}

/// The clustering configuration used throughout the harness: the paper's
/// settings (window 8, ψ 20, batchsize 60).
pub fn paper_cfg() -> ClusterConfig {
    ClusterConfig::default()
}

/// If `PACE_METRICS_DIR` is set, write the schema-versioned metrics
/// report for one instrumented run to `<dir>/<tag>.json` — the same
/// `pace_obs::report` document the CLI's `--metrics-out` produces. Meta
/// entries are `(key, value)` pairs stored under the report's `"meta"`
/// object; numbers should be passed as `Json::Num`. The directory is
/// created if missing; failures are reported on stderr but never abort
/// a benchmark.
pub fn maybe_write_metrics(tag: &str, obs: &Obs, meta: Vec<(String, Json)>) {
    let Ok(dir) = std::env::var("PACE_METRICS_DIR") else {
        return;
    };
    let doc = pace_obs::report::to_json(&obs.registry().snapshot(), meta);
    let path = std::path::Path::new(&dir).join(format!("{tag}.json"));
    let write = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(&path, pace_obs::report::to_pretty_string(&doc)));
    match write {
        Ok(()) => eprintln!("[metrics] wrote {}", path.display()),
        Err(e) => eprintln!("[metrics] could not write {}: {e}", path.display()),
    }
}

/// Pretty horizontal rule for table output.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

/// Format seconds compactly.
pub fn secs(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}s")
    } else if t >= 1.0 {
        format!("{t:.1}s")
    } else {
        format!("{:.0}ms", t * 1000.0)
    }
}

/// Format a byte count as MB.
pub fn megabytes(bytes: usize) -> String {
    format!("{:.1} MB", bytes as f64 / (1024.0 * 1024.0))
}

/// Standard experiment banner: what the paper reported and how we scale.
pub fn banner(title: &str, paper_note: &str) {
    println!("{}", rule(72));
    println!("{title}");
    println!("paper: {paper_note}");
    println!(
        "this run: scale 1/{} of the paper's EST counts ({} hardware threads)",
        scale(),
        max_ranks()
    );
    println!("{}", rule(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_sizes_are_sane() {
        for n in PAPER_SIZES {
            assert!(scaled(n) >= 60);
            assert!(scaled(n) <= n);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(0.5), "500ms");
        assert_eq!(secs(2.25), "2.2s");
        assert_eq!(secs(123.0), "123s");
        assert_eq!(megabytes(1024 * 1024), "1.0 MB");
        assert_eq!(rule(3), "---");
    }

    #[test]
    fn dataset_matches_request() {
        let ds = dataset(80, 5);
        assert_eq!(ds.len(), 80);
        // Full-length reads: mean ~550.
        let mean = ds.total_bases() as f64 / ds.len() as f64;
        assert!((450.0..650.0).contains(&mean), "mean read length {mean}");
    }
}
