//! Table 3 — time spent in each component for 20,000 ESTs.
//!
//! Paper (seconds on the IBM SP):
//!
//! | p   | Partitioning | GST build | Node sort | Alignment | Total |
//! |-----|--------------|-----------|-----------|-----------|-------|
//! | 8   | 3            | 180       | 5         | 42        | 230   |
//! | 16  | 1            | 91        | 2         | 27        | 121   |
//! | 32  | 1            | 45        | 1         | 13        | 60    |
//! | 64  | 0.5          | 22        | 0.5       | 8         | 31    |
//! | 128 | 0.5          | 11        | 0.5       | 5         | 17    |
//!
//! Expected shape: every component shrinks with p; GST construction
//! dominates at this (small) size; partitioning and node sorting are
//! negligible throughout.
//!
//! On hosts with one hardware thread the per-p rows are the modeled
//! critical path of `pace_bench::model` (measured serial phase work +
//! the real LPT bucket partition); on multi-core hosts the measured
//! wall-clock of the threaded run is printed alongside.

use pace_bench::model::ScalingModel;
use pace_bench::{banner, dataset, max_ranks, maybe_write_metrics, paper_cfg, scaled};
use pace_cluster::cluster_parallel_obs;
use pace_obs::{metric, Json, Obs};
use pace_seq::SequenceStore;

fn main() {
    banner(
        "Table 3: component breakdown, n ≈ 20,000 / σ",
        "GST build dominates at n=20k; all components scale down with p",
    );

    let n = scaled(20_000);
    let ds = dataset(n, 3000);
    let store = SequenceStore::from_ests(&ds.ests).unwrap();
    println!("n = {n} ESTs, {} bases", ds.total_bases());

    let (model, seq) = ScalingModel::fit(&store, &paper_cfg());
    println!(
        "measured serial phase work: partition {:.3}s, GST {:.3}s, sort {:.3}s, align {:.3}s\n",
        seq.stats.timers.partitioning,
        seq.stats.timers.gst_construction,
        seq.stats.timers.node_sorting,
        seq.stats.timers.alignment
    );

    println!("modeled critical path (measured work + real bucket partition):");
    println!(
        "{:>4} {:>13} {:>10} {:>10} {:>10} {:>8}",
        "p", "Partitioning", "GST", "NodeSort", "Align", "Total"
    );
    for p in [8usize, 16, 32, 64, 128] {
        let t = model.predict(p);
        println!(
            "{:>4} {:>13.3} {:>10.3} {:>10.3} {:>10.3} {:>8.3}",
            p, t.partitioning, t.gst_construction, t.node_sorting, t.alignment, t.total
        );
    }

    if max_ranks() > 1 {
        println!("\nmeasured wall clock of the threaded runtime on this host:");
        println!(
            "{:>4} {:>13} {:>10} {:>10} {:>10} {:>8}",
            "p", "Partitioning", "GST", "NodeSort", "Align", "Total"
        );
        let mut p = 2;
        while p <= max_ranks() {
            // Read the component times back out of the shared metric
            // registry: the per-phase max over ranks is the critical
            // path, which is what Table 3 reports.
            let obs = Obs::noop();
            let (r, _) = cluster_parallel_obs(&store, &paper_cfg(), p, &obs);
            let snap = obs.registry().snapshot();
            let crit = |name: &str| snap.phases.get(name).map_or(0.0, |a| a.max);
            println!(
                "{:>4} {:>13.3} {:>10.3} {:>10.3} {:>10.3} {:>8.3}",
                p,
                crit(metric::PHASE_PARTITIONING),
                crit(metric::PHASE_GST_CONSTRUCTION),
                crit(metric::PHASE_NODE_SORTING),
                crit(metric::PHASE_ALIGNMENT),
                r.stats.timers.total
            );
            maybe_write_metrics(
                &format!("table3_p{p}"),
                &obs,
                vec![
                    ("p".to_string(), Json::Num(p as f64)),
                    ("num_ests".to_string(), Json::Num(n as f64)),
                ],
            );
            p *= 2;
        }
    } else {
        println!(
            "\n(this host has 1 hardware thread, so threaded wall clock cannot \
             speed up; see DESIGN.md §3 for the substitution rationale)"
        );
    }
}
