//! Table 1 — run-times and memory failures of the traditional tools.
//!
//! Paper (one IBM SP processor, 512 MB):
//!
//! | input  | TIGR Assembler | Phrap  | CAP3 |
//! |--------|----------------|--------|------|
//! | 50,000 | X              | 23 min | 5 hrs|
//! | 81,414 | X              | X      | X    |
//!
//! We stand in the traditional pipeline (`pace-baseline`) for all three
//! tools — materialized all-pairs enumeration plus full-width DP — under
//! a memory cap, and run PaCE on the same inputs for the contrast the
//! paper's abstract draws (9 hours estimated vs 2.5 minutes).
//!
//! **Cap calibration.** Pair memory grows superlinearly with n, so a cap
//! scaled naively by the EST ratio would either never trip or always
//! trip at reduced size. We calibrate exactly like the paper's hardware
//! did: the cap is placed between the measured footprints of the two
//! input sizes, so the 50k-scale run fits (as Phrap/CAP3 did) and the
//! 81k-scale run dies (as everything did). The analytic memory model
//! then extrapolates the footprint to the *full* 81,414-EST size, where
//! it exceeds the paper's physical 512 MB — the genuine "X".

use pace_baseline::{
    cluster_baseline, enumerate_footprint, BaselineConfig, BaselineError, MemoryModel,
};
use pace_bench::{banner, dataset, megabytes, paper_cfg, scaled, secs};
use pace_cluster::cluster_sequential;
use pace_seq::SequenceStore;

fn main() {
    banner(
        "Table 1: traditional-pipeline run-times under a memory cap",
        "TIGR: X @50k; Phrap: 23min @50k, X @81k; CAP3: 5h @50k, X @81k (512 MB)",
    );

    let cfg = BaselineConfig::default();
    let inputs: Vec<(usize, SequenceStore)> = [(50_000usize, 1001u64), (81_414, 1002)]
        .into_iter()
        .map(|(n_paper, seed)| {
            let ds = dataset(scaled(n_paper), seed);
            (n_paper, SequenceStore::from_ests(&ds.ests).unwrap())
        })
        .collect();

    // Calibrate the cap between the two measured footprints.
    let footprints: Vec<usize> = inputs
        .iter()
        .map(|(_, store)| enumerate_footprint(store, &cfg).1)
        .collect();
    let cap = (footprints[0] + footprints[1]) / 2;
    println!(
        "measured enumeration footprints: {} @50k-scale, {} @81k-scale",
        megabytes(footprints[0]),
        megabytes(footprints[1])
    );
    println!("calibrated cap (midpoint): {}\n", megabytes(cap));

    println!(
        "{:>16} {:>12} {:>14} {:>12} {:>12}",
        "n", "base-mem", "base-1cpu", "base-wall", "PaCE-1cpu"
    );

    for ((n_paper, store), footprint) in inputs.iter().zip(&footprints) {
        let n = store.num_ests();
        let capped = BaselineConfig {
            memory_cap_bytes: Some(cap),
            ..cfg.clone()
        };
        let baseline_cells = match cluster_baseline(store, &capped) {
            Ok(r) => (
                megabytes(r.stats.peak_memory_bytes),
                secs(r.stats.enumerate_secs + r.stats.align_serial_secs),
                secs(r.stats.total_secs),
            ),
            Err(BaselineError::OutOfMemory { .. }) => (
                format!("X ({})", megabytes(*footprint)),
                "X".to_string(),
                "X".to_string(),
            ),
        };
        let pace = cluster_sequential(store, &paper_cfg());
        println!(
            "{:>16} {:>12} {:>14} {:>12} {:>12}",
            format!("{n} (~{n_paper})"),
            baseline_cells.0,
            baseline_cells.1,
            baseline_cells.2,
            secs(pace.stats.timers.total),
        );
    }

    // Extrapolate the baseline's memory need at full 81,414-EST size from
    // a measured run — the analytic version of the paper's "X".
    let probe = &inputs[0].1;
    let r = cluster_baseline(probe, &cfg).unwrap();
    let model = MemoryModel::fit(probe, &r.stats);
    let predicted = model.predict_bytes(81_414, 550.0);
    println!(
        "\nmemory model (fit at n={}): predicted baseline footprint at n=81,414: {}",
        probe.num_ests(),
        megabytes(predicted)
    );
    println!(
        "paper's machines had 512 MB -> {}",
        if predicted > 512 << 20 {
            "X, insufficient memory (matches Table 1)"
        } else {
            "would fit (does NOT match Table 1 at this scale)"
        }
    );
    println!(
        "\n(expected shape: baseline X at the larger size, and the baseline's \
         one-CPU time exceeding PaCE's by a large factor where it runs)"
    );
}
