//! Load generator for the `paced` clustering daemon.
//!
//! Starts a daemon on a scratch Unix socket, then drives it the way the
//! paper's pipeline never was: **continuous ingest** (a writer thread
//! folding fixed-seed EST batches) under **thousands of concurrent
//! query clients**, each with its own connection, hammering
//! member/cluster/stats lookups the whole time. At the end it verifies
//! the daemon's partition is exactly what a one-shot batch run over the
//! same data produces (the serve-identity anchor), and appends a
//! trajectory entry to `BENCH_serve.json` with client-observed latency
//! quantiles and ingest throughput.
//!
//! Knobs (environment):
//! - `PACE_LOADGEN_CLIENTS`  concurrent query clients (default 1000)
//! - `PACE_LOADGEN_QUERIES`  queries per client (default 40)
//! - `PACE_LOADGEN_ESTS`     total ESTs ingested (default 600)
//! - `PACE_LOADGEN_BATCHES`  ingest batches (default 12)
//! - `PACE_BENCH_TRAJECTORY` output path (default `BENCH_serve.json`)

use pace_obs::{Json, LogQuantile, Obs};
use pace_serve::{Client, Request, Response, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn env_usize(name: &str, default: usize, min: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= min)
        .unwrap_or(default)
}

fn cfg() -> pace_cluster::ClusterConfig {
    let mut c = pace_cluster::ClusterConfig::small();
    c.psi = 16;
    c.overlap.min_overlap_len = 40;
    c
}

fn main() {
    let clients = env_usize("PACE_LOADGEN_CLIENTS", 1000, 1);
    let queries_per_client = env_usize("PACE_LOADGEN_QUERIES", 40, 1);
    let num_ests = env_usize("PACE_LOADGEN_ESTS", 600, 50);
    let num_batches = env_usize("PACE_LOADGEN_BATCHES", 12, 1);

    println!("loadgen: {clients} clients x {queries_per_client} queries against continuous ingest");
    println!("         {num_ests} ESTs in {num_batches} batches, fixed seed");

    let ds = pace_simulate::generate(
        &pace_simulate::SimConfig {
            num_genes: (num_ests / 12).max(2),
            num_ests,
            est_len_mean: 220.0,
            est_len_sd: 25.0,
            est_len_min: 120,
            exon_len: (220, 400),
            exons_per_gene: (1, 2),
            seed: 9000,
            ..pace_simulate::SimConfig::default()
        }
        .error_free(),
    );

    let sock = std::env::temp_dir().join(format!("pace-loadgen-{}.sock", std::process::id()));
    let handle = Server::start(ServerConfig::new(&sock, cfg()), Obs::noop()).expect("start daemon");

    // --- Writer: fold batches continuously while clients query. -------
    let ingest_done = Arc::new(AtomicBool::new(false));
    let ests_folded = Arc::new(AtomicU64::new(0));
    let writer = {
        let sock = sock.clone();
        let done = ingest_done.clone();
        let folded = ests_folded.clone();
        let ests = ds.ests.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect_with_retry(&sock, std::time::Duration::from_secs(5))
                .expect("writer connect");
            let per = ests.len().div_ceil(num_batches);
            let t0 = Instant::now();
            for (b, chunk) in ests.chunks(per).enumerate() {
                let base = b * per;
                let ids: Vec<String> = (base..base + chunk.len())
                    .map(|i| format!("est_{i}"))
                    .collect();
                client
                    .ingest(ids, chunk.to_vec())
                    .expect("ingest while serving");
                folded.fetch_add(chunk.len() as u64, Ordering::Relaxed);
            }
            let secs = t0.elapsed().as_secs_f64();
            done.store(true, Ordering::SeqCst);
            secs
        })
    };

    // --- Readers: many concurrent clients, each its own connection. ---
    let t_query = Instant::now();
    let mut readers = Vec::with_capacity(clients);
    for c in 0..clients {
        let sock = sock.clone();
        let reader = std::thread::Builder::new()
            .stack_size(96 * 1024)
            .spawn(move || {
                let mut client =
                    Client::connect_with_retry(&sock, std::time::Duration::from_secs(30))
                        .expect("client connect");
                let mut lat_us: Vec<u64> = Vec::with_capacity(queries_per_client);
                let mut hits = 0u64;
                for q in 0..queries_per_client {
                    // Deterministic query mix: mostly membership lookups
                    // (some against ids not ingested yet — the daemon
                    // answers Err from the current snapshot), some
                    // cluster listings, some stats.
                    let pick = (c * 31 + q * 7) % 10;
                    let t0 = Instant::now();
                    let ok = match pick {
                        0 => matches!(client.call(&Request::Stats), Ok(Response::StatsReply(_))),
                        1 | 2 => {
                            let label = ((c + q * 13) % 50) as u64;
                            client.call(&Request::Cluster { label }).is_ok()
                        }
                        _ => {
                            let id = format!("est_{}", (c * 17 + q * 3) % 600);
                            client.call(&Request::Member { id }).is_ok()
                        }
                    };
                    lat_us.push(t0.elapsed().as_micros() as u64);
                    hits += ok as u64;
                }
                (lat_us, hits)
            })
            .expect("spawn client");
        readers.push(reader);
    }

    let mut all_lat = LogQuantile::new();
    let mut total_queries = 0u64;
    let mut total_ok = 0u64;
    for reader in readers {
        let (lat_us, hits) = reader.join().expect("client thread");
        total_queries += lat_us.len() as u64;
        total_ok += hits;
        for us in lat_us {
            all_lat.observe(us as f64);
        }
    }
    let query_wall = t_query.elapsed().as_secs_f64();
    let ingest_secs = writer.join().expect("writer thread");
    assert!(ingest_done.load(Ordering::SeqCst));

    // --- Identity anchor: daemon partition == one-shot batch run. -----
    let mut probe = Client::connect(&sock).expect("probe connect");
    let daemon_labels: Vec<u64> = (0..ds.ests.len())
        .map(|i| probe.member(&format!("est_{i}")).expect("member").1)
        .collect();
    let store = pace_seq::SequenceStore::from_ests(&ds.ests).expect("store");
    let batch = pace_cluster::cluster_sequential(&store, &cfg());
    let canon = |labels: &[u64]| -> Vec<u64> {
        let mut map = std::collections::HashMap::new();
        let mut next = 0u64;
        labels
            .iter()
            .map(|&l| {
                *map.entry(l).or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                })
            })
            .collect()
    };
    let batch_labels: Vec<u64> = batch.labels.iter().map(|&l| l as u64).collect();
    assert_eq!(
        canon(&daemon_labels),
        canon(&batch_labels),
        "daemon partition diverged from the one-shot batch run"
    );
    println!(
        "identity: daemon partition == one-shot batch run ({} clusters)",
        batch.num_clusters
    );

    let stats = handle.stop().expect("stop daemon");
    let (p50, p90, p99) = all_lat.p50_p90_p99();
    let folded = ests_folded.load(Ordering::Relaxed);
    let ingest_rate = folded as f64 / ingest_secs.max(1e-9);
    let qps = total_queries as f64 / query_wall.max(1e-9);

    println!(
        "queries: {total_queries} total ({total_ok} ok) from {clients} clients in {query_wall:.2}s ({qps:.0}/s)"
    );
    println!("latency (client-observed): p50 {p50:.0}µs  p90 {p90:.0}µs  p99 {p99:.0}µs");
    println!(
        "server side: p50 {:.0}µs  p99 {:.0}µs over {} queries",
        stats.query_p50_us, stats.query_p99_us, stats.queries
    );
    println!("ingest: {folded} ESTs in {ingest_secs:.2}s while serving ({ingest_rate:.0} ESTs/s)");

    // --- Trajectory artifact. -----------------------------------------
    let out = std::env::var("PACE_BENCH_TRAJECTORY").unwrap_or_else(|_| "BENCH_serve.json".into());
    let entry = Json::obj([
        ("bench", Json::Str("serve_loadgen".into())),
        ("clients", Json::Num(clients as f64)),
        ("queries", Json::Num(total_queries as f64)),
        ("queries_ok", Json::Num(total_ok as f64)),
        ("qps", Json::Num(qps)),
        ("query_p50_us", Json::Num(p50)),
        ("query_p90_us", Json::Num(p90)),
        ("query_p99_us", Json::Num(p99)),
        ("serve_query_p99_us", Json::Num(stats.query_p99_us)),
        ("ingest_ests", Json::Num(folded as f64)),
        ("ingest_secs", Json::Num(ingest_secs)),
        ("ingest_ests_per_sec", Json::Num(ingest_rate)),
        ("num_ests", Json::Num(stats.num_ests as f64)),
        ("num_clusters", Json::Num(stats.num_clusters as f64)),
        ("identity_ok", Json::Bool(true)),
    ]);
    let mut history = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| pace_obs::json::parse(&s).ok())
        .and_then(|j| j.as_arr().map(<[Json]>::to_vec))
        .unwrap_or_default();
    history.push(entry);
    std::fs::write(&out, Json::Arr(history).to_line()).expect("writing trajectory");
    println!("appended trajectory entry to {out}");

    let _ = std::fs::remove_file(&sock);
}
