//! Sharded-master scaling benchmark.
//!
//! At high rank counts the single clustering master serializes every
//! report: slaves line up behind one thread's DSU and dispatch loop.
//! This bench measures how far sharding the master (`--shards K`)
//! moves that wall. It runs the same fixed-seed workload twice at the
//! same world size `p` — single master (1 + (p−1) slaves) and sharded
//! (reconciler + K sub-masters + (p−1−K) slaves) — and reports
//! `pairs.processed / total-phase seconds` for each, plus the
//! sharded/single throughput ratio.
//!
//! Outputs `$PACE_METRICS_DIR/sharded.json` with both runs' rates; the
//! `sharded_speedup` field is echoed by `scripts/bench_gate.sh`
//! (report-only — thread-oversubscribed wall-clock on a shared runner
//! has no machine-relative baseline).
//!
//! Knobs: `PACE_SHARDED_P` (world size, default 64), `PACE_SHARDED_K`
//! (sub-masters, default 8), `PACE_SCALE` (dataset divisor, default
//! 20 → `PACE_SHARDED_N` ESTs directly when set), `PACE_SMOKE_REPS`
//! (reps per configuration, default 3; best rate across reps wins).

use pace_bench::{banner, dataset, paper_cfg, rule, scaled};
use pace_cluster::{cluster_parallel_obs, cluster_sharded_obs, ClusterConfig};
use pace_obs::{metric, Json, Obs};
use pace_seq::SequenceStore;

const SHARDED_SEED: u64 = 4100;

fn env_usize(name: &str, default: usize, min: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= min)
        .unwrap_or(default)
}

struct Measured {
    secs: f64,
    pairs_processed: u64,
    rate: f64,
    clusters: usize,
}

/// Best (highest-throughput) rep of `reps` runs of one configuration.
fn measure(
    store: &SequenceStore,
    cfg: &ClusterConfig,
    p: usize,
    reps: usize,
    run: impl Fn(&SequenceStore, &ClusterConfig, usize, &Obs) -> pace_cluster::ClusterResult,
) -> Measured {
    let mut best: Option<Measured> = None;
    for _ in 0..reps {
        let obs = Obs::noop();
        let r = run(store, cfg, p, &obs);
        let snap = obs.registry().snapshot();
        let secs = snap
            .phases
            .get(metric::PHASE_TOTAL)
            .map_or(f64::EPSILON, |a| a.max.max(f64::EPSILON));
        let m = Measured {
            secs,
            pairs_processed: r.stats.pairs_processed,
            rate: r.stats.pairs_processed as f64 / secs,
            clusters: r.num_clusters,
        };
        if best.as_ref().is_none_or(|b| m.rate > b.rate) {
            best = Some(m);
        }
    }
    best.expect("at least one rep")
}

fn main() {
    banner(
        "Sharded-master scaling: single master vs K sub-masters at equal p",
        "sharding the paper's master rank; pairs.processed/sec is the figure of merit",
    );
    let p = env_usize("PACE_SHARDED_P", 64, 4);
    let k = env_usize("PACE_SHARDED_K", 8, 1).min(p.saturating_sub(2));
    let n = env_usize("PACE_SHARDED_N", scaled(12_000), 60);
    let reps = env_usize("PACE_SMOKE_REPS", 3, 1);
    let ds = dataset(n, SHARDED_SEED);
    let store = SequenceStore::from_ests(&ds.ests).unwrap();
    // Small batches make the master tier the bottleneck at high p —
    // exactly the regime sharding exists for.
    let mut cfg = paper_cfg();
    cfg.batchsize = 12;
    println!(
        "n = {n} ESTs, {} bases, p = {p}, K = {k}, reps = {reps}",
        ds.total_bases()
    );
    println!("{}", rule(72));

    let single = measure(&store, &cfg, p, reps, |s, c, p, o| {
        cluster_parallel_obs(s, c, p, o).0
    });
    println!(
        "single master : {:>8.3}s  {:>12.0} pairs/s  ({} pairs, {} clusters)",
        single.secs, single.rate, single.pairs_processed, single.clusters
    );

    let mut sharded_cfg = cfg.clone();
    sharded_cfg.shards = k;
    let sharded = measure(&store, &sharded_cfg, p, reps, |s, c, p, o| {
        cluster_sharded_obs(s, c, p, o).0
    });
    println!(
        "K = {k} sharded : {:>8.3}s  {:>12.0} pairs/s  ({} pairs, {} clusters)",
        sharded.secs, sharded.rate, sharded.pairs_processed, sharded.clusters
    );

    let speedup = sharded.rate / single.rate.max(f64::EPSILON);
    println!("{}", rule(72));
    println!("sharded/single throughput: {speedup:.2}x");

    if single.clusters != sharded.clusters {
        eprintln!(
            "FAIL: sharded run found {} clusters, single-master {} — the \
             differential harness (tests/sharded_identity.rs) should have caught this",
            sharded.clusters, single.clusters
        );
        std::process::exit(1);
    }

    let doc = Json::obj([
        ("schema_version", Json::Num(pace_obs::SCHEMA_VERSION as f64)),
        ("bench", Json::Str("sharded".into())),
        ("p", Json::Num(p as f64)),
        ("shards", Json::Num(k as f64)),
        ("num_ests", Json::Num(n as f64)),
        ("seed", Json::Num(SHARDED_SEED as f64)),
        ("reps", Json::Num(reps as f64)),
        (
            "single",
            Json::obj([
                ("secs", Json::Num(single.secs)),
                ("pairs_processed", Json::Num(single.pairs_processed as f64)),
                ("pairs_per_sec", Json::Num(single.rate)),
            ]),
        ),
        (
            "sharded",
            Json::obj([
                ("secs", Json::Num(sharded.secs)),
                ("pairs_processed", Json::Num(sharded.pairs_processed as f64)),
                ("pairs_per_sec", Json::Num(sharded.rate)),
            ]),
        ),
        ("sharded_speedup", Json::Num(speedup)),
    ]);
    if let Ok(dir) = std::env::var("PACE_METRICS_DIR") {
        let path = std::path::Path::new(&dir).join("sharded.json");
        let write = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, pace_obs::report::to_pretty_string(&doc)));
        match write {
            Ok(()) => eprintln!("[metrics] wrote {}", path.display()),
            Err(e) => eprintln!("[metrics] could not write {}: {e}", path.display()),
        }
    }
}
