//! Figure 6b — run-time vs. number of ESTs at a fixed processor count.
//!
//! Paper: p = 64; run-time grows from ~10 s at 10,000 ESTs to ~140 s at
//! 81,414 — smooth, faster-than-linear growth (pair volume grows with
//! per-gene coverage), but nowhere near quadratic.
//!
//! Expected shape: monotone growth in n; time-per-EST grows mildly.
//! Times are the modeled critical path at p = 64 (see
//! `pace_bench::model`); the measured serial time is shown for scale.

use pace_bench::model::ScalingModel;
use pace_bench::{banner, dataset, paper_cfg, scaled, secs};
use pace_seq::SequenceStore;

fn main() {
    banner(
        "Figure 6b: run-time vs number of ESTs at fixed p = 64",
        "p = 64: ~10 s at 10k ESTs up to ~140 s at 81,414",
    );

    println!(
        "{:>18} {:>12} {:>14} {:>16}",
        "n", "serial", "modeled p=64", "p=64 per kEST"
    );

    for n_paper in [10_000usize, 20_000, 40_000, 60_000, 81_414] {
        let n = scaled(n_paper);
        // One seed for every size: the curve reflects n, not seed luck.
        let ds = dataset(n, 5252);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let (model, seq) = ScalingModel::fit(&store, &paper_cfg());
        let t64 = model.predict(64).total;
        println!(
            "{:>18} {:>12} {:>14} {:>16}",
            format!("{n} (~{n_paper})"),
            secs(seq.stats.timers.total),
            secs(t64),
            secs(t64 * 1000.0 / n as f64)
        );
    }
    println!("\n(monotone growth in n, mildly superlinear — the Figure 6b shape)");
}
