//! Deterministic smoke benchmark for CI.
//!
//! Runs one small, fixed-seed clustering workload through the parallel
//! driver `PACE_SMOKE_REPS` times and records, next to the standard
//! per-run metrics report, the per-phase *minimum* critical-path time
//! across reps — the noise-robust statistic `scripts/bench_gate.sh`
//! compares against the committed `bench/baseline.json`.
//!
//! Outputs:
//! - `$PACE_METRICS_DIR/smoke.json` — gate document: `phase_min` object
//!   plus the last rep's full registry report sections.
//! - `$PACE_BENCH_TRAJECTORY` (default `BENCH_smoke.json`) — a JSON
//!   array the run appends one trajectory entry to, so successive CI
//!   runs accumulate a timing history artifact.
//!
//! Knobs: `PACE_SMOKE_N` (ESTs, default 800), `PACE_SMOKE_REPS`
//! (default 3). The seed and rank count are fixed — the workload must
//! be bit-identical on every run.

use pace_bench::{banner, dataset, paper_cfg};
use pace_cluster::{cluster_parallel_obs, AlignContext};
use pace_obs::{metric, Json, Obs};
use pace_seq::{SequenceStore, SketchParams, SketchSet};
use std::collections::BTreeMap;
use std::time::Instant;

/// Fixed seed: the smoke workload must be identical on every run.
const SMOKE_SEED: u64 = 3000;
/// Ranks for the parallel driver (1 master + 2 slaves).
const SMOKE_RANKS: usize = 3;
/// Phases the gate tracks.
const GATE_PHASES: [&str; 5] = [
    metric::PHASE_PARTITIONING,
    metric::PHASE_GST_CONSTRUCTION,
    metric::PHASE_NODE_SORTING,
    metric::PHASE_ALIGNMENT,
    metric::PHASE_TOTAL,
];

/// The recommended opt-in sketch-prefilter threshold (see
/// EXPERIMENTS.md and the pace-quality recall harness).
const SKETCH_THRESHOLD: f64 = 0.03;

/// Deterministic micro-benches for the two opt-in kernels, run over the
/// smoke workload's own candidate pairs: the Myers bit-parallel
/// alignment path (edit-convertible scoring) and the MinHash sketch
/// prefilter (sketch build + one Jaccard estimate per pair). Both are
/// timed per rep and folded into `phase_min` like the driver phases.
fn micro_kernels(store: &SequenceStore, pairs: &[pace_pairgen::CandidatePair]) -> (f64, f64) {
    let mut cfg = paper_cfg();
    cfg.scoring = pace_align::Scoring::edit_linear();
    cfg.myers_alignment = true;
    cfg.validate().expect("myers smoke config");
    let mut ctx = AlignContext::new(store, None);
    let t0 = Instant::now();
    for p in pairs {
        std::hint::black_box(ctx.align(p, &cfg));
    }
    let myers_s = t0.elapsed().as_secs_f64();

    let params = SketchParams {
        k: cfg.sketch_k,
        s: cfg.sketch_size,
    };
    let t0 = Instant::now();
    let set = SketchSet::from_store(store, params);
    let mut passed = 0u64;
    for p in pairs {
        if set.jaccard(p.s1, p.s2).is_none_or(|j| j >= SKETCH_THRESHOLD) {
            passed += 1;
        }
    }
    std::hint::black_box(passed);
    let sketch_s = t0.elapsed().as_secs_f64();
    (myers_s, sketch_s)
}

/// Recall of the sketch-gated partition against the lossless one on the
/// smoke workload (sequential driver, fixed seed): the report-only
/// quality number `scripts/bench_gate.sh` echoes into the gate log.
/// Returns (recall, pairs vetoed by the gate).
fn sketch_recall(ests: &[Vec<u8>]) -> (f64, u64) {
    let lossless = pace_cluster::driver_seq::cluster_ests(ests, &paper_cfg());
    let mut gated_cfg = paper_cfg();
    gated_cfg.prefilter_min_sketch_jaccard = SKETCH_THRESHOLD;
    let gated = pace_cluster::driver_seq::cluster_ests(ests, &gated_cfg);
    let m = pace_quality::assess(&gated.labels, &lossless.labels);
    let vetoed = gated
        .stats
        .pairs_prefiltered
        .saturating_sub(lossless.stats.pairs_prefiltered);
    (m.recall(), vetoed)
}

fn env_usize(name: &str, default: usize, min: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= min)
        .unwrap_or(default)
}

fn main() {
    // Hidden: when the uds rep below spawns worker processes, it
    // re-invokes this very binary as `smoke __pace-worker ...`.
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("__pace-worker") {
        match pace_core::worker_main(&args[1..]) {
            Ok(code) => std::process::exit(code),
            Err(msg) => {
                eprintln!("smoke worker: {msg}");
                std::process::exit(1);
            }
        }
    }
    banner(
        "Smoke bench: fixed-seed clustering workload",
        "CI regression sentinel; compare against bench/baseline.json",
    );
    let n = env_usize("PACE_SMOKE_N", 800, 60);
    let reps = env_usize("PACE_SMOKE_REPS", 3, 1);
    let ds = dataset(n, SMOKE_SEED);
    let store = SequenceStore::from_ests(&ds.ests).unwrap();
    println!(
        "n = {n} ESTs, {} bases, p = {SMOKE_RANKS}, reps = {reps}",
        ds.total_bases()
    );

    // Candidate pairs for the kernel micro-benches, generated once —
    // the same fixed-seed workload the driver reps cluster.
    let micro_pairs = {
        let cfg = paper_cfg();
        let forest = pace_gst::build_sequential(&store, cfg.window_w);
        let mut g = pace_pairgen::PairGenerator::new(
            &store,
            &forest,
            pace_pairgen::PairGenConfig::new(cfg.psi),
        );
        g.generate_all()
    };

    let mut phase_min: BTreeMap<String, f64> = BTreeMap::new();
    let mut last: Option<(Obs, pace_cluster::ClusterResult)> = None;
    for rep in 1..=reps {
        let obs = Obs::noop();
        let (r, _) = cluster_parallel_obs(&store, &paper_cfg(), SMOKE_RANKS, &obs);
        let snap = obs.registry().snapshot();
        let crit = |name: &str| snap.phases.get(name).map_or(0.0, |a| a.max);
        let (myers_s, sketch_s) = micro_kernels(&store, &micro_pairs);
        println!(
            "rep {rep}: partitioning {:.4}s, gst {:.4}s, node_sorting {:.4}s, \
             alignment {:.4}s, total {:.4}s, myers_kernel {myers_s:.4}s, \
             sketch_prefilter {sketch_s:.4}s",
            crit(metric::PHASE_PARTITIONING),
            crit(metric::PHASE_GST_CONSTRUCTION),
            crit(metric::PHASE_NODE_SORTING),
            crit(metric::PHASE_ALIGNMENT),
            crit(metric::PHASE_TOTAL),
        );
        for (phase, t) in GATE_PHASES
            .iter()
            .map(|&p| (p, crit(p)))
            .chain([("myers_kernel", myers_s), ("sketch_prefilter", sketch_s)])
        {
            phase_min
                .entry(phase.to_string())
                .and_modify(|m| *m = m.min(t))
                .or_insert(t);
        }
        last = Some((obs, r));
    }
    let (obs, r) = last.expect("at least one rep");
    println!(
        "pairs: generated {}, processed {}, accepted {}, clusters {}",
        r.stats.pairs_generated, r.stats.pairs_processed, r.stats.pairs_accepted, r.num_clusters
    );

    let snap = obs.registry().snapshot();
    check_workspace_reuse(&snap, &r);
    check_trace_off(&obs, &snap);
    let (recall, vetoed) = sketch_recall(&ds.ests);
    println!(
        "sketch prefilter: recall {recall:.4} vs lossless partition at threshold \
         {SKETCH_THRESHOLD} ({vetoed} pairs vetoed)"
    );

    // Gate document: the standard report plus the cross-rep phase minima.
    let meta = vec![
        ("p".to_string(), Json::Num(SMOKE_RANKS as f64)),
        ("num_ests".to_string(), Json::Num(n as f64)),
        ("seed".to_string(), Json::Num(SMOKE_SEED as f64)),
        ("reps".to_string(), Json::Num(reps as f64)),
    ];
    let mut doc = pace_obs::report::to_json(&snap, meta);
    let min_obj = Json::from_map(&phase_min);
    if let Json::Obj(entries) = &mut doc {
        entries.push(("phase_min".to_string(), min_obj.clone()));
        entries.push((
            "sketch_prefilter".to_string(),
            Json::obj([
                ("threshold", Json::Num(SKETCH_THRESHOLD)),
                ("recall", Json::Num(recall)),
                ("pairs_vetoed", Json::Num(vetoed as f64)),
            ]),
        ));
    }
    if let Ok(dir) = std::env::var("PACE_METRICS_DIR") {
        let path = std::path::Path::new(&dir).join("smoke.json");
        let write = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, pace_obs::report::to_pretty_string(&doc)));
        match write {
            Ok(()) => eprintln!("[metrics] wrote {}", path.display()),
            Err(e) => eprintln!("[metrics] could not write {}: {e}", path.display()),
        }
    }
    append_trajectory(&min_obj, &snap, n, reps);

    // Optional socket-transport rep: same workload, one master process
    // plus real worker processes over the Unix-socket backend. Records
    // the communication volume (`comm.messages` / `comm.bytes`) that
    // `scripts/bench_gate.sh` echoes into the gate log — report-only,
    // never gated, so wire-level cost is visible in CI without a
    // machine-relative threshold.
    if std::env::var("PACE_TRANSPORT").as_deref() == Ok("uds") {
        run_uds_rep(&store, n);
    }
}

/// One clustering rep over the Unix-socket multi-process backend,
/// writing `$PACE_METRICS_DIR/smoke_uds.json`. Timing is deliberately
/// not folded into `phase_min`: process spawn + serialization costs
/// belong in their own report, not in the channel baseline's gate.
fn run_uds_rep(store: &SequenceStore, n: usize) {
    let exe = std::env::current_exe().expect("locating smoke binary");
    let mut config = pace_core::PaceConfig::paper();
    config.cluster = paper_cfg();
    config.num_processors = SMOKE_RANKS;
    let obs = Obs::noop();
    let outcome = match pace_core::cluster_store_uds(
        store,
        &config,
        &pace_core::UdsLaunchOpts::new(exe),
        &obs,
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("FAIL: uds smoke rep: {e}");
            std::process::exit(1);
        }
    };
    let snap = obs.registry().snapshot();
    let counter = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
    println!(
        "uds rep: {} clusters, {} messages, {} wire bytes ({} workers)",
        outcome.num_clusters(),
        counter(metric::COMM_MESSAGES),
        counter(metric::COMM_BYTES),
        SMOKE_RANKS - 1
    );
    if counter(metric::COMM_BYTES) == 0 {
        eprintln!("FAIL: uds rep moved no wire bytes — socket backend not exercised");
        std::process::exit(1);
    }
    let meta = vec![
        ("transport".to_string(), Json::Str("uds".into())),
        ("p".to_string(), Json::Num(SMOKE_RANKS as f64)),
        ("num_ests".to_string(), Json::Num(n as f64)),
        ("seed".to_string(), Json::Num(SMOKE_SEED as f64)),
    ];
    let doc = pace_obs::report::to_json(&snap, meta);
    if let Ok(dir) = std::env::var("PACE_METRICS_DIR") {
        let path = std::path::Path::new(&dir).join("smoke_uds.json");
        let write = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, pace_obs::report::to_pretty_string(&doc)));
        match write {
            Ok(()) => eprintln!("[metrics] wrote {}", path.display()),
            Err(e) => eprintln!("[metrics] could not write {}: {e}", path.display()),
        }
    }
}

/// The tentpole's allocation discipline, asserted on every CI run: each
/// pair aligned must have gone through a reused per-rank workspace
/// (`align.ws_reuses == pairs.processed`), i.e. zero per-pair heap
/// allocations in the align phase.
fn check_workspace_reuse(snap: &pace_obs::RegistrySnapshot, r: &pace_cluster::ClusterResult) {
    let reuses = snap.counters.get(metric::ALIGN_WS_REUSES).copied();
    match reuses {
        Some(reuses) if reuses == r.stats.pairs_processed => {
            println!(
                "workspace reuse: {reuses} kernel calls over {} per-rank workspaces — \
                 zero per-pair allocations",
                SMOKE_RANKS - 1
            );
        }
        Some(reuses) => {
            eprintln!(
                "FAIL: workspace reuses ({reuses}) != pairs processed ({})",
                r.stats.pairs_processed
            );
            std::process::exit(1);
        }
        None => {
            eprintln!(
                "FAIL: {} counter missing from registry",
                metric::ALIGN_WS_REUSES
            );
            std::process::exit(1);
        }
    }
}

/// The tracing subsystem's off-by-default discipline, asserted
/// structurally on every CI run: the smoke bench attaches no tracer, so
/// `trace_with` closures must never run (no per-event allocations on
/// the hot path — the trace analogue of the workspace-reuse check) and
/// no `trace.*` key may leak into the registry.
fn check_trace_off(obs: &Obs, snap: &pace_obs::RegistrySnapshot) {
    if obs.trace_enabled() || obs.tracer().is_some() {
        eprintln!("FAIL: smoke bench expected tracing off, found a tracer attached");
        std::process::exit(1);
    }
    if let Some(key) = snap
        .gauges
        .keys()
        .chain(snap.counters.keys())
        .find(|k| k.starts_with("trace."))
    {
        eprintln!("FAIL: trace metric {key} recorded with tracing off");
        std::process::exit(1);
    }
    println!("tracing off: no tracer attached, no trace.* metrics — zero trace-path work");
}

/// Append one entry to the trajectory file (a JSON array). A missing or
/// malformed file starts a fresh array; failures never abort the bench.
fn append_trajectory(phase_min: &Json, snap: &pace_obs::RegistrySnapshot, n: usize, reps: usize) {
    let path =
        std::env::var("PACE_BENCH_TRAJECTORY").unwrap_or_else(|_| "BENCH_smoke.json".to_string());
    let mut entries = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| pace_obs::json::parse(&text).ok())
        .and_then(|v| match v {
            Json::Arr(items) => Some(items),
            _ => None,
        })
        .unwrap_or_default();
    let counters = Json::Obj(
        snap.counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
            .collect(),
    );
    entries.push(Json::obj([
        ("schema_version", Json::Num(pace_obs::SCHEMA_VERSION as f64)),
        ("bench", Json::Str("smoke".into())),
        ("num_ests", Json::Num(n as f64)),
        ("p", Json::Num(SMOKE_RANKS as f64)),
        ("reps", Json::Num(reps as f64)),
        ("phase_min", phase_min.clone()),
        ("counters", counters),
    ]));
    match std::fs::write(&path, Json::Arr(entries).to_line()) {
        Ok(()) => eprintln!("[metrics] appended trajectory entry to {path}"),
        Err(e) => eprintln!("[metrics] could not write {path}: {e}"),
    }
}
