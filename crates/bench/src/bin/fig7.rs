//! Figure 7 — promising pairs generated / processed / accepted vs. n.
//!
//! Paper: at 81,414 ESTs roughly 1.3 M pairs are generated but far fewer
//! are actually aligned ("processed"), and fewer still accepted — the
//! generated and processed curves diverge as n grows, which is the
//! measured payoff of generating pairs in decreasing maximal-common-
//! substring order instead of arbitrary order.
//!
//! Expected shape: generated > processed > accepted at every n, with the
//! generated/processed gap widening as n (and thus per-gene coverage)
//! grows.

use pace_bench::{banner, dataset, max_ranks, maybe_write_metrics, paper_cfg, scaled, PAPER_SIZES};
use pace_cluster::cluster_parallel_obs;
use pace_obs::{Json, Obs};
use pace_seq::SequenceStore;

fn main() {
    banner(
        "Figure 7: pairs generated vs processed vs accepted",
        "~1.3M generated at 81k ESTs; processed well below generated",
    );

    let p = max_ranks().clamp(2, 8);
    println!(
        "{:>16} {:>12} {:>12} {:>12} {:>12}",
        "n", "generated", "processed", "accepted", "proc/gen"
    );

    for &n_paper in PAPER_SIZES.iter() {
        let n = scaled(n_paper);
        // One seed for every size: the series reflects n, not seed luck.
        let ds = dataset(n, 6262);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let obs = Obs::noop();
        let (r, _) = cluster_parallel_obs(&store, &paper_cfg(), p, &obs);
        let s = &r.stats;
        println!(
            "{:>16} {:>12} {:>12} {:>12} {:>11.1}%",
            format!("{n} (~{n_paper})"),
            s.pairs_generated,
            s.pairs_processed,
            s.pairs_accepted,
            100.0 * s.pairs_processed as f64 / s.pairs_generated.max(1) as f64
        );
        maybe_write_metrics(
            &format!("fig7_n{n}"),
            &obs,
            vec![
                ("p".to_string(), Json::Num(p as f64)),
                ("num_ests".to_string(), Json::Num(n as f64)),
            ],
        );
    }
    println!("\n(the processed/generated ratio should shrink as n grows — Figure 7)");
}
