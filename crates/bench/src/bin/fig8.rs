//! Figure 8 — run-time vs. batchsize (n = 20,000, p = 32 in the paper).
//!
//! Paper: a U-shaped curve between batchsize 5 and 80 with the optimum
//! at 40–60 pairs. Small batches mean more master–slave round trips;
//! big batches make slaves act on stale clustering information, wasting
//! alignments. Also reported: the master stays under 2% busy even at
//! p = 128, so one master is not a bottleneck.
//!
//! In-process channels cost nanoseconds, so the left arm of the U
//! (communication overhead) cannot appear in wall clock here; the
//! measured `messages` column shows the mechanism, and the `modeled`
//! column prices each message at the IBM SP's ~100 µs user-space latency
//! (DESIGN.md §3) on top of the measured alignment time — that column is
//! where the U re-emerges.

use pace_bench::{banner, dataset, max_ranks, paper_cfg, scaled, secs};
use pace_cluster::cluster_parallel;
use pace_seq::SequenceStore;

/// Modeled per-message latency of the paper's interconnect.
const MSG_LATENCY_SECS: f64 = 100e-6;

fn main() {
    banner(
        "Figure 8: run-time vs batchsize (n ≈ 20,000/σ)",
        "U-shaped, optimum at batchsize 40–60; master busy < 2%",
    );

    let p = max_ranks().clamp(2, 8);
    let n = scaled(20_000);
    let ds = dataset(n, 7000);
    let store = SequenceStore::from_ests(&ds.ests).unwrap();
    println!("n = {n}, p = {p} (stand-in for the paper's 32)\n");

    println!(
        "{:>10} {:>10} {:>10} {:>13} {:>12} {:>10}",
        "batchsize", "wall", "messages", "pairs aligned", "master busy", "modeled"
    );
    for batchsize in [5usize, 10, 20, 40, 60, 80] {
        let mut cfg = paper_cfg();
        cfg.batchsize = batchsize;
        let r = cluster_parallel(&store, &cfg, p);
        let modeled = r.stats.timers.alignment + r.stats.messages as f64 * MSG_LATENCY_SECS;
        println!(
            "{:>10} {:>10} {:>10} {:>13} {:>11.2}% {:>10}",
            batchsize,
            secs(r.stats.timers.total),
            r.stats.messages,
            r.stats.pairs_processed,
            100.0 * r.stats.master_busy_frac,
            secs(modeled)
        );
    }
    println!(
        "\n(small batch ⇒ many messages; large batch ⇒ extra alignments from \
         stale cluster info — the two ends of the paper's U curve; `modeled` \
         adds the paper's ~100 µs interconnect latency per message)"
    );
}
