//! Table 2 — clustering quality of PaCE vs CAP3 (our baseline stand-in).
//!
//! Paper (percentages; CAP3 could not run at n = 81,414):
//!
//! | n      | 10,051      | 30,000      | 60,018      | 81,414 |
//! |        | Ours  CAP3  | Ours  CAP3  | Ours  CAP3  | Ours   |
//! | OQ     | 94.82 95.74 | 84.69 86.81 | 88.12 89.60 | 87.36  |
//! | OV     |  0.04  0.15 |  7.67  6.70 |  4.79  4.54 |  6.02  |
//! | UN     |  5.14  4.13 |  8.90  7.42 |  7.80  6.42 |  7.46  |
//! | CC     | 97.37 97.83 | 91.71 92.93 | 93.69 94.51 | 93.25  |
//!
//! Expected shape: our quality tracks the baseline's closely (within a
//! couple of points), UN > OV for both (conservative merge criteria),
//! and the baseline is unavailable at the largest size. The memory cap
//! is calibrated between the two largest measured footprints so the OOM
//! boundary falls exactly where the paper's did.

use pace_baseline::{cluster_baseline, enumerate_footprint, BaselineConfig, BaselineError};
use pace_bench::{banner, dataset, megabytes, paper_cfg, scaled, PAPER_SIZES};
use pace_cluster::cluster_parallel;
use pace_quality::assess;
use pace_seq::SequenceStore;

fn main() {
    banner(
        "Table 2: quality (OQ/OV/UN/CC %) — PaCE vs traditional baseline",
        "PaCE ≈ CAP3 within ~2 points at every size; UN > OV for both",
    );

    let p = pace_bench::max_ranks().clamp(2, 8);
    let base_cfg = BaselineConfig::default();

    // Generate all four inputs, then calibrate the cap between the two
    // largest enumeration footprints (see table1 for the rationale).
    let inputs: Vec<(usize, pace_simulate::EstDataset, SequenceStore)> = PAPER_SIZES
        .iter()
        .enumerate()
        .map(|(i, &n_paper)| {
            let ds = dataset(scaled(n_paper), 2000 + i as u64);
            let store = SequenceStore::from_ests(&ds.ests).unwrap();
            (n_paper, ds, store)
        })
        .collect();
    let fp_60k = enumerate_footprint(&inputs[2].2, &base_cfg).1;
    let fp_81k = enumerate_footprint(&inputs[3].2, &base_cfg).1;
    let cap = (fp_60k + fp_81k) / 2;
    println!(
        "cap calibration: footprint {} @60k-scale, {} @81k-scale -> cap {}\n",
        megabytes(fp_60k),
        megabytes(fp_81k),
        megabytes(cap)
    );

    println!(
        "{:>16} {:>7} {:>7} {:>7} {:>7}   {:>7} {:>7} {:>7} {:>7}",
        "n", "OQ", "OV", "UN", "CC", "OQ-b", "OV-b", "UN-b", "CC-b"
    );

    for (n_paper, ds, store) in &inputs {
        let n = store.num_ests();
        let ours = cluster_parallel(store, &paper_cfg(), p);
        let (oq, ov, un, cc) = assess(&ours.labels, &ds.truth).as_percentages();

        let capped = BaselineConfig {
            memory_cap_bytes: Some(cap),
            ..base_cfg.clone()
        };
        let base = match cluster_baseline(store, &capped) {
            Ok(r) => {
                let (oq, ov, un, cc) = assess(&r.labels, &ds.truth).as_percentages();
                format!("{oq:>7.2} {ov:>7.2} {un:>7.2} {cc:>7.2}")
            }
            Err(BaselineError::OutOfMemory { .. }) => {
                format!("{:>7} {:>7} {:>7} {:>7}", "X", "X", "X", "X")
            }
        };

        println!(
            "{:>16} {:>7.2} {:>7.2} {:>7.2} {:>7.2}   {}",
            format!("{n} (~{n_paper})"),
            oq,
            ov,
            un,
            cc,
            base
        );
    }
    println!(
        "\n('X' = baseline exceeded the calibrated memory cap, as CAP3 did at \
         81,414; expected shape: ours ≈ baseline, UN > OV, OV > 0 thanks to \
         the simulator's repeat elements)"
    );
}
