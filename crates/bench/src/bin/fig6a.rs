//! Figure 6a — run-time vs. number of processors.
//!
//! Paper: four curves (n = 10,000 / 20,000 / 40,000 / 81,414), run-time
//! dropping near-hyperbolically from p = 8 to p = 128; e.g. the 81,414
//! set takes ~300 s at small p and under 150 s at 64 (the abstract's
//! "2.5 minutes on a 64-processor IBM SP").
//!
//! Expected shape: for each n the series decreases with p, and larger n
//! sits strictly above smaller n at every p.
//!
//! Times are the modeled critical path (measured serial work + the real
//! LPT bucket partition — see `pace_bench::model`); on a multi-core host
//! measured wall clock is appended.

use pace_bench::model::ScalingModel;
use pace_bench::{banner, dataset, max_ranks, paper_cfg, scaled, secs};
use pace_cluster::cluster_parallel;
use pace_seq::SequenceStore;

fn main() {
    banner(
        "Figure 6a: run-time vs number of processors",
        "run-times scale down with p for every data size",
    );

    let sizes = [10_000usize, 20_000, 40_000, 81_414];
    let ps = [8usize, 16, 32, 64, 128];

    println!("modeled critical path:");
    print!("{:>18}", "n \\ p");
    for &p in &ps {
        print!("{:>10}", p);
    }
    println!();

    for &n_paper in sizes.iter() {
        let n = scaled(n_paper);
        // One seed for every size: cross-size comparisons stay smooth.
        let ds = dataset(n, 4242);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let (model, _) = ScalingModel::fit(&store, &paper_cfg());
        print!("{:>18}", format!("{n} (~{n_paper})"));
        for &p in &ps {
            print!("{:>10}", secs(model.predict(p).total));
        }
        println!();
    }

    if max_ranks() > 1 {
        println!("\nmeasured wall clock on this host (p ≤ hardware threads):");
        let mut host_ps = Vec::new();
        let mut p = 2;
        while p <= max_ranks() {
            host_ps.push(p);
            p *= 2;
        }
        print!("{:>18}", "n \\ p");
        for &p in &host_ps {
            print!("{:>10}", p);
        }
        println!();
        for &n_paper in sizes.iter() {
            let n = scaled(n_paper);
            let ds = dataset(n, 4242);
            let store = SequenceStore::from_ests(&ds.ests).unwrap();
            print!("{:>18}", format!("{n} (~{n_paper})"));
            for &p in &host_ps {
                let r = cluster_parallel(&store, &paper_cfg(), p);
                print!("{:>10}", secs(r.stats.timers.total));
            }
            println!();
        }
    }
    println!("\n(series should fall with p and rise with n, as in Figure 6a)");
}
