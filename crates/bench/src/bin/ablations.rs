//! Ablations of the design choices DESIGN.md calls out.
//!
//! Not a paper table — these isolate the mechanisms the paper credits
//! for its run-time ("a combination of algorithmic techniques to reduce
//! the total work without sacrificing quality"):
//!
//! 1. decreasing-MCS pair order vs a truly shuffled pair stream
//!    (quantifies how much the greedy order amplifies pair skipping);
//! 2. cluster-aware pair skipping on vs off;
//! 3. anchored banded extension vs full-width DP;
//! 4. the ψ threshold's effect on pair volume and quality.

use pace_bench::{banner, dataset, paper_cfg, scaled, secs};
use pace_cluster::{align_pair, cluster_sequential, ClusterConfig};
use pace_dsu::DisjointSets;
use pace_pairgen::{CandidatePair, PairGenConfig, PairGenerator};
use pace_quality::assess;
use pace_seq::SequenceStore;
use std::time::Instant;

/// Feed an explicit pair stream through the master's skip/align/merge
/// logic; returns (aligned, skipped, accepted, labels, seconds).
fn consume_pairs(
    store: &SequenceStore,
    cfg: &ClusterConfig,
    pairs: &[CandidatePair],
) -> (u64, u64, u64, Vec<usize>, f64) {
    let started = Instant::now();
    let mut clusters = DisjointSets::new(store.num_ests());
    let (mut aligned, mut skipped, mut accepted) = (0u64, 0u64, 0u64);
    for pair in pairs {
        let (i, j) = pair.est_indices();
        if cfg.skip_clustered_pairs && clusters.same(i, j) {
            skipped += 1;
            continue;
        }
        aligned += 1;
        let outcome = align_pair(store, pair, cfg);
        if outcome.accepted {
            accepted += 1;
            clusters.union(i, j);
        }
    }
    let labels = clusters.labels();
    (
        aligned,
        skipped,
        accepted,
        labels,
        started.elapsed().as_secs_f64(),
    )
}

fn report(label: &str, aligned: u64, skipped: u64, time: f64, labels: &[usize], truth: &[usize]) {
    let q = assess(labels, truth);
    let (oq, ov, _, cc) = q.as_percentages();
    println!(
        "{label:<34} {:>9} {:>10} {:>10} {:>7.2} {:>6.2} {:>7.2}",
        aligned,
        skipped,
        secs(time),
        oq,
        ov,
        cc
    );
}

/// Deterministic Fisher–Yates with an LCG (no RNG dependency needed).
fn shuffle(pairs: &mut [CandidatePair], seed: u64) {
    let mut x = seed | 1;
    for i in (1..pairs.len()).rev() {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((x >> 33) as usize) % (i + 1);
        pairs.swap(i, j);
    }
}

fn main() {
    banner(
        "Ablations: which mechanism buys what",
        "order + skipping cut alignments; banding cuts per-alignment cost",
    );

    let n = scaled(20_000);
    let ds = dataset(n, 8000);
    let store = SequenceStore::from_ests(&ds.ests).unwrap();
    println!("n = {n} ESTs (sequential master logic for clean accounting)\n");

    println!(
        "{:<34} {:>9} {:>10} {:>10} {:>7} {:>6} {:>7}",
        "variant", "aligned", "skipped", "time", "OQ%", "OV%", "CC%"
    );

    let cfg = paper_cfg();
    let forest = pace_gst::build_sequential(&store, cfg.window_w);
    let sorted_pairs =
        PairGenerator::new(&store, &forest, PairGenConfig::new(cfg.psi)).generate_all();

    // 1a. The paper's order: decreasing maximal-common-substring length.
    let (a, s, _, labels, t) = consume_pairs(&store, &cfg, &sorted_pairs);
    report("decreasing-MCS order (PaCE)", a, s, t, &labels, &ds.truth);

    // 1b. The same pairs, truly shuffled: the traditional arbitrary order.
    let mut shuffled = sorted_pairs.clone();
    shuffle(&mut shuffled, 0xDEAD_BEEF);
    let (a, s, _, labels, t) = consume_pairs(&store, &cfg, &shuffled);
    report("shuffled pair order", a, s, t, &labels, &ds.truth);

    // 2. No cluster-aware skipping: every pair is aligned.
    let mut noskip = cfg.clone();
    noskip.skip_clustered_pairs = false;
    let (a, s, _, labels, t) = consume_pairs(&store, &noskip, &sorted_pairs);
    report("no pair skipping", a, s, t, &labels, &ds.truth);

    // 3. Full-width DP: band as wide as a read (quadratic extension).
    let mut fullwidth = cfg.clone();
    fullwidth.band_radius = 700;
    let (a, s, _, labels, t) = consume_pairs(&store, &fullwidth, &sorted_pairs);
    report("full-width DP (no banding)", a, s, t, &labels, &ds.truth);

    // 4. ψ sweep (via the full driver: pair volume changes with ψ).
    println!();
    for psi in [12u32, 20, 35, 60] {
        let mut c = paper_cfg();
        c.psi = psi;
        let r = cluster_sequential(&store, &c);
        report(
            &format!("psi = {psi}"),
            r.stats.pairs_processed,
            r.stats.pairs_skipped,
            r.stats.timers.total,
            &r.labels,
            &ds.truth,
        );
    }

    println!(
        "\n(expected: decreasing-MCS aligns the fewest pairs; shuffling increases \
         alignments at equal quality; no-skip aligns everything; full-width DP \
         multiplies per-pair cost; low ψ inflates pair volume, high ψ loses reads)"
    );
}
