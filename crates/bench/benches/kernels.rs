//! Criterion micro-benchmarks of the kernels behind each experiment.
//!
//! * `gst_build`    — Table 3's "construction of GST" column;
//! * `gst_subdivision` — the subdivision kernel alone: comparison-sort
//!   reference vs the counting-sort + multi-character-skip hot path;
//! * `node_sort`    — Table 3's "sorting nodes" column (generator setup);
//! * `pair_generation` — the engine behind Figure 7's generated curve;
//! * `alignment`    — Table 3's "pairwise alignment" column: anchored
//!   banded extension vs the full-width DP the baseline uses (Table 1);
//! * `align_batch`  — one slave work batch through the three alignment
//!   paths: fresh DP scratch per pair, reused workspace, reused + packed;
//! * `dsu`          — the master's CLUSTERS operations;
//! * `quality`      — the Table 2 metric computation;
//! * `end_to_end`   — one small full clustering run (Figures 6a/6b).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pace_align::{align_anchored, align_anchored_with, AlignWorkspace, Anchor, Scoring};
use pace_bench::{dataset, paper_cfg};
use pace_cluster::{align_pair, cluster_sequential, AlignContext};
use pace_dsu::DisjointSets;
use pace_gst::{
    assign_buckets, build_forest_for_rank, build_subtree_comparison_sort, build_subtree_with,
    count_buckets, enumerate_bucket_suffixes, num_buckets, BuildScratch,
};
use pace_pairgen::{PairGenConfig, PairGenerator};
use pace_seq::{PackedText, SequenceStore};
use std::hint::black_box;

fn bench_gst_build(c: &mut Criterion) {
    let ds = dataset(400, 9101);
    let store = SequenceStore::from_ests(&ds.ests).unwrap();
    let counts = count_buckets(&store, 8);
    let partition = assign_buckets(&counts, 1);
    c.bench_function("gst_build/400ests", |b| {
        b.iter(|| black_box(build_forest_for_rank(&store, &partition, 0)))
    });
}

fn bench_gst_subdivision(c: &mut Criterion) {
    // The node-subdivision kernel in isolation: the comparison-sort
    // reference (per-node `sort_by_key`, per-character recursion) against
    // the counting-sort + multi-character-skip path the builder ships
    // with. Same suffix lists, same output trees (pinned by proptest);
    // only the subdivision strategy differs.
    let w = 8;
    let ds = dataset(400, 9101);
    let store = SequenceStore::from_ests(&ds.ests).unwrap();
    let counts = count_buckets(&store, w);
    let partition = assign_buckets(&counts, 1);
    let buckets = partition.buckets_of(0);
    let mut wanted = vec![None; num_buckets(w)];
    for (slot, &b) in buckets.iter().enumerate() {
        wanted[b as usize] = Some(slot as u32);
    }
    let per_bucket = enumerate_bucket_suffixes(&store, w, &wanted, buckets.len());
    let work: Vec<_> = buckets.iter().copied().zip(per_bucket).collect();

    let mut group = c.benchmark_group("gst_subdivision");
    group.bench_function("comparison_sort", |b| {
        b.iter_batched(
            || work.clone(),
            |work| {
                let nodes: usize = work
                    .into_iter()
                    .map(|(bucket, sufs)| {
                        build_subtree_comparison_sort(&store, bucket, sufs, w).len()
                    })
                    .sum();
                black_box(nodes)
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("counting_sort_skip", |b| {
        let mut scratch = BuildScratch::new();
        b.iter_batched(
            || work.clone(),
            |work| {
                let nodes: usize = work
                    .into_iter()
                    .map(|(bucket, sufs)| {
                        build_subtree_with(&store, bucket, sufs, w, &mut scratch).len()
                    })
                    .sum();
                black_box(nodes)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_node_sort_and_pairgen(c: &mut Criterion) {
    let ds = dataset(400, 9102);
    let store = SequenceStore::from_ests(&ds.ests).unwrap();
    let counts = count_buckets(&store, 8);
    let partition = assign_buckets(&counts, 1);
    let forest = build_forest_for_rank(&store, &partition, 0);

    c.bench_function("node_sort/400ests", |b| {
        b.iter(|| black_box(PairGenerator::new(&store, &forest, PairGenConfig::new(20))))
    });

    c.bench_function("pair_generation/400ests_all", |b| {
        b.iter_batched(
            || PairGenerator::new(&store, &forest, PairGenConfig::new(20)),
            |mut g| black_box(g.generate_all().len()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_alignment(c: &mut Criterion) {
    // One realistic promising pair: two 550-base reads overlapping by 300.
    let ds = dataset(200, 9103);
    let store = SequenceStore::from_ests(&ds.ests).unwrap();
    let counts = count_buckets(&store, 8);
    let partition = assign_buckets(&counts, 1);
    let forest = build_forest_for_rank(&store, &partition, 0);
    let pairs = PairGenerator::new(&store, &forest, PairGenConfig::new(20)).generate_all();
    let pair = pairs
        .iter()
        .max_by_key(|p| p.mcs_len)
        .copied()
        .expect("workload produces at least one promising pair");
    let scoring = Scoring::default_est();
    let a = store.seq(pair.s1);
    let b = store.seq(pair.s2);
    let anchor = Anchor {
        a_pos: pair.off1 as usize,
        b_pos: pair.off2 as usize,
        len: pair.mcs_len as usize,
    };

    c.bench_function("alignment/anchored_banded_r8", |bch| {
        bch.iter(|| black_box(align_anchored(a, b, anchor, &scoring, 8)))
    });
    c.bench_function("alignment/anchored_banded_r8_reused_ws", |bch| {
        let mut ws = AlignWorkspace::new();
        bch.iter(|| black_box(align_anchored_with(a, b, anchor, &scoring, 8, &mut ws)))
    });
    c.bench_function("alignment/full_width_dp", |bch| {
        bch.iter(|| black_box(align_anchored(a, b, anchor, &scoring, a.len().max(b.len()))))
    });
    c.bench_function("alignment/semiglobal_unanchored", |bch| {
        bch.iter(|| black_box(pace_align::semiglobal_align(a, b, &scoring)))
    });
}

fn bench_workspace_reuse(c: &mut Criterion) {
    // A full work batch — the slave's unit of dispatch — through the
    // three alignment paths: fresh DP scratch per pair (the pre-context
    // behaviour), one reused per-rank workspace (the hot path), and the
    // reused workspace over the 2-bit packed representation.
    let ds = dataset(200, 9106);
    let store = SequenceStore::from_ests(&ds.ests).unwrap();
    let counts = count_buckets(&store, 8);
    let partition = assign_buckets(&counts, 1);
    let forest = build_forest_for_rank(&store, &partition, 0);
    let pairs = PairGenerator::new(&store, &forest, PairGenConfig::new(20)).generate_all();
    let cfg = paper_cfg();
    let batch: Vec<_> = pairs.iter().take(cfg.batchsize).copied().collect();
    assert!(!batch.is_empty(), "workload produces promising pairs");
    let packed = PackedText::from_store(&store);

    let mut group = c.benchmark_group("align_batch");
    group.bench_function("fresh_workspace_per_pair", |b| {
        b.iter(|| {
            let accepted: u32 = batch
                .iter()
                .map(|p| align_pair(&store, p, &cfg).accepted as u32)
                .sum();
            black_box(accepted)
        })
    });
    group.bench_function("reused_workspace", |b| {
        let mut ctx = AlignContext::new(&store, None);
        b.iter(|| {
            let accepted: u32 = batch
                .iter()
                .map(|p| ctx.align(p, &cfg).accepted as u32)
                .sum();
            black_box(accepted)
        })
    });
    group.bench_function("reused_workspace_packed", |b| {
        let mut ctx = AlignContext::new(&store, Some(&packed));
        b.iter(|| {
            let accepted: u32 = batch
                .iter()
                .map(|p| ctx.align(p, &cfg).accepted as u32)
                .sum();
            black_box(accepted)
        })
    });
    group.finish();
}

fn bench_dsu(c: &mut Criterion) {
    c.bench_function("dsu/union_find_100k_ops", |b| {
        b.iter_batched(
            || DisjointSets::new(10_000),
            |mut d| {
                let mut x = 1u64;
                for _ in 0..100_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let i = (x >> 33) as usize % 10_000;
                    let j = (x >> 13) as usize % 10_000;
                    if !d.union(i, j) {
                        black_box(d.find(i));
                    }
                }
                d.num_sets()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_quality(c: &mut Criterion) {
    let ds = dataset(2_000, 9104);
    let pred: Vec<usize> = ds.truth.iter().map(|&g| g / 2).collect();
    c.bench_function("quality/assess_2000", |b| {
        b.iter(|| black_box(pace_quality::assess(&pred, &ds.truth)))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let ds = dataset(300, 9105);
    let store = SequenceStore::from_ests(&ds.ests).unwrap();
    let cfg = paper_cfg();
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("sequential_300ests", |b| {
        b.iter(|| black_box(cluster_sequential(&store, &cfg).num_clusters))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gst_build,
    bench_gst_subdivision,
    bench_node_sort_and_pairgen,
    bench_alignment,
    bench_workspace_reuse,
    bench_dsu,
    bench_quality,
    bench_end_to_end
);
criterion_main!(benches);
