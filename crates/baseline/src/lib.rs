//! The traditional EST-clustering pipeline (CAP3/Phrap/TIGR stand-in).
//!
//! The paper's Table 1 measures three closed-source assemblers and finds
//! the same two pathologies PaCE is designed to remove:
//!
//! 1. a **memory-intensive phase** — all promising pairs are enumerated
//!    and materialized up front (quadratic-leaning in practice), which is
//!    what makes the tools die with 512 MB on 81,414 ESTs ("X" entries);
//! 2. a **time-intensive phase** — pairwise alignment is run on *every*
//!    enumerated pair, in arbitrary order, with full-width dynamic
//!    programming and no cluster-aware skipping.
//!
//! Since the originals are closed source, this crate implements that
//! pipeline faithfully from its published descriptions: same promising-
//! pair definition and same accept criterion as our PaCE implementation
//! (so quality comparisons are apples-to-apples, as in Table 2), but
//! materialized pairs, arbitrary order, no skipping, and unbanded
//! alignment. A configurable memory cap reproduces the out-of-memory
//! behaviour; [`MemoryModel`] extrapolates the footprint for sizes too
//! large to run.

use pace_align::{align_anchored, decide_outcome, Anchor, OverlapParams, Scoring};
use pace_dsu::DisjointSets;
use pace_gst::build_sequential;
use pace_pairgen::{CandidatePair, PairGenConfig, PairGenerator, PairOrder};
use pace_seq::SequenceStore;
use rayon::prelude::*;
use std::time::Instant;

/// Baseline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineConfig {
    /// Bucket window for the enumeration suffix tree.
    pub window_w: usize,
    /// Promising-pair threshold (same meaning as PaCE's ψ).
    pub psi: u32,
    /// Alignment scoring.
    pub scoring: Scoring,
    /// Accept criterion (kept identical to PaCE for fair quality
    /// comparison).
    pub overlap: OverlapParams,
    /// Abort with [`BaselineError::OutOfMemory`] when the materialized
    /// state exceeds this many bytes (the paper's machines had 512 MB).
    pub memory_cap_bytes: Option<usize>,
    /// Align pairs on all cores (rayon). The *serial* alignment time is
    /// still reported in the stats, so Table 1's one-processor numbers
    /// can be derived even when the experiment itself runs parallel.
    pub parallel_align: bool,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            window_w: 8,
            psi: 20,
            scoring: Scoring::default_est(),
            overlap: OverlapParams::default(),
            memory_cap_bytes: None,
            parallel_align: true,
        }
    }
}

impl BaselineConfig {
    /// Settings suited to small test inputs (mirrors
    /// `ClusterConfig::small`).
    pub fn small() -> Self {
        BaselineConfig {
            window_w: 4,
            psi: 8,
            overlap: OverlapParams {
                min_score_ratio: 0.75,
                min_overlap_len: 12,
            },
            ..BaselineConfig::default()
        }
    }
}

/// Why a baseline run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The materialized pair set (plus index structures) exceeded the cap
    /// — the paper's "X: insufficient memory to run program".
    OutOfMemory {
        /// Bytes the run needed at the point it died.
        required: usize,
        /// The configured cap.
        cap: usize,
        /// Which phase hit the wall.
        phase: &'static str,
    },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::OutOfMemory {
                required,
                cap,
                phase,
            } => write!(
                f,
                "out of memory during {phase}: needs {} MB, cap {} MB",
                required >> 20,
                cap >> 20
            ),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Counters and timings of a baseline run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BaselineStats {
    /// Promising pairs enumerated and materialized.
    pub pairs_enumerated: u64,
    /// Alignments computed (== pairs enumerated after dedup; no skipping).
    pub alignments: u64,
    /// Alignments accepted as overlaps.
    pub accepted: u64,
    /// Cluster merges performed.
    pub merges: u64,
    /// Peak accounted memory in bytes.
    pub peak_memory_bytes: usize,
    /// Wall-clock of the enumeration (memory-intensive) phase.
    pub enumerate_secs: f64,
    /// Wall-clock of the alignment (time-intensive) phase.
    pub align_secs: f64,
    /// Sum of per-pair alignment times on one core — the one-processor
    /// runtime of the phase even when executed with rayon.
    pub align_serial_secs: f64,
    /// End-to-end wall clock.
    pub total_secs: f64,
}

/// The outcome of a successful baseline run.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Cluster label per EST.
    pub labels: Vec<usize>,
    /// Number of clusters.
    pub num_clusters: usize,
    /// Run counters.
    pub stats: BaselineStats,
}

/// Run the traditional pipeline on `store`.
pub fn cluster_baseline(
    store: &SequenceStore,
    cfg: &BaselineConfig,
) -> Result<BaselineResult, BaselineError> {
    let total_started = Instant::now();
    let mut stats = BaselineStats::default();

    // ---- Phase 1: materialize every promising pair (memory-intensive).
    let started = Instant::now();
    let forest = build_sequential(store, cfg.window_w);
    let mut generator = PairGenerator::new(
        store,
        &forest,
        PairGenConfig {
            psi: cfg.psi,
            order: PairOrder::Arbitrary, // "the traditional way"
        },
    );
    let mut pairs = generator.generate_all();
    stats.pairs_enumerated = pairs.len() as u64;

    // One overlap computation per string pair: dedup by (s1, s2), keeping
    // the longest witness.
    pairs.sort_by_key(|p| (p.s1, p.s2, std::cmp::Reverse(p.mcs_len)));
    pairs.dedup_by_key(|p| (p.s1, p.s2));

    let memory = store.memory_bytes()
        + forest.memory_bytes()
        + generator.memory_bytes()
        + pairs.capacity() * std::mem::size_of::<CandidatePair>();
    stats.peak_memory_bytes = memory;
    if let Some(cap) = cfg.memory_cap_bytes {
        if memory > cap {
            return Err(BaselineError::OutOfMemory {
                required: memory,
                cap,
                phase: "pair enumeration",
            });
        }
    }
    stats.enumerate_secs = started.elapsed().as_secs_f64();

    // ---- Phase 2: align everything (time-intensive) — full-width DP
    // (band as wide as the sequences), arbitrary order, no skipping.
    let started = Instant::now();
    let align_one = |p: &CandidatePair| -> (bool, f64) {
        let t = Instant::now();
        let a = store.seq(p.s1);
        let b = store.seq(p.s2);
        let radius = a.len().max(b.len());
        let anchor = Anchor {
            a_pos: p.off1 as usize,
            b_pos: p.off2 as usize,
            len: p.mcs_len as usize,
        };
        let aln = align_anchored(a, b, anchor, &cfg.scoring, radius);
        let decision = decide_outcome(&aln, &cfg.scoring, &cfg.overlap);
        (decision.accepted, t.elapsed().as_secs_f64())
    };
    let outcomes: Vec<(bool, f64)> = if cfg.parallel_align {
        pairs.par_iter().map(align_one).collect()
    } else {
        pairs.iter().map(align_one).collect()
    };
    stats.alignments = outcomes.len() as u64;
    stats.align_serial_secs = outcomes.iter().map(|&(_, t)| t).sum();
    stats.align_secs = started.elapsed().as_secs_f64();

    // ---- Phase 3: single-linkage merging.
    let mut clusters = DisjointSets::new(store.num_ests());
    for (pair, &(accepted, _)) in pairs.iter().zip(&outcomes) {
        if accepted {
            stats.accepted += 1;
            let (i, j) = pair.est_indices();
            if clusters.union(i, j) {
                stats.merges += 1;
            }
        }
    }
    stats.total_secs = total_started.elapsed().as_secs_f64();

    Ok(BaselineResult {
        labels: clusters.labels(),
        num_clusters: clusters.num_sets(),
        stats,
    })
}

/// Run only the memory-intensive enumeration phase and report its
/// footprint, without paying for any alignment. Used by the Table 1/2
/// harness to calibrate the memory cap so the out-of-memory boundary
/// falls where the paper's did (between the two largest input sizes).
pub fn enumerate_footprint(store: &SequenceStore, cfg: &BaselineConfig) -> (u64, usize, f64) {
    let started = Instant::now();
    let forest = build_sequential(store, cfg.window_w);
    let mut generator = PairGenerator::new(
        store,
        &forest,
        PairGenConfig {
            psi: cfg.psi,
            order: PairOrder::Arbitrary,
        },
    );
    let mut pairs = generator.generate_all();
    pairs.sort_by_key(|p| (p.s1, p.s2, std::cmp::Reverse(p.mcs_len)));
    pairs.dedup_by_key(|p| (p.s1, p.s2));
    let bytes = store.memory_bytes()
        + forest.memory_bytes()
        + generator.memory_bytes()
        + pairs.capacity() * std::mem::size_of::<CandidatePair>();
    (pairs.len() as u64, bytes, started.elapsed().as_secs_f64())
}

/// Analytic memory model for the enumeration phase, fitted from measured
/// runs and used to extrapolate Table 1's "X" entries to sizes that are
/// impractical to materialize.
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel {
    /// Bytes per input base (sequence store + suffix tree + generator).
    pub bytes_per_base: f64,
    /// Bytes per materialized pair.
    pub bytes_per_pair: f64,
    /// Pairs per EST (measured pair density at the fitted size).
    pub pairs_per_est: f64,
}

impl MemoryModel {
    /// Fit the model from one measured run.
    pub fn fit(store: &SequenceStore, stats: &BaselineStats) -> Self {
        let n = store.num_ests().max(1) as f64;
        let bases = store.total_input_chars().max(1) as f64;
        let pairs = stats.pairs_enumerated as f64;
        let pair_bytes = pairs * std::mem::size_of::<CandidatePair>() as f64;
        MemoryModel {
            bytes_per_base: (stats.peak_memory_bytes as f64 - pair_bytes) / bases,
            bytes_per_pair: std::mem::size_of::<CandidatePair>() as f64,
            pairs_per_est: pairs / n,
        }
    }

    /// Predicted peak bytes for `n` ESTs of average length `avg_len`,
    /// assuming pair density grows linearly with n (pair counts in EST
    /// data grow superlinearly with coverage; linear-in-n density per EST
    /// is the conservative floor).
    pub fn predict_bytes(&self, n: usize, avg_len: f64) -> usize {
        let bases = n as f64 * avg_len;
        let pairs = self.pairs_per_est * n as f64;
        (self.bytes_per_base * bases + self.bytes_per_pair * pairs) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_simulate::{generate, SimConfig};

    fn dataset(n: usize, seed: u64) -> pace_simulate::EstDataset {
        generate(&SimConfig {
            num_genes: (n / 12).max(2),
            num_ests: n,
            est_len_mean: 220.0,
            est_len_sd: 25.0,
            est_len_min: 120,
            exon_len: (220, 400),
            exons_per_gene: (1, 2),
            seed,
            ..SimConfig::default()
        })
    }

    fn small() -> BaselineConfig {
        let mut c = BaselineConfig::small();
        c.psi = 16;
        c.overlap.min_overlap_len = 40;
        c
    }

    #[test]
    fn baseline_clusters_with_good_quality() {
        let ds = dataset(100, 31);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let r = cluster_baseline(&store, &small()).unwrap();
        let m = pace_quality::assess(&r.labels, &ds.truth);
        assert!(m.oq > 0.75, "baseline OQ too low: {m}");
        assert!(m.cc > 0.80, "baseline CC too low: {m}");
    }

    #[test]
    fn baseline_and_pace_agree_on_clean_data() {
        let ds = {
            let mut c = SimConfig {
                num_genes: 8,
                num_ests: 80,
                est_len_mean: 220.0,
                est_len_sd: 25.0,
                est_len_min: 120,
                exon_len: (220, 400),
                exons_per_gene: (1, 2),
                seed: 32,
                ..SimConfig::default()
            };
            c.error_rate = 0.0;
            generate(&c)
        };
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let base = cluster_baseline(&store, &small()).unwrap();

        let mut pace_cfg = pace_cluster::ClusterConfig::small();
        pace_cfg.psi = 16;
        pace_cfg.overlap.min_overlap_len = 40;
        let pace = pace_cluster::cluster_sequential(&store, &pace_cfg);

        let agreement = pace_quality::assess(&base.labels, &pace.labels);
        assert!(
            agreement.oq > 0.97,
            "baseline and PaCE partitions diverge: {agreement}"
        );
    }

    #[test]
    fn baseline_does_more_alignments_than_pace() {
        let ds = dataset(120, 33);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let base = cluster_baseline(&store, &small()).unwrap();

        let mut pace_cfg = pace_cluster::ClusterConfig::small();
        pace_cfg.psi = 16;
        pace_cfg.overlap.min_overlap_len = 40;
        let pace = pace_cluster::cluster_sequential(&store, &pace_cfg);

        assert!(
            base.stats.alignments > pace.stats.pairs_processed,
            "baseline {} alignments vs PaCE {}",
            base.stats.alignments,
            pace.stats.pairs_processed
        );
    }

    #[test]
    fn memory_cap_triggers_oom() {
        let ds = dataset(60, 34);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let mut cfg = small();
        cfg.memory_cap_bytes = Some(1024); // 1 KB: guaranteed too small
        match cluster_baseline(&store, &cfg) {
            Err(BaselineError::OutOfMemory { required, cap, .. }) => {
                assert!(required > cap);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn generous_cap_allows_run() {
        let ds = dataset(40, 35);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let mut cfg = small();
        cfg.memory_cap_bytes = Some(1 << 30);
        let r = cluster_baseline(&store, &cfg).unwrap();
        assert!(r.stats.peak_memory_bytes < 1 << 30);
        assert!(r.stats.peak_memory_bytes > 0);
    }

    #[test]
    fn serial_time_at_least_parallel_time_sum() {
        let ds = dataset(50, 36);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let r = cluster_baseline(&store, &small()).unwrap();
        assert!(r.stats.align_serial_secs >= 0.0);
        assert!(r.stats.alignments > 0);
        // Serial sum must be ≥ the wall time only when parallelized with
        // >1 thread; at minimum both are positive and consistent.
        assert!(r.stats.align_secs > 0.0);
    }

    #[test]
    fn memory_model_extrapolates_monotonically() {
        let ds = dataset(60, 37);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let r = cluster_baseline(&store, &small()).unwrap();
        let model = MemoryModel::fit(&store, &r.stats);
        let m1 = model.predict_bytes(1_000, 500.0);
        let m2 = model.predict_bytes(10_000, 500.0);
        let m3 = model.predict_bytes(100_000, 500.0);
        assert!(m1 < m2 && m2 < m3, "model not monotone: {m1} {m2} {m3}");
        assert!(m3 > 0);
    }

    #[test]
    fn footprint_probe_matches_full_run() {
        let ds = dataset(50, 39);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let cfg = small();
        let (pairs, bytes, _) = enumerate_footprint(&store, &cfg);
        let full = cluster_baseline(&store, &cfg).unwrap();
        assert_eq!(pairs, full.stats.alignments);
        // Footprints agree within allocator slack.
        let ratio = bytes as f64 / full.stats.peak_memory_bytes as f64;
        assert!((0.5..2.0).contains(&ratio), "footprints diverge: {ratio}");
    }

    #[test]
    fn sequential_align_path_works() {
        let ds = dataset(30, 38);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let mut cfg = small();
        cfg.parallel_align = false;
        let r = cluster_baseline(&store, &cfg).unwrap();
        assert_eq!(r.labels.len(), 30);
    }
}
