//! 2-bit packing of DNA sequences.
//!
//! Four bases per byte. [`PackedDna`] owns a single packed sequence;
//! [`PackedSlice`] is a borrowed, `Copy` view with O(1) base access that
//! the alignment kernels consume directly (no unpack-to-ASCII copies on
//! the hot path); [`PackedText`] packs an entire [`SequenceStore`] so a
//! clustering run can align over 2 bits/base instead of 8, honouring the
//! paper's space-efficiency goal.

use crate::alphabet::Base;
use crate::error::SeqError;
use crate::ids::StrId;
use crate::store::SequenceStore;

/// A DNA sequence packed at 2 bits per base.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackedDna {
    words: Vec<u8>,
    len: usize,
}

impl PackedDna {
    /// Pack an ASCII DNA sequence. Fails on non-`{A,C,G,T}` bytes.
    pub fn from_ascii(seq: &[u8]) -> Result<Self, SeqError> {
        let mut words = vec![0u8; seq.len().div_ceil(4)];
        for (i, &b) in seq.iter().enumerate() {
            let code = Base::from_ascii(b)?.code();
            words[i / 4] |= code << ((i % 4) * 2);
        }
        Ok(PackedDna {
            words,
            len: seq.len(),
        })
    }

    /// Number of bases stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of backing storage used (for memory accounting).
    #[inline]
    pub fn packed_bytes(&self) -> usize {
        self.words.len()
    }

    /// The base at position `i`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Base {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        Base::from_code((self.words[i / 4] >> ((i % 4) * 2)) & 0b11)
    }

    /// Borrowed zero-copy view over the whole sequence.
    #[inline]
    pub fn as_slice(&self) -> PackedSlice<'_> {
        PackedSlice {
            words: &self.words,
            start: 0,
            len: self.len,
        }
    }

    /// Borrowed view over the half-open base range `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> Result<PackedSlice<'_>, SeqError> {
        check_range(start, end, self.len)?;
        Ok(PackedSlice {
            words: &self.words,
            start,
            len: end - start,
        })
    }

    /// Unpack back to upper-case ASCII.
    pub fn to_ascii(&self) -> Vec<u8> {
        (0..self.len).map(|i| self.get(i).to_ascii()).collect()
    }

    /// Unpack the half-open range `[start, end)` to ASCII.
    ///
    /// The range must satisfy `start <= end <= len()`; anything else is a
    /// typed [`SeqError::SliceOutOfBounds`], never a panic.
    pub fn slice_ascii(&self, start: usize, end: usize) -> Result<Vec<u8>, SeqError> {
        check_range(start, end, self.len)?;
        Ok((start..end).map(|i| self.get(i).to_ascii()).collect())
    }

    /// Iterate over the bases.
    pub fn iter(&self) -> impl Iterator<Item = Base> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

#[inline]
fn check_range(start: usize, end: usize, len: usize) -> Result<(), SeqError> {
    if start <= end && end <= len {
        Ok(())
    } else {
        Err(SeqError::SliceOutOfBounds { start, end, len })
    }
}

/// A borrowed, `Copy` view into 2-bit packed DNA.
///
/// The view need not start on a byte boundary: `start` is a base offset
/// into the backing words, so sub-slicing is O(1) and allocation-free.
/// This is the representation the alignment kernels' `SeqView` runs over
/// when packed alignment is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedSlice<'a> {
    words: &'a [u8],
    /// Base offset of this view within `words`.
    start: usize,
    /// Number of bases visible through this view.
    len: usize,
}

impl<'a> PackedSlice<'a> {
    /// Number of bases in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The 2-bit code of the base at position `i` (O(1), no unpacking).
    #[inline]
    pub fn code_at(&self, i: usize) -> u8 {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let j = self.start + i;
        (self.words[j / 4] >> ((j % 4) * 2)) & 0b11
    }

    /// The base at position `i`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Base {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        Base::from_code(self.code_at(i))
    }

    /// Sub-view over the half-open base range `[start, end)` of this view.
    /// Panics if the range is invalid — hot-path callers are expected to
    /// pass ranges derived from `len()`.
    #[inline]
    pub fn slice(self, start: usize, end: usize) -> PackedSlice<'a> {
        assert!(
            start <= end && end <= self.len,
            "bad range {start}..{end} (len {})",
            self.len
        );
        PackedSlice {
            words: self.words,
            start: self.start + start,
            len: end - start,
        }
    }

    /// Unpack the view to upper-case ASCII (allocates — test/debug use).
    pub fn to_ascii(&self) -> Vec<u8> {
        (0..self.len).map(|i| self.get(i).to_ascii()).collect()
    }

    /// Iterate over the bases.
    pub fn iter(&self) -> impl Iterator<Item = Base> + 'a {
        let v = *self;
        (0..v.len).map(move |i| v.get(i))
    }
}

/// All strings of a [`SequenceStore`] packed at 2 bits per base.
///
/// Mirrors the store's layout (same string ids, same offsets) so
/// [`PackedText::slice`] is the packed twin of [`SequenceStore::seq`].
/// Built once per clustering run when packed alignment is enabled;
/// strings start at arbitrary base offsets (not byte-aligned), which
/// [`PackedSlice`] handles transparently.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackedText {
    words: Vec<u8>,
    /// `offsets[i]..offsets[i+1]` delimits string `i`, in bases.
    offsets: Vec<u32>,
}

impl PackedText {
    /// Pack every string of `store`. Infallible: the store has already
    /// validated its text as strict `{A,C,G,T}`.
    pub fn from_store(store: &SequenceStore) -> Self {
        let total = store.total_stored_chars();
        let mut words = vec![0u8; total.div_ceil(4)];
        let mut offsets = Vec::with_capacity(store.num_strings() + 1);
        offsets.push(0u32);
        let mut pos = 0usize;
        for sid in store.str_ids() {
            for &b in store.seq(sid) {
                let code = Base::from_ascii(b)
                    .expect("SequenceStore text is validated DNA")
                    .code();
                words[pos / 4] |= code << ((pos % 4) * 2);
                pos += 1;
            }
            offsets.push(pos as u32);
        }
        PackedText { words, offsets }
    }

    /// Number of strings (the store's `2n`).
    #[inline]
    pub fn num_strings(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Packed view of string `sid` — the 2-bit twin of `store.seq(sid)`.
    #[inline]
    pub fn slice(&self, sid: StrId) -> PackedSlice<'_> {
        let i = sid.index();
        debug_assert!(i < self.num_strings(), "string id {i} out of range");
        let start = self.offsets[i] as usize;
        PackedSlice {
            words: &self.words,
            start,
            len: self.offsets[i + 1] as usize - start,
        }
    }

    /// Bytes of backing storage used (for memory accounting).
    pub fn packed_bytes(&self) -> usize {
        self.words.len() + self.offsets.len() * std::mem::size_of::<u32>()
    }

    /// Borrow the raw representation `(words, offsets)` for serialization.
    pub fn as_raw_parts(&self) -> (&[u8], &[u32]) {
        (&self.words, &self.offsets)
    }

    /// Rebuild a packed text from a previously serialized representation.
    /// Checks the structural invariants (leading zero offset, monotone
    /// offsets, word storage sized for the final offset); 2-bit content
    /// is trusted, as every code decodes to a valid base by construction.
    pub fn from_raw_parts(words: Vec<u8>, offsets: Vec<u32>) -> Result<Self, String> {
        if offsets.is_empty() || offsets[0] != 0 {
            return Err("packed offsets must start with 0".into());
        }
        for pair in offsets.windows(2) {
            if pair[0] > pair[1] {
                return Err(format!(
                    "packed offsets not monotone: {} then {}",
                    pair[0], pair[1]
                ));
            }
        }
        let total = *offsets.last().unwrap() as usize;
        if words.len() != total.div_ceil(4) {
            return Err(format!(
                "packed storage holds {} bytes, need {} for {total} bases",
                words.len(),
                total.div_ceil(4)
            ));
        }
        Ok(PackedText { words, offsets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_small() {
        for s in [
            &b""[..],
            b"A",
            b"AC",
            b"ACG",
            b"ACGT",
            b"ACGTA",
            b"TTTTTTTTT",
        ] {
            let packed = PackedDna::from_ascii(s).unwrap();
            assert_eq!(packed.len(), s.len());
            assert_eq!(packed.to_ascii(), s);
        }
    }

    #[test]
    fn packs_four_per_byte() {
        let packed = PackedDna::from_ascii(&[b'A'; 17]).unwrap();
        assert_eq!(packed.packed_bytes(), 5); // ceil(17/4)
    }

    #[test]
    fn rejects_invalid() {
        assert!(PackedDna::from_ascii(b"ACNT").is_err());
    }

    #[test]
    fn slice_matches_full_unpack() {
        let packed = PackedDna::from_ascii(b"ACGTACGTGG").unwrap();
        assert_eq!(packed.slice_ascii(2, 7).unwrap(), b"GTACG");
        assert_eq!(packed.slice_ascii(0, 0).unwrap(), b"");
        assert_eq!(packed.slice_ascii(10, 10).unwrap(), b"");
    }

    #[test]
    fn slice_ascii_bounds_are_typed_errors() {
        let packed = PackedDna::from_ascii(b"ACGT").unwrap();
        // Full range and empty ranges at both boundaries are fine.
        assert_eq!(packed.slice_ascii(0, 4).unwrap(), b"ACGT");
        assert_eq!(packed.slice_ascii(4, 4).unwrap(), b"");
        // One past the end.
        assert_eq!(
            packed.slice_ascii(0, 5).unwrap_err(),
            SeqError::SliceOutOfBounds {
                start: 0,
                end: 5,
                len: 4
            }
        );
        // Inverted range.
        assert_eq!(
            packed.slice_ascii(3, 1).unwrap_err(),
            SeqError::SliceOutOfBounds {
                start: 3,
                end: 1,
                len: 4
            }
        );
        // Start beyond the end.
        assert!(packed.slice_ascii(5, 5).is_err());
        // Error message names the offending range.
        let msg = packed.slice_ascii(0, 5).unwrap_err().to_string();
        assert!(msg.contains("0..5"), "{msg}");
        assert!(msg.contains('4'), "{msg}");
    }

    #[test]
    fn packed_slice_view_bounds() {
        let packed = PackedDna::from_ascii(b"ACGTACGTGG").unwrap();
        assert!(packed.slice(0, 11).is_err());
        assert!(packed.slice(7, 3).is_err());
        let v = packed.slice(2, 7).unwrap();
        assert_eq!(v.len(), 5);
        assert_eq!(v.to_ascii(), b"GTACG");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        PackedDna::from_ascii(b"ACG").unwrap().get(3);
    }

    #[test]
    fn iter_yields_bases_in_order() {
        let packed = PackedDna::from_ascii(b"GATC").unwrap();
        let bases: Vec<Base> = packed.iter().collect();
        assert_eq!(bases, vec![Base::G, Base::A, Base::T, Base::C]);
    }

    #[test]
    fn packed_slice_subslice_is_unaligned_safe() {
        let packed = PackedDna::from_ascii(b"ACGTACGTGGAT").unwrap();
        let v = packed.as_slice();
        // Sub-slice starting off a byte boundary, then slice again.
        let w = v.slice(3, 11); // TACGTGGA
        assert_eq!(w.to_ascii(), b"TACGTGGA");
        let x = w.slice(2, 6); // CGTG
        assert_eq!(x.to_ascii(), b"CGTG");
        assert_eq!(x.code_at(0), Base::C.code());
        assert_eq!(x.get(3), Base::G);
        // Empty sub-slices at both ends.
        assert_eq!(w.slice(0, 0).len(), 0);
        assert!(w.slice(8, 8).is_empty());
    }

    #[test]
    fn packed_text_mirrors_store() {
        let store =
            crate::store::SequenceStore::from_ests(&[&b"ACGGT"[..], b"TTACG", b"GG"]).unwrap();
        let text = PackedText::from_store(&store);
        assert_eq!(text.num_strings(), store.num_strings());
        for sid in store.str_ids() {
            assert_eq!(text.slice(sid).to_ascii(), store.seq(sid));
            assert_eq!(text.slice(sid).len(), store.len_of(sid));
        }
        // 2 bits/base: packed words are a quarter of the stored text.
        assert_eq!(
            text.packed_bytes() - text.offsets.len() * 4,
            store.total_stored_chars().div_ceil(4)
        );
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(s in proptest::collection::vec(
            proptest::sample::select(vec![b'A', b'C', b'G', b'T']), 0..300)) {
            let packed = PackedDna::from_ascii(&s).unwrap();
            prop_assert_eq!(packed.to_ascii(), s.clone());
            // Every sub-slice unpacks to the matching ASCII range.
            let v = packed.as_slice();
            let third = s.len() / 3;
            let w = v.slice(third, s.len() - third);
            prop_assert_eq!(w.to_ascii(), s[third..s.len() - third].to_vec());
        }

        #[test]
        fn packed_text_random_store(ests in proptest::collection::vec(
            proptest::collection::vec(
                proptest::sample::select(vec![b'A', b'C', b'G', b'T']), 1..60), 1..12)) {
            let store = crate::store::SequenceStore::from_ests(&ests).unwrap();
            let text = PackedText::from_store(&store);
            for sid in store.str_ids() {
                prop_assert_eq!(text.slice(sid).to_ascii(), store.seq(sid).to_vec());
            }
        }
    }
}
