//! 2-bit packing of DNA sequences.
//!
//! Four bases per byte. The working representation elsewhere in the system
//! is plain ASCII (simpler to slice and compare), but long-lived archival
//! data — e.g. the simulated genome a dataset was sampled from — is kept
//! packed to honour the paper's space-efficiency goal.

use crate::alphabet::Base;
use crate::error::SeqError;

/// A DNA sequence packed at 2 bits per base.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackedDna {
    words: Vec<u8>,
    len: usize,
}

impl PackedDna {
    /// Pack an ASCII DNA sequence. Fails on non-`{A,C,G,T}` bytes.
    pub fn from_ascii(seq: &[u8]) -> Result<Self, SeqError> {
        let mut words = vec![0u8; seq.len().div_ceil(4)];
        for (i, &b) in seq.iter().enumerate() {
            let code = Base::from_ascii(b)?.code();
            words[i / 4] |= code << ((i % 4) * 2);
        }
        Ok(PackedDna {
            words,
            len: seq.len(),
        })
    }

    /// Number of bases stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of backing storage used (for memory accounting).
    #[inline]
    pub fn packed_bytes(&self) -> usize {
        self.words.len()
    }

    /// The base at position `i`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Base {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        Base::from_code((self.words[i / 4] >> ((i % 4) * 2)) & 0b11)
    }

    /// Unpack back to upper-case ASCII.
    pub fn to_ascii(&self) -> Vec<u8> {
        (0..self.len).map(|i| self.get(i).to_ascii()).collect()
    }

    /// Unpack the half-open range `[start, end)` to ASCII.
    pub fn slice_ascii(&self, start: usize, end: usize) -> Vec<u8> {
        assert!(start <= end && end <= self.len, "bad range {start}..{end}");
        (start..end).map(|i| self.get(i).to_ascii()).collect()
    }

    /// Iterate over the bases.
    pub fn iter(&self) -> impl Iterator<Item = Base> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_small() {
        for s in [
            &b""[..],
            b"A",
            b"AC",
            b"ACG",
            b"ACGT",
            b"ACGTA",
            b"TTTTTTTTT",
        ] {
            let packed = PackedDna::from_ascii(s).unwrap();
            assert_eq!(packed.len(), s.len());
            assert_eq!(packed.to_ascii(), s);
        }
    }

    #[test]
    fn packs_four_per_byte() {
        let packed = PackedDna::from_ascii(&[b'A'; 17]).unwrap();
        assert_eq!(packed.packed_bytes(), 5); // ceil(17/4)
    }

    #[test]
    fn rejects_invalid() {
        assert!(PackedDna::from_ascii(b"ACNT").is_err());
    }

    #[test]
    fn slice_matches_full_unpack() {
        let packed = PackedDna::from_ascii(b"ACGTACGTGG").unwrap();
        assert_eq!(packed.slice_ascii(2, 7), b"GTACG");
        assert_eq!(packed.slice_ascii(0, 0), b"");
        assert_eq!(packed.slice_ascii(10, 10), b"");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        PackedDna::from_ascii(b"ACG").unwrap().get(3);
    }

    #[test]
    fn iter_yields_bases_in_order() {
        let packed = PackedDna::from_ascii(b"GATC").unwrap();
        let bases: Vec<Base> = packed.iter().collect();
        assert_eq!(bases, vec![Base::G, Base::A, Base::T, Base::C]);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(s in proptest::collection::vec(
            proptest::sample::select(vec![b'A', b'C', b'G', b'T']), 0..300)) {
            let packed = PackedDna::from_ascii(&s).unwrap();
            prop_assert_eq!(packed.to_ascii(), s);
        }
    }
}
