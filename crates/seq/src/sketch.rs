//! MinHash bottom-sketches for cheap pairwise similarity estimates.
//!
//! A bottom-`s` sketch of a string is the `s` smallest distinct 64-bit
//! hashes of its `k`-mers. Two sketches support a Mash-style estimate of
//! the `k`-mer Jaccard similarity of the underlying strings in
//! `O(s)` — computed from the bottom-`s` of the *union* of the two
//! sketches, the standard one-permutation MinHash estimator — which the
//! clustering engine uses as a lossy prefilter in front of banded DP:
//! promising pairs whose estimated similarity falls below a threshold
//! are skipped without touching the alignment kernels. Sketches are
//! built **once per string** over the store (both strands are separate
//! strings, so no canonicalization is needed) and are a few hundred
//! bytes each, honouring the paper's space discipline.

use crate::ids::StrId;
use crate::store::SequenceStore;

/// Sketch construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchParams {
    /// `k`-mer length; must be in `1..=31` so a `k`-mer packs into a
    /// `u64` at 2 bits per base.
    pub k: usize,
    /// Sketch size `s`: how many bottom hashes each string keeps.
    pub s: usize,
}

impl Default for SketchParams {
    /// `k = 11, s = 32`: small enough to be negligible next to the
    /// suffix-tree index, selective enough for EST-length reads.
    fn default() -> Self {
        SketchParams { k: 11, s: 32 }
    }
}

impl SketchParams {
    /// Check the parameters are usable.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 || self.k > 31 {
            return Err(format!("sketch k {} out of range 1..=31", self.k));
        }
        if self.s == 0 {
            return Err("sketch size must be positive".into());
        }
        Ok(())
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash of a packed
/// `k`-mer value.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[inline]
fn base_code(b: u8) -> u64 {
    // The store's text is validated {A,C,G,T}.
    match b {
        b'A' => 0,
        b'C' => 1,
        b'G' => 2,
        _ => 3,
    }
}

/// Bottom-`s` sketch of one byte string: the `s` smallest distinct
/// hashes of its `k`-mers, sorted ascending. Strings shorter than `k`
/// yield an empty sketch.
pub fn sketch_of(seq: &[u8], params: SketchParams) -> Vec<u64> {
    let SketchParams { k, s } = params;
    debug_assert!(params.validate().is_ok());
    if seq.len() < k {
        return Vec::new();
    }
    let mask = if k == 32 { u64::MAX } else { (1u64 << (2 * k)) - 1 };
    let mut hashes = Vec::with_capacity(seq.len() - k + 1);
    let mut v = 0u64;
    for (i, &b) in seq.iter().enumerate() {
        v = ((v << 2) | base_code(b)) & mask;
        if i + 1 >= k {
            hashes.push(mix64(v));
        }
    }
    hashes.sort_unstable();
    hashes.dedup();
    hashes.truncate(s);
    hashes
}

/// Bottom-`s` sketches for every string of a [`SequenceStore`], indexed
/// by [`StrId`] like the store itself. Flat storage: one offset array
/// plus one hash pool, mirroring the store's layout discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchSet {
    params: SketchParams,
    /// `offsets[i]..offsets[i+1]` delimits string `i`'s sketch.
    offsets: Vec<u32>,
    /// Sorted bottom hashes, all strings concatenated.
    hashes: Vec<u64>,
}

impl SketchSet {
    /// Sketch every string of `store` (each EST and its reverse
    /// complement — pairs reference strand-specific strings, so each is
    /// sketched as written).
    pub fn from_store(store: &SequenceStore, params: SketchParams) -> SketchSet {
        let mut offsets = Vec::with_capacity(store.num_strings() + 1);
        offsets.push(0u32);
        let mut hashes = Vec::with_capacity(store.num_strings() * params.s);
        for sid in store.str_ids() {
            hashes.extend(sketch_of(store.seq(sid), params));
            offsets.push(hashes.len() as u32);
        }
        SketchSet {
            params,
            offsets,
            hashes,
        }
    }

    /// The parameters these sketches were built with.
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Number of sketched strings.
    pub fn num_strings(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The sorted bottom-hash sketch of string `sid` (empty when the
    /// string is shorter than `k`).
    pub fn sketch(&self, sid: StrId) -> &[u64] {
        let i = sid.index();
        &self.hashes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Bytes of backing storage used (for memory accounting).
    pub fn sketch_bytes(&self) -> usize {
        self.hashes.len() * std::mem::size_of::<u64>()
            + self.offsets.len() * std::mem::size_of::<u32>()
    }

    /// Mash-style Jaccard estimate between two sketched strings: the
    /// shared fraction of the bottom-`s` of the sketch union. `None`
    /// when either string was too short to sketch — callers should
    /// treat that as "no evidence", not dissimilarity.
    pub fn jaccard(&self, a: StrId, b: StrId) -> Option<f64> {
        jaccard_estimate(self.sketch(a), self.sketch(b), self.params.s)
    }
}

/// The estimator behind [`SketchSet::jaccard`], usable on free-standing
/// sketches: walk the two sorted sketches, take the bottom-`s` of their
/// union, and return the fraction present in both.
pub fn jaccard_estimate(sa: &[u64], sb: &[u64], s: usize) -> Option<f64> {
    if sa.is_empty() || sb.is_empty() {
        return None;
    }
    let (mut i, mut j) = (0usize, 0usize);
    let mut union = 0usize;
    let mut shared = 0usize;
    while union < s && (i < sa.len() || j < sb.len()) {
        match (sa.get(i), sb.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                shared += 1;
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => i += 1,
            (Some(_), Some(_)) => j += 1,
            (Some(_), None) => i += 1,
            (None, Some(_)) => j += 1,
            (None, None) => unreachable!("loop condition"),
        }
        union += 1;
    }
    Some(shared as f64 / union as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params(k: usize, s: usize) -> SketchParams {
        SketchParams { k, s }
    }

    #[test]
    fn params_validation() {
        assert!(SketchParams::default().validate().is_ok());
        assert!(params(0, 8).validate().is_err());
        assert!(params(32, 8).validate().is_err());
        assert!(params(31, 8).validate().is_ok());
        assert!(params(11, 0).validate().is_err());
    }

    #[test]
    fn sketch_is_sorted_bounded_and_deterministic() {
        let seq = b"ACGTACGTACGTGGGGCCCCAAAATTTT";
        let sk = sketch_of(seq, params(5, 8));
        assert!(sk.len() <= 8);
        assert!(sk.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
        assert_eq!(sk, sketch_of(seq, params(5, 8)));
    }

    #[test]
    fn short_strings_sketch_empty() {
        assert!(sketch_of(b"ACG", params(5, 8)).is_empty());
        assert!(sketch_of(b"", params(5, 8)).is_empty());
        // Exactly k bases: one k-mer.
        assert_eq!(sketch_of(b"ACGTA", params(5, 8)).len(), 1);
    }

    #[test]
    fn identical_strings_estimate_one() {
        let seq = b"ACGTACGTGGATCCGGAATTCCGGTTAACC";
        let sk = sketch_of(seq, params(7, 16));
        assert_eq!(jaccard_estimate(&sk, &sk, 16), Some(1.0));
    }

    #[test]
    fn unrelated_strings_estimate_low() {
        // Disjoint alphabets of k-mers: no shared hashes at all.
        let sa = sketch_of(&[b'A'; 60], params(9, 16));
        let sb = sketch_of(&[b'T'; 60], params(9, 16));
        assert_eq!(jaccard_estimate(&sa, &sb, 16), Some(0.0));
    }

    #[test]
    fn empty_sketch_gives_no_estimate() {
        let sk = sketch_of(b"ACGTACGTACGT", params(5, 8));
        assert_eq!(jaccard_estimate(&sk, &[], 8), None);
        assert_eq!(jaccard_estimate(&[], &sk, 8), None);
    }

    #[test]
    fn sketch_set_mirrors_store() {
        let store =
            SequenceStore::from_ests(&[&b"ACGTACGTACGTACGT"[..], b"TTTTCCCCGGGGAAAA", b"ACG"])
                .unwrap();
        let p = params(5, 8);
        let set = SketchSet::from_store(&store, p);
        assert_eq!(set.num_strings(), store.num_strings());
        assert_eq!(set.params(), p);
        for sid in store.str_ids() {
            assert_eq!(set.sketch(sid), sketch_of(store.seq(sid), p).as_slice());
        }
        assert!(set.sketch_bytes() > 0);
    }

    #[test]
    fn overlapping_reads_score_higher_than_unrelated() {
        // Two reads sharing a 40-base overlap vs two unrelated reads.
        let template: Vec<u8> = (0..100u32)
            .map(|i| [b'A', b'C', b'G', b'T'][(i.wrapping_mul(2654435761) >> 13) as usize % 4])
            .collect();
        let unrelated: Vec<u8> = (0..70u32)
            .map(|i| [b'A', b'C', b'G', b'T'][(i.wrapping_mul(40503) >> 7) as usize % 4])
            .collect();
        let p = params(11, 24);
        let a = sketch_of(&template[..70], p);
        let b = sketch_of(&template[30..], p);
        let c = sketch_of(&unrelated, p);
        let related = jaccard_estimate(&a, &b, 24).unwrap();
        let distant = jaccard_estimate(&a, &c, 24).unwrap();
        assert!(
            related > distant,
            "overlap estimate {related} not above unrelated {distant}"
        );
        assert!(related > 0.2, "40/100-base overlap estimate too low");
    }

    proptest! {
        /// Estimates are always fractions in [0, 1], and a string is
        /// always fully similar to itself.
        #[test]
        fn estimate_is_a_fraction(
            a in proptest::collection::vec(
                proptest::sample::select(vec![b'A', b'C', b'G', b'T']), 0..120),
            b in proptest::collection::vec(
                proptest::sample::select(vec![b'A', b'C', b'G', b'T']), 0..120),
            k in 3usize..12,
            s in 1usize..24,
        ) {
            let p = params(k, s);
            let sa = sketch_of(&a, p);
            let sb = sketch_of(&b, p);
            if let Some(j) = jaccard_estimate(&sa, &sb, s) {
                prop_assert!((0.0..=1.0).contains(&j), "estimate {j}");
            } else {
                prop_assert!(sa.is_empty() || sb.is_empty());
            }
            if !sa.is_empty() {
                prop_assert_eq!(jaccard_estimate(&sa, &sa, s), Some(1.0));
            }
        }

        /// The union walk is symmetric in its arguments.
        #[test]
        fn estimate_is_symmetric(
            a in proptest::collection::vec(
                proptest::sample::select(vec![b'A', b'C', b'G', b'T']), 12..100),
            b in proptest::collection::vec(
                proptest::sample::select(vec![b'A', b'C', b'G', b'T']), 12..100),
        ) {
            let p = params(7, 16);
            let sa = sketch_of(&a, p);
            let sb = sketch_of(&b, p);
            prop_assert_eq!(jaccard_estimate(&sa, &sb, 16), jaccard_estimate(&sb, &sa, 16));
        }
    }
}
