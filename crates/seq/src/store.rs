//! The shared sequence store.
//!
//! All `2n` strings (every EST followed by its reverse complement) live
//! concatenated in a single `Vec<u8>` with an offset table — one allocation
//! for the whole dataset, O(1) slicing, and no per-string overhead. Every
//! layer above (suffix tree, pair generation, alignment) refers to
//! sequences only through [`StrId`]/offset pairs into this store, which is
//! what keeps the total space linear in the input size `N`.

use crate::alphabet::validate_dna;
use crate::error::SeqError;
use crate::ids::{EstId, StrId, Strand};
use crate::revcomp::reverse_complement_into;

/// Immutable container of all ESTs and their reverse complements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceStore {
    /// Concatenated bytes of `s_0, s_1, …, s_{2n-1}`.
    text: Vec<u8>,
    /// `offsets[i]..offsets[i+1]` delimits string `i`; `2n + 1` entries.
    offsets: Vec<u32>,
}

/// Incremental [`SequenceStore`] construction, one EST at a time.
///
/// The batch constructor [`SequenceStore::from_ests`] needs the whole
/// input materialized as a slice of slices; this builder lets streaming
/// ingest (FASTA readers, generators) append ESTs as they arrive, so
/// peak memory stays at one store instead of input-copy + store.
#[derive(Debug, Clone, Default)]
pub struct SequenceStoreBuilder {
    text: Vec<u8>,
    offsets: Vec<u32>,
}

impl SequenceStoreBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        SequenceStoreBuilder {
            text: Vec::new(),
            offsets: vec![0u32],
        }
    }

    /// Builder pre-sized for `total_input_chars` bases across all ESTs.
    pub fn with_capacity(total_input_chars: usize, num_ests: usize) -> Self {
        let mut offsets = Vec::with_capacity(num_ests * 2 + 1);
        offsets.push(0u32);
        SequenceStoreBuilder {
            text: Vec::with_capacity(total_input_chars * 2),
            offsets,
        }
    }

    /// Append one EST: validated (strict `{A,C,G,T}`, case-insensitive),
    /// upper-cased, and stored with its reverse complement right after,
    /// exactly as [`SequenceStore::from_ests`] would.
    pub fn push_est(&mut self, est: &[u8]) -> Result<(), SeqError> {
        if est.is_empty() {
            return Err(SeqError::EmptySequence {
                index: self.num_ests(),
            });
        }
        validate_dna(est)?;

        let start = self.text.len();
        self.text.extend(est.iter().map(|b| b.to_ascii_uppercase()));
        self.offsets.push(self.text.len() as u32);

        // Materialize the reverse complement right after the forward
        // strand so ē_i is an ordinary string, not a special case.
        self.text.resize(start + est.len() * 2, 0);
        let (fwd, rev) = self.text[start..].split_at_mut(est.len());
        reverse_complement_into(fwd, rev);
        self.offsets.push(self.text.len() as u32);
        Ok(())
    }

    /// ESTs appended so far.
    pub fn num_ests(&self) -> usize {
        (self.offsets.len() - 1) / 2
    }

    /// Total input characters appended so far.
    pub fn total_input_chars(&self) -> usize {
        self.text.len() / 2
    }

    /// Finish building; the result owns the accumulated text.
    pub fn finish(self) -> SequenceStore {
        SequenceStore {
            text: self.text,
            offsets: self.offsets,
        }
    }
}

impl SequenceStore {
    /// Build a store from ESTs given as byte slices.
    ///
    /// Each EST is validated (strict `{A,C,G,T}`, case-insensitive),
    /// upper-cased, and stored together with its reverse complement:
    /// EST `i` becomes strings `2i` (forward) and `2i+1` (reverse).
    pub fn from_ests<S: AsRef<[u8]>>(ests: &[S]) -> Result<Self, SeqError> {
        let total: usize = ests.iter().map(|e| e.as_ref().len()).sum();
        let mut builder = SequenceStoreBuilder::with_capacity(total, ests.len());
        for est in ests {
            builder.push_est(est.as_ref())?;
        }
        Ok(builder.finish())
    }

    /// Borrow the raw representation `(text, offsets)` for serialization.
    pub fn as_raw_parts(&self) -> (&[u8], &[u32]) {
        (&self.text, &self.offsets)
    }

    /// Rebuild a store from a previously serialized raw representation.
    ///
    /// Both the structural invariants (odd offset count,
    /// `offsets[0] == 0`, monotone non-decreasing, final offset equals
    /// the text length, equal strand lengths, no empty strings) and the
    /// content invariant (every byte is uppercase `{A,C,G,T}`) are
    /// checked. Content validation matters because everything above the
    /// store — in particular the suffix-tree builder's base classifier —
    /// relies on the store only ever holding DNA; a snapshot that smuggles
    /// in an `N` must surface here as a typed error, not as a panic deep
    /// inside GST construction.
    pub fn from_raw_parts(text: Vec<u8>, offsets: Vec<u32>) -> Result<Self, SeqError> {
        let corrupt = |detail: String| SeqError::CorruptStore { detail };
        if offsets.len() % 2 != 1 {
            return Err(corrupt(format!(
                "offset table has {} entries, expected 2n+1",
                offsets.len()
            )));
        }
        if offsets[0] != 0 {
            return Err(corrupt(format!("offsets[0] = {}, expected 0", offsets[0])));
        }
        if *offsets.last().unwrap() as usize != text.len() {
            return Err(corrupt(format!(
                "final offset {} != text length {}",
                offsets.last().unwrap(),
                text.len()
            )));
        }
        for pair in offsets.windows(2) {
            if pair[0] >= pair[1] {
                return Err(corrupt(format!(
                    "offsets not strictly increasing: {} then {}",
                    pair[0], pair[1]
                )));
            }
        }
        for i in (0..offsets.len() - 1).step_by(2) {
            let fwd = offsets[i + 1] - offsets[i];
            let rev = offsets[i + 2] - offsets[i + 1];
            if fwd != rev {
                return Err(corrupt(format!(
                    "EST {}: forward length {fwd} != reverse length {rev}",
                    i / 2
                )));
            }
        }
        if let Some(offset) = text
            .iter()
            .position(|b| !matches!(b, b'A' | b'C' | b'G' | b'T'))
        {
            return Err(SeqError::InvalidBaseAt {
                byte: text[offset],
                offset,
            });
        }
        Ok(SequenceStore { text, offsets })
    }

    /// Number of ESTs `n`.
    #[inline]
    pub fn num_ests(&self) -> usize {
        (self.offsets.len() - 1) / 2
    }

    /// Number of stored strings `2n`.
    #[inline]
    pub fn num_strings(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total characters over the input ESTs (the paper's `N`).
    #[inline]
    pub fn total_input_chars(&self) -> usize {
        self.text.len() / 2
    }

    /// Total characters actually stored (`2N`: both strands).
    #[inline]
    pub fn total_stored_chars(&self) -> usize {
        self.text.len()
    }

    /// Average EST length (the paper's `l = N / n`).
    pub fn average_est_length(&self) -> f64 {
        if self.num_ests() == 0 {
            0.0
        } else {
            self.total_input_chars() as f64 / self.num_ests() as f64
        }
    }

    /// The bytes of string `sid`.
    #[inline]
    pub fn seq(&self, sid: StrId) -> &[u8] {
        let i = sid.index();
        debug_assert!(i < self.num_strings(), "string id {i} out of range");
        &self.text[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The forward-strand bytes of EST `eid`.
    #[inline]
    pub fn est_seq(&self, eid: EstId) -> &[u8] {
        self.seq(eid.str_id(Strand::Forward))
    }

    /// Length of string `sid`.
    #[inline]
    pub fn len_of(&self, sid: StrId) -> usize {
        let i = sid.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The suffix of string `sid` starting at `offset`.
    #[inline]
    pub fn suffix(&self, sid: StrId, offset: usize) -> &[u8] {
        &self.seq(sid)[offset..]
    }

    /// The character immediately left of position `offset` in string `sid`,
    /// or `None` when `offset == 0` (the paper's λ, "left-extensible by the
    /// null character"). This drives the lset partition in pair generation.
    #[inline]
    pub fn left_char(&self, sid: StrId, offset: usize) -> Option<u8> {
        if offset == 0 {
            None
        } else {
            Some(self.seq(sid)[offset - 1])
        }
    }

    /// Iterate over all string ids `s_0 … s_{2n-1}`.
    pub fn str_ids(&self) -> impl Iterator<Item = StrId> {
        (0..self.num_strings() as u32).map(StrId)
    }

    /// Iterate over all EST ids `e_0 … e_{n-1}`.
    pub fn est_ids(&self) -> impl Iterator<Item = EstId> {
        (0..self.num_ests() as u32).map(EstId)
    }

    /// Approximate heap footprint in bytes, for the memory accounting used
    /// by the Table 1 reproduction.
    pub fn memory_bytes(&self) -> usize {
        self.text.capacity() + self.offsets.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revcomp::reverse_complement;
    use proptest::prelude::*;

    fn store(ests: &[&[u8]]) -> SequenceStore {
        SequenceStore::from_ests(ests).unwrap()
    }

    #[test]
    fn forward_and_reverse_strands() {
        let s = store(&[b"ACGGT", b"TTA"]);
        assert_eq!(s.num_ests(), 2);
        assert_eq!(s.num_strings(), 4);
        assert_eq!(s.seq(StrId(0)), b"ACGGT");
        assert_eq!(s.seq(StrId(1)), reverse_complement(b"ACGGT").as_slice());
        assert_eq!(s.seq(StrId(2)), b"TTA");
        assert_eq!(s.seq(StrId(3)), b"TAA");
        assert_eq!(s.est_seq(EstId(1)), b"TTA");
    }

    #[test]
    fn totals_and_average() {
        let s = store(&[b"ACGT", b"AA"]);
        assert_eq!(s.total_input_chars(), 6);
        assert_eq!(s.total_stored_chars(), 12);
        assert!((s.average_est_length() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lowercase_is_normalized() {
        let s = store(&[b"acgt"]);
        assert_eq!(s.seq(StrId(0)), b"ACGT");
        assert_eq!(s.seq(StrId(1)), b"ACGT");
    }

    #[test]
    fn suffix_and_left_char() {
        let s = store(&[b"ACGGT"]);
        assert_eq!(s.suffix(StrId(0), 0), b"ACGGT");
        assert_eq!(s.suffix(StrId(0), 3), b"GT");
        assert_eq!(s.suffix(StrId(0), 5), b"");
        assert_eq!(s.left_char(StrId(0), 0), None);
        assert_eq!(s.left_char(StrId(0), 1), Some(b'A'));
        assert_eq!(s.left_char(StrId(0), 4), Some(b'G'));
    }

    #[test]
    fn rejects_empty_est() {
        let err = SequenceStore::from_ests(&[&b"ACGT"[..], b""]).unwrap_err();
        assert_eq!(err, SeqError::EmptySequence { index: 1 });
    }

    #[test]
    fn rejects_invalid_base() {
        assert!(SequenceStore::from_ests(&[&b"ACNT"[..]]).is_err());
    }

    #[test]
    fn empty_store() {
        let s = SequenceStore::from_ests::<&[u8]>(&[]).unwrap();
        assert_eq!(s.num_ests(), 0);
        assert_eq!(s.num_strings(), 0);
        assert_eq!(s.average_est_length(), 0.0);
        assert_eq!(s.str_ids().count(), 0);
    }

    #[test]
    fn id_iterators() {
        let s = store(&[b"AC", b"GT", b"AA"]);
        assert_eq!(s.str_ids().count(), 6);
        assert_eq!(s.est_ids().count(), 3);
        for sid in s.str_ids() {
            assert_eq!(s.len_of(sid), 2);
        }
    }

    #[test]
    fn builder_matches_batch_constructor() {
        let ests: &[&[u8]] = &[b"ACGGT", b"ttacg", b"A"];
        let batch = SequenceStore::from_ests(ests).unwrap();
        let mut b = SequenceStoreBuilder::new();
        for est in ests {
            b.push_est(est).unwrap();
        }
        assert_eq!(b.num_ests(), 3);
        assert_eq!(b.total_input_chars(), 11);
        assert_eq!(b.finish(), batch);
    }

    #[test]
    fn builder_rejects_bad_input_with_index() {
        let mut b = SequenceStoreBuilder::new();
        b.push_est(b"ACGT").unwrap();
        assert_eq!(
            b.push_est(b"").unwrap_err(),
            SeqError::EmptySequence { index: 1 }
        );
        assert!(b.push_est(b"ACNT").is_err());
        // Failed pushes leave the builder usable.
        b.push_est(b"GG").unwrap();
        assert_eq!(b.finish(), store(&[b"ACGT", b"GG"]));
    }

    #[test]
    fn raw_parts_roundtrip_and_validation() {
        let s = store(&[b"ACGGT", b"TTA"]);
        let (text, offsets) = s.as_raw_parts();
        let back = SequenceStore::from_raw_parts(text.to_vec(), offsets.to_vec()).unwrap();
        assert_eq!(back, s);

        // Structural corruption is rejected.
        assert!(SequenceStore::from_raw_parts(b"AC".to_vec(), vec![0, 2]).is_err());
        assert!(SequenceStore::from_raw_parts(b"AC".to_vec(), vec![1, 2, 2]).is_err());
        assert!(SequenceStore::from_raw_parts(b"ACGT".to_vec(), vec![0, 2, 2]).is_err());
        assert!(SequenceStore::from_raw_parts(b"ACGT".to_vec(), vec![0, 1, 4]).is_err());
        assert!(SequenceStore::from_raw_parts(b"ACGT".to_vec(), vec![0, 2, 5]).is_err());

        // Content corruption is rejected with a typed, located error —
        // the GST builder must never see a non-DNA byte.
        assert_eq!(
            SequenceStore::from_raw_parts(b"ACNT".to_vec(), vec![0, 2, 4]).unwrap_err(),
            SeqError::InvalidBaseAt {
                byte: b'N',
                offset: 2
            }
        );
        // Lowercase bytes are invalid too: the store is normalized to
        // uppercase at insertion, so a serialized 'a' means corruption.
        assert!(matches!(
            SequenceStore::from_raw_parts(b"acgt".to_vec(), vec![0, 2, 4]).unwrap_err(),
            SeqError::InvalidBaseAt { byte: b'a', .. }
        ));
    }

    fn dna_vecs() -> impl Strategy<Value = Vec<Vec<u8>>> {
        proptest::collection::vec(
            proptest::collection::vec(
                proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
                1..80,
            ),
            0..20,
        )
    }

    proptest! {
        /// Every stored reverse strand is exactly the revcomp of its mate,
        /// and slicing recovers the original inputs verbatim.
        #[test]
        fn store_invariants(ests in dna_vecs()) {
            let s = SequenceStore::from_ests(&ests).unwrap();
            prop_assert_eq!(s.num_ests(), ests.len());
            for (i, est) in ests.iter().enumerate() {
                let eid = EstId(i as u32);
                let fwd = eid.str_id(Strand::Forward);
                let rev = eid.str_id(Strand::Reverse);
                prop_assert_eq!(s.seq(fwd), est.as_slice());
                let rc = reverse_complement(est);
                prop_assert_eq!(s.seq(rev), rc.as_slice());
                prop_assert_eq!(s.len_of(fwd), s.len_of(rev));
                prop_assert_eq!(fwd.mate(), rev);
            }
        }
    }
}
