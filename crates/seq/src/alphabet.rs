//! The DNA alphabet `Σ = {A, C, G, T}`.
//!
//! Sequences throughout the system are stored as upper-case ASCII bytes
//! (`b'A'`, `b'C'`, `b'G'`, `b'T'`); [`Base`] is the typed view used where
//! the alphabet structure matters (bucketing, lset partitioning).

use crate::error::SeqError;

/// Number of characters in the DNA alphabet.
pub const ALPHABET_SIZE: usize = 4;

/// The four DNA bases in their canonical (lexicographic) order.
pub const DNA_BASES: [Base; ALPHABET_SIZE] = [Base::A, Base::C, Base::G, Base::T];

/// A single DNA nucleotide.
///
/// The discriminants (0–3) double as the 2-bit code used by
/// [`crate::codec`] and as the bucket digit in the suffix-tree layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Base {
    /// Parse an ASCII byte into a base, accepting both cases.
    ///
    /// Returns an error for any byte outside `{A,C,G,T,a,c,g,t}`; ambiguity
    /// codes (N, R, Y, …) are deliberately rejected — the caller decides a
    /// policy for them (the simulator never produces them and the FASTA
    /// layer offers [`sanitize`](crate::fasta::sanitize_sequence)).
    #[inline]
    pub fn from_ascii(byte: u8) -> Result<Self, SeqError> {
        match byte {
            b'A' | b'a' => Ok(Base::A),
            b'C' | b'c' => Ok(Base::C),
            b'G' | b'g' => Ok(Base::G),
            b'T' | b't' => Ok(Base::T),
            other => Err(SeqError::InvalidBase(other)),
        }
    }

    /// The 2-bit code of the base (A=0, C=1, G=2, T=3).
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Base::code`]. Panics if `code > 3`.
    #[inline]
    pub fn from_code(code: u8) -> Self {
        match code {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            3 => Base::T,
            _ => panic!("invalid 2-bit base code: {code}"),
        }
    }

    /// Upper-case ASCII representation.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// Watson–Crick complement (`A↔T`, `C↔G`).
    #[inline]
    pub fn complement(self) -> Self {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
        }
    }
}

impl std::fmt::Display for Base {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

impl TryFrom<u8> for Base {
    type Error = SeqError;
    fn try_from(byte: u8) -> Result<Self, Self::Error> {
        Base::from_ascii(byte)
    }
}

/// Returns `true` if `byte` is a valid upper- or lower-case DNA base.
#[inline]
pub fn is_dna(byte: u8) -> bool {
    matches!(byte, b'A' | b'C' | b'G' | b'T' | b'a' | b'c' | b'g' | b't')
}

/// Validate that every byte of `seq` is a DNA base.
///
/// Returns the offset and value of the first offending byte on failure.
pub fn validate_dna(seq: &[u8]) -> Result<(), SeqError> {
    match seq.iter().position(|&b| !is_dna(b)) {
        None => Ok(()),
        Some(pos) => Err(SeqError::InvalidBaseAt {
            byte: seq[pos],
            offset: pos,
        }),
    }
}

/// Upper-case a DNA sequence in place (no validation).
pub fn normalize_case(seq: &mut [u8]) {
    for b in seq {
        *b = b.to_ascii_uppercase();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ascii() {
        for &b in &DNA_BASES {
            assert_eq!(Base::from_ascii(b.to_ascii()).unwrap(), b);
            assert_eq!(
                Base::from_ascii(b.to_ascii().to_ascii_lowercase()).unwrap(),
                b
            );
        }
    }

    #[test]
    fn roundtrip_code() {
        for &b in &DNA_BASES {
            assert_eq!(Base::from_code(b.code()), b);
        }
    }

    #[test]
    fn codes_are_lexicographic() {
        // The suffix-tree bucket layer relies on code order == ASCII order.
        let mut ascii: Vec<u8> = DNA_BASES.iter().map(|b| b.to_ascii()).collect();
        let sorted = ascii.clone();
        ascii.sort_unstable();
        assert_eq!(ascii, sorted);
        for w in DNA_BASES.windows(2) {
            assert!(w[0].code() < w[1].code());
        }
    }

    #[test]
    fn complement_is_involution() {
        for &b in &DNA_BASES {
            assert_eq!(b.complement().complement(), b);
            assert_ne!(b.complement(), b);
        }
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::T.complement(), Base::A);
        assert_eq!(Base::C.complement(), Base::G);
        assert_eq!(Base::G.complement(), Base::C);
    }

    #[test]
    fn rejects_non_dna() {
        assert!(Base::from_ascii(b'N').is_err());
        assert!(Base::from_ascii(b'X').is_err());
        assert!(Base::from_ascii(b'-').is_err());
        assert!(Base::from_ascii(0).is_err());
    }

    #[test]
    fn validate_reports_offset() {
        let err = validate_dna(b"ACGTNACGT").unwrap_err();
        match err {
            SeqError::InvalidBaseAt { byte, offset } => {
                assert_eq!(byte, b'N');
                assert_eq!(offset, 4);
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert!(validate_dna(b"acgtACGT").is_ok());
        assert!(validate_dna(b"").is_ok());
    }

    #[test]
    fn normalize_case_uppercases() {
        let mut s = b"acGT".to_vec();
        normalize_case(&mut s);
        assert_eq!(&s, b"ACGT");
    }

    #[test]
    fn display_matches_ascii() {
        assert_eq!(Base::G.to_string(), "G");
    }
}
