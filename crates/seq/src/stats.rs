//! Descriptive statistics over read sets.
//!
//! Small utilities the CLI and reports use to characterize an EST
//! collection before/after clustering: length distribution, N50, base
//! composition. None of this is on the clustering hot path.

/// Summary statistics of a collection of sequence lengths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthStats {
    /// Number of sequences.
    pub count: usize,
    /// Total bases.
    pub total: usize,
    /// Shortest sequence.
    pub min: usize,
    /// Longest sequence.
    pub max: usize,
    /// Arithmetic mean length.
    pub mean: f64,
    /// Median length (lower median for even counts).
    pub median: usize,
    /// N50: the largest length L such that sequences of length ≥ L cover
    /// at least half the total bases.
    pub n50: usize,
}

/// Compute [`LengthStats`] for a set of sequences.
///
/// Returns `None` for an empty set (every statistic would be undefined).
pub fn length_stats<S: AsRef<[u8]>>(seqs: &[S]) -> Option<LengthStats> {
    if seqs.is_empty() {
        return None;
    }
    let mut lens: Vec<usize> = seqs.iter().map(|s| s.as_ref().len()).collect();
    lens.sort_unstable();
    let count = lens.len();
    let total: usize = lens.iter().sum();
    let median = lens[(count - 1) / 2];

    // N50: walk lengths descending until half the bases are covered.
    let mut covered = 0usize;
    let mut n50 = *lens.last().expect("non-empty");
    for &len in lens.iter().rev() {
        covered += len;
        n50 = len;
        if covered * 2 >= total {
            break;
        }
    }

    Some(LengthStats {
        count,
        total,
        min: lens[0],
        max: *lens.last().expect("non-empty"),
        mean: total as f64 / count as f64,
        median,
        n50,
    })
}

/// Fraction of G/C bases over all sequences (0.0 for an empty set).
pub fn gc_content<S: AsRef<[u8]>>(seqs: &[S]) -> f64 {
    let mut gc = 0usize;
    let mut total = 0usize;
    for s in seqs {
        for &b in s.as_ref() {
            total += 1;
            if matches!(b, b'G' | b'C' | b'g' | b'c') {
                gc += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        gc as f64 / total as f64
    }
}

/// Per-base counts over all sequences, indexed A, C, G, T.
pub fn base_composition<S: AsRef<[u8]>>(seqs: &[S]) -> [usize; 4] {
    let mut counts = [0usize; 4];
    for s in seqs {
        for &b in s.as_ref() {
            match b.to_ascii_uppercase() {
                b'A' => counts[0] += 1,
                b'C' => counts[1] += 1,
                b'G' => counts[2] += 1,
                b'T' => counts[3] += 1,
                _ => {}
            }
        }
    }
    counts
}

impl std::fmt::Display for LengthStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} seqs, {} bases; len min/median/mean/max = {}/{}/{:.0}/{}; N50 {}",
            self.count, self.total, self.min, self.median, self.mean, self.max, self.n50
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_stats() {
        let seqs: Vec<&[u8]> = vec![b"ACGT", b"AC", b"ACGTACGT"];
        let s = length_stats(&seqs).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.total, 14);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 8);
        assert_eq!(s.median, 4);
        assert!((s.mean - 14.0 / 3.0).abs() < 1e-12);
        // Descending: 8 covers 8 ≥ 7 → N50 = 8.
        assert_eq!(s.n50, 8);
    }

    #[test]
    fn empty_set_has_no_stats() {
        assert!(length_stats::<&[u8]>(&[]).is_none());
        assert_eq!(gc_content::<&[u8]>(&[]), 0.0);
    }

    #[test]
    fn n50_textbook_example() {
        // Lengths 2,2,2,3,3,4,8,8: total 32, half 16. Descending: 8 (8),
        // 8 (16) → N50 = 8.
        let seqs: Vec<Vec<u8>> = [2, 2, 2, 3, 3, 4, 8, 8]
            .iter()
            .map(|&l| vec![b'A'; l])
            .collect();
        assert_eq!(length_stats(&seqs).unwrap().n50, 8);
    }

    #[test]
    fn gc_and_composition() {
        let seqs: Vec<&[u8]> = vec![b"GGCC", b"AATT"];
        assert!((gc_content(&seqs) - 0.5).abs() < 1e-12);
        assert_eq!(base_composition(&seqs), [2, 2, 2, 2]);
        let lower: Vec<&[u8]> = vec![b"gc"];
        assert!((gc_content(&lower) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let seqs: Vec<&[u8]> = vec![b"ACGT"];
        let text = length_stats(&seqs).unwrap().to_string();
        assert!(text.contains("1 seqs"));
        assert!(text.contains("N50 4"));
    }

    proptest! {
        /// N50 is always one of the input lengths, ≥ median of bases
        /// covered, and within [min, max]; total/mean are consistent.
        #[test]
        fn stats_invariants(lens in proptest::collection::vec(1usize..200, 1..40)) {
            let seqs: Vec<Vec<u8>> = lens.iter().map(|&l| vec![b'A'; l]).collect();
            let s = length_stats(&seqs).unwrap();
            prop_assert!(lens.contains(&s.n50));
            prop_assert!(s.min <= s.median && s.median as f64 <= s.mean.max(s.median as f64));
            prop_assert!(s.n50 >= s.min && s.n50 <= s.max);
            prop_assert_eq!(s.total, lens.iter().sum::<usize>());
            // Sequences of length ≥ N50 must cover at least half the bases.
            let covered: usize = lens.iter().filter(|&&l| l >= s.n50).sum();
            prop_assert!(covered * 2 >= s.total);
        }
    }
}
