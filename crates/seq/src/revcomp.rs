//! Reverse complementation.
//!
//! DNA is double stranded; the two strands run in opposite directions and
//! pair `A↔T`, `C↔G`. A gene can lie on either strand, so an EST read may be
//! the reverse complement of the mRNA orientation. The paper therefore works
//! on the set `S` of all ESTs *and* their reverse complements; these
//! functions implement that operation on raw ASCII sequences.

/// Complement a single ASCII base, preserving case.
///
/// Non-DNA bytes are returned unchanged, which makes the function total —
/// validation is the job of [`crate::alphabet::validate_dna`].
#[inline]
pub fn complement_base(byte: u8) -> u8 {
    match byte {
        b'A' => b'T',
        b'T' => b'A',
        b'C' => b'G',
        b'G' => b'C',
        b'a' => b't',
        b't' => b'a',
        b'c' => b'g',
        b'g' => b'c',
        other => other,
    }
}

/// Return the reverse complement of `seq` as a new vector.
pub fn reverse_complement(seq: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(seq.len());
    out.extend(seq.iter().rev().map(|&b| complement_base(b)));
    out
}

/// Reverse-complement `seq` in place without allocating.
pub fn reverse_complement_in_place(seq: &mut [u8]) {
    let n = seq.len();
    for i in 0..n / 2 {
        let (a, b) = (seq[i], seq[n - 1 - i]);
        seq[i] = complement_base(b);
        seq[n - 1 - i] = complement_base(a);
    }
    if n % 2 == 1 {
        let mid = n / 2;
        seq[mid] = complement_base(seq[mid]);
    }
}

/// Write the reverse complement of `src` into `dst` (must be equal length).
///
/// Used by the [`crate::SequenceStore`] to materialize `ē_i` directly into
/// the shared text buffer without a temporary allocation.
pub fn reverse_complement_into(src: &[u8], dst: &mut [u8]) {
    assert_eq!(
        src.len(),
        dst.len(),
        "reverse_complement_into: length mismatch"
    );
    for (d, &s) in dst.iter_mut().zip(src.iter().rev()) {
        *d = complement_base(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_revcomp() {
        assert_eq!(reverse_complement(b"ACGT"), b"ACGT");
        assert_eq!(reverse_complement(b"AAAA"), b"TTTT");
        assert_eq!(reverse_complement(b"GATTACA"), b"TGTAATC");
        assert_eq!(reverse_complement(b""), b"");
    }

    #[test]
    fn in_place_matches_allocating() {
        for s in [&b"A"[..], b"AC", b"ACG", b"GATTACA", b"CCGGTTAA"] {
            let mut v = s.to_vec();
            reverse_complement_in_place(&mut v);
            assert_eq!(v, reverse_complement(s));
        }
    }

    #[test]
    fn into_matches_allocating() {
        let src = b"ACGGTTAC";
        let mut dst = vec![0u8; src.len()];
        reverse_complement_into(src, &mut dst);
        assert_eq!(dst, reverse_complement(src));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn into_panics_on_length_mismatch() {
        let mut dst = vec![0u8; 3];
        reverse_complement_into(b"ACGT", &mut dst);
    }

    #[test]
    fn preserves_case() {
        assert_eq!(reverse_complement(b"acgt"), b"acgt");
        assert_eq!(reverse_complement(b"aCgT"), b"AcGt");
    }

    fn dna_string() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(
            proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
            0..200,
        )
    }

    proptest! {
        /// Reverse complementation is an involution: rc(rc(s)) == s.
        #[test]
        fn revcomp_involution(s in dna_string()) {
            prop_assert_eq!(reverse_complement(&reverse_complement(&s)), s);
        }

        /// rc distributes over concatenation reversed: rc(a++b) == rc(b)++rc(a).
        #[test]
        fn revcomp_antihomomorphism(a in dna_string(), b in dna_string()) {
            let mut ab = a.clone();
            ab.extend_from_slice(&b);
            let mut rc_b_rc_a = reverse_complement(&b);
            rc_b_rc_a.extend_from_slice(&reverse_complement(&a));
            prop_assert_eq!(reverse_complement(&ab), rc_b_rc_a);
        }

        /// In-place and allocating versions agree on arbitrary input.
        #[test]
        fn in_place_agrees(s in dna_string()) {
            let mut v = s.clone();
            reverse_complement_in_place(&mut v);
            prop_assert_eq!(v, reverse_complement(&s));
        }
    }
}
