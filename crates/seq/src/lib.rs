//! DNA sequence substrate for PaCE.
//!
//! This crate provides everything the rest of the system needs to talk about
//! DNA: the four-letter nucleotide [`alphabet`], [`revcomp`] (reverse
//! complementation, required because a gene may lie on either strand of the
//! double-stranded molecule), a compact 2-bit [`codec`], a minimal
//! [`fasta`] reader/writer, and the [`store::SequenceStore`] — the
//! contiguous, allocation-free container holding all `2n` strings
//! (each EST `e_i` and its reverse complement `ē_i`) that the suffix tree
//! and pair-generation layers index into.
//!
//! The paper denotes the EST set `E = {e_1, …, e_n}` and works over
//! `S = {s_1, …, s_2n}` with `s_{2i-1} = e_i` and `s_{2i} = ē_i`; the types
//! in [`ids`] mirror that numbering exactly.
//!
//! ```
//! use pace_seq::{EstId, SequenceStore, Strand};
//!
//! let store = SequenceStore::from_ests(&[b"ACGGT", b"TTACG"]).unwrap();
//! assert_eq!(store.num_ests(), 2);
//! assert_eq!(store.num_strings(), 4); // each EST + its reverse complement
//!
//! let e0 = EstId(0);
//! assert_eq!(store.seq(e0.str_id(Strand::Forward)), b"ACGGT");
//! assert_eq!(store.seq(e0.str_id(Strand::Reverse)), b"ACCGT");
//! ```

pub mod alphabet;
pub mod codec;
pub mod error;
pub mod fasta;
pub mod ids;
pub mod revcomp;
pub mod sketch;
pub mod stats;
pub mod store;

pub use alphabet::{Base, ALPHABET_SIZE, DNA_BASES};
pub use codec::{PackedDna, PackedSlice, PackedText};
pub use error::SeqError;
pub use fasta::{
    for_each_fasta_record, for_each_fasta_record_with, parse_fasta, parse_fasta_with,
    read_fasta_file, read_fasta_file_with, read_fasta_into_store, write_fasta, write_fasta_file,
    AmbiguityPolicy, FastaRecord,
};
pub use ids::{EstId, StrId, Strand};
pub use revcomp::{complement_base, reverse_complement, reverse_complement_in_place};
pub use sketch::{jaccard_estimate, sketch_of, SketchParams, SketchSet};
pub use stats::{base_composition, gc_content, length_stats, LengthStats};
pub use store::{SequenceStore, SequenceStoreBuilder};
