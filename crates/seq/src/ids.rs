//! Identifier types mirroring the paper's numbering.
//!
//! The input is `n` ESTs `E = {e_1, …, e_n}`. Because DNA is double
//! stranded, the algorithms run over `2n` strings
//! `S = {s_1, …, s_2n}` with `s_{2i-1} = e_i` (forward strand) and
//! `s_{2i} = ē_i` (reverse complement). We use 0-based indices: EST `i`
//! owns strings `2i` (forward) and `2i + 1` (reverse complement).

/// 0-based index of an EST (the paper's `e_{i+1}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EstId(pub u32);

/// 0-based index of a string in `S` (an EST or a reverse complement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StrId(pub u32);

/// Which strand of the EST a string represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strand {
    /// The EST as sequenced (`e_i`).
    Forward,
    /// Its reverse complement (`ē_i`).
    Reverse,
}

impl Strand {
    /// The opposite strand.
    #[inline]
    pub fn flip(self) -> Self {
        match self {
            Strand::Forward => Strand::Reverse,
            Strand::Reverse => Strand::Forward,
        }
    }
}

impl EstId {
    /// The string id of this EST on the given strand.
    #[inline]
    pub fn str_id(self, strand: Strand) -> StrId {
        match strand {
            Strand::Forward => StrId(self.0 * 2),
            Strand::Reverse => StrId(self.0 * 2 + 1),
        }
    }

    /// Plain index accessor.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl StrId {
    /// The EST this string belongs to.
    #[inline]
    pub fn est(self) -> EstId {
        EstId(self.0 / 2)
    }

    /// Which strand this string represents.
    #[inline]
    pub fn strand(self) -> Strand {
        if self.0.is_multiple_of(2) {
            Strand::Forward
        } else {
            Strand::Reverse
        }
    }

    /// The string for the same EST on the opposite strand.
    #[inline]
    pub fn mate(self) -> StrId {
        StrId(self.0 ^ 1)
    }

    /// Plain index accessor.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for EstId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl std::fmt::Display for StrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.strand() {
            Strand::Forward => write!(f, "e{}", self.est().0),
            Strand::Reverse => write!(f, "~e{}", self.est().0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn est_to_str_roundtrip() {
        for i in [0u32, 1, 2, 77, 40_706] {
            let est = EstId(i);
            let fwd = est.str_id(Strand::Forward);
            let rev = est.str_id(Strand::Reverse);
            assert_eq!(fwd.est(), est);
            assert_eq!(rev.est(), est);
            assert_eq!(fwd.strand(), Strand::Forward);
            assert_eq!(rev.strand(), Strand::Reverse);
            assert_eq!(fwd.mate(), rev);
            assert_eq!(rev.mate(), fwd);
        }
    }

    #[test]
    fn numbering_matches_paper() {
        // Paper (1-based): e_i = s_{2i-1}, ē_i = s_{2i}.
        // Ours (0-based): EST i → strings 2i and 2i+1.
        assert_eq!(EstId(0).str_id(Strand::Forward), StrId(0));
        assert_eq!(EstId(0).str_id(Strand::Reverse), StrId(1));
        assert_eq!(EstId(3).str_id(Strand::Forward), StrId(6));
        assert_eq!(EstId(3).str_id(Strand::Reverse), StrId(7));
    }

    #[test]
    fn strand_flip() {
        assert_eq!(Strand::Forward.flip(), Strand::Reverse);
        assert_eq!(Strand::Reverse.flip(), Strand::Forward);
    }

    #[test]
    fn display_forms() {
        assert_eq!(StrId(4).to_string(), "e2");
        assert_eq!(StrId(5).to_string(), "~e2");
        assert_eq!(EstId(2).to_string(), "e2");
    }
}
