//! Minimal FASTA parsing and writing.
//!
//! EST repositories (dbEST and friends) distribute sequences as FASTA; this
//! module reads them into memory and writes result sets back out. It is a
//! deliberately small, strict parser: records are `>`-headed, sequences are
//! concatenated across wrapped lines, `\r` is tolerated, and blank lines are
//! skipped.

use crate::alphabet;
use crate::error::SeqError;
use std::io::{BufRead, Write};

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Identifier: the first whitespace-delimited token after `>`.
    pub id: String,
    /// The remainder of the header line, if any.
    pub description: String,
    /// The sequence bytes, upper-cased.
    pub sequence: Vec<u8>,
}

/// Parse all records from a FASTA-formatted string.
pub fn parse_fasta(input: &str) -> Result<Vec<FastaRecord>, SeqError> {
    parse_fasta_reader(input.as_bytes())
}

/// Parse all records from any buffered reader.
pub fn parse_fasta_reader<R: BufRead>(reader: R) -> Result<Vec<FastaRecord>, SeqError> {
    let mut records: Vec<FastaRecord> = Vec::new();
    let mut current: Option<FastaRecord> = None;

    for line in reader.lines() {
        let line = line?;
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(rec) = current.take() {
                finish_record(rec, &mut records)?;
            }
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or("").to_string();
            let description = parts.next().unwrap_or("").trim().to_string();
            current = Some(FastaRecord {
                id,
                description,
                sequence: Vec::new(),
            });
        } else {
            let rec = current.as_mut().ok_or(SeqError::MissingFastaHeader)?;
            rec.sequence
                .extend(line.bytes().filter(|b| !b.is_ascii_whitespace()));
        }
    }
    if let Some(rec) = current.take() {
        finish_record(rec, &mut records)?;
    }
    Ok(records)
}

fn finalize_record(mut rec: FastaRecord) -> Result<FastaRecord, SeqError> {
    if rec.sequence.is_empty() {
        return Err(SeqError::EmptyFastaRecord { id: rec.id });
    }
    alphabet::normalize_case(&mut rec.sequence);
    Ok(rec)
}

fn finish_record(rec: FastaRecord, out: &mut Vec<FastaRecord>) -> Result<(), SeqError> {
    out.push(finalize_record(rec)?);
    Ok(())
}

/// Stream records out of a FASTA reader one at a time, calling `f` as
/// each record completes, without ever holding more than one record in
/// memory. The streaming twin of [`parse_fasta_reader`], for inputs too
/// large to materialize as a `Vec<FastaRecord>`.
pub fn for_each_fasta_record<R: BufRead>(
    reader: R,
    mut f: impl FnMut(FastaRecord) -> Result<(), SeqError>,
) -> Result<(), SeqError> {
    let mut current: Option<FastaRecord> = None;

    for line in reader.lines() {
        let line = line?;
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(rec) = current.take() {
                f(finalize_record(rec)?)?;
            }
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or("").to_string();
            let description = parts.next().unwrap_or("").trim().to_string();
            current = Some(FastaRecord {
                id,
                description,
                sequence: Vec::new(),
            });
        } else {
            let rec = current.as_mut().ok_or(SeqError::MissingFastaHeader)?;
            rec.sequence
                .extend(line.bytes().filter(|b| !b.is_ascii_whitespace()));
        }
    }
    if let Some(rec) = current.take() {
        f(finalize_record(rec)?)?;
    }
    Ok(())
}

/// Stream a FASTA file straight into a [`SequenceStore`], sanitizing
/// ambiguity codes as records arrive (see [`sanitize_sequence`]).
///
/// Returns the store, the record ids in input order, and how many bytes
/// were replaced by sanitization. Peak memory is one record plus the
/// store itself — the out-of-core ingest path uses this instead of
/// [`read_fasta_file`] + [`SequenceStore::from_ests`], which holds the
/// input twice.
pub fn read_fasta_into_store(
    path: impl AsRef<std::path::Path>,
) -> Result<(crate::store::SequenceStore, Vec<String>, usize), SeqError> {
    let file = std::fs::File::open(path)?;
    let mut builder = crate::store::SequenceStoreBuilder::new();
    let mut ids = Vec::new();
    let mut replaced = 0usize;
    for_each_fasta_record(std::io::BufReader::new(file), |mut rec| {
        replaced += sanitize_sequence(&mut rec.sequence);
        builder.push_est(&rec.sequence)?;
        ids.push(rec.id);
        Ok(())
    })?;
    Ok((builder.finish(), ids, replaced))
}

/// Replace ambiguity codes (`N`, `R`, …) with a deterministic valid base.
///
/// Real EST data contains IUPAC ambiguity codes; the clustering algorithms
/// operate on the 4-letter alphabet only. Mapping every non-ACGT byte to `A`
/// is the simplest policy that keeps positions aligned; callers that prefer
/// to drop dirty reads can [`alphabet::validate_dna`] first.
pub fn sanitize_sequence(seq: &mut [u8]) -> usize {
    let mut replaced = 0;
    for b in seq.iter_mut() {
        *b = b.to_ascii_uppercase();
        if !matches!(*b, b'A' | b'C' | b'G' | b'T') {
            *b = b'A';
            replaced += 1;
        }
    }
    replaced
}

/// Write records in FASTA format, wrapping sequence lines at `width`.
pub fn write_fasta<W: Write>(
    mut writer: W,
    records: &[FastaRecord],
    width: usize,
) -> Result<(), SeqError> {
    assert!(width > 0, "line width must be positive");
    for rec in records {
        if rec.description.is_empty() {
            writeln!(writer, ">{}", rec.id)?;
        } else {
            writeln!(writer, ">{} {}", rec.id, rec.description)?;
        }
        for chunk in rec.sequence.chunks(width) {
            writer.write_all(chunk)?;
            writeln!(writer)?;
        }
    }
    Ok(())
}

/// Render records to a FASTA string (convenience wrapper).
pub fn to_fasta_string(records: &[FastaRecord], width: usize) -> String {
    let mut buf = Vec::new();
    write_fasta(&mut buf, records, width).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("FASTA output is ASCII")
}

/// Parse a FASTA file from disk.
pub fn read_fasta_file(path: impl AsRef<std::path::Path>) -> Result<Vec<FastaRecord>, SeqError> {
    let file = std::fs::File::open(path)?;
    parse_fasta_reader(std::io::BufReader::new(file))
}

/// Write records to a FASTA file on disk (line width 70).
pub fn write_fasta_file(
    path: impl AsRef<std::path::Path>,
    records: &[FastaRecord],
) -> Result<(), SeqError> {
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    write_fasta(&mut writer, records, 70)?;
    use std::io::Write as _;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_record() {
        let recs = parse_fasta(">est1 some description\nACGT\nacgt\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, "est1");
        assert_eq!(recs[0].description, "some description");
        assert_eq!(recs[0].sequence, b"ACGTACGT");
    }

    #[test]
    fn parses_multiple_records_with_blank_lines() {
        let recs = parse_fasta(">a\nAC\n\n>b desc here\nGG\nTT\n\n>c\nA\n").unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[1].sequence, b"GGTT");
        assert_eq!(recs[1].description, "desc here");
        assert_eq!(recs[2].sequence, b"A");
    }

    #[test]
    fn tolerates_crlf() {
        let recs = parse_fasta(">a\r\nACGT\r\n").unwrap();
        assert_eq!(recs[0].sequence, b"ACGT");
    }

    #[test]
    fn rejects_headerless_input() {
        assert_eq!(
            parse_fasta("ACGT\n").unwrap_err(),
            SeqError::MissingFastaHeader
        );
    }

    #[test]
    fn rejects_empty_record() {
        let err = parse_fasta(">a\n>b\nACGT\n").unwrap_err();
        assert_eq!(err, SeqError::EmptyFastaRecord { id: "a".into() });
        let err = parse_fasta(">only\n").unwrap_err();
        assert_eq!(err, SeqError::EmptyFastaRecord { id: "only".into() });
    }

    #[test]
    fn roundtrip_write_parse() {
        let recs = vec![
            FastaRecord {
                id: "x".into(),
                description: "first".into(),
                sequence: b"ACGTACGTACGT".to_vec(),
            },
            FastaRecord {
                id: "y".into(),
                description: String::new(),
                sequence: b"TTT".to_vec(),
            },
        ];
        let text = to_fasta_string(&recs, 5);
        let parsed = parse_fasta(&text).unwrap();
        assert_eq!(parsed, recs);
    }

    #[test]
    fn wrapping_at_width() {
        let recs = vec![FastaRecord {
            id: "x".into(),
            description: String::new(),
            sequence: b"ACGTACG".to_vec(),
        }];
        let text = to_fasta_string(&recs, 4);
        assert_eq!(text, ">x\nACGT\nACG\n");
    }

    #[test]
    fn file_roundtrip() {
        let mut path = std::env::temp_dir();
        path.push(format!("pace-fasta-test-{}.fa", std::process::id()));
        let recs = vec![FastaRecord {
            id: "r1".into(),
            description: "roundtrip".into(),
            sequence: b"ACGTACGTACGT".to_vec(),
        }];
        write_fasta_file(&path, &recs).unwrap();
        let parsed = read_fasta_file(&path).unwrap();
        assert_eq!(parsed, recs);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_missing_file_errors() {
        let err = read_fasta_file("/nonexistent/x.fa").unwrap_err();
        assert!(matches!(err, SeqError::Io(_)));
    }

    #[test]
    fn sanitize_replaces_ambiguity_codes() {
        let mut s = b"ACNRGT".to_vec();
        let replaced = sanitize_sequence(&mut s);
        assert_eq!(replaced, 2);
        assert_eq!(s, b"ACAAGT");
    }

    #[test]
    fn sanitize_uppercases() {
        let mut s = b"acgt".to_vec();
        assert_eq!(sanitize_sequence(&mut s), 0);
        assert_eq!(s, b"ACGT");
    }
}
