//! Minimal FASTA parsing and writing.
//!
//! EST repositories (dbEST and friends) distribute sequences as FASTA; this
//! module reads them into memory and writes result sets back out. It is a
//! deliberately small, strict parser: records are `>`-headed, sequences are
//! concatenated across wrapped lines, `\r` is tolerated, and blank lines are
//! skipped.

use crate::alphabet;
use crate::error::SeqError;
use std::io::{BufRead, Write};

/// What to do with IUPAC ambiguity codes (`N`, `R`, `Y`, …) found in a
/// record's sequence.
///
/// The clustering algorithms operate on the strict 4-letter alphabet;
/// a stray `N` that slips through parsing only surfaces much later as
/// an [`SeqError::InvalidBaseAt`] deep inside 2-bit packing or store
/// construction, long after the offending record's identity is gone.
/// The policy decides at *parse time* instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AmbiguityPolicy {
    /// Fail with [`SeqError::AmbiguousBase`] naming the record, byte and
    /// offset. The default: no silent data rewriting.
    #[default]
    Reject,
    /// Map every non-ACGT byte to `A` (see [`sanitize_sequence`]),
    /// keeping positions aligned — the policy real EST data usually
    /// needs.
    Normalize,
}

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Identifier: the first whitespace-delimited token after `>`.
    pub id: String,
    /// The remainder of the header line, if any.
    pub description: String,
    /// The sequence bytes, upper-cased.
    pub sequence: Vec<u8>,
}

/// Parse all records from a FASTA-formatted string, rejecting IUPAC
/// ambiguity codes (the default [`AmbiguityPolicy`]).
pub fn parse_fasta(input: &str) -> Result<Vec<FastaRecord>, SeqError> {
    parse_fasta_reader(input.as_bytes())
}

/// [`parse_fasta`] under an explicit [`AmbiguityPolicy`].
pub fn parse_fasta_with(
    input: &str,
    policy: AmbiguityPolicy,
) -> Result<Vec<FastaRecord>, SeqError> {
    parse_fasta_reader_with(input.as_bytes(), policy)
}

/// Parse all records from any buffered reader, rejecting IUPAC
/// ambiguity codes (the default [`AmbiguityPolicy`]).
pub fn parse_fasta_reader<R: BufRead>(reader: R) -> Result<Vec<FastaRecord>, SeqError> {
    parse_fasta_reader_with(reader, AmbiguityPolicy::default())
}

/// [`parse_fasta_reader`] under an explicit [`AmbiguityPolicy`].
pub fn parse_fasta_reader_with<R: BufRead>(
    reader: R,
    policy: AmbiguityPolicy,
) -> Result<Vec<FastaRecord>, SeqError> {
    let mut records: Vec<FastaRecord> = Vec::new();
    for_each_fasta_record_with(reader, policy, |rec| {
        records.push(rec);
        Ok(())
    })?;
    Ok(records)
}

fn finalize_record(mut rec: FastaRecord) -> Result<FastaRecord, SeqError> {
    if rec.sequence.is_empty() {
        return Err(SeqError::EmptyFastaRecord { id: rec.id });
    }
    alphabet::normalize_case(&mut rec.sequence);
    Ok(rec)
}

/// Enforce `policy` on a finalized (upper-cased, non-empty) record.
fn apply_policy(rec: &mut FastaRecord, policy: AmbiguityPolicy) -> Result<(), SeqError> {
    match policy {
        AmbiguityPolicy::Reject => {
            if let Some(offset) = rec
                .sequence
                .iter()
                .position(|b| !matches!(b, b'A' | b'C' | b'G' | b'T'))
            {
                return Err(SeqError::AmbiguousBase {
                    byte: rec.sequence[offset],
                    id: std::mem::take(&mut rec.id),
                    offset,
                });
            }
        }
        AmbiguityPolicy::Normalize => {
            sanitize_sequence(&mut rec.sequence);
        }
    }
    Ok(())
}

/// Stream records out of a FASTA reader one at a time, calling `f` as
/// each record completes, without ever holding more than one record in
/// memory. The streaming twin of [`parse_fasta_reader`], for inputs too
/// large to materialize as a `Vec<FastaRecord>`; rejects ambiguity
/// codes like it.
pub fn for_each_fasta_record<R: BufRead>(
    reader: R,
    f: impl FnMut(FastaRecord) -> Result<(), SeqError>,
) -> Result<(), SeqError> {
    for_each_fasta_record_with(reader, AmbiguityPolicy::default(), f)
}

/// [`for_each_fasta_record`] under an explicit [`AmbiguityPolicy`].
pub fn for_each_fasta_record_with<R: BufRead>(
    reader: R,
    policy: AmbiguityPolicy,
    mut f: impl FnMut(FastaRecord) -> Result<(), SeqError>,
) -> Result<(), SeqError> {
    for_each_raw(reader, |mut rec| {
        apply_policy(&mut rec, policy)?;
        f(rec)
    })
}

/// The streaming loop itself: upper-cased, non-empty records, no
/// ambiguity policy applied yet (callers that need to *count*
/// sanitized bytes, like [`read_fasta_into_store`], use this).
fn for_each_raw<R: BufRead>(
    reader: R,
    mut f: impl FnMut(FastaRecord) -> Result<(), SeqError>,
) -> Result<(), SeqError> {
    let mut current: Option<FastaRecord> = None;

    for line in reader.lines() {
        let line = line?;
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(rec) = current.take() {
                f(finalize_record(rec)?)?;
            }
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or("").to_string();
            let description = parts.next().unwrap_or("").trim().to_string();
            current = Some(FastaRecord {
                id,
                description,
                sequence: Vec::new(),
            });
        } else {
            let rec = current.as_mut().ok_or(SeqError::MissingFastaHeader)?;
            rec.sequence
                .extend(line.bytes().filter(|b| !b.is_ascii_whitespace()));
        }
    }
    if let Some(rec) = current.take() {
        f(finalize_record(rec)?)?;
    }
    Ok(())
}

/// Stream a FASTA file straight into a [`SequenceStore`], sanitizing
/// ambiguity codes as records arrive ([`AmbiguityPolicy::Normalize`],
/// deliberately — the out-of-core path is for bulk real-world data and
/// reports how much it rewrote instead of refusing).
///
/// Returns the store, the record ids in input order, and how many bytes
/// were replaced by sanitization. Peak memory is one record plus the
/// store itself — the out-of-core ingest path uses this instead of
/// [`read_fasta_file`] + [`SequenceStore::from_ests`], which holds the
/// input twice.
pub fn read_fasta_into_store(
    path: impl AsRef<std::path::Path>,
) -> Result<(crate::store::SequenceStore, Vec<String>, usize), SeqError> {
    let file = std::fs::File::open(path)?;
    let mut builder = crate::store::SequenceStoreBuilder::new();
    let mut ids = Vec::new();
    let mut replaced = 0usize;
    for_each_raw(std::io::BufReader::new(file), |mut rec| {
        replaced += sanitize_sequence(&mut rec.sequence);
        builder.push_est(&rec.sequence)?;
        ids.push(rec.id);
        Ok(())
    })?;
    Ok((builder.finish(), ids, replaced))
}

/// Replace ambiguity codes (`N`, `R`, …) with a deterministic valid base.
///
/// Real EST data contains IUPAC ambiguity codes; the clustering algorithms
/// operate on the 4-letter alphabet only. Mapping every non-ACGT byte to `A`
/// is the simplest policy that keeps positions aligned; callers that prefer
/// to drop dirty reads can [`alphabet::validate_dna`] first.
pub fn sanitize_sequence(seq: &mut [u8]) -> usize {
    let mut replaced = 0;
    for b in seq.iter_mut() {
        *b = b.to_ascii_uppercase();
        if !matches!(*b, b'A' | b'C' | b'G' | b'T') {
            *b = b'A';
            replaced += 1;
        }
    }
    replaced
}

/// Write records in FASTA format, wrapping sequence lines at `width`.
pub fn write_fasta<W: Write>(
    mut writer: W,
    records: &[FastaRecord],
    width: usize,
) -> Result<(), SeqError> {
    assert!(width > 0, "line width must be positive");
    for rec in records {
        if rec.description.is_empty() {
            writeln!(writer, ">{}", rec.id)?;
        } else {
            writeln!(writer, ">{} {}", rec.id, rec.description)?;
        }
        for chunk in rec.sequence.chunks(width) {
            writer.write_all(chunk)?;
            writeln!(writer)?;
        }
    }
    Ok(())
}

/// Render records to a FASTA string (convenience wrapper).
pub fn to_fasta_string(records: &[FastaRecord], width: usize) -> String {
    let mut buf = Vec::new();
    write_fasta(&mut buf, records, width).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("FASTA output is ASCII")
}

/// Parse a FASTA file from disk, rejecting IUPAC ambiguity codes (the
/// default [`AmbiguityPolicy`]).
pub fn read_fasta_file(path: impl AsRef<std::path::Path>) -> Result<Vec<FastaRecord>, SeqError> {
    read_fasta_file_with(path, AmbiguityPolicy::default())
}

/// [`read_fasta_file`] under an explicit [`AmbiguityPolicy`].
pub fn read_fasta_file_with(
    path: impl AsRef<std::path::Path>,
    policy: AmbiguityPolicy,
) -> Result<Vec<FastaRecord>, SeqError> {
    let file = std::fs::File::open(path)?;
    parse_fasta_reader_with(std::io::BufReader::new(file), policy)
}

/// Write records to a FASTA file on disk (line width 70).
pub fn write_fasta_file(
    path: impl AsRef<std::path::Path>,
    records: &[FastaRecord],
) -> Result<(), SeqError> {
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    write_fasta(&mut writer, records, 70)?;
    use std::io::Write as _;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_record() {
        let recs = parse_fasta(">est1 some description\nACGT\nacgt\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, "est1");
        assert_eq!(recs[0].description, "some description");
        assert_eq!(recs[0].sequence, b"ACGTACGT");
    }

    #[test]
    fn parses_multiple_records_with_blank_lines() {
        let recs = parse_fasta(">a\nAC\n\n>b desc here\nGG\nTT\n\n>c\nA\n").unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[1].sequence, b"GGTT");
        assert_eq!(recs[1].description, "desc here");
        assert_eq!(recs[2].sequence, b"A");
    }

    #[test]
    fn tolerates_crlf() {
        let recs = parse_fasta(">a\r\nACGT\r\n").unwrap();
        assert_eq!(recs[0].sequence, b"ACGT");
    }

    #[test]
    fn rejects_headerless_input() {
        assert_eq!(
            parse_fasta("ACGT\n").unwrap_err(),
            SeqError::MissingFastaHeader
        );
    }

    #[test]
    fn rejects_empty_record() {
        let err = parse_fasta(">a\n>b\nACGT\n").unwrap_err();
        assert_eq!(err, SeqError::EmptyFastaRecord { id: "a".into() });
        let err = parse_fasta(">only\n").unwrap_err();
        assert_eq!(err, SeqError::EmptyFastaRecord { id: "only".into() });
    }

    #[test]
    fn roundtrip_write_parse() {
        let recs = vec![
            FastaRecord {
                id: "x".into(),
                description: "first".into(),
                sequence: b"ACGTACGTACGT".to_vec(),
            },
            FastaRecord {
                id: "y".into(),
                description: String::new(),
                sequence: b"TTT".to_vec(),
            },
        ];
        let text = to_fasta_string(&recs, 5);
        let parsed = parse_fasta(&text).unwrap();
        assert_eq!(parsed, recs);
    }

    #[test]
    fn wrapping_at_width() {
        let recs = vec![FastaRecord {
            id: "x".into(),
            description: String::new(),
            sequence: b"ACGTACG".to_vec(),
        }];
        let text = to_fasta_string(&recs, 4);
        assert_eq!(text, ">x\nACGT\nACG\n");
    }

    #[test]
    fn file_roundtrip() {
        let mut path = std::env::temp_dir();
        path.push(format!("pace-fasta-test-{}.fa", std::process::id()));
        let recs = vec![FastaRecord {
            id: "r1".into(),
            description: "roundtrip".into(),
            sequence: b"ACGTACGTACGT".to_vec(),
        }];
        write_fasta_file(&path, &recs).unwrap();
        let parsed = read_fasta_file(&path).unwrap();
        assert_eq!(parsed, recs);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_missing_file_errors() {
        let err = read_fasta_file("/nonexistent/x.fa").unwrap_err();
        assert!(matches!(err, SeqError::Io(_)));
    }

    #[test]
    fn ambiguity_codes_are_rejected_at_parse_time_with_identity() {
        // Regression: 'N' used to pass parse_fasta silently and only
        // blow up much later as InvalidBaseAt, with no record identity.
        let err = parse_fasta(">clean\nACGT\n>dirty stuff\nACG\nTNCA\n").unwrap_err();
        assert_eq!(
            err,
            SeqError::AmbiguousBase {
                id: "dirty".into(),
                byte: b'N',
                offset: 4, // ACG + T, then N — offset within the record
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("dirty"), "{msg}");
        assert!(msg.contains("offset 4"), "{msg}");

        // Lower-case ambiguity codes are upper-cased first, so the
        // reported byte is canonical.
        let err = parse_fasta(">x\nacgry\n").unwrap_err();
        assert_eq!(
            err,
            SeqError::AmbiguousBase {
                id: "x".into(),
                byte: b'R',
                offset: 3,
            }
        );
    }

    #[test]
    fn normalize_policy_maps_ambiguity_to_a() {
        let recs =
            parse_fasta_with(">a\nACNRGT\n", AmbiguityPolicy::Normalize).unwrap();
        assert_eq!(recs[0].sequence, b"ACAAGT");

        // The streaming API honours the same policy.
        let mut seen = Vec::new();
        for_each_fasta_record_with(
            ">a\nACNRGT\n".as_bytes(),
            AmbiguityPolicy::Normalize,
            |rec| {
                seen.push(rec.sequence);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(seen, vec![b"ACAAGT".to_vec()]);
    }

    #[test]
    fn streaming_reject_names_the_record() {
        let err = for_each_fasta_record(">ok\nACGT\n>bad\nANA\n".as_bytes(), |_| Ok(()))
            .unwrap_err();
        assert!(matches!(err, SeqError::AmbiguousBase { ref id, .. } if id == "bad"));
    }

    #[test]
    fn into_store_still_normalizes_and_counts() {
        let mut path = std::env::temp_dir();
        path.push(format!("pace-fasta-ambig-{}.fa", std::process::id()));
        std::fs::write(&path, ">a\nACNT\n>b\nRGGT\n").unwrap();
        let (store, ids, replaced) = read_fasta_into_store(&path).unwrap();
        assert_eq!(ids, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(replaced, 2);
        assert_eq!(store.num_ests(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sanitize_replaces_ambiguity_codes() {
        let mut s = b"ACNRGT".to_vec();
        let replaced = sanitize_sequence(&mut s);
        assert_eq!(replaced, 2);
        assert_eq!(s, b"ACAAGT");
    }

    #[test]
    fn sanitize_uppercases() {
        let mut s = b"acgt".to_vec();
        assert_eq!(sanitize_sequence(&mut s), 0);
        assert_eq!(s, b"ACGT");
    }
}
