//! Error types for the sequence substrate.

/// Errors produced while parsing, validating or storing DNA sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqError {
    /// A byte that is not one of `{A,C,G,T}` (either case).
    InvalidBase(u8),
    /// An invalid byte together with its offset within the sequence.
    InvalidBaseAt {
        /// The offending byte.
        byte: u8,
        /// 0-based offset of the byte within the sequence.
        offset: usize,
    },
    /// An IUPAC ambiguity code (or other non-ACGT byte) in a FASTA
    /// record parsed under [`crate::fasta::AmbiguityPolicy::Reject`].
    /// Unlike [`SeqError::InvalidBaseAt`] — which surfaces much later,
    /// deep inside packing or storage — this is raised at parse time
    /// and names the offending record.
    AmbiguousBase {
        /// Identifier from the record's header line.
        id: String,
        /// The offending byte (upper-cased).
        byte: u8,
        /// 0-based offset of the byte within the record's sequence.
        offset: usize,
    },
    /// A FASTA stream that does not start with a `>` header line.
    MissingFastaHeader,
    /// A FASTA record whose sequence body is empty.
    EmptyFastaRecord {
        /// Identifier from the record's header line.
        id: String,
    },
    /// An empty EST handed to the [`crate::SequenceStore`].
    EmptySequence {
        /// 0-based index of the EST in the input batch.
        index: usize,
    },
    /// A slice range `[start, end)` that is inverted or exceeds the
    /// sequence length (from [`crate::codec::PackedDna::slice_ascii`] and
    /// friends).
    SliceOutOfBounds {
        /// Inclusive start of the requested range.
        start: usize,
        /// Exclusive end of the requested range.
        end: usize,
        /// Length of the sequence being sliced.
        len: usize,
    },
    /// A serialized store whose structure is inconsistent — offset-table
    /// shape, monotonicity, or mismatched strand lengths (from
    /// [`crate::SequenceStore::from_raw_parts`]).
    CorruptStore {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// An ingest batch whose id list and sequence list disagree in length.
    BatchShape {
        /// Number of identifiers supplied.
        ids: usize,
        /// Number of sequences supplied.
        seqs: usize,
    },
    /// Underlying I/O failure (message only, to keep the error `Clone + Eq`).
    Io(String),
}

impl std::fmt::Display for SeqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeqError::InvalidBase(b) => {
                write!(f, "invalid DNA base: 0x{b:02x} ({:?})", *b as char)
            }
            SeqError::InvalidBaseAt { byte, offset } => write!(
                f,
                "invalid DNA base 0x{byte:02x} ({:?}) at offset {offset}",
                *byte as char
            ),
            SeqError::AmbiguousBase { id, byte, offset } => write!(
                f,
                "FASTA record {id:?} contains ambiguity code {:?} (0x{byte:02x}) at \
                 sequence offset {offset}; re-run with the normalize policy to map \
                 such bytes to 'A'",
                *byte as char
            ),
            SeqError::MissingFastaHeader => {
                write!(f, "FASTA input does not begin with a '>' header line")
            }
            SeqError::EmptyFastaRecord { id } => {
                write!(f, "FASTA record {id:?} has an empty sequence")
            }
            SeqError::EmptySequence { index } => {
                write!(f, "EST #{index} is empty")
            }
            SeqError::SliceOutOfBounds { start, end, len } => write!(
                f,
                "slice range {start}..{end} out of bounds for sequence of length {len}"
            ),
            SeqError::CorruptStore { detail } => {
                write!(f, "corrupt sequence store: {detail}")
            }
            SeqError::BatchShape { ids, seqs } => {
                write!(f, "batch has {ids} ids but {seqs} sequences")
            }
            SeqError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SeqError {}

impl From<std::io::Error> for SeqError {
    fn from(err: std::io::Error) -> Self {
        SeqError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msg = SeqError::InvalidBaseAt {
            byte: b'N',
            offset: 7,
        }
        .to_string();
        assert!(msg.contains("'N'"));
        assert!(msg.contains("offset 7"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: SeqError = io.into();
        assert!(matches!(err, SeqError::Io(_)));
        assert!(err.to_string().contains("gone"));
    }
}
