//! Synthetic genome / transcriptome / EST generation.
//!
//! The paper evaluates on 81,414 *Arabidopsis thaliana* ESTs whose correct
//! clustering is known because the full genome is available. That data set
//! (and its curated truth) is not redistributable, so this crate builds
//! the closest synthetic equivalent, exercising exactly the same code
//! paths:
//!
//! * [`gene`] — genes with alternating exons and introns, spliced to mRNA
//!   (Figure 1 of the paper);
//! * [`est`] — ESTs sampled from mRNAs: reads of ~500–600 bases taken
//!   from either end, with substitution/insertion/deletion sequencing
//!   errors and random strand orientation (a gene can lie on either
//!   strand of the double-stranded DNA);
//! * [`dataset`] — whole data sets with per-EST ground-truth gene labels,
//!   the "correct clustering obtained through alternative means" that
//!   Table 2's quality metrics are computed against.
//!
//! Everything is deterministic given the seed in [`SimConfig`].

pub mod config;
pub mod dataset;
pub mod est;
pub mod gene;

pub use config::{Expression, SimConfig};
pub use dataset::{generate, EstDataset};
pub use gene::{random_dna, GeneModel};
