//! Whole-dataset generation with ground truth.

use crate::config::{Expression, SimConfig};
use crate::est::sample_est;
use crate::gene::{random_dna, GeneModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A synthetic EST collection with its correct clustering.
#[derive(Debug, Clone)]
pub struct EstDataset {
    /// The reads, in sampling order.
    pub ests: Vec<Vec<u8>>,
    /// `truth[i]` is the index of the gene EST `i` was sampled from —
    /// the correct clustering used for quality assessment.
    pub truth: Vec<usize>,
    /// `isoforms[i]` is which splice isoform of its gene EST `i` came
    /// from (0 = full transcript; 1 = exon-skipped variant).
    pub isoforms: Vec<usize>,
    /// Indices of chimeric reads (fused fragments of two genes); their
    /// `truth` entry is the 5' gene.
    pub chimeras: Vec<usize>,
    /// The gene models the data was sampled from.
    pub genes: Vec<GeneModel>,
    /// The configuration that produced this data set.
    pub config: SimConfig,
}

impl EstDataset {
    /// Number of ESTs.
    pub fn len(&self) -> usize {
        self.ests.len()
    }

    /// Whether the data set is empty.
    pub fn is_empty(&self) -> bool {
        self.ests.is_empty()
    }

    /// Total bases over all ESTs (the paper's `N`).
    pub fn total_bases(&self) -> usize {
        self.ests.iter().map(Vec::len).sum()
    }

    /// Number of distinct genes that actually received at least one EST
    /// (the number of clusters a perfect clustering would produce).
    pub fn true_cluster_count(&self) -> usize {
        let mut seen = vec![false; self.genes.len()];
        for &g in &self.truth {
            seen[g] = true;
        }
        seen.iter().filter(|&&x| x).count()
    }
}

/// Generate a data set from `cfg`. Deterministic: equal configs (including
/// seeds) produce identical data sets.
pub fn generate(cfg: &SimConfig) -> EstDataset {
    cfg.validate().expect("invalid simulation config");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Transcriptome. Transcripts must be long enough to carry a minimal
    // read; the exon ranges guarantee that only if min exon length ≥
    // est_len_min, so re-draw undersized genes (bounded retries).
    let mut genes = Vec::with_capacity(cfg.num_genes);
    while genes.len() < cfg.num_genes {
        let g = GeneModel::random(&mut rng, cfg.exons_per_gene, cfg.exon_len, cfg.intron_len);
        if g.transcript_len() >= cfg.est_len_min {
            genes.push(g);
        }
    }

    // Repeat elements: transposon-like motifs shared by unrelated genes.
    // A copy that ends up near a read end masquerades as a dovetail
    // overlap between different genes — the principal source of
    // over-prediction (FP) in real EST clustering.
    if cfg.repeat_gene_prob > 0.0 {
        let motifs: Vec<Vec<u8>> = (0..cfg.repeat_motifs)
            .map(|_| random_dna(&mut rng, cfg.repeat_len))
            .collect();
        for gene in &mut genes {
            if !rng.gen_bool(cfg.repeat_gene_prob) {
                continue;
            }
            // Diverged copy of a random motif, inserted into a random exon.
            let mut copy = motifs[rng.gen_range(0..motifs.len())].clone();
            for b in copy.iter_mut() {
                if rng.gen_bool(cfg.repeat_divergence) {
                    const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];
                    *b = BASES[rng.gen_range(0..4)];
                }
            }
            let exon_idx = rng.gen_range(0..gene.exons.len());
            let exon = &mut gene.exons[exon_idx];
            let at = rng.gen_range(0..=exon.len());
            exon.splice(at..at, copy);
        }
    }
    // Isoforms: transcripts[g] lists the splice variants of gene g. The
    // primary isoform is the full exon concatenation; with probability
    // `alt_splice_prob`, a multi-exon gene also expresses a variant that
    // skips one internal exon (or the 2nd of 2) — alternative splicing.
    let transcripts: Vec<Vec<Vec<u8>>> = genes
        .iter()
        .map(|g| {
            let mut isoforms = vec![g.transcript()];
            if g.exons.len() >= 2 && cfg.alt_splice_prob > 0.0 && rng.gen_bool(cfg.alt_splice_prob)
            {
                let skip = if g.exons.len() == 2 {
                    1
                } else {
                    rng.gen_range(1..g.exons.len() - 1)
                };
                let variant: Vec<u8> = g
                    .exons
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .flat_map(|(_, e)| e.iter().copied())
                    .collect();
                if variant.len() >= cfg.est_len_min {
                    isoforms.push(variant);
                }
            }
            isoforms
        })
        .collect();

    // Expression weights → cumulative distribution for gene choice.
    let weights: Vec<f64> = match cfg.expression {
        Expression::Uniform => vec![1.0; cfg.num_genes],
        Expression::Zipf(s) => (0..cfg.num_genes)
            .map(|k| 1.0 / ((k + 1) as f64).powf(s))
            .collect(),
    };
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }
    // Guard against floating-point shortfall at the top end.
    if let Some(last) = cumulative.last_mut() {
        *last = 1.0;
    }

    let mut ests = Vec::with_capacity(cfg.num_ests);
    let mut truth = Vec::with_capacity(cfg.num_ests);
    let mut isoforms = Vec::with_capacity(cfg.num_ests);
    let mut chimeras = Vec::new();
    let pick_gene = |rng: &mut SmallRng| {
        let roll: f64 = rng.gen_range(0.0..1.0);
        cumulative
            .partition_point(|&c| c < roll)
            .min(cfg.num_genes - 1)
    };
    for i in 0..cfg.num_ests {
        let gene = pick_gene(&mut rng);
        let iso = rng.gen_range(0..transcripts[gene].len());
        if cfg.chimera_prob > 0.0 && cfg.num_genes > 1 && rng.gen_bool(cfg.chimera_prob) {
            // Chimera: the 5' half reads from `gene`, the 3' half from a
            // different gene — fused during library construction.
            let mut other = pick_gene(&mut rng);
            while other == gene {
                other = pick_gene(&mut rng);
            }
            let head = sample_est(&mut rng, &transcripts[gene][iso], cfg);
            let tail = sample_est(&mut rng, &transcripts[other][0], cfg);
            let mut read = head[..head.len() / 2].to_vec();
            read.extend_from_slice(&tail[tail.len() / 2..]);
            ests.push(read);
            truth.push(gene);
            isoforms.push(iso);
            chimeras.push(i);
        } else {
            ests.push(sample_est(&mut rng, &transcripts[gene][iso], cfg));
            truth.push(gene);
            isoforms.push(iso);
        }
    }

    EstDataset {
        ests,
        truth,
        isoforms,
        chimeras,
        genes,
        config: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_counts() {
        let cfg = SimConfig {
            num_ests: 250,
            num_genes: 20,
            ..SimConfig::default()
        };
        let ds = generate(&cfg);
        assert_eq!(ds.len(), 250);
        assert_eq!(ds.truth.len(), 250);
        assert_eq!(ds.genes.len(), 20);
        assert!(ds.truth.iter().all(|&g| g < 20));
        assert!(ds.total_bases() > 0);
    }

    #[test]
    fn deterministic_across_calls() {
        let cfg = SimConfig::sized(120, 99);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.ests, b.ests);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SimConfig::sized(120, 1));
        let b = generate(&SimConfig::sized(120, 2));
        assert_ne!(a.ests, b.ests);
    }

    #[test]
    fn zipf_concentrates_expression() {
        let cfg = SimConfig {
            num_ests: 3000,
            num_genes: 50,
            expression: Expression::Zipf(1.2),
            ..SimConfig::default()
        };
        let ds = generate(&cfg);
        let mut counts = vec![0usize; 50];
        for &g in &ds.truth {
            counts[g] += 1;
        }
        // Gene 0 must dominate the tail genes decisively.
        let tail_avg = counts[40..].iter().sum::<usize>() as f64 / 10.0;
        assert!(
            counts[0] as f64 > 4.0 * tail_avg.max(1.0),
            "head {} vs tail avg {tail_avg}",
            counts[0]
        );
    }

    #[test]
    fn uniform_expression_spreads() {
        let cfg = SimConfig {
            num_ests: 5000,
            num_genes: 10,
            expression: Expression::Uniform,
            ..SimConfig::default()
        };
        let ds = generate(&cfg);
        let mut counts = vec![0usize; 10];
        for &g in &ds.truth {
            counts[g] += 1;
        }
        for &c in &counts {
            assert!(
                (300..=700).contains(&c),
                "uniform gene got {c} of 5000 ESTs"
            );
        }
        assert_eq!(ds.true_cluster_count(), 10);
    }

    #[test]
    fn ests_are_valid_dna() {
        let ds = generate(&SimConfig::sized(200, 3));
        for est in &ds.ests {
            assert!(!est.is_empty());
            assert!(est.iter().all(|b| matches!(b, b'A' | b'C' | b'G' | b'T')));
        }
    }

    #[test]
    fn repeats_create_cross_gene_similarity() {
        let base = SimConfig {
            num_genes: 40,
            num_ests: 40,
            expression: Expression::Uniform,
            seed: 90,
            ..SimConfig::default()
        };
        let with = generate(&SimConfig {
            repeat_gene_prob: 0.9,
            repeat_len: 150,
            ..base.clone()
        });
        let without = generate(&base.clone().repeat_free());
        // With aggressive repeats, some pair of *different* genes shares a
        // long exact-ish substring; without, none do (beyond chance ~15bp).
        let lcs_max = |ds: &EstDataset| {
            let mut best = 0usize;
            for i in 0..ds.genes.len() {
                for j in (i + 1)..ds.genes.len() {
                    let a = ds.genes[i].transcript();
                    let b = ds.genes[j].transcript();
                    // cheap k-mer based common-substring witness
                    let k = 40;
                    let mut set = std::collections::HashSet::new();
                    for w in a.windows(k) {
                        set.insert(w.to_vec());
                    }
                    if b.windows(k).any(|w| set.contains(w)) {
                        best = best.max(k);
                    }
                }
            }
            best
        };
        assert!(lcs_max(&with) >= 40, "repeats produced no shared 40-mers");
        assert_eq!(lcs_max(&without), 0, "repeat-free genes share 40-mers");
    }

    #[test]
    fn chimeras_fuse_two_genes() {
        let cfg = SimConfig {
            num_genes: 20,
            num_ests: 400,
            chimera_prob: 0.25,
            expression: Expression::Uniform,
            seed: 93,
            ..SimConfig::default()
        };
        let ds = generate(&cfg);
        // Roughly a quarter of the reads are chimeric.
        assert!(
            (60..=140).contains(&ds.chimeras.len()),
            "{} chimeras of 400",
            ds.chimeras.len()
        );
        for &i in &ds.chimeras {
            assert!(!ds.ests[i].is_empty());
            assert!(ds.truth[i] < 20);
        }
        // Disabled: no chimeras recorded.
        let plain = generate(&SimConfig {
            chimera_prob: 0.0,
            ..cfg
        });
        assert!(plain.chimeras.is_empty());
        assert_eq!(plain.ests.len(), 400);
    }

    #[test]
    fn alternative_splicing_produces_isoforms() {
        let cfg = SimConfig {
            num_genes: 30,
            num_ests: 600,
            exons_per_gene: (3, 5),
            exon_len: (150, 300),
            alt_splice_prob: 1.0,
            expression: Expression::Uniform,
            seed: 91,
            ..SimConfig::default()
        };
        let ds = generate(&cfg);
        assert_eq!(ds.isoforms.len(), 600);
        let variants = ds.isoforms.iter().filter(|&&i| i == 1).count();
        // Roughly half the reads come from the skipped isoform.
        assert!(
            (150..450).contains(&variants),
            "{variants} variant reads of 600"
        );
        // Disabled splicing yields only isoform 0.
        let plain = generate(&SimConfig {
            alt_splice_prob: 0.0,
            ..cfg
        });
        assert!(plain.isoforms.iter().all(|&i| i == 0));
    }

    #[test]
    fn transcripts_can_carry_minimal_reads() {
        let cfg = SimConfig {
            num_genes: 30,
            exon_len: (40, 90), // some genes would be too short without retry
            exons_per_gene: (1, 3),
            ..SimConfig::default()
        };
        let ds = generate(&cfg);
        for g in &ds.genes {
            assert!(g.transcript_len() >= cfg.est_len_min);
        }
    }
}
