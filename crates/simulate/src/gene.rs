//! Gene models: exon/intron structure and splicing.
//!
//! A gene is a stretch of DNA composed of alternating exons and introns;
//! transcription produces an mRNA that is the concatenation of the exons
//! (paper, Figure 1). ESTs derive from cDNA copies of the mRNA, so only
//! the spliced transcript matters for clustering — but the full structure
//! is generated anyway so examples can exercise intron-aware scenarios
//! (e.g. alternative-splicing detection, the paper's future work).

use rand::Rng;

/// A random DNA sequence of the given length (uniform base composition).
pub fn random_dna<R: Rng>(rng: &mut R, len: usize) -> Vec<u8> {
    const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];
    (0..len).map(|_| BASES[rng.gen_range(0..4)]).collect()
}

/// One gene: `k` exons separated by `k − 1` introns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneModel {
    /// Exon sequences, 5' to 3'.
    pub exons: Vec<Vec<u8>>,
    /// Intron sequences between consecutive exons.
    pub introns: Vec<Vec<u8>>,
}

impl GeneModel {
    /// Generate a random gene with the given structural ranges.
    pub fn random<R: Rng>(
        rng: &mut R,
        exons_per_gene: (usize, usize),
        exon_len: (usize, usize),
        intron_len: (usize, usize),
    ) -> Self {
        let num_exons = rng.gen_range(exons_per_gene.0..=exons_per_gene.1);
        let exons = (0..num_exons)
            .map(|_| {
                let len = rng.gen_range(exon_len.0..=exon_len.1);
                random_dna(rng, len)
            })
            .collect::<Vec<_>>();
        let introns = (0..num_exons.saturating_sub(1))
            .map(|_| {
                let len = rng.gen_range(intron_len.0..=intron_len.1);
                random_dna(rng, len)
            })
            .collect();
        GeneModel { exons, introns }
    }

    /// The spliced transcript: exons concatenated, introns removed.
    pub fn transcript(&self) -> Vec<u8> {
        let len = self.exons.iter().map(Vec::len).sum();
        let mut mrna = Vec::with_capacity(len);
        for exon in &self.exons {
            mrna.extend_from_slice(exon);
        }
        mrna
    }

    /// The genomic sequence: exons and introns interleaved.
    pub fn genomic(&self) -> Vec<u8> {
        let mut dna = Vec::new();
        for (i, exon) in self.exons.iter().enumerate() {
            dna.extend_from_slice(exon);
            if let Some(intron) = self.introns.get(i) {
                dna.extend_from_slice(intron);
            }
        }
        dna
    }

    /// Length of the spliced transcript.
    pub fn transcript_len(&self) -> usize {
        self.exons.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_dna_is_valid_and_sized() {
        let mut rng = SmallRng::seed_from_u64(1);
        let seq = random_dna(&mut rng, 500);
        assert_eq!(seq.len(), 500);
        assert!(seq.iter().all(|b| matches!(b, b'A' | b'C' | b'G' | b'T')));
        // All four bases should appear in 500 draws.
        for base in [b'A', b'C', b'G', b'T'] {
            assert!(seq.contains(&base), "base {} missing", base as char);
        }
    }

    #[test]
    fn gene_structure_is_consistent() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..20 {
            let g = GeneModel::random(&mut rng, (1, 6), (50, 200), (40, 100));
            assert!((1..=6).contains(&g.exons.len()));
            assert_eq!(g.introns.len(), g.exons.len() - 1);
            for e in &g.exons {
                assert!((50..=200).contains(&e.len()));
            }
            for i in &g.introns {
                assert!((40..=100).contains(&i.len()));
            }
        }
    }

    #[test]
    fn transcript_is_exon_concatenation() {
        let g = GeneModel {
            exons: vec![b"AAAA".to_vec(), b"CCCC".to_vec(), b"GG".to_vec()],
            introns: vec![b"TTTTTT".to_vec(), b"TT".to_vec()],
        };
        assert_eq!(g.transcript(), b"AAAACCCCGG");
        assert_eq!(g.transcript_len(), 10);
        assert_eq!(g.genomic(), b"AAAATTTTTTCCCCTTGG");
    }

    #[test]
    fn single_exon_gene_has_no_introns() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = GeneModel::random(&mut rng, (1, 1), (100, 100), (50, 60));
        assert_eq!(g.exons.len(), 1);
        assert!(g.introns.is_empty());
        assert_eq!(g.transcript(), g.genomic());
    }

    #[test]
    fn deterministic_given_seed() {
        let make = || {
            let mut rng = SmallRng::seed_from_u64(42);
            GeneModel::random(&mut rng, (2, 4), (80, 120), (40, 80))
        };
        assert_eq!(make(), make());
    }
}
