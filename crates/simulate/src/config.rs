//! Simulation parameters.

/// How many ESTs each gene attracts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Expression {
    /// Every gene is equally likely.
    Uniform,
    /// Zipf-distributed expression with the given exponent (> 0): a few
    /// genes dominate, most are rare — the realistic shape for cDNA
    /// libraries, and what makes cluster sizes heavy-tailed.
    Zipf(f64),
}

/// Parameters of the synthetic transcriptome and EST sampling process.
///
/// The defaults mirror the biology quoted in the paper: ESTs average
/// 500–600 bases, genes are exon/intron mosaics, reads come from either
/// end of cDNAs and from either strand.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of genes in the synthetic transcriptome.
    pub num_genes: usize,
    /// Number of ESTs to sample.
    pub num_ests: usize,
    /// Exon count range per gene (inclusive).
    pub exons_per_gene: (usize, usize),
    /// Exon length range (inclusive).
    pub exon_len: (usize, usize),
    /// Intron length range (inclusive; introns are transcribed out).
    pub intron_len: (usize, usize),
    /// Mean EST read length.
    pub est_len_mean: f64,
    /// Standard deviation of the EST read length.
    pub est_len_sd: f64,
    /// Hard minimum EST length (shorter draws are clamped).
    pub est_len_min: usize,
    /// Per-base probability of a sequencing error.
    pub error_rate: f64,
    /// Split of errors into substitution / insertion / deletion; must sum
    /// to 1.
    pub error_mix: (f64, f64, f64),
    /// Probability that an EST is reported as the reverse complement.
    pub reverse_prob: f64,
    /// Probability that a read starts flush at the 5' or 3' end of the
    /// cDNA (the rest start uniformly inside) — models end-sequencing.
    pub end_bias: f64,
    /// Gene expression profile.
    pub expression: Expression,
    /// Number of distinct repeat motifs in the genome (transposon-like
    /// elements shared across unrelated genes). Repeats are what make
    /// real EST clustering over-predict: a repeat at a read end looks
    /// like a dovetail overlap between unrelated genes.
    pub repeat_motifs: usize,
    /// Length of each repeat motif in bases.
    pub repeat_len: usize,
    /// Probability that a gene carries a copy of some repeat motif.
    pub repeat_gene_prob: f64,
    /// Per-base divergence applied to each inserted repeat copy.
    pub repeat_divergence: f64,
    /// Probability that a multi-exon gene expresses a second isoform
    /// that skips one internal exon (alternative splicing). ESTs sample
    /// either isoform; the ground-truth cluster is still the gene.
    pub alt_splice_prob: f64,
    /// Probability that a read is a *chimera*: the concatenation of
    /// fragments from two different genes — a classic cDNA library
    /// artifact. A chimera's ground-truth label is its 5' gene, and its
    /// index is recorded in [`crate::EstDataset::chimeras`].
    pub chimera_prob: f64,
    /// RNG seed; equal configs generate byte-identical data sets.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_genes: 100,
            num_ests: 1000,
            exons_per_gene: (2, 6),
            exon_len: (120, 500),
            intron_len: (60, 600),
            est_len_mean: 550.0,
            est_len_sd: 60.0,
            est_len_min: 100,
            error_rate: 0.02,
            error_mix: (0.6, 0.2, 0.2),
            reverse_prob: 0.5,
            end_bias: 0.6,
            expression: Expression::Zipf(1.0),
            // Many distinct motifs with few carriers each: occasional
            // pairwise false merges (the paper's OV of a few percent)
            // without single-linkage chain reactions across the genome.
            repeat_motifs: 16,
            repeat_len: 100,
            repeat_gene_prob: 0.10,
            repeat_divergence: 0.05,
            alt_splice_prob: 0.0,
            chimera_prob: 0.0,
            seed: 0x9ACE_2002,
        }
    }
}

impl SimConfig {
    /// A data set scaled to `num_ests` reads over a proportional number of
    /// genes (~12 ESTs per gene on average, matching the Arabidopsis
    /// benchmark's cluster-size ballpark), with the given seed.
    pub fn sized(num_ests: usize, seed: u64) -> Self {
        SimConfig {
            num_ests,
            num_genes: (num_ests / 12).max(1),
            seed,
            ..SimConfig::default()
        }
    }

    /// Smaller, error-free variant — handy for exact-recovery tests.
    pub fn error_free(mut self) -> Self {
        self.error_rate = 0.0;
        self
    }

    /// Variant with no shared repeat elements: unrelated genes share no
    /// sequence, so a correct clusterer produces zero false positives.
    pub fn repeat_free(mut self) -> Self {
        self.repeat_gene_prob = 0.0;
        self
    }

    /// Validate ranges and probabilities.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_genes == 0 {
            return Err("num_genes must be positive".into());
        }
        if self.exons_per_gene.0 == 0 || self.exons_per_gene.0 > self.exons_per_gene.1 {
            return Err(format!("bad exon count range {:?}", self.exons_per_gene));
        }
        if self.exon_len.0 == 0 || self.exon_len.0 > self.exon_len.1 {
            return Err(format!("bad exon length range {:?}", self.exon_len));
        }
        if self.intron_len.0 > self.intron_len.1 {
            return Err(format!("bad intron length range {:?}", self.intron_len));
        }
        for (name, p) in [
            ("error_rate", self.error_rate),
            ("reverse_prob", self.reverse_prob),
            ("end_bias", self.end_bias),
            ("repeat_gene_prob", self.repeat_gene_prob),
            ("repeat_divergence", self.repeat_divergence),
            ("alt_splice_prob", self.alt_splice_prob),
            ("chimera_prob", self.chimera_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} is not a probability"));
            }
        }
        let (s, i, d) = self.error_mix;
        if (s + i + d - 1.0).abs() > 1e-9 || s < 0.0 || i < 0.0 || d < 0.0 {
            return Err(format!("error_mix {:?} must sum to 1", self.error_mix));
        }
        if self.est_len_mean <= 0.0 || self.est_len_sd < 0.0 || self.est_len_min == 0 {
            return Err("bad EST length parameters".into());
        }
        if let Expression::Zipf(e) = self.expression {
            if e <= 0.0 {
                return Err(format!("Zipf exponent must be positive, got {e}"));
            }
        }
        if self.repeat_gene_prob > 0.0 && (self.repeat_motifs == 0 || self.repeat_len == 0) {
            return Err("repeats enabled but repeat_motifs/repeat_len is zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SimConfig::default().validate().unwrap();
    }

    #[test]
    fn sized_scales_genes() {
        let c = SimConfig::sized(2400, 7);
        assert_eq!(c.num_ests, 2400);
        assert_eq!(c.num_genes, 200);
        assert_eq!(c.seed, 7);
        c.validate().unwrap();
    }

    #[test]
    fn error_free_zeroes_rate() {
        let c = SimConfig::default().error_free();
        assert_eq!(c.error_rate, 0.0);
        c.validate().unwrap();
    }

    #[test]
    fn repeat_free_disables_repeats() {
        let c = SimConfig::default().repeat_free();
        assert_eq!(c.repeat_gene_prob, 0.0);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_repeat_misconfig() {
        let mut c = SimConfig {
            repeat_motifs: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
        c.repeat_gene_prob = 0.0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let bad = [
            SimConfig {
                error_rate: 1.5,
                ..SimConfig::default()
            },
            SimConfig {
                error_mix: (0.5, 0.2, 0.2),
                ..SimConfig::default()
            },
            SimConfig {
                exons_per_gene: (4, 2),
                ..SimConfig::default()
            },
            SimConfig {
                expression: Expression::Zipf(0.0),
                ..SimConfig::default()
            },
            SimConfig {
                num_genes: 0,
                ..SimConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err());
        }
    }
}
