//! EST sampling: read placement, sequencing errors, strand orientation.

use crate::config::SimConfig;
use pace_seq::reverse_complement;
use rand::Rng;

/// Sample one EST from a transcript.
///
/// Read length is drawn from a clamped normal; placement is flush with the
/// 5' or 3' end with probability `end_bias` (cDNAs are sequenced from
/// their ends) and uniform otherwise; sequencing errors are applied
/// per-base; the read is reverse-complemented with `reverse_prob`.
pub fn sample_est<R: Rng>(rng: &mut R, transcript: &[u8], cfg: &SimConfig) -> Vec<u8> {
    let len = draw_length(rng, cfg).min(transcript.len());
    let max_start = transcript.len() - len;
    let start = if max_start == 0 {
        0
    } else if rng.gen_bool(cfg.end_bias) {
        // End-sequenced: flush against the 5' or 3' end.
        if rng.gen_bool(0.5) {
            0
        } else {
            max_start
        }
    } else {
        rng.gen_range(0..=max_start)
    };
    let mut read = transcript[start..start + len].to_vec();
    if cfg.error_rate > 0.0 {
        read = apply_errors(rng, &read, cfg);
    }
    if rng.gen_bool(cfg.reverse_prob) {
        read = reverse_complement(&read);
    }
    read
}

/// Draw a read length from the clamped normal distribution.
fn draw_length<R: Rng>(rng: &mut R, cfg: &SimConfig) -> usize {
    // Box–Muller: two uniforms → one standard normal deviate.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let len = cfg.est_len_mean + cfg.est_len_sd * z;
    (len.round().max(cfg.est_len_min as f64)) as usize
}

/// Apply per-base substitution/insertion/deletion errors.
pub fn apply_errors<R: Rng>(rng: &mut R, read: &[u8], cfg: &SimConfig) -> Vec<u8> {
    const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];
    let (sub, ins, _del) = cfg.error_mix;
    let mut out = Vec::with_capacity(read.len() + 8);
    for &b in read {
        if rng.gen_bool(cfg.error_rate) {
            let roll: f64 = rng.gen_range(0.0..1.0);
            if roll < sub {
                // Substitute with a *different* base.
                let mut nb = BASES[rng.gen_range(0..4)];
                while nb == b {
                    nb = BASES[rng.gen_range(0..4)];
                }
                out.push(nb);
            } else if roll < sub + ins {
                // Insert a random base, keep the original.
                out.push(BASES[rng.gen_range(0..4)]);
                out.push(b);
            }
            // else: deletion — emit nothing.
        } else {
            out.push(b);
        }
    }
    if out.is_empty() {
        // Pathological all-deleted read; keep one base so the store
        // accepts it.
        out.push(read[0]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn error_free_reads_are_exact_substrings() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut c = cfg().error_free();
        c.reverse_prob = 0.0;
        let transcript = crate::gene::random_dna(&mut rng, 2000);
        for _ in 0..50 {
            let read = sample_est(&mut rng, &transcript, &c);
            assert!(read.len() >= c.est_len_min);
            assert!(
                transcript.windows(read.len()).any(|w| w == &read[..]),
                "read is not a substring of its transcript"
            );
        }
    }

    #[test]
    fn reverse_reads_are_revcomp_substrings() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut c = cfg().error_free();
        c.reverse_prob = 1.0;
        let transcript = crate::gene::random_dna(&mut rng, 1500);
        for _ in 0..20 {
            let read = sample_est(&mut rng, &transcript, &c);
            let fwd = reverse_complement(&read);
            assert!(transcript.windows(fwd.len()).any(|w| w == &fwd[..]));
        }
    }

    #[test]
    fn short_transcript_is_fully_read() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut c = cfg().error_free();
        c.reverse_prob = 0.0;
        let transcript = crate::gene::random_dna(&mut rng, 120); // < est_len_min? no: min 100
        let read = sample_est(&mut rng, &transcript, &c);
        assert!(read.len() <= 120);
    }

    #[test]
    fn error_rate_roughly_matches() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut c = cfg();
        c.error_rate = 0.10;
        c.error_mix = (1.0, 0.0, 0.0); // substitutions only: length preserved
        let read = crate::gene::random_dna(&mut rng, 20_000);
        let noisy = apply_errors(&mut rng, &read, &c);
        assert_eq!(noisy.len(), read.len());
        let diffs = read.iter().zip(&noisy).filter(|(a, b)| a != b).count();
        let rate = diffs as f64 / read.len() as f64;
        assert!((0.07..0.13).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn indel_errors_change_length() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut c = cfg();
        c.error_rate = 0.2;
        c.error_mix = (0.0, 1.0, 0.0); // insertions only
        let read = crate::gene::random_dna(&mut rng, 5000);
        let noisy = apply_errors(&mut rng, &read, &c);
        assert!(noisy.len() > read.len());

        c.error_mix = (0.0, 0.0, 1.0); // deletions only
        let noisy = apply_errors(&mut rng, &read, &c);
        assert!(noisy.len() < read.len());
    }

    #[test]
    fn end_bias_places_reads_flush() {
        let mut rng = SmallRng::seed_from_u64(10);
        let mut c = cfg().error_free();
        c.reverse_prob = 0.0;
        c.end_bias = 1.0;
        let transcript = crate::gene::random_dna(&mut rng, 3000);
        for _ in 0..30 {
            let read = sample_est(&mut rng, &transcript, &c);
            let is_prefix = transcript.starts_with(&read);
            let is_suffix = transcript.ends_with(&read);
            assert!(is_prefix || is_suffix, "end-biased read not flush");
        }
    }

    #[test]
    fn lengths_follow_clamped_normal() {
        let mut rng = SmallRng::seed_from_u64(11);
        let c = cfg();
        let lens: Vec<usize> = (0..2000).map(|_| draw_length(&mut rng, &c)).collect();
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!((mean - c.est_len_mean).abs() < 15.0, "mean length {mean}");
        assert!(lens.iter().all(|&l| l >= c.est_len_min));
    }
}
