//! Property tests for the persistence layer.
//!
//! Two families of guarantees, both load-bearing for checkpoint/resume:
//!
//! 1. **Round-trip fidelity** — every codec in [`pace_store::codec`]
//!    reconstructs exactly the value it encoded, over randomized inputs
//!    (random EST sets drive the real constructors, so the encoded
//!    values are shaped like production state, not hand-picked
//!    fixtures).
//! 2. **Corruption is an error, never a panic** — truncating a snapshot
//!    at *every* prefix and flipping *any* byte of a snapshot image must
//!    surface as a typed [`SnapshotError`] (or, for the rare flips that
//!    don't change meaning, decode to the identical value). Feeding raw
//!    garbage straight into the codecs must never panic or overallocate.

use pace_cluster::stats::{ClusterStats, FaultStats, PhaseTimers};
use pace_cluster::trace::{MergeRecord, MergeTrace};
use pace_dsu::DisjointSets;
use pace_gst::{assign_buckets, build_sequential, count_buckets};
use pace_seq::{PackedText, SequenceStore};
use pace_store::codec::{
    decode_bucket_partition, decode_cluster_stats, decode_dsu, decode_merge_trace,
    decode_packed_text, decode_sequence_store, decode_string_list, decode_subtrees,
    encode_bucket_partition, encode_cluster_stats, encode_dsu, encode_merge_trace,
    encode_packed_text, encode_sequence_store, encode_string_list, encode_subtrees,
};
use pace_store::{Snapshot, SnapshotError, SnapshotWriter};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Strategies: random production-shaped state.
// ---------------------------------------------------------------------

fn dna(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
        min..max,
    )
}

/// A non-empty random EST set (the seed of every structure we persist).
fn ests() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(dna(1, 40), 1..8)
}

fn store_of(ests: &[Vec<u8>]) -> SequenceStore {
    SequenceStore::from_ests(ests).expect("ACGT-only ESTs always build")
}

/// Random FASTA-id-shaped strings (plus empties).
fn id_list() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(any::<u64>(), 0..12).prop_map(|vs| {
        vs.iter()
            .map(|v| {
                if v % 7 == 0 {
                    String::new()
                } else {
                    format!("EST_{v:016x}|gene={}", v % 97)
                }
            })
            .collect()
    })
}

/// A random but *valid* union–find: `n` elements with a random union
/// sequence applied through the real API, so rank/size/num_sets carry
/// the invariants `from_raw_parts` re-validates on decode.
fn dsu() -> impl Strategy<Value = DisjointSets> {
    (
        1usize..40,
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..60),
    )
        .prop_map(|(n, pairs)| {
            let mut d = DisjointSets::new(n);
            for (a, b) in pairs {
                d.union(a as usize % n, b as usize % n);
            }
            d
        })
}

fn merge_trace() -> impl Strategy<Value = MergeTrace> {
    proptest::collection::vec(
        (any::<u64>(), any::<u64>(), any::<u32>(), any::<u32>()),
        0..50,
    )
    .prop_map(|recs| {
        MergeTrace::from_records(
            recs.into_iter()
                .map(|(a, b, mcs, ratio)| MergeRecord {
                    est_a: (a % 10_000) as usize,
                    est_b: (b % 10_000) as usize,
                    mcs_len: mcs,
                    score_ratio: f64::from(ratio % 1_000) / 1_000.0,
                })
                .collect(),
        )
    })
}

/// Every counter and timer field randomized (timers from integer
/// sources so the f64 round-trip comparison is exact by construction).
fn cluster_stats() -> impl Strategy<Value = ClusterStats> {
    proptest::collection::vec(any::<u64>(), 20..21).prop_map(|v| {
        let t = |x: u64| (x % 1_000_000_000) as f64 / 1024.0;
        ClusterStats {
            pairs_generated: v[0],
            pairs_processed: v[1],
            pairs_accepted: v[2],
            merges: v[3],
            pairs_skipped: v[4],
            pairs_prefiltered: v[5],
            pairs_unconsumed: v[6],
            messages: v[7],
            master_busy_frac: t(v[8]),
            faults: FaultStats {
                retries: v[9],
                duplicate_reports: v[10],
                dead_slaves: v[11],
                reassigned_pairs: v[12],
                abandoned_pairs: v[13],
                lost_pairs: v[14],
            },
            timers: PhaseTimers {
                partitioning: t(v[15]),
                gst_construction: t(v[16]),
                node_sorting: t(v[17]),
                alignment: t(v[18]),
                total: t(v[19]),
            },
        }
    })
}

// ---------------------------------------------------------------------
// Round trips: every codec, production-shaped random values.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn sequence_store_roundtrips(ests in ests()) {
        let store = store_of(&ests);
        prop_assert_eq!(
            decode_sequence_store(&encode_sequence_store(&store)).unwrap(),
            store
        );
    }

    #[test]
    fn packed_text_roundtrips(ests in ests()) {
        let packed = PackedText::from_store(&store_of(&ests));
        prop_assert_eq!(
            decode_packed_text(&encode_packed_text(&packed)).unwrap(),
            packed
        );
    }

    #[test]
    fn string_list_roundtrips(ids in id_list()) {
        prop_assert_eq!(
            decode_string_list(&encode_string_list(&ids)).unwrap(),
            ids
        );
    }

    #[test]
    fn bucket_partition_roundtrips(
        ests in ests(),
        w in 1usize..4,
        ranks in 1usize..5,
    ) {
        let counts = count_buckets(&store_of(&ests), w);
        let part = assign_buckets(&counts, ranks);
        prop_assert_eq!(
            decode_bucket_partition(&encode_bucket_partition(&part)).unwrap(),
            part
        );
    }

    #[test]
    fn subtrees_roundtrip(ests in ests(), w in 1usize..3) {
        let trees = build_sequential(&store_of(&ests), w).subtrees;
        prop_assert_eq!(decode_subtrees(&encode_subtrees(&trees)).unwrap(), trees);
    }

    #[test]
    fn dsu_roundtrips(d in dsu()) {
        let decoded = decode_dsu(&encode_dsu(&d)).unwrap();
        prop_assert_eq!(decoded.as_raw_parts(), d.as_raw_parts());
    }

    #[test]
    fn cluster_stats_roundtrip(stats in cluster_stats()) {
        prop_assert_eq!(
            decode_cluster_stats(&encode_cluster_stats(&stats)).unwrap(),
            stats
        );
    }

    #[test]
    fn merge_trace_roundtrips(trace in merge_trace()) {
        prop_assert_eq!(
            decode_merge_trace(&encode_merge_trace(&trace)).unwrap(),
            trace
        );
    }
}

// ---------------------------------------------------------------------
// Corruption: typed errors, never panics.
// ---------------------------------------------------------------------

/// Write a real multi-section snapshot (through the production writer)
/// and hand back its on-disk image.
fn snapshot_image(tag: &str, ests: &[Vec<u8>]) -> Vec<u8> {
    let store = store_of(ests);
    let trees = build_sequential(&store, 2).subtrees;
    let mut d = DisjointSets::new(store.num_ests());
    for i in 1..store.num_ests() {
        d.union(0, i);
    }
    let dir = std::env::temp_dir().join(format!("pace-store-rt-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("probe.snap");
    let mut w = SnapshotWriter::create(&path).unwrap();
    w.add_section("seq_store", &encode_sequence_store(&store))
        .unwrap();
    w.add_section("subtrees", &encode_subtrees(&trees)).unwrap();
    w.add_section("dsu", &encode_dsu(&d)).unwrap();
    w.finish().unwrap();
    let image = std::fs::read(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    image
}

/// Fully consume a snapshot image the way the resume path does: parse,
/// look up every expected section, run its codec.
fn consume(image: Vec<u8>) -> Result<(SequenceStore, usize, DisjointSets), SnapshotError> {
    let snap = Snapshot::parse(image)?;
    let store = decode_sequence_store(snap.section("seq_store")?)?;
    let trees = decode_subtrees(snap.section("subtrees")?)?;
    let d = decode_dsu(snap.section("dsu")?)?;
    Ok((store, trees.len(), d))
}

#[test]
fn every_truncation_is_a_typed_error() {
    let image = snapshot_image("trunc", &[b"ACGTACGT".to_vec(), b"TTGGAACC".to_vec()]);
    // Sanity: the intact image decodes.
    assert!(consume(image.clone()).is_ok());
    // Every strict prefix must fail with a typed error — the parse is
    // eager (section table and CRCs up front), so a partially written
    // file can never masquerade as a complete checkpoint.
    for cut in 0..image.len() {
        match consume(image[..cut].to_vec()) {
            Err(_) => {}
            Ok(_) => panic!("truncation at {cut}/{} decoded successfully", image.len()),
        }
    }
}

#[test]
fn flipped_checksum_byte_is_checksum_mismatch() {
    let image = snapshot_image("crc", &[b"ACGTACGT".to_vec()]);
    // The trailing 4 bytes of the last section are its stored CRC:
    // flipping one must name the section in a ChecksumMismatch.
    let mut bad = image.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0xff;
    match Snapshot::parse(bad) {
        Err(SnapshotError::ChecksumMismatch { section }) => assert_eq!(section, "dsu"),
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

proptest! {
    /// Flip any single byte anywhere in the image. The consume pipeline
    /// must either return a typed error or — for the few flips that do
    /// not change meaning (e.g. a schema-version downgrade bit) —
    /// decode to exactly the original values. Silently decoding to
    /// *different* values would defeat the checkpoint's integrity story.
    #[test]
    fn any_single_byte_flip_errors_or_is_meaningless(
        ests in ests(),
        pos in any::<u64>(),
        bit in 0u32..8,
    ) {
        let image = snapshot_image("flip", &ests);
        let reference = consume(image.clone()).unwrap();
        let mut bad = image.clone();
        let pos = (pos % image.len() as u64) as usize;
        bad[pos] ^= 1 << bit;
        if let Ok((store, ntrees, d)) = consume(bad) {
            prop_assert_eq!(store, reference.0);
            prop_assert_eq!(ntrees, reference.1);
            prop_assert_eq!(d.as_raw_parts(), reference.2.as_raw_parts());
        }
    }

    /// Raw garbage straight into every codec: any outcome but a panic.
    /// (The `count()` guard also means no pathological allocations from
    /// corrupt length prefixes.)
    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u32>().prop_map(|v| (v & 0xff) as u8), 0..256),
    ) {
        let _ = decode_sequence_store(&bytes);
        let _ = decode_packed_text(&bytes);
        let _ = decode_string_list(&bytes);
        let _ = decode_bucket_partition(&bytes);
        let _ = decode_subtrees(&bytes);
        let _ = decode_dsu(&bytes);
        let _ = decode_cluster_stats(&bytes);
        let _ = decode_merge_trace(&bytes);
        let _ = Snapshot::parse(bytes);
    }
}
