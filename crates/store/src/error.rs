//! Typed persistence errors.
//!
//! Every failure mode of the snapshot layer maps to a distinct variant,
//! so corruption is diagnosable and *never* a panic: a truncated file, a
//! flipped byte and a stale schema all surface as different
//! [`SnapshotError`]s the caller can match on.

use std::fmt;

/// Errors produced by the snapshot reader/writer and the codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Underlying I/O failure (message keeps the error comparable).
    Io(String),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file's schema version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file ended before the declared layout was complete.
    Truncated {
        /// What the reader was in the middle of when bytes ran out.
        context: &'static str,
    },
    /// A section's stored CRC does not match its payload.
    ChecksumMismatch {
        /// The corrupted section's name.
        section: String,
    },
    /// A required section is absent from the snapshot.
    MissingSection(String),
    /// A section decoded structurally but its content is inconsistent
    /// (bad offsets, length mismatches, out-of-range ids …).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(msg) => write!(f, "snapshot I/O error: {msg}"),
            SnapshotError::BadMagic => write!(f, "not a pace snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "snapshot schema version {v} is not supported")
            }
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section:?}")
            }
            SnapshotError::MissingSection(name) => {
                write!(f, "snapshot is missing required section {name:?}")
            }
            SnapshotError::Corrupt(msg) => write!(f, "snapshot content corrupt: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}
