//! CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant).
//!
//! Std-only: the workspace has no access to crates.io, so the checksum
//! the snapshot format needs is implemented here — table-driven,
//! byte-at-a-time, which is plenty for snapshot-sized payloads.

/// Reflected polynomial of CRC-32/IEEE.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// Streaming CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Fold `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = (self.state >> 8) ^ t[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// The finished checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = b"ACGTACGTACGT".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit} undetected");
                data[i] ^= 1 << bit;
            }
        }
    }
}
