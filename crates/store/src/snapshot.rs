//! The versioned, checksummed binary snapshot container.
//!
//! A snapshot is a flat file of named sections:
//!
//! ```text
//! magic            8 bytes  b"PACESNAP"
//! schema_version   u32 LE   (see SCHEMA_VERSION)
//! section_count    u32 LE
//! section*:
//!   name_len       u16 LE
//!   name           UTF-8 bytes
//!   payload_len    u64 LE
//!   payload        bytes
//!   crc32          u32 LE   (IEEE, over the payload only)
//! ```
//!
//! Integrity is per-section: a flipped byte anywhere in a payload is a
//! [`SnapshotError::ChecksumMismatch`] naming the section, and any file
//! that ends early is a [`SnapshotError::Truncated`] — corruption is
//! always a typed error, never a panic.
//!
//! Durability: the writer streams to `<path>.tmp`, fsyncs, then
//! atomically renames into place and fsyncs the directory, so a crash
//! mid-write can never leave a half-written file under the final name.
//!
//! Schema evolution rules are documented in DESIGN.md: the version is
//! bumped on any layout change, readers reject newer versions
//! ([`SnapshotError::UnsupportedVersion`]), and new *optional* state
//! must be added as new sections (readers ignore unknown sections) so
//! old files stay readable within a version.

use crate::crc::{crc32, Crc32};
use crate::error::SnapshotError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// File magic.
pub const MAGIC: &[u8; 8] = b"PACESNAP";

/// Current snapshot schema version.
pub const SCHEMA_VERSION: u32 = 1;

/// Suffix of the temporary file the writer streams to before the
/// atomic rename (matched by the `*.tmp` gitignore rule).
pub const TMP_SUFFIX: &str = ".tmp";

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(TMP_SUFFIX);
    PathBuf::from(name)
}

/// Fsync the directory containing `path`, making a completed rename
/// durable. Best effort off Linux; errors on the directory handle are
/// surfaced because a lost rename defeats the checkpoint guarantee.
fn fsync_parent(path: &Path) -> Result<(), SnapshotError> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Write `bytes` to `path` via the write-to-temp + fsync + rename
/// protocol. Used for small whole-file artifacts (the manifest); large
/// section streams go through [`SnapshotWriter`], which follows the
/// same protocol.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    fsync_parent(path)
}

/// Streaming snapshot writer.
///
/// Sections are written in call order; the section count in the header
/// is patched in at [`finish`](Self::finish), which also performs the
/// fsync + rename that publishes the file.
pub struct SnapshotWriter {
    file: File,
    final_path: PathBuf,
    tmp: PathBuf,
    sections: u32,
    bytes_written: u64,
}

impl SnapshotWriter {
    /// Start a snapshot destined for `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let final_path = path.as_ref().to_path_buf();
        let tmp = tmp_path(&final_path);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(MAGIC)?;
        file.write_all(&SCHEMA_VERSION.to_le_bytes())?;
        file.write_all(&0u32.to_le_bytes())?; // section count, patched later
        Ok(SnapshotWriter {
            file,
            final_path,
            tmp,
            sections: 0,
            bytes_written: 16,
        })
    }

    /// Append one section from an in-memory payload.
    pub fn add_section(&mut self, name: &str, payload: &[u8]) -> Result<(), SnapshotError> {
        self.begin_section(name, payload.len() as u64)?;
        self.file.write_all(payload)?;
        self.file.write_all(&crc32(payload).to_le_bytes())?;
        self.bytes_written += payload.len() as u64 + 4;
        Ok(())
    }

    /// Append one section of known length, streaming the payload
    /// through `fill` in chunks (no whole-payload buffer). `fill` must
    /// produce exactly `len` bytes.
    pub fn add_section_streamed(
        &mut self,
        name: &str,
        len: u64,
        mut fill: impl FnMut(
            &mut dyn FnMut(&[u8]) -> Result<(), SnapshotError>,
        ) -> Result<(), SnapshotError>,
    ) -> Result<(), SnapshotError> {
        self.begin_section(name, len)?;
        let mut crc = Crc32::new();
        let mut written = 0u64;
        let file = &mut self.file;
        fill(&mut |chunk: &[u8]| {
            crc.update(chunk);
            written += chunk.len() as u64;
            file.write_all(chunk)?;
            Ok(())
        })?;
        if written != len {
            return Err(SnapshotError::Io(format!(
                "section {name:?}: declared {len} bytes, streamed {written}"
            )));
        }
        self.file.write_all(&crc.finish().to_le_bytes())?;
        self.bytes_written += len + 4;
        Ok(())
    }

    fn begin_section(&mut self, name: &str, len: u64) -> Result<(), SnapshotError> {
        let name_bytes = name.as_bytes();
        assert!(
            name_bytes.len() <= u16::MAX as usize,
            "section name too long"
        );
        self.file
            .write_all(&(name_bytes.len() as u16).to_le_bytes())?;
        self.file.write_all(name_bytes)?;
        self.file.write_all(&len.to_le_bytes())?;
        self.sections += 1;
        self.bytes_written += 2 + name_bytes.len() as u64 + 8;
        Ok(())
    }

    /// Total bytes this snapshot will occupy on disk (header included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Patch the header, fsync, and atomically publish the file.
    /// Returns the final on-disk size in bytes.
    pub fn finish(mut self) -> Result<u64, SnapshotError> {
        self.file.seek(SeekFrom::Start(12))?;
        self.file.write_all(&self.sections.to_le_bytes())?;
        self.file.sync_all()?;
        std::fs::rename(&self.tmp, &self.final_path)?;
        fsync_parent(&self.final_path)?;
        Ok(self.bytes_written)
    }
}

/// A snapshot loaded into memory, with per-section CRCs verified.
#[derive(Debug)]
pub struct Snapshot {
    data: Vec<u8>,
    sections: Vec<(String, Range<usize>)>,
}

impl Snapshot {
    /// Read and verify a snapshot file. Every section's checksum is
    /// validated here, so any [`section`](Self::section) access
    /// afterwards returns bytes known to be intact.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let mut data = Vec::new();
        File::open(path.as_ref())?.read_to_end(&mut data)?;
        Self::parse(data)
    }

    /// Parse an in-memory snapshot image (tests and corruption drills).
    pub fn parse(data: Vec<u8>) -> Result<Self, SnapshotError> {
        let header = data
            .get(..16)
            .ok_or(SnapshotError::Truncated { context: "header" })?;
        if &header[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version > SCHEMA_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let count = u32::from_le_bytes(header[12..16].try_into().unwrap());
        let mut sections = Vec::with_capacity(count as usize);
        let mut pos = 16usize;
        for _ in 0..count {
            let name_len = u16::from_le_bytes(
                read_exact(&data, &mut pos, 2, "section name length")?
                    .try_into()
                    .unwrap(),
            ) as usize;
            let name_bytes = read_exact(&data, &mut pos, name_len, "section name")?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| SnapshotError::Corrupt("section name is not UTF-8".into()))?
                .to_string();
            let payload_len = u64::from_le_bytes(
                read_exact(&data, &mut pos, 8, "section length")?
                    .try_into()
                    .unwrap(),
            );
            let payload_len = usize::try_from(payload_len)
                .map_err(|_| SnapshotError::Corrupt(format!("section {name:?} length overflow")))?;
            let start = pos;
            let payload = read_exact(&data, &mut pos, payload_len, "section payload")?;
            let stored = u32::from_le_bytes(
                read_exact(&data, &mut pos, 4, "section checksum")?
                    .try_into()
                    .unwrap(),
            );
            if crc32(payload) != stored {
                return Err(SnapshotError::ChecksumMismatch { section: name });
            }
            sections.push((name, start..start + payload_len));
        }
        Ok(Snapshot { data, sections })
    }

    /// Names of all sections, in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// The verified payload of section `name`.
    pub fn section(&self, name: &str) -> Result<&[u8], SnapshotError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| &self.data[r.clone()])
            .ok_or_else(|| SnapshotError::MissingSection(name.to_string()))
    }

    /// Whether a section exists.
    pub fn has_section(&self, name: &str) -> bool {
        self.sections.iter().any(|(n, _)| n == name)
    }
}

fn read_exact<'d>(
    data: &'d [u8],
    pos: &mut usize,
    len: usize,
    context: &'static str,
) -> Result<&'d [u8], SnapshotError> {
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= data.len())
        .ok_or(SnapshotError::Truncated { context })?;
    let out = &data[*pos..end];
    *pos = end;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pace-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_read_roundtrip() {
        let path = roundtrip_dir().join("basic.snap");
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.add_section("alpha", b"hello").unwrap();
        w.add_section("beta", &[]).unwrap();
        let declared = w.bytes_written();
        let on_disk = w.finish().unwrap();
        assert_eq!(declared, on_disk);
        assert_eq!(on_disk, std::fs::metadata(&path).unwrap().len());

        let snap = Snapshot::read_file(&path).unwrap();
        assert_eq!(snap.section("alpha").unwrap(), b"hello");
        assert_eq!(snap.section("beta").unwrap(), b"");
        assert_eq!(
            snap.section("gamma").unwrap_err(),
            SnapshotError::MissingSection("gamma".into())
        );
        assert_eq!(snap.section_names().collect::<Vec<_>>(), ["alpha", "beta"]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn streamed_section_matches_buffered() {
        let dir = roundtrip_dir();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();

        let a = dir.join("buffered.snap");
        let mut w = SnapshotWriter::create(&a).unwrap();
        w.add_section("data", &payload).unwrap();
        w.finish().unwrap();

        let b = dir.join("streamed.snap");
        let mut w = SnapshotWriter::create(&b).unwrap();
        w.add_section_streamed("data", payload.len() as u64, |put| {
            for chunk in payload.chunks(777) {
                put(chunk)?;
            }
            Ok(())
        })
        .unwrap();
        w.finish().unwrap();

        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_file(&a).unwrap();
        std::fs::remove_file(&b).unwrap();
    }

    #[test]
    fn streamed_length_mismatch_is_an_error() {
        let path = roundtrip_dir().join("short.snap");
        let mut w = SnapshotWriter::create(&path).unwrap();
        let err = w
            .add_section_streamed("data", 10, |put| put(b"abc"))
            .unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
    }

    #[test]
    fn no_final_file_until_finish() {
        let path = roundtrip_dir().join("unpublished.snap");
        let _ = std::fs::remove_file(&path);
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.add_section("x", b"y").unwrap();
        assert!(!path.exists(), "file published before finish()");
        w.finish().unwrap();
        assert!(path.exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_and_version() {
        assert_eq!(
            Snapshot::parse(b"NOTASNAP\0\0\0\0\0\0\0\0".to_vec()).unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut img = Vec::new();
        img.extend_from_slice(MAGIC);
        img.extend_from_slice(&99u32.to_le_bytes());
        img.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            Snapshot::parse(img).unwrap_err(),
            SnapshotError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn truncation_at_every_prefix_is_typed() {
        let path = roundtrip_dir().join("trunc.snap");
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.add_section("alpha", b"payload-bytes").unwrap();
        w.add_section("beta", b"more").unwrap();
        w.finish().unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        for cut in 0..full.len() {
            let err = Snapshot::parse(full[..cut].to_vec())
                .expect_err(&format!("prefix of {cut} bytes accepted"));
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::BadMagic
                ),
                "prefix {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn payload_bit_flip_is_checksum_mismatch() {
        let path = roundtrip_dir().join("flip.snap");
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.add_section("alpha", b"sensitive-payload").unwrap();
        w.finish().unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        // The payload occupies a known range; flip each of its bytes.
        let payload_start = 16 + 2 + 5 + 8;
        for i in payload_start..payload_start + 17 {
            let mut img = full.clone();
            img[i] ^= 0x40;
            assert_eq!(
                Snapshot::parse(img).unwrap_err(),
                SnapshotError::ChecksumMismatch {
                    section: "alpha".into()
                },
                "flip at byte {i} undetected"
            );
        }
    }
}
