//! Memory-budgeted batch planning and subtree spilling.
//!
//! The GST construction phase normally holds every owned subtree in
//! memory at once — O(N) space with a hefty constant. Under a
//! `--memory-budget`, the owned buckets are instead split into batches
//! whose *estimated* in-memory subtree footprint fits the budget (the
//! load model is suffix-count × [`DEFAULT_BYTES_PER_SUFFIX`], the same
//! per-suffix cost the in-memory representation pays: DFS nodes, the
//! suffix arena, and pair-generation lset scratch). Each batch is
//! built, spilled to disk as a checksummed snapshot, and dropped; pair
//! generation later streams the batches back one at a time. The cost is
//! one extra O(N) counting scan per batch; the win is peak subtree
//! memory bounded by the budget instead of the dataset.

use crate::codec::{decode_subtrees, encode_subtrees};
use crate::error::SnapshotError;
use crate::snapshot::{Snapshot, SnapshotWriter};
use pace_gst::{BucketPartition, Subtree};
use std::path::{Path, PathBuf};

/// Node-array bytes per suffix occurrence. The builder preallocates
/// `Subtree::nodes` at **2× the suffix count** (a bucket subtree has at
/// most one leaf plus one internal node per suffix), and
/// `Subtree::memory_bytes` reports *capacity*, so a batch pays for the
/// full preallocation whether or not the DFS array fills it: 2 nodes ×
/// 16 bytes each.
pub const NODE_PREALLOC_BYTES_PER_SUFFIX: u64 = 32;

/// Suffix-arena bytes per occurrence: one 8-byte `SuffixRef` slot.
pub const ARENA_BYTES_PER_SUFFIX: u64 = 8;

/// Pair-generation lset scratch per occurrence: one arena entry of three
/// parallel `u32` columns (string id, offset, next-link) plus slack for
/// the per-node class heads.
pub const LSET_BYTES_PER_SUFFIX: u64 = 16;

/// Estimated in-memory bytes per suffix occurrence of a built subtree —
/// the sum of the component costs above. Kept as an explicit sum so the
/// load model visibly tracks the representation it budgets for; the
/// `plan_never_underestimates_built_batches` test pins the bound.
pub const DEFAULT_BYTES_PER_SUFFIX: u64 =
    NODE_PREALLOC_BYTES_PER_SUFFIX + ARENA_BYTES_PER_SUFFIX + LSET_BYTES_PER_SUFFIX;

/// The batching decision for one rank's buckets under a memory budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    /// Bucket keys per batch, in increasing key order within and across
    /// batches (so concatenating batches reproduces the unbatched
    /// bucket order exactly).
    pub batches: Vec<Vec<u32>>,
    /// Estimated in-memory bytes of each batch under the load model.
    pub est_bytes: Vec<u64>,
    /// Buckets whose *individual* estimate exceeds the budget and were
    /// given a batch of their own (a bucket is the indivisible work
    /// unit; the plan degrades gracefully rather than failing).
    pub oversized_buckets: usize,
}

impl BatchPlan {
    /// Number of batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether the plan is empty (rank owns no non-empty buckets).
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Largest estimated batch footprint.
    pub fn peak_est_bytes(&self) -> u64 {
        self.est_bytes.iter().copied().max().unwrap_or(0)
    }
}

/// Split `rank`'s owned buckets into batches whose estimated footprint
/// (suffix count × `bytes_per_suffix`) stays within `budget_bytes`.
///
/// Deterministic and a pure function of the partition — resuming a run
/// recomputes the identical plan from the checkpointed partition
/// instead of persisting the plan itself. A `budget_bytes` of 0 means
/// "unlimited" and yields a single batch.
pub fn plan_batches(
    partition: &BucketPartition,
    rank: usize,
    budget_bytes: u64,
    bytes_per_suffix: u64,
) -> BatchPlan {
    assert!(bytes_per_suffix > 0, "load model needs a positive constant");
    let buckets = partition.buckets_of(rank);
    if buckets.is_empty() {
        return BatchPlan {
            batches: Vec::new(),
            est_bytes: Vec::new(),
            oversized_buckets: 0,
        };
    }
    if budget_bytes == 0 {
        let est = buckets
            .iter()
            .map(|&b| partition.counts[b as usize] * bytes_per_suffix)
            .sum();
        return BatchPlan {
            batches: vec![buckets],
            est_bytes: vec![est],
            oversized_buckets: 0,
        };
    }

    let mut batches = Vec::new();
    let mut est_bytes = Vec::new();
    let mut cur: Vec<u32> = Vec::new();
    let mut cur_bytes = 0u64;
    let mut oversized = 0usize;
    for b in buckets {
        let cost = partition.counts[b as usize] * bytes_per_suffix;
        if cost > budget_bytes && cur.is_empty() {
            // Indivisible bucket alone already busts the budget: give it
            // its own batch and account for the overshoot honestly.
            oversized += 1;
            batches.push(vec![b]);
            est_bytes.push(cost);
            continue;
        }
        if !cur.is_empty() && cur_bytes + cost > budget_bytes {
            batches.push(std::mem::take(&mut cur));
            est_bytes.push(cur_bytes);
            cur_bytes = 0;
        }
        if cost > budget_bytes {
            oversized += 1;
            batches.push(vec![b]);
            est_bytes.push(cost);
        } else {
            cur.push(b);
            cur_bytes += cost;
        }
    }
    if !cur.is_empty() {
        batches.push(cur);
        est_bytes.push(cur_bytes);
    }
    BatchPlan {
        batches,
        est_bytes,
        oversized_buckets: oversized,
    }
}

/// I/O counters the spill layer accumulates; the driver publishes them
/// as the `io.*` metric family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Bytes written to spill files.
    pub spill_bytes: u64,
    /// Spill files written.
    pub spill_files: u64,
    /// Bytes read back from spill files.
    pub read_back_bytes: u64,
    /// Spill files read back.
    pub read_back_files: u64,
}

/// Writes and reads per-batch subtree snapshots in a spill directory.
///
/// Files are named `batch-NNNNN.spill`; each is a one-section snapshot,
/// so spilled batches inherit the format's checksums and its atomic
/// write-to-temp + rename publication (a crash mid-spill leaves only a
/// `*.tmp` which readers never look at).
#[derive(Debug)]
pub struct SpillManager {
    dir: PathBuf,
    stats: IoStats,
}

impl SpillManager {
    /// Open (creating if needed) a spill directory.
    pub fn new(dir: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(SpillManager {
            dir,
            stats: IoStats::default(),
        })
    }

    /// The on-disk path of batch `index`.
    pub fn batch_path(&self, index: usize) -> PathBuf {
        self.dir.join(format!("batch-{index:05}.spill"))
    }

    /// Whether batch `index` has been spilled (and published).
    pub fn has_batch(&self, index: usize) -> bool {
        self.batch_path(index).exists()
    }

    /// Spill one built batch; returns the bytes written.
    pub fn spill_batch(&mut self, index: usize, trees: &[Subtree]) -> Result<u64, SnapshotError> {
        let mut w = SnapshotWriter::create(self.batch_path(index))?;
        w.add_section("subtrees", &encode_subtrees(trees))?;
        let bytes = w.finish()?;
        self.stats.spill_bytes += bytes;
        self.stats.spill_files += 1;
        Ok(bytes)
    }

    /// Stream one spilled batch back into memory.
    pub fn read_batch(&mut self, index: usize) -> Result<Vec<Subtree>, SnapshotError> {
        let path = self.batch_path(index);
        let snap = Snapshot::read_file(&path)?;
        let trees = decode_subtrees(snap.section("subtrees")?)?;
        self.stats.read_back_bytes += std::fs::metadata(&path)?.len();
        self.stats.read_back_files += 1;
        Ok(trees)
    }

    /// Delete all spill files of this run (terminal cleanup).
    pub fn remove_all(&mut self) -> Result<(), SnapshotError> {
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("batch-") && name.ends_with(".spill") {
                std::fs::remove_file(&path)?;
            }
        }
        Ok(())
    }

    /// Accumulated I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_gst::{assign_buckets, build_sequential, count_buckets};
    use pace_seq::SequenceStore;

    fn store() -> SequenceStore {
        SequenceStore::from_ests(&[
            b"ACGTACGAGGTTCCAA".as_slice(),
            b"CCATGGTACGTATTGG",
            b"GATTACAGATTACA",
        ])
        .unwrap()
    }

    fn partition(s: &SequenceStore) -> BucketPartition {
        assign_buckets(&count_buckets(s, 2), 1)
    }

    #[test]
    fn plan_covers_all_buckets_in_order() {
        let s = store();
        let part = partition(&s);
        let all = part.buckets_of(0);
        for budget in [1, 64, 1024, 100_000, 0] {
            let plan = plan_batches(&part, 0, budget, DEFAULT_BYTES_PER_SUFFIX);
            let flat: Vec<u32> = plan.batches.iter().flatten().copied().collect();
            assert_eq!(flat, all, "budget {budget}");
            assert_eq!(plan.est_bytes.len(), plan.batches.len());
        }
    }

    #[test]
    fn batches_respect_budget_except_oversized() {
        let s = store();
        let part = partition(&s);
        let budget = 4 * DEFAULT_BYTES_PER_SUFFIX; // room for ~4 suffixes
        let plan = plan_batches(&part, 0, budget, DEFAULT_BYTES_PER_SUFFIX);
        assert!(plan.len() > 1);
        let mut seen_oversized = 0;
        for (batch, &est) in plan.batches.iter().zip(&plan.est_bytes) {
            if est > budget {
                assert_eq!(batch.len(), 1, "oversized batch must be a single bucket");
                seen_oversized += 1;
            }
        }
        assert_eq!(seen_oversized, plan.oversized_buckets);
    }

    #[test]
    fn unlimited_budget_is_one_batch() {
        let s = store();
        let part = partition(&s);
        let plan = plan_batches(&part, 0, 0, DEFAULT_BYTES_PER_SUFFIX);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.peak_est_bytes(), plan.est_bytes[0]);
    }

    /// The load model must never *under*-estimate: for every planned
    /// batch, the estimate has to cover the actual built footprint —
    /// subtree node/arena capacity (which includes the 2× node
    /// preallocation) plus the lset arena pair generation will allocate
    /// (12 bytes per suffix occurrence). Otherwise a "within budget"
    /// batch could blow the budget once built.
    #[test]
    fn plan_never_underestimates_built_batches() {
        let s = store();
        let part = partition(&s);
        for budget in [1, 4 * DEFAULT_BYTES_PER_SUFFIX, 1024, 0] {
            let plan = plan_batches(&part, 0, budget, DEFAULT_BYTES_PER_SUFFIX);
            for (batch, &est) in plan.batches.iter().zip(&plan.est_bytes) {
                let trees = pace_gst::build_bucket_batch(&s, part.w, batch);
                let built: u64 = trees.iter().map(|t| t.memory_bytes() as u64).sum();
                let lset: u64 = trees.iter().map(|t| t.num_suffixes() as u64 * 12).sum();
                assert!(
                    est >= built + lset,
                    "budget {budget}: estimated {est} B < built {built} B + lset {lset} B"
                );
            }
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let s = store();
        let part = partition(&s);
        let a = plan_batches(&part, 0, 500, DEFAULT_BYTES_PER_SUFFIX);
        let b = plan_batches(&part, 0, 500, DEFAULT_BYTES_PER_SUFFIX);
        assert_eq!(a, b);
    }

    #[test]
    fn spill_and_read_back_roundtrip() {
        let s = store();
        let forest = build_sequential(&s, 2);
        let dir = std::env::temp_dir().join(format!("pace-spill-test-{}", std::process::id()));
        let mut mgr = SpillManager::new(&dir).unwrap();

        let mid = forest.subtrees.len() / 2;
        mgr.spill_batch(0, &forest.subtrees[..mid]).unwrap();
        mgr.spill_batch(1, &forest.subtrees[mid..]).unwrap();
        assert!(mgr.has_batch(0) && mgr.has_batch(1) && !mgr.has_batch(2));

        let mut back = mgr.read_batch(0).unwrap();
        back.extend(mgr.read_batch(1).unwrap());
        assert_eq!(back, forest.subtrees);

        let io = mgr.stats();
        assert_eq!(io.spill_files, 2);
        assert_eq!(io.read_back_files, 2);
        assert_eq!(io.spill_bytes, io.read_back_bytes);
        assert!(io.spill_bytes > 0);

        mgr.remove_all().unwrap();
        assert!(!mgr.has_batch(0) && !mgr.has_batch(1));
        std::fs::remove_dir_all(&dir).ok();
    }
}
