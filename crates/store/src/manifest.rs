//! The checkpoint manifest: one small JSON file recording how far a
//! run has progressed and which snapshots are valid.
//!
//! The manifest is rewritten atomically (write-to-temp + fsync +
//! rename) after every phase boundary and after every clustered batch,
//! so at any instant the file on disk describes a consistent,
//! resumable state. Heavy state (the sequence store, the partition,
//! the union–find + merge trace) lives in separate snapshot files the
//! manifest refers to by progress coordinates; the manifest itself
//! carries only light cumulative counters.
//!
//! Resume correctness hinges on one asymmetry the counters expose:
//! clustering progress (`batches_clustered`, `pairs_generated`) is
//! recorded after *every* batch, while the union–find/trace snapshot is
//! only written every K batches (`heavy_ckpt`). The gap between the two
//! is exactly the work a crash destroys, and the resuming driver books
//! it into `faults.lost_pairs` (see `pace-core`) so the conservation
//! invariant `generated == processed + skipped + unconsumed` survives
//! the crash-and-resume cycle.

use crate::error::SnapshotError;
use crate::snapshot::atomic_write;
use pace_obs::json::{parse, Json};
use std::path::Path;

/// Manifest schema version (independent of the binary snapshot version).
pub const MANIFEST_VERSION: u32 = 1;

/// The pipeline phases, in execution order. The manifest records the
/// last phase that *completed* (all of its snapshots published).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// FASTA ingested; `ingest.snap` holds the sequence store + ids.
    Ingest,
    /// Buckets counted and assigned; `partition.snap` holds the table.
    Partition,
    /// All bucket batches built and spilled to the spill directory.
    Build,
    /// All batches clustered; final heavy checkpoint is current.
    Cluster,
    /// Run finished; outputs were produced.
    Done,
}

impl Phase {
    /// Stable on-disk name.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Ingest => "ingest",
            Phase::Partition => "partition",
            Phase::Build => "build",
            Phase::Cluster => "cluster",
            Phase::Done => "done",
        }
    }

    /// Parse an on-disk name (fallible, unlike `std::str::FromStr`,
    /// which can't return `Option`).
    pub fn parse(s: &str) -> Option<Phase> {
        Some(match s {
            "ingest" => Phase::Ingest,
            "partition" => Phase::Partition,
            "build" => Phase::Build,
            "cluster" => Phase::Cluster,
            "done" => Phase::Done,
            _ => return None,
        })
    }
}

/// Progress record of one persistent run.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Manifest schema version.
    pub version: u32,
    /// Fingerprint of the run configuration (input + parameters); a
    /// resume with a different fingerprint is rejected rather than
    /// silently mixing incompatible state.
    pub fingerprint: String,
    /// Last *completed* phase.
    pub phase: Phase,
    /// Number of ESTs ingested.
    pub num_ests: u64,
    /// Total input bases ingested.
    pub total_bases: u64,
    /// Total batches in the build plan (0 until the plan exists).
    pub batches_total: u64,
    /// Batches built and spilled so far.
    pub batches_built: u64,
    /// Batches fully clustered so far.
    pub batches_clustered: u64,
    /// Cumulative promising pairs generated through `batches_clustered`
    /// (the light counter that prices a crash, see module docs).
    pub pairs_generated: u64,
    /// Batch count at the last heavy (union–find + trace) checkpoint,
    /// or `None` if clustering has not checkpointed yet.
    pub heavy_ckpt: Option<u64>,
}

impl Manifest {
    /// A fresh manifest for a run that has not completed any phase yet.
    pub fn new(fingerprint: String) -> Self {
        Manifest {
            version: MANIFEST_VERSION,
            fingerprint,
            phase: Phase::Ingest, // overwritten when ingest completes
            num_ests: 0,
            total_bases: 0,
            batches_total: 0,
            batches_built: 0,
            batches_clustered: 0,
            pairs_generated: 0,
            heavy_ckpt: None,
        }
    }

    /// Render to the on-disk JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("version", Json::Num(self.version as f64)),
            ("fingerprint", Json::Str(self.fingerprint.clone())),
            ("phase", Json::Str(self.phase.as_str().to_string())),
            ("num_ests", Json::Num(self.num_ests as f64)),
            ("total_bases", Json::Num(self.total_bases as f64)),
            ("batches_total", Json::Num(self.batches_total as f64)),
            ("batches_built", Json::Num(self.batches_built as f64)),
            (
                "batches_clustered",
                Json::Num(self.batches_clustered as f64),
            ),
            ("pairs_generated", Json::Num(self.pairs_generated as f64)),
            (
                "heavy_ckpt",
                match self.heavy_ckpt {
                    Some(b) => Json::Num(b as f64),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Parse the on-disk JSON document.
    pub fn from_json(doc: &Json) -> Result<Self, SnapshotError> {
        let bad = |what: &str| SnapshotError::Corrupt(format!("manifest: bad or missing {what}"));
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("version"))? as u32;
        if version > MANIFEST_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let phase = doc
            .get("phase")
            .and_then(Json::as_str)
            .and_then(Phase::parse)
            .ok_or_else(|| bad("phase"))?;
        let num = |key: &'static str| doc.get(key).and_then(Json::as_u64).ok_or_else(|| bad(key));
        let heavy_ckpt = match doc.get("heavy_ckpt") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| bad("heavy_ckpt"))?),
        };
        Ok(Manifest {
            version,
            fingerprint: doc
                .get("fingerprint")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("fingerprint"))?
                .to_string(),
            phase,
            num_ests: num("num_ests")?,
            total_bases: num("total_bases")?,
            batches_total: num("batches_total")?,
            batches_built: num("batches_built")?,
            batches_clustered: num("batches_clustered")?,
            pairs_generated: num("pairs_generated")?,
            heavy_ckpt,
        })
    }

    /// Atomically publish the manifest to `path`.
    pub fn store(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let mut text = self.to_json().to_string();
        text.push('\n');
        atomic_write(path.as_ref(), text.as_bytes())
    }

    /// Load and validate a manifest from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let text = std::fs::read_to_string(path.as_ref())?;
        let doc = parse(&text)
            .map_err(|e| SnapshotError::Corrupt(format!("manifest: invalid JSON: {e}")))?;
        Self::from_json(&doc)
    }
}

/// Fingerprint a run configuration: CRC-32 over a caller-assembled
/// canonical description string, rendered as 8 hex digits. Collisions
/// are astronomically unlikely to matter here — the fingerprint guards
/// against *accidental* resume-with-different-flags, not adversaries.
pub fn fingerprint(canonical: &str) -> String {
    format!("{:08x}", crate::crc::crc32(canonical.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            fingerprint: fingerprint("w=6 psi=40 n=100"),
            phase: Phase::Build,
            num_ests: 100,
            total_bases: 40_000,
            batches_total: 7,
            batches_built: 3,
            batches_clustered: 0,
            pairs_generated: 0,
            heavy_ckpt: None,
        }
    }

    #[test]
    fn json_roundtrip() {
        let m = sample();
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);

        let mut m2 = m;
        m2.phase = Phase::Cluster;
        m2.batches_clustered = 5;
        m2.pairs_generated = 12_345;
        m2.heavy_ckpt = Some(4);
        let back = Manifest::from_json(&m2.to_json()).unwrap();
        assert_eq!(back, m2);
    }

    #[test]
    fn disk_roundtrip_is_atomic() {
        let dir = std::env::temp_dir().join(format!("pace-manifest-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        let m = sample();
        m.store(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), m);
        // No temp residue once published.
        assert!(!dir.join("manifest.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_manifests_are_typed_errors() {
        assert!(matches!(
            Manifest::from_json(&parse("{}").unwrap()).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
        assert!(matches!(
            Manifest::from_json(&parse(r#"{"version": 999}"#).unwrap()).unwrap_err(),
            SnapshotError::UnsupportedVersion(999)
        ));
        let mut doc = sample().to_json();
        if let Json::Obj(entries) = &mut doc {
            for (k, v) in entries.iter_mut() {
                if k == "phase" {
                    *v = Json::Str("warp".into());
                }
            }
        }
        assert!(matches!(
            Manifest::from_json(&doc).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn phase_ordering_matches_pipeline_order() {
        assert!(Phase::Ingest < Phase::Partition);
        assert!(Phase::Partition < Phase::Build);
        assert!(Phase::Build < Phase::Cluster);
        assert!(Phase::Cluster < Phase::Done);
        for p in [
            Phase::Ingest,
            Phase::Partition,
            Phase::Build,
            Phase::Cluster,
            Phase::Done,
        ] {
            assert_eq!(Phase::parse(p.as_str()), Some(p));
        }
    }
}
