//! Out-of-core persistence for PaCE.
//!
//! The paper's clustering promises space linear in the input, but the
//! constant in front of N still has to fit in RAM. This crate removes
//! that ceiling and adds whole-run durability, in three layers:
//!
//! * [`snapshot`] — a versioned, checksummed binary container (magic +
//!   schema version + named sections + per-section CRC-32) with
//!   streaming writer and verifying reader, published atomically via
//!   write-to-temp + fsync + rename. [`codec`] provides the typed
//!   encodings of every pipeline structure (sequence store, packed
//!   text, bucket partition, subtrees, union–find, merge trace, run
//!   stats) on top of it.
//! * [`spill`] — memory-budgeted batch planning over the bucket
//!   partition's suffix counts, plus the [`spill::SpillManager`] that
//!   writes completed subtree batches to a spill directory and streams
//!   them back during pair generation. This is what lets GST
//!   construction run under `--memory-budget` on inputs whose trees
//!   exceed RAM.
//! * [`manifest`] — the small JSON progress record enabling
//!   checkpoint/resume: which phase completed, how many batches were
//!   built/clustered, and where the last heavy union–find checkpoint
//!   sits. The driver in `pace-core` rewrites it atomically at every
//!   phase boundary and after every clustered batch.
//!
//! Corruption anywhere in the stack (truncation, bit flips, stale
//! schema, structural inconsistencies) surfaces as a typed
//! [`SnapshotError`], never a panic.

pub mod codec;
pub mod crc;
pub mod error;
pub mod manifest;
pub mod snapshot;
pub mod spill;

pub use crc::{crc32, Crc32};
pub use error::SnapshotError;
pub use manifest::{fingerprint, Manifest, Phase, MANIFEST_VERSION};
pub use snapshot::{atomic_write, Snapshot, SnapshotWriter, MAGIC, SCHEMA_VERSION};
pub use spill::{plan_batches, BatchPlan, IoStats, SpillManager, DEFAULT_BYTES_PER_SUFFIX};
