//! Typed codecs: the pipeline's data structures ⇄ snapshot section bytes.
//!
//! Every codec is a pure function pair over little-endian buffers. The
//! encodings are self-delimiting (lengths precede payloads) and every
//! decoder checks its input exhaustively — short buffers surface as
//! [`SnapshotError::Truncated`], structural inconsistencies as
//! [`SnapshotError::Corrupt`] — so feeding a codec arbitrary bytes can
//! produce an error but never a panic or an out-of-bounds access.
//!
//! Content integrity (bit flips) is the snapshot layer's CRC job; the
//! decoders here re-validate only the *structural* invariants whose
//! violation would make the reassembled value unsafe to use (see the
//! `from_raw_parts` constructors in the owning crates).

use crate::error::SnapshotError;
use pace_cluster::stats::{ClusterStats, FaultStats, PhaseTimers};
use pace_cluster::trace::{MergeRecord, MergeTrace};
use pace_dsu::DisjointSets;
use pace_gst::tree::Node;
use pace_gst::{BucketPartition, Subtree, SuffixRef};
use pace_seq::{PackedText, SequenceStore};

// ---------------------------------------------------------------------
// Little-endian buffer primitives.
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u64(out, v.len() as u64);
    out.extend_from_slice(v);
}

fn put_u32s(out: &mut Vec<u8>, v: &[u32]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        put_u32(out, x);
    }
}

/// Sequential little-endian reader with typed exhaustion errors.
pub(crate) struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Which codec is reading (names the `Truncated` context).
    context: &'static str,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(bytes: &'a [u8], context: &'static str) -> Self {
        Dec {
            bytes,
            pos: 0,
            context,
        }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SnapshotError::Truncated {
                context: self.context,
            })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A declared element count, sanity-bounded so a corrupt length
    /// cannot trigger an enormous allocation: `count * elem_size` must
    /// fit in what's left of the buffer.
    fn count(&mut self, elem_size: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if elem_size > 0 && n > remaining / elem_size as u64 {
            return Err(SnapshotError::Truncated {
                context: self.context,
            });
        }
        Ok(n as usize)
    }

    fn byte_vec(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.count(1)?;
        Ok(self.take(n)?.to_vec())
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.count(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.bytes.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{}: {} trailing bytes after decode",
                self.context,
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn corrupt(context: &str, msg: String) -> SnapshotError {
    SnapshotError::Corrupt(format!("{context}: {msg}"))
}

// ---------------------------------------------------------------------
// String lists (FASTA ids)
// ---------------------------------------------------------------------

/// Encode a list of strings (the per-EST FASTA identifiers).
pub fn encode_string_list(items: &[String]) -> Vec<u8> {
    let cap: usize = items.iter().map(|s| s.len() + 8).sum();
    let mut out = Vec::with_capacity(cap + 8);
    put_u64(&mut out, items.len() as u64);
    for s in items {
        put_bytes(&mut out, s.as_bytes());
    }
    out
}

/// Decode a list of strings; non-UTF-8 content is [`SnapshotError::Corrupt`].
pub fn decode_string_list(bytes: &[u8]) -> Result<Vec<String>, SnapshotError> {
    const CTX: &str = "string list";
    let mut d = Dec::new(bytes, CTX);
    let n = d.count(8)?;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let raw = d.byte_vec()?;
        out.push(
            String::from_utf8(raw).map_err(|_| corrupt(CTX, format!("item {i} is not UTF-8")))?,
        );
    }
    d.finish()?;
    Ok(out)
}

// ---------------------------------------------------------------------
// SequenceStore
// ---------------------------------------------------------------------

/// Encode a [`SequenceStore`] (text + offset table).
pub fn encode_sequence_store(store: &SequenceStore) -> Vec<u8> {
    let (text, offsets) = store.as_raw_parts();
    let mut out = Vec::with_capacity(text.len() + offsets.len() * 4 + 16);
    put_bytes(&mut out, text);
    put_u32s(&mut out, offsets);
    out
}

/// Decode a [`SequenceStore`], re-validating its structural invariants
/// and that the text is pure uppercase DNA.
pub fn decode_sequence_store(bytes: &[u8]) -> Result<SequenceStore, SnapshotError> {
    let mut d = Dec::new(bytes, "sequence store");
    let text = d.byte_vec()?;
    let offsets = d.u32_vec()?;
    d.finish()?;
    SequenceStore::from_raw_parts(text, offsets)
        .map_err(|e| corrupt("sequence store", e.to_string()))
}

// ---------------------------------------------------------------------
// PackedText
// ---------------------------------------------------------------------

/// Encode a [`PackedText`] (2-bit words + offset table).
pub fn encode_packed_text(packed: &PackedText) -> Vec<u8> {
    let (words, offsets) = packed.as_raw_parts();
    let mut out = Vec::with_capacity(words.len() + offsets.len() * 4 + 16);
    put_bytes(&mut out, words);
    put_u32s(&mut out, offsets);
    out
}

/// Decode a [`PackedText`].
pub fn decode_packed_text(bytes: &[u8]) -> Result<PackedText, SnapshotError> {
    let mut d = Dec::new(bytes, "packed text");
    let words = d.byte_vec()?;
    let offsets = d.u32_vec()?;
    d.finish()?;
    PackedText::from_raw_parts(words, offsets).map_err(|e| corrupt("packed text", e))
}

// ---------------------------------------------------------------------
// BucketPartition
// ---------------------------------------------------------------------

/// Encode a [`BucketPartition`] (owner + count tables).
pub fn encode_bucket_partition(part: &BucketPartition) -> Vec<u8> {
    let mut out = Vec::with_capacity(part.owner.len() * 10 + 32);
    put_u32(&mut out, part.w as u32);
    put_u32(&mut out, part.num_ranks as u32);
    put_u64(&mut out, part.owner.len() as u64);
    for &o in &part.owner {
        out.extend_from_slice(&o.to_le_bytes());
    }
    put_u64(&mut out, part.counts.len() as u64);
    for &c in &part.counts {
        put_u64(&mut out, c);
    }
    out
}

/// Decode a [`BucketPartition`], checking table sizes and owner ranges.
pub fn decode_bucket_partition(bytes: &[u8]) -> Result<BucketPartition, SnapshotError> {
    const CTX: &str = "bucket partition";
    let mut d = Dec::new(bytes, CTX);
    let w = d.u32()? as usize;
    let num_ranks = d.u32()? as usize;
    let n_owner = d.count(2)?;
    let mut owner = Vec::with_capacity(n_owner);
    for _ in 0..n_owner {
        owner.push(u16::from_le_bytes(d.take(2)?.try_into().unwrap()));
    }
    let n_counts = d.count(8)?;
    let mut counts = Vec::with_capacity(n_counts);
    for _ in 0..n_counts {
        counts.push(d.u64()?);
    }
    d.finish()?;

    if !(1..=12).contains(&w) {
        return Err(corrupt(CTX, format!("window w = {w} out of 1..=12")));
    }
    let expect = 1usize << (2 * w);
    if owner.len() != expect || counts.len() != expect {
        return Err(corrupt(
            CTX,
            format!(
                "tables hold {} owners / {} counts, expected 4^{w} = {expect}",
                owner.len(),
                counts.len()
            ),
        ));
    }
    if num_ranks == 0 || num_ranks > u16::MAX as usize {
        return Err(corrupt(
            CTX,
            format!("num_ranks = {num_ranks} out of range"),
        ));
    }
    if let Some((b, &o)) = owner
        .iter()
        .enumerate()
        .find(|&(_, &o)| o as usize >= num_ranks)
    {
        return Err(corrupt(
            CTX,
            format!("bucket {b} owned by rank {o}, only {num_ranks} ranks"),
        ));
    }
    Ok(BucketPartition {
        w,
        num_ranks,
        owner,
        counts,
    })
}

// ---------------------------------------------------------------------
// Subtrees
// ---------------------------------------------------------------------

fn put_subtree(out: &mut Vec<u8>, tree: &Subtree) {
    put_u32(out, tree.bucket);
    put_u64(out, tree.nodes().len() as u64);
    for n in tree.nodes() {
        put_u32(out, n.rightmost);
        put_u32(out, n.depth);
        put_u32(out, n.suf_start);
        put_u32(out, n.suf_end);
    }
    put_u64(out, tree.suffixes().len() as u64);
    for s in tree.suffixes() {
        put_u32(out, s.sid);
        put_u32(out, s.off);
    }
}

fn take_subtree(d: &mut Dec<'_>) -> Result<Subtree, SnapshotError> {
    let bucket = d.u32()?;
    let n_nodes = d.count(16)?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        nodes.push(Node {
            rightmost: d.u32()?,
            depth: d.u32()?,
            suf_start: d.u32()?,
            suf_end: d.u32()?,
        });
    }
    let n_sufs = d.count(8)?;
    let mut suffixes = Vec::with_capacity(n_sufs);
    for _ in 0..n_sufs {
        suffixes.push(SuffixRef::new(d.u32()?, d.u32()?));
    }
    // Leaf ranges must stay inside the arena; everything subtler is the
    // builder's concern (Subtree::validate exists for tests).
    for (i, n) in nodes.iter().enumerate() {
        if n.rightmost as usize >= nodes.len() {
            return Err(corrupt(
                "subtree",
                format!(
                    "node {i}: rightmost {} out of {} nodes",
                    n.rightmost, n_nodes
                ),
            ));
        }
        if n.rightmost as usize == i
            && (n.suf_start > n.suf_end || n.suf_end as usize > suffixes.len())
        {
            return Err(corrupt(
                "subtree",
                format!(
                    "leaf {i}: suffix range {}..{} outside arena of {n_sufs}",
                    n.suf_start, n.suf_end
                ),
            ));
        }
    }
    Ok(Subtree::from_parts(bucket, nodes, suffixes))
}

/// Encode a batch of subtrees as one section payload.
pub fn encode_subtrees(trees: &[Subtree]) -> Vec<u8> {
    let cap: usize = trees
        .iter()
        .map(|t| 20 + t.nodes().len() * 16 + t.suffixes().len() * 8)
        .sum();
    let mut out = Vec::with_capacity(cap + 8);
    put_u64(&mut out, trees.len() as u64);
    for t in trees {
        put_subtree(&mut out, t);
    }
    out
}

/// Decode a batch of subtrees.
pub fn decode_subtrees(bytes: &[u8]) -> Result<Vec<Subtree>, SnapshotError> {
    let mut d = Dec::new(bytes, "subtrees");
    let n = d.count(20)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(take_subtree(&mut d)?);
    }
    d.finish()?;
    Ok(out)
}

// ---------------------------------------------------------------------
// DisjointSets
// ---------------------------------------------------------------------

/// Encode the union–find state.
pub fn encode_dsu(dsu: &DisjointSets) -> Vec<u8> {
    let (parent, rank, size, num_sets) = dsu.as_raw_parts();
    let mut out = Vec::with_capacity(parent.len() * 9 + 32);
    put_u32s(&mut out, parent);
    put_bytes(&mut out, rank);
    put_u32s(&mut out, size);
    put_u64(&mut out, num_sets as u64);
    out
}

/// Decode the union–find state, re-validating pointer sanity (range,
/// acyclicity, root count) via [`DisjointSets::from_raw_parts`].
pub fn decode_dsu(bytes: &[u8]) -> Result<DisjointSets, SnapshotError> {
    let mut d = Dec::new(bytes, "union-find");
    let parent = d.u32_vec()?;
    let rank = d.byte_vec()?;
    let size = d.u32_vec()?;
    let num_sets = d.u64()? as usize;
    d.finish()?;
    DisjointSets::from_raw_parts(parent, rank, size, num_sets).map_err(|e| corrupt("union-find", e))
}

// ---------------------------------------------------------------------
// ClusterStats
// ---------------------------------------------------------------------

/// Encode the full counter/timer block of a run.
pub fn encode_cluster_stats(stats: &ClusterStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(168);
    for v in [
        stats.pairs_generated,
        stats.pairs_processed,
        stats.pairs_accepted,
        stats.merges,
        stats.pairs_skipped,
        stats.pairs_prefiltered,
        stats.pairs_unconsumed,
        stats.messages,
    ] {
        put_u64(&mut out, v);
    }
    put_f64(&mut out, stats.master_busy_frac);
    for v in [
        stats.faults.retries,
        stats.faults.duplicate_reports,
        stats.faults.dead_slaves,
        stats.faults.reassigned_pairs,
        stats.faults.abandoned_pairs,
        stats.faults.lost_pairs,
    ] {
        put_u64(&mut out, v);
    }
    for v in [
        stats.timers.partitioning,
        stats.timers.gst_construction,
        stats.timers.node_sorting,
        stats.timers.alignment,
        stats.timers.total,
    ] {
        put_f64(&mut out, v);
    }
    out
}

/// Decode a [`ClusterStats`] block.
pub fn decode_cluster_stats(bytes: &[u8]) -> Result<ClusterStats, SnapshotError> {
    let mut d = Dec::new(bytes, "cluster stats");
    let stats = ClusterStats {
        pairs_generated: d.u64()?,
        pairs_processed: d.u64()?,
        pairs_accepted: d.u64()?,
        merges: d.u64()?,
        pairs_skipped: d.u64()?,
        pairs_prefiltered: d.u64()?,
        pairs_unconsumed: d.u64()?,
        messages: d.u64()?,
        master_busy_frac: d.f64()?,
        faults: FaultStats {
            retries: d.u64()?,
            duplicate_reports: d.u64()?,
            dead_slaves: d.u64()?,
            reassigned_pairs: d.u64()?,
            abandoned_pairs: d.u64()?,
            lost_pairs: d.u64()?,
        },
        timers: PhaseTimers {
            partitioning: d.f64()?,
            gst_construction: d.f64()?,
            node_sorting: d.f64()?,
            alignment: d.f64()?,
            total: d.f64()?,
        },
    };
    d.finish()?;
    Ok(stats)
}

// ---------------------------------------------------------------------
// MergeTrace
// ---------------------------------------------------------------------

/// Encode the merge audit log.
pub fn encode_merge_trace(trace: &MergeTrace) -> Vec<u8> {
    let mut out = Vec::with_capacity(trace.len() * 28 + 8);
    put_u64(&mut out, trace.len() as u64);
    for r in trace.records() {
        put_u64(&mut out, r.est_a as u64);
        put_u64(&mut out, r.est_b as u64);
        put_u32(&mut out, r.mcs_len);
        put_f64(&mut out, r.score_ratio);
    }
    out
}

/// Decode the merge audit log.
pub fn decode_merge_trace(bytes: &[u8]) -> Result<MergeTrace, SnapshotError> {
    let mut d = Dec::new(bytes, "merge trace");
    let n = d.count(28)?;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        records.push(MergeRecord {
            est_a: d.u64()? as usize,
            est_b: d.u64()? as usize,
            mcs_len: d.u32()?,
            score_ratio: d.f64()?,
        });
    }
    d.finish()?;
    Ok(MergeTrace::from_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_list_roundtrip() {
        let ids = vec!["est_0".to_string(), String::new(), "αβγ".to_string()];
        let bytes = encode_string_list(&ids);
        assert_eq!(decode_string_list(&bytes).unwrap(), ids);
        assert!(decode_string_list(&encode_string_list(&[]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn string_list_rejects_bad_utf8() {
        let mut bytes = Vec::new();
        put_u64(&mut bytes, 1);
        put_bytes(&mut bytes, &[0xff, 0xfe]);
        assert!(matches!(
            decode_string_list(&bytes).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn sequence_store_roundtrip() {
        let store = SequenceStore::from_ests(&[b"ACGGT".as_slice(), b"TTACG"]).unwrap();
        let bytes = encode_sequence_store(&store);
        assert_eq!(decode_sequence_store(&bytes).unwrap(), store);
    }

    #[test]
    fn short_buffers_are_truncated_errors() {
        let store = SequenceStore::from_ests(&[b"ACGGT".as_slice()]).unwrap();
        let bytes = encode_sequence_store(&store);
        for cut in 0..bytes.len() {
            let err = decode_sequence_store(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::Corrupt(_)
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_corrupt_errors() {
        let store = SequenceStore::from_ests(&[b"ACGT".as_slice()]).unwrap();
        let mut bytes = encode_sequence_store(&store);
        bytes.push(0);
        assert!(matches!(
            decode_sequence_store(&bytes).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn huge_declared_count_is_rejected_without_allocation() {
        // A corrupt length prefix claiming 2^60 elements must error out
        // instead of attempting the reservation.
        let mut bytes = Vec::new();
        put_u64(&mut bytes, 1 << 60);
        assert!(decode_sequence_store(&bytes).is_err());
        assert!(decode_merge_trace(&bytes).is_err());
        assert!(decode_subtrees(&bytes).is_err());
    }
}
