//! Hand-rolled wire codec shared by every socket protocol in the repo.
//!
//! The repo's convention is std-only serialization (no serde); this
//! crate provides the pieces any framed byte protocol needs — it began
//! life inside `pace-mpisim`'s Unix-socket transport and was extracted
//! so the serving daemon (`pace-serve`) reuses it instead of
//! duplicating it:
//!
//! - [`Wire`]: encode/decode for a message type, little-endian, length
//!   prefixes on variable-size fields;
//! - [`WireReader`]: a bounds-checked cursor that decoding reads from —
//!   truncated or trailing bytes are errors, never panics;
//! - framing: every socket payload travels as
//!   `[len: u32 LE][crc32: u32 LE][payload bytes]`, where the checksum
//!   covers the payload. A frame that fails its length sanity bound or
//!   its checksum is a hard transport error (a Unix socket does not
//!   corrupt bytes in practice; a bad checksum means a codec bug or a
//!   desynced stream, both of which must fail loudly).
//!
//! Protocol-specific message enums (the transport's `Ctl` handshake,
//! the daemon's request/response lines) live with their protocols; only
//! the neutral codec machinery lives here. Within a protocol version,
//! fields are append-only: new fields go at the *end* of a message's
//! encoding and decoding must tolerate their absence only across a
//! version bump, never silently.

use std::io::{self, Read, Write};

/// Upper bound on a frame payload. A `Work`/`Report` batch is a few
/// hundred pairs (tens of KiB) and an ingest batch a few MiB of FASTA;
/// anything near this bound is a desynced stream, not a real message.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Error produced by decoding: truncated input, trailing bytes, or a
/// value that fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Bounds-checked read cursor over one decoded payload.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// A raw byte run of known length.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u32`-prefixed length, validated against the bytes actually left
    /// so a corrupt length cannot trigger a huge allocation.
    pub fn len_prefix(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_size.max(1)) > self.remaining() {
            return Err(WireError(format!(
                "length prefix {n} exceeds remaining payload ({} bytes)",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Decoding must end exactly at the payload boundary; trailing bytes
    /// mean sender and receiver disagree about the message layout.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError(format!(
                "{} trailing bytes after message",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// A type that can cross the socket. Encodings are little-endian and
/// self-delimiting (variable-size fields carry `u32` length prefixes).
pub trait Wire: Sized {
    fn encode(&self, out: &mut Vec<u8>);
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode a complete payload; trailing bytes are an error.
    fn from_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u8()
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u32()
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        usize::try_from(r.u64()?).map_err(|_| WireError("usize out of range".into()))
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError(format!("bad bool byte {b:#04x}"))),
        }
    }
}

/// Floats travel as their IEEE-754 bit pattern, so a value round-trips
/// bit-exactly (including NaN payloads and signed zeros).
impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(r.u64()?))
    }
}

/// Strings travel as a length-prefixed UTF-8 byte run; decoding rejects
/// invalid UTF-8 rather than lossily replacing it.
impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        let n = u32::try_from(self.len()).expect("string too long for wire format");
        n.encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.len_prefix(1)?;
        let bytes = r.bytes(n)?.to_vec();
        String::from_utf8(bytes).map_err(|_| WireError("invalid UTF-8 in wire string".into()))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        let n = u32::try_from(self.len()).expect("vector too long for wire format");
        n.encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        // Elements are at least one byte each, which bounds allocation.
        let n = r.len_prefix(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — inlined so framing needs no deps.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 checksum of `data` (the classic IEEE polynomial, as used by
/// gzip/PNG).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Write one frame: `[len][crc32][payload]`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds MAX_FRAME_LEN",
                    payload.len()
                ),
            )
        })?;
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&len.to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed its socket); EOF mid-frame, an oversized
/// length, or a checksum mismatch are `Err`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 8];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap());
    let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN (desynced stream?)"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let actual = crc32(&payload);
    if actual != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame checksum mismatch: header says {crc:#010x}, payload is {actual:#010x}"),
        ));
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&255u8);
        roundtrip(&0xDEAD_BEEFu32);
        roundtrip(&u64::MAX);
        roundtrip(&12345usize);
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&-0.0f64);
        roundtrip(&f64::NAN.to_bits().to_le_bytes().to_vec());
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&Vec::<u64>::new());
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let v = f64::from_bits(0x7FF8_0000_0000_0001);
        let back = f64::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 7u32.to_bytes();
        bytes.push(0);
        assert!(u32::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = 7u64.to_bytes();
        assert!(u64::from_bytes(&bytes[..7]).is_err());
    }

    #[test]
    fn bad_bool_rejected() {
        assert!(bool::from_bytes(&[2]).is_err());
    }

    #[test]
    fn hostile_length_prefix_cannot_allocate() {
        // A Vec<u64> claiming u32::MAX elements in a 4-byte payload.
        let bytes = u32::MAX.to_bytes();
        assert!(Vec::<u64>::from_bytes(&bytes).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn corrupt_frame_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload-bytes").unwrap();
        // Flip one payload bit.
        let n = buf.len();
        buf[n - 3] ^= 0x10;
        let mut cursor = std::io::Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"0123456789").unwrap();
        buf.truncate(buf.len() - 4);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn oversized_frame_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
