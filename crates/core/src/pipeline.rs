//! The one-call clustering pipeline.

use pace_cluster::{
    cluster_parallel_faults, cluster_sequential_obs, cluster_sharded_faults, ClusterConfig,
    ClusterResult, MergeTrace,
};
use pace_mpisim::FaultPlan;
use pace_obs::Obs;
use pace_quality::QualityMetrics;
use pace_seq::{SeqError, SequenceStore};

/// Top-level configuration: the engine's knobs plus the degree of
/// parallelism.
#[derive(Debug, Clone, PartialEq)]
pub struct PaceConfig {
    /// Clustering engine configuration (window, ψ, batchsize, scoring…).
    pub cluster: ClusterConfig,
    /// Ranks to run: 1 = sequential; `p ≥ 2` = one master + `p − 1`
    /// slaves on the thread-backed message-passing runtime.
    pub num_processors: usize,
    /// Deterministic fault-injection plan for the message-passing
    /// runtime (drops, delays, crashes, stalls). The default empty plan
    /// keeps the runtime on its zero-overhead path; a non-empty plan
    /// only affects parallel runs (`num_processors ≥ 2`) and exercises
    /// the master's timeout/retry/reassignment recovery machinery.
    pub faults: FaultPlan,
}

impl Default for PaceConfig {
    fn default() -> Self {
        PaceConfig {
            cluster: ClusterConfig::default(),
            num_processors: 1,
            faults: FaultPlan::none(),
        }
    }
}

impl PaceConfig {
    /// Paper-style defaults (window 8, ψ 20, batchsize 60) — appropriate
    /// for realistic EST lengths (hundreds of bases).
    pub fn paper() -> Self {
        PaceConfig::default()
    }

    /// Settings for short test sequences (window 4, ψ 8, relaxed
    /// overlap thresholds).
    pub fn small_inputs() -> Self {
        PaceConfig {
            cluster: ClusterConfig::small(),
            num_processors: 1,
            faults: FaultPlan::none(),
        }
    }
}

/// Pipeline errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaceError {
    /// Input sequences failed validation.
    BadInput(SeqError),
    /// Configuration failed validation.
    BadConfig(String),
    /// A persistence operation (snapshot, spill, manifest) failed —
    /// I/O trouble, corruption, or an invalid resume request.
    Persist(String),
    /// A deterministic test-only crash point fired (see
    /// [`CrashPoint`](crate::persistent::CrashPoint)); on-disk state is
    /// exactly what a real crash at that instant would leave.
    InjectedCrash(String),
    /// The multi-process launcher failed: a worker could not be
    /// spawned, missed the socket rendezvous, or exited abnormally
    /// (the message carries its captured stderr).
    Launch(String),
}

impl std::fmt::Display for PaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PaceError::BadInput(e) => write!(f, "invalid input: {e}"),
            PaceError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PaceError::Persist(msg) => write!(f, "persistence failure: {msg}"),
            PaceError::InjectedCrash(point) => write!(f, "injected crash at {point}"),
            PaceError::Launch(msg) => write!(f, "launch failure: {msg}"),
        }
    }
}

impl std::error::Error for PaceError {}

/// The configured pipeline.
#[derive(Debug, Clone)]
pub struct Pace {
    config: PaceConfig,
}

/// Everything a clustering run produces.
#[derive(Debug, Clone)]
pub struct PaceOutcome {
    /// The clustering itself plus statistics.
    pub result: ClusterResult,
    /// Number of input ESTs.
    pub num_ests: usize,
    /// Total input bases (the paper's `N`).
    pub total_bases: usize,
    /// Ranks used.
    pub num_processors: usize,
    /// Ordered log of every accepted merge (replayable).
    pub trace: MergeTrace,
}

impl Pace {
    /// Create a pipeline with the given configuration.
    pub fn new(config: PaceConfig) -> Self {
        Pace { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PaceConfig {
        &self.config
    }

    /// Cluster a set of ESTs given as byte sequences.
    pub fn cluster<S: AsRef<[u8]>>(&self, ests: &[S]) -> Result<PaceOutcome, PaceError> {
        let store = SequenceStore::from_ests(ests).map_err(PaceError::BadInput)?;
        self.cluster_store(&store)
    }

    /// Cluster a pre-built sequence store.
    pub fn cluster_store(&self, store: &SequenceStore) -> Result<PaceOutcome, PaceError> {
        self.cluster_store_obs(store, &Obs::noop())
    }

    /// Cluster a pre-built sequence store with instrumentation: phase
    /// timings, counters and histograms accumulate in `obs`'s registry
    /// (ready for a `pace_obs::report` document), and structured events
    /// stream to its sink. The merge trace is kept on the outcome.
    pub fn cluster_store_obs(
        &self,
        store: &SequenceStore,
        obs: &Obs,
    ) -> Result<PaceOutcome, PaceError> {
        self.config
            .cluster
            .validate()
            .map_err(PaceError::BadConfig)?;
        if self.config.num_processors == 0 {
            return Err(PaceError::BadConfig("num_processors must be ≥ 1".into()));
        }
        let (result, trace) = if self.config.num_processors <= 1 {
            cluster_sequential_obs(store, &self.config.cluster, obs)
        } else if self.config.cluster.shards > 0 {
            let k = self.config.cluster.shards;
            if self.config.num_processors < k + 2 {
                return Err(PaceError::BadConfig(format!(
                    "a sharded run needs p ≥ shards + 2 (reconciler + {k} sub-masters + ≥1 \
                     slave), got p = {}",
                    self.config.num_processors
                )));
            }
            cluster_sharded_faults(
                store,
                &self.config.cluster,
                self.config.num_processors,
                &self.config.faults,
                obs,
            )
        } else {
            cluster_parallel_faults(
                store,
                &self.config.cluster,
                self.config.num_processors,
                &self.config.faults,
                obs,
            )
        };
        Ok(PaceOutcome {
            num_ests: store.num_ests(),
            total_bases: store.total_input_chars(),
            num_processors: self.config.num_processors,
            result,
            trace,
        })
    }
}

impl PaceOutcome {
    /// Cluster label per EST.
    pub fn labels(&self) -> &[usize] {
        &self.result.labels
    }

    /// Number of clusters produced.
    pub fn num_clusters(&self) -> usize {
        self.result.num_clusters
    }

    /// Assess against a known correct clustering (Table 2's metrics).
    pub fn quality(&self, truth: &[usize]) -> QualityMetrics {
        pace_quality::assess(&self.result.labels, truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_simulate::{generate, SimConfig};

    fn test_config() -> PaceConfig {
        let mut c = PaceConfig::small_inputs();
        c.cluster.psi = 16;
        c.cluster.overlap.min_overlap_len = 40;
        c
    }

    fn dataset(n: usize, seed: u64) -> pace_simulate::EstDataset {
        generate(&SimConfig {
            num_genes: (n / 12).max(2),
            num_ests: n,
            est_len_mean: 220.0,
            est_len_sd: 25.0,
            est_len_min: 120,
            exon_len: (220, 400),
            exons_per_gene: (1, 2),
            seed,
            ..SimConfig::default()
        })
    }

    #[test]
    fn end_to_end_sequential() {
        let ds = dataset(100, 41);
        let outcome = Pace::new(test_config()).cluster(&ds.ests).unwrap();
        assert_eq!(outcome.num_ests, 100);
        assert!(outcome.num_clusters() <= 100);
        let q = outcome.quality(&ds.truth);
        assert!(q.cc > 0.8, "{q}");
    }

    #[test]
    fn end_to_end_parallel() {
        let ds = dataset(100, 42);
        let mut cfg = test_config();
        cfg.num_processors = 4;
        let outcome = Pace::new(cfg).cluster(&ds.ests).unwrap();
        let q = outcome.quality(&ds.truth);
        assert!(q.cc > 0.8, "{q}");
        assert_eq!(outcome.num_processors, 4);
    }

    #[test]
    fn outcome_trace_replays_to_labels() {
        let ds = dataset(80, 43);
        for p in [1, 3] {
            let mut cfg = test_config();
            cfg.num_processors = p;
            let outcome = Pace::new(cfg).cluster(&ds.ests).unwrap();
            assert_eq!(outcome.trace.len() as u64, outcome.result.stats.merges);
            let replayed = outcome.trace.replay(outcome.num_ests);
            let agreement = pace_quality::assess(&replayed, outcome.labels());
            assert_eq!(agreement.counts.fp + agreement.counts.fn_, 0, "p={p}");
        }
    }

    #[test]
    fn obs_registry_fills_through_the_pipeline() {
        let ds = dataset(60, 44);
        let store = SequenceStore::from_ests(&ds.ests).unwrap();
        let obs = Obs::noop();
        let outcome = Pace::new(test_config())
            .cluster_store_obs(&store, &obs)
            .unwrap();
        let snap = obs.registry().snapshot();
        assert_eq!(
            snap.counters["pairs.generated"],
            outcome.result.stats.pairs_generated
        );
        assert!(snap.phases.contains_key("total"));
    }

    #[test]
    fn bad_input_is_reported() {
        let err = Pace::new(test_config())
            .cluster(&[&b"ACGT"[..], b"ACNT"])
            .unwrap_err();
        assert!(matches!(err, PaceError::BadInput(_)));
    }

    #[test]
    fn bad_config_is_reported() {
        let mut cfg = test_config();
        cfg.cluster.psi = 1; // below window
        let err = Pace::new(cfg).cluster(&[&b"ACGTACGT"[..]]).unwrap_err();
        assert!(matches!(err, PaceError::BadConfig(_)));

        let mut cfg = test_config();
        cfg.num_processors = 0;
        let err = Pace::new(cfg).cluster(&[&b"ACGTACGT"[..]]).unwrap_err();
        assert!(matches!(err, PaceError::BadConfig(_)));
    }
}
