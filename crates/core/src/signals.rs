//! Minimal POSIX signal plumbing, dependency-free.
//!
//! The multi-process launcher and the serving daemon both need three
//! things no std API provides: notice SIGTERM/SIGINT, make sure no
//! spawned `__pace-worker` outlives its parent, and exit with the
//! conventional `128 + signo` status. This module does exactly that
//! with three `extern "C"` declarations against libc (which every Linux
//! process already links) — no external crate.
//!
//! Design constraints respected here:
//!
//! * The handler itself is async-signal-safe: it only stores into an
//!   atomic. All real work (killing children, exiting) happens on a
//!   normal thread that polls [`pending`].
//! * Child pids live in a global registry guarded by a `Mutex`; the
//!   watchdog SIGKILLs and reaps whatever is registered at the moment
//!   the signal lands, so an inopportune signal cannot leak workers.
//! * Handlers are installed once per process ([`install`] is
//!   idempotent); repeated launches reuse them.

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// SIGINT (Ctrl-C).
pub const SIGINT: i32 = 2;
/// SIGKILL (cannot be caught; used to stop children).
pub const SIGKILL: i32 = 9;
/// SIGTERM (polite termination request).
pub const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn kill(pid: i32, sig: i32) -> i32;
    fn waitpid(pid: i32, status: *mut i32, options: i32) -> i32;
}

/// Last fatal signal received, 0 if none.
static PENDING: AtomicI32 = AtomicI32::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);
/// Live child pids that must not outlive this process.
static CHILDREN: Mutex<Vec<i32>> = Mutex::new(Vec::new());

extern "C" fn on_fatal_signal(signum: i32) {
    // Async-signal-safe: a single atomic store.
    PENDING.store(signum, Ordering::SeqCst);
}

/// Install SIGTERM/SIGINT handlers (idempotent). After this, a fatal
/// signal no longer kills the process outright — it parks in
/// [`pending`] for a polling loop to act on, so the launcher can kill
/// its workers and the daemon can finish its checkpoint first.
pub fn install() {
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let handler = on_fatal_signal as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// The fatal signal received so far, if any.
pub fn pending() -> Option<i32> {
    match PENDING.load(Ordering::SeqCst) {
        0 => None,
        s => Some(s),
    }
}

/// Test hook: forget a previously received signal.
pub fn clear_pending() {
    PENDING.store(0, Ordering::SeqCst);
}

/// Track a spawned child so a fatal signal reaps it.
pub fn register_child(pid: u32) {
    CHILDREN.lock().unwrap().push(pid as i32);
}

/// Stop tracking a child that was reaped normally.
pub fn unregister_child(pid: u32) {
    CHILDREN.lock().unwrap().retain(|&p| p != pid as i32);
}

/// SIGKILL and reap every registered child. Called by the watchdog on a
/// fatal signal; harmless if children already exited (kill/waitpid on a
/// reaped pid just returns an error we ignore).
pub fn kill_registered_children() {
    let pids: Vec<i32> = std::mem::take(&mut *CHILDREN.lock().unwrap());
    for pid in pids {
        unsafe {
            kill(pid, SIGKILL);
            waitpid(pid, std::ptr::null_mut(), 0);
        }
    }
}

/// The conventional exit status for "terminated by signal `signum`".
pub fn exit_status_for(signum: i32) -> i32 {
    128 + signum
}

/// Spawn a watchdog thread that polls [`pending`]; on a fatal signal it
/// SIGKILLs + reaps all registered children and exits the process with
/// `128 + signo`. The thread is detached and dies with the process —
/// spawn one per launch; extra watchdogs are cheap and race-free
/// (child reaping drains a shared registry).
pub fn spawn_watchdog() {
    install();
    std::thread::Builder::new()
        .name("pace-signal-watchdog".into())
        .spawn(|| loop {
            if let Some(signum) = pending() {
                kill_registered_children();
                std::process::exit(exit_status_for(signum));
            }
            std::thread::sleep(Duration::from_millis(10));
        })
        .expect("spawning signal watchdog");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_status_follows_convention() {
        assert_eq!(exit_status_for(SIGTERM), 143);
        assert_eq!(exit_status_for(SIGINT), 130);
    }

    #[test]
    fn child_registry_add_remove() {
        register_child(999_999);
        unregister_child(999_999);
        assert!(!CHILDREN.lock().unwrap().contains(&999_999));
    }

    #[test]
    fn pending_starts_empty_and_clears() {
        clear_pending();
        assert_eq!(pending(), None);
        PENDING.store(SIGTERM, Ordering::SeqCst);
        assert_eq!(pending(), Some(SIGTERM));
        clear_pending();
        assert_eq!(pending(), None);
    }

    #[test]
    fn kill_registered_children_tolerates_dead_pids() {
        // A pid far beyond the kernel's pid_max: kill/waitpid fail with
        // ESRCH/ECHILD and are ignored.
        register_child(2_000_000_000);
        kill_registered_children();
        assert!(CHILDREN.lock().unwrap().is_empty());
    }
}
