//! Multi-process launcher for the Unix-socket transport.
//!
//! [`cluster_store_uds`] runs the same master–slave protocol as
//! `Pace::cluster_store`, but with one OS process per rank instead of
//! one thread: the calling process becomes rank 0 (master + socket
//! hub), and `p − 1` worker processes are forked from `worker_exe`
//! with the hidden `__pace-worker` argv. Everything a worker needs
//! travels on its command line — the input FASTA (written to a scratch
//! dir), the exact [`ClusterConfig`] as a `k=v` string, and the
//! encoded fault plan — so a worker is fully described by its argv and
//! can be re-run by hand when debugging.
//!
//! Fault injection composes with real processes: the same seeded plan
//! is compiled per rank on both sides of the fork (the encoding is
//! canonical), and an injected crash makes the worker *process* exit
//! with [`INJECTED_CRASH_EXIT`], which the reaper whitelists when the
//! plan contains crashes and counts into
//! [`metric::FAULTS_INJECTED_CRASHES`]. Any other non-zero exit is a
//! launch failure and carries the worker's captured stderr.

use crate::pipeline::{PaceConfig, PaceError, PaceOutcome};
use pace_cluster::{
    cluster_master_transport, cluster_sharded_master_transport, cluster_sharded_worker_transport,
    cluster_worker_transport, ClusterConfig, Msg,
};
use pace_mpisim::{FaultPlan, Rank, UdsEndpoint, UdsHub, INJECTED_CRASH_EXIT};
use pace_obs::{metric, Obs};
use pace_seq::{read_fasta_into_store, write_fasta_file, FastaRecord, SequenceStore};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How the launcher runs worker processes.
#[derive(Debug, Clone)]
pub struct UdsLaunchOpts {
    /// Binary to spawn for each worker rank. It must dispatch the
    /// hidden `__pace-worker` subcommand to [`worker_main`] — both the
    /// `pace` CLI and the bench smoke binary do.
    pub worker_exe: PathBuf,
    /// Rendezvous budget: every worker must connect and handshake
    /// within this window, and a straggling worker process is killed
    /// this long after the master finishes.
    pub connect_timeout: Duration,
    /// When set, worker `r` writes its (clock-aligned) Chrome trace to
    /// `{trace_out}.rank{r}.json`; merge them with `pace-trace`.
    pub trace_out: Option<PathBuf>,
}

impl UdsLaunchOpts {
    /// Options for spawning workers from `worker_exe`.
    pub fn new(worker_exe: impl Into<PathBuf>) -> Self {
        UdsLaunchOpts {
            worker_exe: worker_exe.into(),
            connect_timeout: Duration::from_secs(30),
            trace_out: None,
        }
    }
}

/// Monotonic scratch-dir discriminator, so concurrent launches from
/// one process (tests) never collide.
static LAUNCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Cluster `store` over the Unix-socket transport with
/// `config.num_processors` OS processes (this one + `p − 1` spawned
/// workers). Faults in `config.faults` are injected on every rank;
/// observability flows into `obs` exactly as in the in-process path,
/// plus [`metric::COMM_BYTES`] (real serialized bytes) and observed
/// worker crash exits.
pub fn cluster_store_uds(
    store: &SequenceStore,
    config: &PaceConfig,
    opts: &UdsLaunchOpts,
    obs: &Obs,
) -> Result<PaceOutcome, PaceError> {
    config.cluster.validate().map_err(PaceError::BadConfig)?;
    let p = config.num_processors;
    if p < 2 {
        return Err(PaceError::BadConfig(
            "the socket transport needs num_processors ≥ 2 (one master + workers)".into(),
        ));
    }
    if config.cluster.shards > 0 && p < config.cluster.shards + 2 {
        return Err(PaceError::BadConfig(format!(
            "a sharded run needs p ≥ shards + 2 (reconciler + {} sub-masters + ≥1 slave), \
             got p = {p}",
            config.cluster.shards
        )));
    }

    // Scratch directory: the rendezvous socket plus the input FASTA
    // every worker re-reads. Cleaned up best-effort on every exit path.
    let scratch = std::env::temp_dir().join(format!(
        "pace-uds-{}-{}",
        std::process::id(),
        LAUNCH_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&scratch).map_err(|e| launch_err("creating scratch dir", &e))?;
    let result = launch_world(store, config, opts, obs, &scratch);
    let _ = std::fs::remove_dir_all(&scratch);
    result
}

fn launch_world(
    store: &SequenceStore,
    config: &PaceConfig,
    opts: &UdsLaunchOpts,
    obs: &Obs,
    scratch: &Path,
) -> Result<PaceOutcome, PaceError> {
    let p = config.num_processors;
    let fasta_path = scratch.join("input.fasta");
    let sock_path = scratch.join("world.sock");
    write_store_fasta(store, &fasta_path)?;

    let kv = config.cluster.to_kv_string();
    let under_faults = !config.faults.is_empty();
    let plan_enc = under_faults.then(|| config.faults.encode());

    // A SIGTERM/SIGINT to this process must not leak worker processes:
    // the watchdog SIGKILLs every registered child and exits 128+signo.
    crate::signals::spawn_watchdog();

    let mut children: Vec<(usize, Child)> = Vec::with_capacity(p - 1);
    for rank in 1..p {
        let mut cmd = Command::new(&opts.worker_exe);
        cmd.arg("__pace-worker")
            .args(["--rank", &rank.to_string()])
            .args(["--procs", &p.to_string()])
            .arg("--socket")
            .arg(&sock_path)
            .arg("--in")
            .arg(&fasta_path)
            .args(["--config", &kv])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        if let Some(enc) = &plan_enc {
            cmd.args(["--fault-plan", enc]);
        }
        if let Some(base) = &opts.trace_out {
            cmd.arg("--trace-out").arg(worker_trace_path(base, rank));
        }
        match cmd.spawn() {
            Ok(child) => {
                crate::signals::register_child(child.id());
                children.push((rank, child));
            }
            Err(e) => {
                kill_all(&mut children);
                return Err(launch_err(
                    &format!(
                        "spawning worker rank {rank} from {}",
                        opts.worker_exe.display()
                    ),
                    &e,
                ));
            }
        }
    }

    // Rendezvous: workers connect-retry until the hub's listener is up,
    // so binding after the spawns is safe and keeps the window tight.
    let hub = match UdsHub::<Msg>::bind(&sock_path, p, opts.connect_timeout, &|| obs.now_us()) {
        Ok(hub) => hub,
        Err(e) => {
            kill_all(&mut children);
            let diagnosis = reap_stderr_excerpt(&mut children);
            return Err(PaceError::Launch(format!(
                "socket rendezvous failed: {e}{diagnosis}"
            )));
        }
    };
    let rank = Rank::over(Box::new(hub), &config.faults, obs.clone());
    let (result, trace) = if config.cluster.shards > 0 {
        cluster_sharded_master_transport(store, &config.cluster, &rank, under_faults, obs)
    } else {
        cluster_master_transport(store, &config.cluster, &rank, under_faults, obs)
    };
    // Dropping the master's rank drops the hub: any worker still blocked
    // on the socket sees EOF instead of hanging the reaper.
    drop(rank);

    reap_children(children, &config.faults, opts.connect_timeout, obs)?;

    Ok(PaceOutcome {
        num_ests: store.num_ests(),
        total_bases: store.total_input_chars(),
        num_processors: p,
        result,
        trace,
    })
}

/// Wait for every worker with a deadline, enforcing the exit-code
/// contract: 0 is success, [`INJECTED_CRASH_EXIT`] is legitimate only
/// under a crash-bearing fault plan (and is counted as an observed
/// injected crash), anything else propagates as a launch failure with
/// the worker's stderr attached.
fn reap_children(
    children: Vec<(usize, Child)>,
    plan: &FaultPlan,
    timeout: Duration,
    obs: &Obs,
) -> Result<(), PaceError> {
    let deadline = Instant::now() + timeout;
    let mut observed_crashes = 0u64;
    let mut failure: Option<String> = None;
    for (rank, mut child) in children {
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break Some(status),
                Ok(None) => {
                    if Instant::now() >= deadline {
                        let _ = child.kill();
                        let _ = child.wait();
                        break None;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    failure.get_or_insert(format!("waiting for worker rank {rank}: {e}"));
                    break None;
                }
            }
        };
        let stderr = drain_stderr(&mut child);
        crate::signals::unregister_child(child.id());
        match status {
            Some(s) if s.success() => {}
            Some(s) if s.code() == Some(INJECTED_CRASH_EXIT) && plan.has_crashes() => {
                observed_crashes += 1;
            }
            Some(s) => {
                failure.get_or_insert(format!(
                    "worker rank {rank} exited with {s}{}",
                    stderr_excerpt(&stderr)
                ));
            }
            None => {
                failure.get_or_insert(format!(
                    "worker rank {rank} hung past the reap deadline and was killed{}",
                    stderr_excerpt(&stderr)
                ));
            }
        }
    }
    if observed_crashes > 0 {
        obs.registry()
            .add(metric::FAULTS_INJECTED_CRASHES, observed_crashes);
    }
    match failure {
        Some(msg) => Err(PaceError::Launch(msg)),
        None => Ok(()),
    }
}

/// Entry point for the hidden `__pace-worker` subcommand: parse the
/// launcher's argv, join the socket world as one slave rank, run the
/// protocol, and return the process exit code (0, or
/// [`INJECTED_CRASH_EXIT`] when this rank's fault plan crashed it).
/// `args` excludes the program name and the `__pace-worker` token.
pub fn worker_main(args: &[String]) -> Result<i32, String> {
    let mut rank: Option<usize> = None;
    let mut procs: Option<usize> = None;
    let mut socket: Option<PathBuf> = None;
    let mut input: Option<PathBuf> = None;
    let mut kv: Option<String> = None;
    let mut plan_enc: Option<String> = None;
    let mut trace_out: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut take = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--rank" => rank = Some(take()?.parse().map_err(|e| format!("--rank: {e}"))?),
            "--procs" => procs = Some(take()?.parse().map_err(|e| format!("--procs: {e}"))?),
            "--socket" => socket = Some(take()?.into()),
            "--in" => input = Some(take()?.into()),
            "--config" => kv = Some(take()?),
            "--fault-plan" => plan_enc = Some(take()?),
            "--trace-out" => trace_out = Some(take()?.into()),
            other => return Err(format!("unknown worker flag: {other}")),
        }
    }
    let rank = rank.ok_or("missing --rank")?;
    let procs = procs.ok_or("missing --procs")?;
    let socket = socket.ok_or("missing --socket")?;
    let input = input.ok_or("missing --in")?;
    let kv = kv.ok_or("missing --config")?;
    if rank == 0 || rank >= procs {
        return Err(format!("worker rank {rank} out of range for {procs} procs"));
    }

    let (store, _ids, _replaced) =
        read_fasta_into_store(&input).map_err(|e| format!("reading {}: {e}", input.display()))?;
    let cfg = ClusterConfig::from_kv_string(&kv).map_err(|e| format!("--config: {e}"))?;
    let plan = match &plan_enc {
        Some(enc) => FaultPlan::decode(enc).map_err(|e| format!("--fault-plan: {e}"))?,
        None => FaultPlan::none(),
    };
    let under_faults = !plan.is_empty();

    let obs = if trace_out.is_some() {
        Obs::with_tracer()
    } else {
        Obs::noop()
    };
    let ep = UdsEndpoint::<Msg>::connect(&socket, rank, Duration::from_secs(30), &|| obs.now_us())
        .map_err(|e| format!("connecting to {}: {e}", socket.display()))?;
    // The handshake's clock offset places this process's trace
    // timestamps on the hub's timeline when we export below.
    let clock_offset_us = ep.clock_offset_us();
    let world = Rank::over(Box::new(ep), &plan, obs.clone());
    let crashed = if cfg.shards > 0 {
        cluster_sharded_worker_transport(&store, &cfg, &world, under_faults, &obs)
    } else {
        cluster_worker_transport(&store, &cfg, &world, under_faults, &obs)
    };
    drop(world);

    if let (Some(path), Some(tracer)) = (&trace_out, obs.tracer()) {
        tracer
            .write_chrome_file_offset(path, clock_offset_us)
            .map_err(|e| format!("writing trace {}: {e}", path.display()))?;
    }
    Ok(if crashed { INJECTED_CRASH_EXIT } else { 0 })
}

/// Per-rank trace path the launcher assigns: `{base}.rank{r}.json`.
pub fn worker_trace_path(base: &Path, rank: usize) -> PathBuf {
    let mut s = base.as_os_str().to_os_string();
    s.push(format!(".rank{rank}.json"));
    PathBuf::from(s)
}

fn write_store_fasta(store: &SequenceStore, path: &Path) -> Result<(), PaceError> {
    let records: Vec<FastaRecord> = store
        .est_ids()
        .enumerate()
        .map(|(i, eid)| FastaRecord {
            id: format!("e{i}"),
            description: String::new(),
            sequence: store.est_seq(eid).to_vec(),
        })
        .collect();
    write_fasta_file(path, &records)
        .map_err(|e| PaceError::Launch(format!("writing {}: {e}", path.display())))
}

fn launch_err(what: &str, e: &dyn std::fmt::Display) -> PaceError {
    PaceError::Launch(format!("{what}: {e}"))
}

fn kill_all(children: &mut [(usize, Child)]) {
    for (_, child) in children.iter_mut() {
        let _ = child.kill();
        crate::signals::unregister_child(child.id());
    }
}

/// After killing everything, salvage whichever worker stderr explains
/// the rendezvous failure (e.g. a bad `--config` rejected at startup).
fn reap_stderr_excerpt(children: &mut [(usize, Child)]) -> String {
    for (rank, child) in children.iter_mut() {
        let _ = child.wait();
        let s = drain_stderr(child);
        if !s.trim().is_empty() {
            return format!("; worker rank {rank} said{}", stderr_excerpt(&s));
        }
    }
    String::new()
}

fn drain_stderr(child: &mut Child) -> String {
    use std::io::Read;
    let mut buf = String::new();
    if let Some(mut err) = child.stderr.take() {
        let _ = err.read_to_string(&mut buf);
    }
    buf
}

fn stderr_excerpt(stderr: &str) -> String {
    let trimmed = stderr.trim();
    if trimmed.is_empty() {
        return String::new();
    }
    const CAP: usize = 2000;
    let shown: String = trimmed.chars().take(CAP).collect();
    let ellipsis = if trimmed.chars().count() > CAP {
        "…"
    } else {
        ""
    };
    format!(": {shown}{ellipsis}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_trace_paths_are_per_rank() {
        let base = Path::new("/tmp/run/trace.json");
        assert_eq!(
            worker_trace_path(base, 3),
            Path::new("/tmp/run/trace.json.rank3.json")
        );
    }

    #[test]
    fn worker_main_rejects_bad_argv() {
        let args = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert!(worker_main(&args(&["--rank", "1"])).is_err());
        assert!(worker_main(&args(&["--bogus", "1"])).is_err());
        // Rank 0 is the hub's seat, never a spawned worker.
        let err = worker_main(&args(&[
            "--rank", "0", "--procs", "2", "--socket", "s", "--in", "f", "--config", "",
        ]))
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn cluster_store_uds_rejects_sequential_world() {
        let store = SequenceStore::from_ests(&[b"ACGTACGTACGT".as_slice()]).unwrap();
        let cfg = PaceConfig::small_inputs(); // num_processors = 1
        let err = cluster_store_uds(
            &store,
            &cfg,
            &UdsLaunchOpts::new("/nonexistent"),
            &Obs::noop(),
        )
        .unwrap_err();
        assert!(matches!(err, PaceError::BadConfig(_)));
    }
}
