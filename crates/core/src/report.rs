//! Run reports: the machine- and human-readable records behind
//! EXPERIMENTS.md.

use crate::pipeline::PaceOutcome;
use pace_obs::Json;
use pace_quality::QualityMetrics;

/// A flat, serializable record of one clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Number of input ESTs.
    pub num_ests: usize,
    /// Total input bases.
    pub total_bases: usize,
    /// Ranks used (1 = sequential driver).
    pub num_processors: usize,
    /// Clusters produced.
    pub num_clusters: usize,
    /// Promising pairs generated.
    pub pairs_generated: u64,
    /// Pairs actually aligned.
    pub pairs_processed: u64,
    /// Alignments accepted.
    pub pairs_accepted: u64,
    /// Pairs skipped thanks to up-to-date cluster information.
    pub pairs_skipped: u64,
    /// Seconds in partitioning.
    pub partitioning_secs: f64,
    /// Seconds constructing the GST.
    pub gst_secs: f64,
    /// Seconds sorting nodes.
    pub sort_secs: f64,
    /// Seconds aligning.
    pub align_secs: f64,
    /// End-to-end seconds.
    pub total_secs: f64,
    /// Fraction of time the master was busy (parallel runs).
    pub master_busy_frac: f64,
    /// Quality versus ground truth, when available: `(OQ, OV, UN, CC)`
    /// as percentages.
    pub quality: Option<(f64, f64, f64, f64)>,
    /// Seconds on the trace's critical path (longest causal chain of
    /// work spans). `0.0` when the run was not traced.
    pub critical_path_secs: f64,
    /// Per-rank busy fraction from the trace, indexed by rank. Empty
    /// when the run was not traced.
    pub rank_utilization: Vec<f64>,
}

impl RunReport {
    /// Build a report from an outcome, optionally with quality metrics.
    pub fn from_outcome(outcome: &PaceOutcome, quality: Option<QualityMetrics>) -> Self {
        let s = &outcome.result.stats;
        RunReport {
            num_ests: outcome.num_ests,
            total_bases: outcome.total_bases,
            num_processors: outcome.num_processors,
            num_clusters: outcome.result.num_clusters,
            pairs_generated: s.pairs_generated,
            pairs_processed: s.pairs_processed,
            pairs_accepted: s.pairs_accepted,
            pairs_skipped: s.pairs_skipped,
            partitioning_secs: s.timers.partitioning,
            gst_secs: s.timers.gst_construction,
            sort_secs: s.timers.node_sorting,
            align_secs: s.timers.alignment,
            total_secs: s.timers.total,
            master_busy_frac: s.master_busy_frac,
            quality: quality.map(|q| q.as_percentages()),
            critical_path_secs: 0.0,
            rank_utilization: Vec::new(),
        }
    }

    /// Attach trace-derived figures (critical path, per-rank busy
    /// fractions) from a [`pace_obs::trace::Analysis`] of the run.
    pub fn with_trace_analysis(mut self, analysis: &pace_obs::trace::Analysis) -> Self {
        self.critical_path_secs = analysis.critical_path_secs;
        self.rank_utilization = analysis.ranks.iter().map(|r| r.utilization).collect();
        self
    }

    /// Render a Table 3–style component-time row:
    /// `p | partitioning | GST | sorting | alignment | total`.
    pub fn table3_row(&self) -> String {
        format!(
            "{:>4} {:>12.2} {:>12.2} {:>10.2} {:>12.2} {:>10.2}",
            self.num_processors,
            self.partitioning_secs,
            self.gst_secs,
            self.sort_secs,
            self.align_secs,
            self.total_secs
        )
    }

    /// Render a Table 2–style quality row (`OQ OV UN CC`), if assessed.
    pub fn table2_row(&self) -> Option<String> {
        self.quality
            .map(|(oq, ov, un, cc)| format!("OQ {oq:6.2}  OV {ov:5.2}  UN {un:5.2}  CC {cc:6.2}"))
    }

    /// Serialize as a JSON object (via `pace-obs`; the workspace has no
    /// serde).
    pub fn to_json(&self) -> Json {
        let quality = match self.quality {
            Some((oq, ov, un, cc)) => Json::obj([
                ("oq", Json::Num(oq)),
                ("ov", Json::Num(ov)),
                ("un", Json::Num(un)),
                ("cc", Json::Num(cc)),
            ]),
            None => Json::Null,
        };
        Json::obj([
            ("num_ests", Json::Num(self.num_ests as f64)),
            ("total_bases", Json::Num(self.total_bases as f64)),
            ("num_processors", Json::Num(self.num_processors as f64)),
            ("num_clusters", Json::Num(self.num_clusters as f64)),
            ("pairs_generated", Json::Num(self.pairs_generated as f64)),
            ("pairs_processed", Json::Num(self.pairs_processed as f64)),
            ("pairs_accepted", Json::Num(self.pairs_accepted as f64)),
            ("pairs_skipped", Json::Num(self.pairs_skipped as f64)),
            ("partitioning_secs", Json::Num(self.partitioning_secs)),
            ("gst_secs", Json::Num(self.gst_secs)),
            ("sort_secs", Json::Num(self.sort_secs)),
            ("align_secs", Json::Num(self.align_secs)),
            ("total_secs", Json::Num(self.total_secs)),
            ("master_busy_frac", Json::Num(self.master_busy_frac)),
            ("quality", quality),
            ("critical_path_secs", Json::Num(self.critical_path_secs)),
            (
                "rank_utilization",
                Json::Arr(
                    self.rank_utilization
                        .iter()
                        .map(|&u| Json::Num(u))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a report previously produced by [`RunReport::to_json`].
    pub fn from_json(doc: &Json) -> Option<Self> {
        let u = |k: &str| doc.get(k)?.as_u64();
        let f = |k: &str| doc.get(k)?.as_f64();
        let quality = match doc.get("quality")? {
            Json::Null => None,
            q => Some((
                q.get("oq")?.as_f64()?,
                q.get("ov")?.as_f64()?,
                q.get("un")?.as_f64()?,
                q.get("cc")?.as_f64()?,
            )),
        };
        Some(RunReport {
            num_ests: u("num_ests")? as usize,
            total_bases: u("total_bases")? as usize,
            num_processors: u("num_processors")? as usize,
            num_clusters: u("num_clusters")? as usize,
            pairs_generated: u("pairs_generated")?,
            pairs_processed: u("pairs_processed")?,
            pairs_accepted: u("pairs_accepted")?,
            pairs_skipped: u("pairs_skipped")?,
            partitioning_secs: f("partitioning_secs")?,
            gst_secs: f("gst_secs")?,
            sort_secs: f("sort_secs")?,
            align_secs: f("align_secs")?,
            total_secs: f("total_secs")?,
            master_busy_frac: f("master_busy_frac")?,
            quality,
            // Tolerant defaults: reports written before tracing existed
            // simply have no trace figures.
            critical_path_secs: f("critical_path_secs").unwrap_or(0.0),
            rank_utilization: doc
                .get("rank_utilization")
                .and_then(|v| v.as_arr())
                .map(|a| a.iter().filter_map(|x| x.as_f64()).collect())
                .unwrap_or_default(),
        })
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "PaCE run: {} ESTs ({} bases) on {} processor(s)",
            self.num_ests, self.total_bases, self.num_processors
        )?;
        writeln!(f, "  clusters      : {}", self.num_clusters)?;
        writeln!(
            f,
            "  pairs         : {} generated, {} aligned, {} accepted, {} skipped",
            self.pairs_generated, self.pairs_processed, self.pairs_accepted, self.pairs_skipped
        )?;
        writeln!(
            f,
            "  time (s)      : partition {:.3}, gst {:.3}, sort {:.3}, align {:.3}, total {:.3}",
            self.partitioning_secs, self.gst_secs, self.sort_secs, self.align_secs, self.total_secs
        )?;
        if self.critical_path_secs > 0.0 {
            writeln!(
                f,
                "  critical path : {:.3}s across {} traced rank(s)",
                self.critical_path_secs,
                self.rank_utilization.len()
            )?;
        }
        if let Some(row) = self.table2_row() {
            writeln!(f, "  quality       : {row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pace, PaceConfig};
    use pace_simulate::{generate, SimConfig};

    fn outcome() -> (PaceOutcome, Vec<usize>) {
        let ds = generate(&SimConfig {
            num_genes: 5,
            num_ests: 50,
            est_len_mean: 200.0,
            est_len_sd: 20.0,
            est_len_min: 120,
            seed: 51,
            ..SimConfig::default()
        });
        let mut cfg = PaceConfig::small_inputs();
        cfg.cluster.psi = 16;
        (Pace::new(cfg).cluster(&ds.ests).unwrap(), ds.truth)
    }

    #[test]
    fn report_reflects_outcome() {
        let (out, truth) = outcome();
        let q = out.quality(&truth);
        let report = RunReport::from_outcome(&out, Some(q));
        assert_eq!(report.num_ests, 50);
        assert_eq!(report.num_clusters, out.num_clusters());
        assert!(report.quality.is_some());
        let text = report.to_string();
        assert!(text.contains("50 ESTs"));
        assert!(text.contains("quality"));
        assert!(report.table2_row().is_some());
        assert!(!report.table3_row().is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let (out, truth) = outcome();
        let q = out.quality(&truth);
        let report = RunReport::from_outcome(&out, Some(q));
        let text = report.to_json().to_string();
        let back = RunReport::from_json(&pace_obs::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn trace_fields_default_when_absent_and_roundtrip_when_set() {
        let (out, _) = outcome();
        let mut report = RunReport::from_outcome(&out, None);
        // Pre-trace reports (no such keys) parse with neutral defaults.
        let mut old = report.to_json();
        if let Json::Obj(entries) = &mut old {
            entries.retain(|(k, _)| k != "critical_path_secs" && k != "rank_utilization");
        }
        let back = RunReport::from_json(&pace_obs::json::parse(&old.to_string()).unwrap()).unwrap();
        assert_eq!(back.critical_path_secs, 0.0);
        assert!(back.rank_utilization.is_empty());
        // Populated figures survive the round trip.
        report.critical_path_secs = 1.25;
        report.rank_utilization = vec![0.5, 0.9, 0.75];
        let back =
            RunReport::from_json(&pace_obs::json::parse(&report.to_json().to_string()).unwrap())
                .unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn report_without_quality() {
        let (out, _) = outcome();
        let report = RunReport::from_outcome(&out, None);
        assert!(report.quality.is_none());
        assert!(report.table2_row().is_none());
        assert!(!report.to_string().contains("quality"));
    }
}
